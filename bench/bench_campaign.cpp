// Campaign harness benchmark: the full Figure-4 grid in one invocation.
//
// Expands the seven-batch-size campaign (N=128 toward rgb(120,120,120),
// B = 1, 2, 4, 8, 16, 32, 64) through the campaign layer, runs it on the
// thread pool, prints the per-cell summary, and writes
// BENCH_campaign.json: host wall time plus modeled (simulated) time per
// cell — the repo's perf trajectory file, collected as a CI artifact.
// Also measures the checkpoint layer's overhead (journal write + resume
// validation, campaign/checkpoint.hpp) and records it in the JSON.
//
//   bench_campaign [--quick]   # --quick: 2-cell smoke grid for CI debug
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/checkpoint.hpp"
#include "campaign/cost_model.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/presets.hpp"
#include "support/atomic_io.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;

namespace {

campaign::CampaignSpec fig4_grid() {
    campaign::CampaignSpec spec;
    spec.name = "fig4_grid";
    spec.base = core::preset_fig4(/*batch_size=*/1, /*seed=*/100);
    spec.axes.batch_sizes = {1, 2, 4, 8, 16, 32, 64};
    spec.base_seed = 100;
    spec.seed_mode = campaign::SeedMode::PerCell;
    return spec;
}

campaign::CampaignSpec quick_grid() {
    campaign::CampaignSpec spec = fig4_grid();
    spec.name = "fig4_quick";
    spec.base.total_samples = 16;
    spec.axes.batch_sizes = {2, 8};
    return spec;
}

/// Nearest-rank percentile of an unsorted sample (q in [0, 1]).
double percentile(std::vector<double> values, double q) {
    if (values.empty()) return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = q * static_cast<double>(values.size());
    std::size_t index = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
    index = std::min(index, values.size() - 1);
    return values[index];
}

/// Makespan of the measured per-cell wall times under static round-robin
/// sharding onto `shards` dedicated workers (the `--shard i/N` split):
/// each shard's wall is the sum of its cells, the makespan is the
/// slowest shard. Modeled, not re-measured: this container may not have
/// the cores to run the shards truly concurrently, but the measured
/// per-cell walls make the schedule arithmetic exact.
double static_shard_makespan(const std::vector<campaign::CellResult>& results,
                             std::size_t shards) {
    std::vector<double> load(shards, 0.0);
    for (const campaign::CellResult& result : results) {
        load[result.cell.index % shards] += result.wall_seconds;
    }
    return *std::max_element(load.begin(), load.end());
}

/// Makespan of the same cells under the fleet's schedule: cells claimed
/// longest-expected-first (campaign/cost_model.hpp), each by the first
/// worker to free up — the LPT greedy the lease table implements when
/// leases shrink to single cells.
double stealing_makespan(const std::vector<campaign::CellResult>& results,
                         std::size_t workers) {
    std::vector<campaign::CampaignCell> cells;
    cells.reserve(results.size());
    for (const campaign::CellResult& result : results) cells.push_back(result.cell);
    std::vector<double> load(workers, 0.0);
    for (const std::size_t i : campaign::schedule_order(cells)) {
        auto first_free = std::min_element(load.begin(), load.end());
        *first_free += results[i].wall_seconds;
    }
    return *std::max_element(load.begin(), load.end());
}

}  // namespace

int main(int argc, char** argv) {
    support::set_log_level(support::LogLevel::Error);
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const campaign::CampaignSpec spec = quick ? quick_grid() : fig4_grid();

    std::printf("================================================================\n");
    std::printf("Campaign bench — %s: %zu cells, N=%d, target rgb(120,120,120)\n",
                spec.name.c_str(), campaign::cell_count(spec), spec.base.total_samples);
    std::printf("================================================================\n");

    const auto started = std::chrono::steady_clock::now();
    const auto results = campaign::CampaignRunner().run(spec);
    const double total_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

    support::TextTable table({"B", "Seed", "Final best", "Modeled time", "Wall time",
                              "Speedup"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    double modeled_minutes_sum = 0.0;
    for (const campaign::CellResult& result : results) {
        const double modeled_min = result.outcome.metrics.total_time.to_minutes();
        modeled_minutes_sum += modeled_min;
        const double speedup =
            result.wall_seconds > 0.0 ? modeled_min * 60.0 / result.wall_seconds : 0.0;
        table.add_row({std::to_string(result.cell.batch_size),
                       std::to_string(result.cell.config.seed),
                       support::fmt_double(result.outcome.best_score, 2),
                       result.outcome.metrics.total_time.pretty(),
                       support::fmt_double(result.wall_seconds, 2) + " s",
                       support::fmt_double(speedup, 0) + "x"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\n%zu cells: %.1f modeled lab-hours simulated in %.1f wall-seconds.\n",
                results.size(), modeled_minutes_sum / 60.0, total_wall_seconds);

    // Scheduler quality: how well the cost-ordered pool packed the cells.
    std::vector<double> walls;
    walls.reserve(results.size());
    double busy_seconds = 0.0;
    for (const campaign::CellResult& result : results) {
        walls.push_back(result.wall_seconds);
        busy_seconds += result.wall_seconds;
    }
    const std::size_t pool_workers = support::global_pool().size();
    const double efficiency =
        total_wall_seconds > 0.0
            ? busy_seconds / (total_wall_seconds * static_cast<double>(pool_workers))
            : 0.0;
    const double wall_p50 = percentile(walls, 0.50);
    const double wall_p95 = percentile(walls, 0.95);
    std::printf("Scheduler: makespan %.2f s, busy %.2f s on %zu workers "
                "(efficiency %.0f%%); cell wall p50 %.2f s, p95 %.2f s.\n",
                total_wall_seconds, busy_seconds, pool_workers, efficiency * 100.0,
                wall_p50, wall_p95);

    // Fleet vs static 3-shard, modeled from the measured per-cell walls
    // (informational — outside the perf gate; see the leaf names).
    const double static3 = static_shard_makespan(results, 3);
    const double stealing3 = stealing_makespan(results, 3);
    const double improvement =
        static3 > 0.0 ? (static3 - stealing3) / static3 * 100.0 : 0.0;
    std::printf("Fleet model (3 dedicated workers): work-stealing makespan %.2f s vs "
                "static 3-shard %.2f s — %.0f%% shorter on this grid.\n",
                stealing3, static3, improvement);

    // Checkpoint overhead: what journaling every cell costs at run time,
    // and what a resume pays to validate the journal against the
    // re-expanded grid before skipping completed cells.
    const std::string journal_dir = "BENCH_campaign_journal";
    std::filesystem::create_directories(journal_dir);
    auto t0 = std::chrono::steady_clock::now();
    {
        campaign::CheckpointJournal journal(journal_dir, spec, results.size());
        for (const campaign::CellResult& result : results) journal.append(result);
    }
    const double journal_write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto journal_bytes = static_cast<std::int64_t>(
        std::filesystem::file_size(campaign::journal_path(journal_dir)));
    t0 = std::chrono::steady_clock::now();
    const campaign::LoadedJournal loaded = campaign::load_journal(
        campaign::journal_path(journal_dir), spec, campaign::expand_grid(spec));
    const double resume_load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::filesystem::remove_all(journal_dir);
    std::printf("Checkpointing: journal %zu cells (%.1f KiB) in %.1f ms; resume "
                "validation %.1f ms.\n",
                loaded.cells.size(), static_cast<double>(journal_bytes) / 1024.0,
                journal_write_seconds * 1e3, resume_load_seconds * 1e3);

    // The perf trajectory file (uploaded as a CI artifact).
    support::json::Value bench = support::json::Value::object();
    bench.set("schema", "sdlbench.bench_campaign.v1");
    bench.set("campaign", spec.name);
    bench.set("cells", static_cast<std::int64_t>(results.size()));
    bench.set("total_wall_seconds", total_wall_seconds);
    bench.set("modeled_minutes_total", modeled_minutes_sum);
    support::json::Value cells = support::json::Value::array();
    for (const campaign::CellResult& result : results) {
        support::json::Value cell = support::json::Value::object();
        cell.set("solver", result.cell.solver);
        cell.set("batch_size", result.cell.batch_size);
        cell.set("seed", static_cast<std::int64_t>(result.cell.config.seed));
        cell.set("samples", static_cast<std::int64_t>(result.outcome.samples.size()));
        cell.set("best_score", result.outcome.best_score);
        cell.set("wall_seconds", result.wall_seconds);
        cell.set("modeled_minutes", result.outcome.metrics.total_time.to_minutes());
        cells.push_back(std::move(cell));
    }
    bench.set("cells_detail", std::move(cells));
    support::json::Value checkpoint = support::json::Value::object();
    checkpoint.set("journal_write_seconds", journal_write_seconds);
    checkpoint.set("resume_load_seconds", resume_load_seconds);
    checkpoint.set("journal_bytes", journal_bytes);
    bench.set("checkpoint", std::move(checkpoint));
    support::json::Value scheduler = support::json::Value::object();
    scheduler.set("workers", static_cast<std::int64_t>(pool_workers));
    scheduler.set("makespan_seconds", total_wall_seconds);
    scheduler.set("busy_seconds", busy_seconds);
    scheduler.set("efficiency", efficiency);
    scheduler.set("cell_wall_p50_seconds", wall_p50);
    scheduler.set("cell_wall_p95_seconds", wall_p95);
    // Modeled from measured per-cell walls on 3 dedicated workers —
    // informational leaves (no _seconds suffix), deliberately outside
    // bench_compare's regression gate: the split depends on the grid's
    // cost skew, not on code speed.
    support::json::Value fleet_model = support::json::Value::object();
    fleet_model.set("modeled_static3_makespan", static3);
    fleet_model.set("modeled_stealing3_makespan", stealing3);
    fleet_model.set("modeled_improvement_pct", improvement);
    scheduler.set("fleet_vs_static3", std::move(fleet_model));
    bench.set("scheduler", std::move(scheduler));
    try {
        support::atomic_write("BENCH_campaign.json", bench.pretty() + "\n");
    } catch (const support::Error& error) {
        std::fprintf(stderr, "error: failed to write BENCH_campaign.json: %s\n",
                     error.what());
        return 1;
    }
    std::printf("Wrote BENCH_campaign.json\n");
    return 0;
}
