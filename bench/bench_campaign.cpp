// Campaign harness benchmark: the full Figure-4 grid in one invocation.
//
// Expands the seven-batch-size campaign (N=128 toward rgb(120,120,120),
// B = 1, 2, 4, 8, 16, 32, 64) through the campaign layer, runs it on the
// thread pool, prints the per-cell summary, and writes
// BENCH_campaign.json: host wall time plus modeled (simulated) time per
// cell — the repo's perf trajectory file, collected as a CI artifact.
// Also measures the checkpoint layer's overhead (journal write + resume
// validation, campaign/checkpoint.hpp) and records it in the JSON.
//
//   bench_campaign [--quick]   # --quick: 2-cell smoke grid for CI debug
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "campaign/checkpoint.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/presets.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

using namespace sdl;

namespace {

campaign::CampaignSpec fig4_grid() {
    campaign::CampaignSpec spec;
    spec.name = "fig4_grid";
    spec.base = core::preset_fig4(/*batch_size=*/1, /*seed=*/100);
    spec.axes.batch_sizes = {1, 2, 4, 8, 16, 32, 64};
    spec.base_seed = 100;
    spec.seed_mode = campaign::SeedMode::PerCell;
    return spec;
}

campaign::CampaignSpec quick_grid() {
    campaign::CampaignSpec spec = fig4_grid();
    spec.name = "fig4_quick";
    spec.base.total_samples = 16;
    spec.axes.batch_sizes = {2, 8};
    return spec;
}

}  // namespace

int main(int argc, char** argv) {
    support::set_log_level(support::LogLevel::Error);
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const campaign::CampaignSpec spec = quick ? quick_grid() : fig4_grid();

    std::printf("================================================================\n");
    std::printf("Campaign bench — %s: %zu cells, N=%d, target rgb(120,120,120)\n",
                spec.name.c_str(), campaign::cell_count(spec), spec.base.total_samples);
    std::printf("================================================================\n");

    const auto started = std::chrono::steady_clock::now();
    const auto results = campaign::CampaignRunner().run(spec);
    const double total_wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();

    support::TextTable table({"B", "Seed", "Final best", "Modeled time", "Wall time",
                              "Speedup"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    double modeled_minutes_sum = 0.0;
    for (const campaign::CellResult& result : results) {
        const double modeled_min = result.outcome.metrics.total_time.to_minutes();
        modeled_minutes_sum += modeled_min;
        const double speedup =
            result.wall_seconds > 0.0 ? modeled_min * 60.0 / result.wall_seconds : 0.0;
        table.add_row({std::to_string(result.cell.batch_size),
                       std::to_string(result.cell.config.seed),
                       support::fmt_double(result.outcome.best_score, 2),
                       result.outcome.metrics.total_time.pretty(),
                       support::fmt_double(result.wall_seconds, 2) + " s",
                       support::fmt_double(speedup, 0) + "x"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\n%zu cells: %.1f modeled lab-hours simulated in %.1f wall-seconds.\n",
                results.size(), modeled_minutes_sum / 60.0, total_wall_seconds);

    // Checkpoint overhead: what journaling every cell costs at run time,
    // and what a resume pays to validate the journal against the
    // re-expanded grid before skipping completed cells.
    const std::string journal_dir = "BENCH_campaign_journal";
    std::filesystem::create_directories(journal_dir);
    auto t0 = std::chrono::steady_clock::now();
    {
        campaign::CheckpointJournal journal(journal_dir, spec, results.size());
        for (const campaign::CellResult& result : results) journal.append(result);
    }
    const double journal_write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    const auto journal_bytes = static_cast<std::int64_t>(
        std::filesystem::file_size(campaign::journal_path(journal_dir)));
    t0 = std::chrono::steady_clock::now();
    const campaign::LoadedJournal loaded = campaign::load_journal(
        campaign::journal_path(journal_dir), spec, campaign::expand_grid(spec));
    const double resume_load_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    std::filesystem::remove_all(journal_dir);
    std::printf("Checkpointing: journal %zu cells (%.1f KiB) in %.1f ms; resume "
                "validation %.1f ms.\n",
                loaded.cells.size(), static_cast<double>(journal_bytes) / 1024.0,
                journal_write_seconds * 1e3, resume_load_seconds * 1e3);

    // The perf trajectory file (uploaded as a CI artifact).
    support::json::Value bench = support::json::Value::object();
    bench.set("schema", "sdlbench.bench_campaign.v1");
    bench.set("campaign", spec.name);
    bench.set("cells", static_cast<std::int64_t>(results.size()));
    bench.set("total_wall_seconds", total_wall_seconds);
    bench.set("modeled_minutes_total", modeled_minutes_sum);
    support::json::Value cells = support::json::Value::array();
    for (const campaign::CellResult& result : results) {
        support::json::Value cell = support::json::Value::object();
        cell.set("solver", result.cell.solver);
        cell.set("batch_size", result.cell.batch_size);
        cell.set("seed", static_cast<std::int64_t>(result.cell.config.seed));
        cell.set("samples", static_cast<std::int64_t>(result.outcome.samples.size()));
        cell.set("best_score", result.outcome.best_score);
        cell.set("wall_seconds", result.wall_seconds);
        cell.set("modeled_minutes", result.outcome.metrics.total_time.to_minutes());
        cells.push_back(std::move(cell));
    }
    bench.set("cells_detail", std::move(cells));
    support::json::Value checkpoint = support::json::Value::object();
    checkpoint.set("journal_write_seconds", journal_write_seconds);
    checkpoint.set("resume_load_seconds", resume_load_seconds);
    checkpoint.set("journal_bytes", journal_bytes);
    bench.set("checkpoint", std::move(checkpoint));
    {
        std::ofstream out("BENCH_campaign.json", std::ios::binary);
        out << bench.pretty() << "\n";
        if (!out) {
            std::fprintf(stderr, "error: failed to write BENCH_campaign.json\n");
            return 1;
        }
    }
    std::printf("Wrote BENCH_campaign.json\n");
    return 0;
}
