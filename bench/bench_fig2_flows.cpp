// Reproduces the structure of Figures 1 and 2: the workcell inventory and
// the color-picker application's four WEI workflows, plus the per-workflow
// timing files (§2.3) produced by an actual run.
#include <cstdio>
#include <filesystem>

#include "core/presets.hpp"
#include "core/workflows.hpp"
#include "data/artifacts.hpp"
#include "support/log.hpp"
#include "wei/workcell.hpp"

using namespace sdl;

namespace {

// The RPL workcell (§2.2): ten modules, of which the color picker uses
// five. Mirrors configs/rpl_workcell.yaml.
constexpr const char* kRplWorkcellYaml = R"(name: rpl_workcell
modules:
  - name: sciclops
    model: Hudson SciClops
    interface: simulation
    config: {towers: 4, plates_per_tower: 20}
  - name: pf400
    model: Precise Automation PF400
    interface: simulation
  - name: ot2
    model: Opentrons OT-2
    interface: simulation
    config: {reservoirs: 4}
  - name: barty
    model: RPL Barty
    interface: simulation
    config: {pumps: 4}
  - name: camera
    model: Logitech webcam + ring light
    interface: simulation
  - name: ot2_pcr_alpha       # PCR workflows (unused by the color picker)
    model: Opentrons OT-2
    interface: simulation
  - name: biometra            # thermocycler
    model: Biometra TRobot
    interface: simulation
  - name: sealer
    model: A4S Sealer
    interface: simulation
  - name: peeler
    model: Brooks XPeel
    interface: simulation
  - name: hidex               # plate reader for cell-growth analysis
    model: Hidex Sense
    interface: simulation
locations:
  sciclops.exchange: [210.0, 30.0, 0.0]
  camera.nest: [310.5, 20.0, 0.0]
  ot2.deck: [405.0, 25.0, 0.0]
  trash: [120.0, -40.0, 0.0]
)";

}  // namespace

int main() {
    support::set_log_level(support::LogLevel::Error);
    std::printf("================================================================\n");
    std::printf("Figures 1 & 2 — workcell map and application flow structure\n");
    std::printf("================================================================\n");

    // Figure 1: the workcell.
    const wei::WorkcellConfig workcell = wei::WorkcellConfig::from_yaml(kRplWorkcellYaml);
    std::printf("\n[Figure 1] %s", workcell.describe().c_str());
    std::printf("The color picker targets five of the %zu modules: sciclops, pf400, "
                "ot2, barty, camera.\n",
                workcell.modules().size());

    // Figure 2: the four WEI flows.
    std::printf("\n[Figure 2] Color-picker workflows:\n");
    for (const wei::Workflow* wf : core::all_workflows()) {
        std::printf("\n%s:\n", wf->name().c_str());
        for (const auto& step : wf->steps()) {
            std::printf("  %-18s -> %s.%s %s\n", step.name.c_str(), step.module.c_str(),
                        step.action.c_str(),
                        step.args.size() > 0 ? step.args.dump().c_str() : "");
        }
    }
    std::printf("\nGraphviz DOT of cp_wf_mixcolor:\n%s", core::wf_mixcolor().to_dot().c_str());

    // §2.3: run a small experiment and emit the per-workflow timing files.
    core::ColorPickerApp app(core::preset_quickstart(3));
    (void)app.run();
    const std::string dir = "fig2_workflow_artifacts";
    std::filesystem::remove_all(dir);
    const std::size_t files = data::write_run_artifacts(app.event_log(), dir);
    std::printf("\nPer-workflow timing files (one JSON per workflow run): %zu files "
                "written to %s/\n",
                files, dir.c_str());
    std::printf("Code progression: cp_wf_newplate -> [cp_wf_mixcolor -> compute -> "
                "publish -> solver]* -> cp_wf_trashplate\n");
    return 0;
}
