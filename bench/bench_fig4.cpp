// Reproduces Figure 4: seven experiments, each mixing and evaluating
// N=128 samples toward target rgb(120,120,120) with batch sizes
// B = 1, 2, 4, 8, 16, 32, 64. For every experiment the harness prints the
// best-score-so-far series against elapsed experiment time (the figure's
// dots), marks the paper's annotated sample milestones, and summarizes
// the expected qualitative result: smaller batches take longer but match
// the color better.
//
// The seven experiments are independent, so they run concurrently on the
// process-wide thread pool — seven virtual workcells in flight at once.
#include <cstdio>

#include "core/presets.hpp"
#include "support/csv.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;

namespace {

constexpr int kBatchSizes[] = {1, 2, 4, 8, 16, 32, 64};
constexpr int kMilestones[] = {1, 2, 4, 8, 16, 32, 64, 96, 128};

bool is_milestone(int index) {
    for (const int m : kMilestones) {
        if (index == m) return true;
    }
    return false;
}

}  // namespace

int main() {
    support::set_log_level(support::LogLevel::Error);
    std::printf("================================================================\n");
    std::printf("Figure 4 — batch-size sweep, N=128, target rgb(120,120,120)\n");
    std::printf("================================================================\n");

    // Run all seven experiments in parallel (one simulated workcell each).
    // Per-experiment seeds: as in the lab, every experiment starts from
    // its own random initial guesses ("Results depend on the original
    // random guesses").
    auto outcomes = support::global_pool().parallel_map(
        std::size(kBatchSizes), [](std::size_t i) {
            core::ColorPickerApp app(
                core::preset_fig4(kBatchSizes[i], /*seed=*/100 + static_cast<std::uint64_t>(i)));
            return app.run();
        });

    // Per-experiment milestone series (the figure's annotated dots).
    support::CsvWriter csv({"batch_size", "sample", "elapsed_min", "score", "best_so_far"});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& outcome = outcomes[i];
        std::printf("\nB=%d (best %.2f after %.0f min):\n", kBatchSizes[i],
                    outcome.best_score, outcome.samples.back().elapsed_minutes);
        std::printf("  sample:   ");
        for (const auto& s : outcome.samples) {
            if (is_milestone(s.index)) std::printf("%8d", s.index);
        }
        std::printf("\n  elapsed:  ");
        for (const auto& s : outcome.samples) {
            if (is_milestone(s.index)) std::printf("%7.0fm", s.elapsed_minutes);
        }
        std::printf("\n  best:     ");
        for (const auto& s : outcome.samples) {
            if (is_milestone(s.index)) std::printf("%8.2f", s.best_so_far);
        }
        std::printf("\n");
        for (const auto& s : outcome.samples) {
            csv.add_row(std::vector<double>{static_cast<double>(kBatchSizes[i]),
                                            static_cast<double>(s.index),
                                            s.elapsed_minutes, s.score, s.best_so_far});
        }
    }
    csv.save("fig4_series.csv");

    // Summary: the paper's qualitative claim.
    std::printf("\nSummary (paper: smaller batches run longer but match better):\n");
    support::TextTable table({"B", "Iterations", "Total time", "Best @64 samples",
                              "Final best", "Commands"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const auto& outcome = outcomes[i];
        double best_at_64 = 0.0;
        for (const auto& s : outcome.samples) {
            if (s.index == 64) best_at_64 = s.best_so_far;
        }
        table.add_row({std::to_string(kBatchSizes[i]), std::to_string(outcome.batches_run),
                       outcome.metrics.total_time.pretty(),
                       support::fmt_double(best_at_64, 2),
                       support::fmt_double(outcome.best_score, 2),
                       std::to_string(outcome.metrics.commands_completed)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nFull series written to fig4_series.csv\n");
    return 0;
}
