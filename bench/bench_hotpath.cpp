// Hot-path microbenchmark + perf trajectory recorder.
//
// Times the two costs that bound campaign scale — GP candidate scoring
// (solver/bayes.hpp) and the per-frame vision pipeline (imaging/) — plus
// closed-loop throughput per workcell scenario, and writes
// BENCH_hotpath.json. CI compares that file against the committed
// baseline (bench/baselines/BENCH_hotpath.baseline.json) with
// tools/bench_compare.py and fails the build on large regressions.
//
//   bench_hotpath [--quick]   # --quick: fewer reps for smoke use
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/colorpicker.hpp"
#include "core/presets.hpp"
#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/well_reader.hpp"
#include "linalg/backend.hpp"
#include "prepr_reference.hpp"
#include "solver/bayes.hpp"
#include "support/atomic_io.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/random.hpp"
#include "support/table.hpp"

using namespace sdl;
namespace json = support::json;

namespace {

double now_seconds() {
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

/// Best-of-`reps` seconds per call — the standard microbenchmark
/// estimator: the minimum is the least contaminated by scheduler noise,
/// which matters on small shared runners.
template <typename F>
double time_per_call(int reps, F&& fn) {
    double best = 1e300;
    for (int i = 0; i < reps; ++i) {
        const double t0 = now_seconds();
        fn();
        const double dt = now_seconds() - t0;
        if (dt < best) best = dt;
    }
    return best;
}

// ------------------------------------------------------------ GP scoring

struct GpRow {
    std::size_t n = 0;
    std::size_t candidates = 0;
    double prepr_ns = 0.0;       ///< per candidate, frozen PR-4 predict loop
    double sequential_ns = 0.0;  ///< per candidate, current predict() loop
    double batch_ns = 0.0;       ///< per candidate, score_candidate_pool
    double speedup = 0.0;        ///< prepr -> batch
    double speedup_vs_sequential = 0.0;
};

GpRow bench_gp(std::size_t n, std::size_t candidates, int reps) {
    support::Rng rng(0xFEED + n * 131 + candidates);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
        ys.push_back(std::sin(3.0 * x[0]) + x[1] * x[1] + 0.05 * rng.normal(0, 1));
        xs.push_back(std::move(x));
    }
    solver::GaussianProcess gp;
    gp.fit(xs, ys, /*optimize=*/false);
    // Same data, same (default) hyperparameters, PR-4 math.
    prepr::Gp reference;
    reference.fit(xs, ys, gp.hyperparams().lengthscale, gp.hyperparams().noise_var);

    linalg::Matrix pool(candidates, 4);
    for (std::size_t c = 0; c < candidates; ++c) {
        for (std::size_t k = 0; k < 4; ++k) pool(c, k) = rng.uniform();
    }

    // Keep the optimizer honest.
    double sink = 0.0;

    const double prepr_s = time_per_call(reps, [&] {
        for (std::size_t c = 0; c < candidates; ++c) {
            const auto pred = reference.predict(pool.row(c));
            sink += pred.mean + pred.variance;
        }
    });
    const double seq_s = time_per_call(reps, [&] {
        for (std::size_t c = 0; c < candidates; ++c) {
            const auto pred = gp.predict(pool.row(c));
            sink += pred.mean + pred.variance;
        }
    });
    const double batch_s = time_per_call(reps, [&] {
        const auto preds = solver::score_candidate_pool(gp, pool);
        sink += preds.front().mean + preds.back().variance;
    });
    if (sink == 42.0) std::printf("|");  // never true; defeats DCE

    GpRow row;
    row.n = n;
    row.candidates = candidates;
    row.prepr_ns = prepr_s * 1e9 / static_cast<double>(candidates);
    row.sequential_ns = seq_s * 1e9 / static_cast<double>(candidates);
    row.batch_ns = batch_s * 1e9 / static_cast<double>(candidates);
    row.speedup = row.batch_ns > 0.0 ? row.prepr_ns / row.batch_ns : 0.0;
    row.speedup_vs_sequential =
        row.batch_ns > 0.0 ? row.sequential_ns / row.batch_ns : 0.0;
    return row;
}

// ---------------------------------------------------- linalg backends

/// Per-backend cost of the two GP phases a campaign pays for — the
/// O(n^3) fit factorization and the per-candidate batch scoring — on
/// identical data. Keys land outside the `--only speedup` CI hard gate
/// (they are `_ns` absolutes, hardware-relative), so a backend row is
/// trajectory data, not a gate.
struct BackendRow {
    std::string backend;
    double fit_ns = 0.0;                ///< one fit() at fixed hyperparams
    double batch_ns_per_predict = 0.0;  ///< score_candidate_pool, per candidate
};

BackendRow bench_backend(const std::string& backend_name, std::size_t n,
                         std::size_t candidates, int reps) {
    support::Rng rng(0xBACD + n * 17);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()};
        ys.push_back(std::sin(3.0 * x[0]) + x[1] * x[1] + 0.05 * rng.normal(0, 1));
        xs.push_back(std::move(x));
    }
    linalg::Matrix pool(candidates, 4);
    for (std::size_t c = 0; c < candidates; ++c) {
        for (std::size_t k = 0; k < 4; ++k) pool(c, k) = rng.uniform();
    }

    solver::GaussianProcess gp;
    gp.set_backend(linalg::backend_by_name(backend_name));
    double sink = 0.0;
    const double fit_s = time_per_call(reps, [&] {
        gp.fit(xs, ys, /*optimize=*/false);
        sink += gp.hyperparams().lengthscale;
    });
    const double batch_s = time_per_call(reps, [&] {
        const auto preds = solver::score_candidate_pool(gp, pool);
        sink += preds.front().mean + preds.back().variance;
    });
    if (sink == 42.0) std::printf("|");  // never true; defeats DCE

    BackendRow row;
    row.backend = backend_name;
    row.fit_ns = fit_s * 1e9;
    row.batch_ns_per_predict = batch_s * 1e9 / static_cast<double>(candidates);
    return row;
}

// ---------------------------------------------------------------- vision

struct VisionStats {
    double render_prepr_ns = 0.0;  ///< frozen PR-4 render_plate
    double render_full_ns = 0.0;
    double render_cached_ns = 0.0;
    double read_prepr_ns = 0.0;  ///< frozen PR-4 read_plate
    double read_full_ns = 0.0;
    double read_scratch_ns = 0.0;
    double read_session_ns = 0.0;
    double to_gray_ns = 0.0;
    double blur_ns = 0.0;
    double adaptive_ns = 0.0;
    double detect_markers_ns = 0.0;
    double hough_roi_ns = 0.0;
    double render_speedup = 0.0;
    double read_speedup = 0.0;
};

VisionStats bench_vision_paths(int reps) {
    imaging::PlateScene scene;
    scene.noise_sigma = 2.0;
    scene.angle_rad = 0.03;
    support::Rng color_rng(4242);
    std::vector<color::Rgb8> colors;
    for (int i = 0; i < scene.geometry.well_count(); ++i) {
        colors.push_back({static_cast<std::uint8_t>(color_rng.uniform_int(256)),
                          static_cast<std::uint8_t>(color_rng.uniform_int(256)),
                          static_cast<std::uint8_t>(color_rng.uniform_int(256))});
    }

    VisionStats stats;
    support::Rng rng_prepr(7);
    stats.render_prepr_ns =
        time_per_call(reps,
                      [&] { (void)prepr::render_plate(scene, colors, rng_prepr); }) *
        1e9;
    support::Rng rng_a(7);
    stats.render_full_ns =
        time_per_call(reps, [&] { (void)imaging::render_plate(scene, colors, rng_a); }) *
        1e9;
    support::Rng rng_b(7);
    imaging::PlateRenderer renderer;
    (void)renderer.render(scene, colors, rng_b);  // warm the base cache
    stats.render_cached_ns =
        time_per_call(reps, [&] { (void)renderer.render(scene, colors, rng_b); }) * 1e9;

    support::Rng frame_rng(9);
    const imaging::Image frame = imaging::render_plate(scene, colors, frame_rng);
    imaging::WellReadParams params;
    params.geometry = scene.geometry;

    stats.read_prepr_ns =
        time_per_call(reps, [&] { (void)prepr::read_plate(frame, params); }) * 1e9;
    stats.read_full_ns =
        time_per_call(reps, [&] { (void)imaging::read_plate(frame, params); }) * 1e9;
    imaging::FrameScratch scratch;
    (void)imaging::read_plate(frame, params, scratch);  // warm the pool
    stats.read_scratch_ns =
        time_per_call(reps, [&] { (void)imaging::read_plate(frame, params, scratch); }) *
        1e9;
    imaging::PlateReader reader(params);
    (void)reader.read(frame);  // cold full scan seeds the marker hint
    stats.read_session_ns = time_per_call(reps, [&] { (void)reader.read(frame); }) * 1e9;

    // Stage breakdown (full-frame costs the old path paid every frame).
    imaging::GrayImage gray;
    imaging::to_gray(frame, gray);
    stats.to_gray_ns = time_per_call(reps, [&] { imaging::to_gray(frame, gray); }) * 1e9;
    imaging::BlurScratch blur_scratch;
    imaging::GrayImage smooth;
    stats.blur_ns =
        time_per_call(reps, [&] { gaussian_blur(gray, 0.8, smooth, blur_scratch); }) * 1e9;
    imaging::BinaryImage mask;
    std::vector<double> integral;
    stats.adaptive_ns =
        time_per_call(reps, [&] { adaptive_threshold(smooth, 31, 0.08F, mask, integral); }) *
        1e9;
    imaging::MarkerScratch marker_scratch;
    std::vector<imaging::MarkerDetection> detections;
    stats.detect_markers_ns = time_per_call(reps, [&] {
                                  detect_markers(frame, imaging::MarkerDictionary::standard(),
                                                 {}, marker_scratch, detections);
                              }) *
                              1e9;
    // Hough over the plate ROI, as read_plate drives it.
    const auto readout = reader.read(frame);
    imaging::HoughParams hough;
    const double expected_r = scene.geometry.well_radius * readout.marker.side;
    hough.r_min = std::max(2.0, expected_r * 0.55);
    hough.r_max = expected_r * 1.45;
    hough.min_center_dist = 0.6 * scene.geometry.spacing * readout.marker.side;
    imaging::HoughScratch hough_scratch;
    stats.hough_roi_ns = time_per_call(reps, [&] {
                             imaging::GrayImage roi_gray;
                             imaging::to_gray_roi(frame, {250, 100, 640, 420}, roi_gray);
                             (void)imaging::hough_circles(roi_gray, hough, hough_scratch);
                         }) *
                         1e9;

    stats.render_speedup = stats.render_cached_ns > 0.0
                               ? stats.render_prepr_ns / stats.render_cached_ns
                               : 0.0;
    stats.read_speedup =
        stats.read_session_ns > 0.0 ? stats.read_prepr_ns / stats.read_session_ns : 0.0;
    return stats;
}

// ------------------------------------------------------------- full loop

struct LoopRow {
    std::string scenario;
    double samples_per_sec = 0.0;
    double batches_per_sec = 0.0;
    double wall_seconds = 0.0;
};

LoopRow bench_loop(const std::string& scenario_name, int total_samples, int batch) {
    core::ColorPickerConfig config = core::preset_quickstart(21);
    config.total_samples = total_samples;
    config.batch_size = batch;
    config = core::apply_workcell_spec(config, core::scenario_by_name(scenario_name));
    config.experiment_id = "hotpath_" + scenario_name;
    const double t0 = now_seconds();
    core::ColorPickerApp app(config);
    const auto outcome = app.run();
    const double wall = now_seconds() - t0;
    LoopRow row;
    row.scenario = scenario_name;
    row.wall_seconds = wall;
    row.samples_per_sec = wall > 0.0 ? static_cast<double>(outcome.samples.size()) / wall : 0.0;
    row.batches_per_sec = wall > 0.0 ? static_cast<double>(outcome.batches_run) / wall : 0.0;
    return row;
}

}  // namespace

int main(int argc, char** argv) {
    support::set_log_level(support::LogLevel::Error);
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    const int gp_reps = quick ? 3 : 20;
    const int vision_reps = quick ? 2 : 10;
    const int loop_samples = quick ? 8 : 24;

    std::printf("================================================================\n");
    std::printf("Hot-path bench — GP candidate scoring, vision pipeline, loop\n");
    std::printf("================================================================\n");

    // GP scoring across training-set and pool sizes.
    std::vector<GpRow> gp_rows;
    std::printf("\n[GP posterior scoring] PR-4 predict loop vs batched scoring:\n");
    {
        support::TextTable table({"n (obs)", "C (candidates)", "PR4 ns/pt", "seq ns/pt",
                                  "batch ns/pt", "speedup vs PR4"});
        table.set_alignment({support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right});
        for (const std::size_t n : {16u, 64u, 256u}) {
            for (const std::size_t c : {64u, 256u, 1024u}) {
                const GpRow row = bench_gp(n, c, gp_reps);
                gp_rows.push_back(row);
                table.add_row({std::to_string(row.n), std::to_string(row.candidates),
                               support::fmt_double(row.prepr_ns, 0),
                               support::fmt_double(row.sequential_ns, 0),
                               support::fmt_double(row.batch_ns, 0),
                               support::fmt_double(row.speedup, 2) + "x"});
            }
        }
        std::printf("%s", table.str().c_str());
    }

    // Linalg backends on the same GP workload (paper-scale shape).
    std::vector<BackendRow> backend_rows;
    std::printf("\n[Linalg backends] GP fit + batch scoring (n=64, C=256):\n");
    {
        support::TextTable table({"Backend", "fit ms", "batch ns/pt"});
        table.set_alignment({support::TextTable::Align::Left,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right});
        for (const std::string& name : linalg::backend_names()) {
            const BackendRow row = bench_backend(name, 64, 256, gp_reps);
            backend_rows.push_back(row);
            table.add_row({row.backend, support::fmt_double(row.fit_ns / 1e6, 3),
                           support::fmt_double(row.batch_ns_per_predict, 0)});
        }
        std::printf("%s", table.str().c_str());
    }

    // Vision pipeline paths.
    std::printf("\n[Vision] per-frame costs (800x600 scene, 96 wells):\n");
    const VisionStats vision = bench_vision_paths(vision_reps);
    std::printf("  render: PR4 %8.2f ms   full %8.2f ms   cached base %8.2f ms   "
                "(%.2fx PR4->cached)\n",
                vision.render_prepr_ns / 1e6, vision.render_full_ns / 1e6,
                vision.render_cached_ns / 1e6, vision.render_speedup);
    std::printf("  read:   PR4 %8.2f ms   full %8.2f ms   scratch %8.2f ms   "
                "session(ROI) %8.2f ms  (%.2fx PR4->session)\n",
                vision.read_prepr_ns / 1e6, vision.read_full_ns / 1e6,
                vision.read_scratch_ns / 1e6, vision.read_session_ns / 1e6,
                vision.read_speedup);
    std::printf("  stages: to_gray %.2f ms  blur %.2f ms  adaptive %.2f ms  "
                "detect_markers %.2f ms  hough(ROI) %.2f ms\n",
                vision.to_gray_ns / 1e6, vision.blur_ns / 1e6, vision.adaptive_ns / 1e6,
                vision.detect_markers_ns / 1e6, vision.hough_roi_ns / 1e6);

    // Closed loop per scenario.
    std::printf("\n[Closed loop] samples/sec by workcell scenario (N=%d, B=4):\n",
                loop_samples);
    std::vector<LoopRow> loop_rows;
    {
        support::TextTable table({"Scenario", "Wall s", "Samples/s", "Batches/s"});
        table.set_alignment({support::TextTable::Align::Left,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right});
        for (const std::string& name : core::scenario_names()) {
            const LoopRow row = bench_loop(name, loop_samples, 4);
            loop_rows.push_back(row);
            table.add_row({row.scenario, support::fmt_double(row.wall_seconds, 2),
                           support::fmt_double(row.samples_per_sec, 1),
                           support::fmt_double(row.batches_per_sec, 1)});
        }
        std::printf("%s", table.str().c_str());
    }

    // The perf trajectory file.
    json::Value bench = json::Value::object();
    bench.set("schema", "sdlbench.bench_hotpath.v1");
    bench.set("quick", quick);
    json::Value gp = json::Value::array();
    for (const GpRow& row : gp_rows) {
        json::Value entry = json::Value::object();
        entry.set("n", static_cast<std::int64_t>(row.n));
        entry.set("candidates", static_cast<std::int64_t>(row.candidates));
        entry.set("prepr_ns_per_predict", row.prepr_ns);
        entry.set("sequential_ns_per_predict", row.sequential_ns);
        entry.set("batch_ns_per_predict", row.batch_ns);
        entry.set("speedup_vs_prepr", row.speedup);
        entry.set("speedup_vs_sequential", row.speedup_vs_sequential);
        gp.push_back(std::move(entry));
    }
    bench.set("gp", std::move(gp));
    json::Value backends = json::Value::object();
    for (const BackendRow& row : backend_rows) {
        json::Value entry = json::Value::object();
        entry.set("fit_ns", row.fit_ns);
        entry.set("batch_ns_per_predict", row.batch_ns_per_predict);
        backends.set(row.backend, std::move(entry));
    }
    bench.set("backends", std::move(backends));
    json::Value vis = json::Value::object();
    vis.set("render_prepr_ns", vision.render_prepr_ns);
    vis.set("render_full_ns", vision.render_full_ns);
    vis.set("render_cached_ns", vision.render_cached_ns);
    vis.set("render_speedup_vs_prepr", vision.render_speedup);
    vis.set("read_prepr_ns", vision.read_prepr_ns);
    vis.set("read_full_ns", vision.read_full_ns);
    vis.set("read_scratch_ns", vision.read_scratch_ns);
    vis.set("read_session_ns", vision.read_session_ns);
    vis.set("read_speedup_vs_prepr", vision.read_speedup);
    json::Value stages = json::Value::object();
    stages.set("to_gray_ns", vision.to_gray_ns);
    stages.set("blur_ns", vision.blur_ns);
    stages.set("adaptive_threshold_ns", vision.adaptive_ns);
    stages.set("detect_markers_ns", vision.detect_markers_ns);
    stages.set("hough_roi_ns", vision.hough_roi_ns);
    vis.set("stages", std::move(stages));
    bench.set("vision", std::move(vis));
    json::Value loop = json::Value::array();
    for (const LoopRow& row : loop_rows) {
        json::Value entry = json::Value::object();
        entry.set("scenario", row.scenario);
        entry.set("samples_per_sec", row.samples_per_sec);
        entry.set("batches_per_sec", row.batches_per_sec);
        loop.push_back(std::move(entry));
    }
    bench.set("loop", std::move(loop));
    try {
        support::atomic_write("BENCH_hotpath.json", bench.pretty() + "\n");
    } catch (const support::Error& error) {
        std::fprintf(stderr, "error: failed to write BENCH_hotpath.json: %s\n",
                     error.what());
        return 1;
    }
    std::printf("\nWrote BENCH_hotpath.json\n");
    return 0;
}
