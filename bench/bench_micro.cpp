// Micro-benchmarks (google-benchmark) for the performance-critical
// kernels under the simulator: DES event dispatch, config parsing, the
// vision pipeline stages, color math, and the solvers.
#include <benchmark/benchmark.h>

#include "color/lab.hpp"
#include "color/mixing.hpp"
#include "des/simulation.hpp"
#include "imaging/fiducial.hpp"
#include "imaging/filters.hpp"
#include "imaging/hough.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/well_reader.hpp"
#include "solver/bayes.hpp"
#include "solver/genetic.hpp"
#include "support/json.hpp"
#include "support/random.hpp"
#include "support/yaml.hpp"

using namespace sdl;

// ------------------------------------------------------------------- DES

static void BM_DesEventDispatch(benchmark::State& state) {
    for (auto _ : state) {
        des::Simulation sim;
        const auto n = static_cast<std::size_t>(state.range(0));
        for (std::size_t i = 0; i < n; ++i) {
            sim.schedule_in(support::Duration::seconds(static_cast<double>(i % 97)),
                            [] { benchmark::DoNotOptimize(0); });
        }
        sim.run_all();
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DesEventDispatch)->Arg(1000)->Arg(10000);

// --------------------------------------------------------------- parsing

static void BM_JsonParse(benchmark::State& state) {
    // A representative run record document.
    support::json::Value doc = support::json::Value::object();
    doc.set("type", "run");
    doc.set("experiment_id", "bench");
    doc.set("run_number", 12);
    support::json::Value samples = support::json::Value::array();
    for (int i = 0; i < 15; ++i) {
        support::json::Value s = support::json::Value::object();
        s.set("sample_index", i);
        s.set("score", 12.5 + i);
        s.set("ratios", support::json::Array{0.2, 0.3, 0.1, 0.4});
        samples.push_back(std::move(s));
    }
    doc.set("samples", std::move(samples));
    const std::string text = doc.dump();
    for (auto _ : state) {
        benchmark::DoNotOptimize(support::json::parse(text));
    }
    state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParse);

static void BM_YamlParseWorkflow(benchmark::State& state) {
    const char* text = R"(name: cp_wf_mixcolor
steps:
  - name: plate to ot2
    module: pf400
    action: transfer
    args: {source: camera.nest, target: ot2.deck}
  - name: mix colors
    module: ot2
    action: run_protocol
    args: {protocol: mix_colors}
  - name: plate to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: photograph
    module: camera
    action: take_picture
)";
    for (auto _ : state) {
        benchmark::DoNotOptimize(support::yaml::parse(text));
    }
}
BENCHMARK(BM_YamlParseWorkflow);

// ----------------------------------------------------------------- color

static void BM_BeerLambertMix(benchmark::State& state) {
    const color::BeerLambertMixer mixer(color::DyeLibrary::cmyk());
    const std::vector<double> ratios{0.26, 0.22, 0.29, 0.23};
    for (auto _ : state) {
        benchmark::DoNotOptimize(mixer.mix_ratios(ratios));
    }
}
BENCHMARK(BM_BeerLambertMix);

static void BM_DeltaE2000(benchmark::State& state) {
    const color::Lab a = color::to_lab({120, 120, 120});
    const color::Lab b = color::to_lab({131, 112, 125});
    for (auto _ : state) {
        benchmark::DoNotOptimize(color::delta_e2000(a, b));
    }
}
BENCHMARK(BM_DeltaE2000);

// ---------------------------------------------------------------- vision

namespace {
imaging::Image bench_frame() {
    imaging::PlateScene scene;
    std::vector<color::Rgb8> colors(96, {120, 120, 120});
    support::Rng rng(1);
    return imaging::render_plate(scene, colors, rng);
}
}  // namespace

static void BM_RenderPlate(benchmark::State& state) {
    imaging::PlateScene scene;
    std::vector<color::Rgb8> colors(96, {120, 120, 120});
    support::Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(imaging::render_plate(scene, colors, rng));
    }
}
BENCHMARK(BM_RenderPlate)->Unit(benchmark::kMillisecond);

static void BM_GaussianBlur(benchmark::State& state) {
    const imaging::GrayImage gray = imaging::to_gray(bench_frame());
    for (auto _ : state) {
        benchmark::DoNotOptimize(imaging::gaussian_blur(gray, 1.0));
    }
}
BENCHMARK(BM_GaussianBlur)->Unit(benchmark::kMillisecond);

static void BM_DetectMarkers(benchmark::State& state) {
    const imaging::Image frame = bench_frame();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            imaging::detect_markers(frame, imaging::MarkerDictionary::standard()));
    }
}
BENCHMARK(BM_DetectMarkers)->Unit(benchmark::kMillisecond);

static void BM_ReadPlateFull(benchmark::State& state) {
    const imaging::Image frame = bench_frame();
    imaging::PlateScene scene;
    imaging::WellReadParams params;
    params.geometry = scene.geometry;
    for (auto _ : state) {
        benchmark::DoNotOptimize(imaging::read_plate(frame, params));
    }
}
BENCHMARK(BM_ReadPlateFull)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- solvers

static void BM_GeneticGeneration(benchmark::State& state) {
    solver::GeneticSolver ga;
    const auto initial = ga.ask(32);
    std::vector<solver::Observation> observations;
    for (std::size_t i = 0; i < initial.size(); ++i) {
        observations.push_back({initial[i], {100, 100, 100}, 30.0 - static_cast<double>(i)});
    }
    ga.tell(observations);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ga.ask(32));
    }
}
BENCHMARK(BM_GeneticGeneration);

static void BM_GaussianProcessFit(benchmark::State& state) {
    support::Rng rng(5);
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
        xs.push_back({rng.uniform(), rng.uniform(), rng.uniform(), rng.uniform()});
        ys.push_back(rng.uniform(5.0, 40.0));
    }
    for (auto _ : state) {
        solver::GaussianProcess gp;
        gp.fit(xs, ys, /*optimize=*/false);
        benchmark::DoNotOptimize(gp.predict(xs[0]));
    }
}
BENCHMARK(BM_GaussianProcessFit)->Arg(64)->Arg(128)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
