// Ablation A5 — the paper's §4 future-work experiment:
//
//   "An interesting future experiment would involve integrating
//    additional OT2s in our workflow, so that multiple plates of colors
//    could be mixed at once. This would lead to an increase in CCWH, but
//    potentially a lower TWH for the same experimental results."
//
// This harness models that workcell as a discrete-event pipeline: K OT2
// decks, one shared pf400 arm, one camera, and K plates in flight. Each
// plate loops through transfer -> mix -> transfer -> photograph with the
// Table-1-calibrated durations; contention for the shared arm and camera
// emerges naturally from the DES resources. Reported per K: makespan
// (the TWH for an uninterrupted run), CCWH, time per color, and
// utilization of the bottleneck devices.
#include <cstdio>
#include <functional>
#include <memory>

#include "des/resource.hpp"
#include "des/simulation.hpp"
#include "devices/timing.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

using namespace sdl;
using support::Duration;

namespace {

struct PipelineResult {
    int n_ot2 = 1;
    double makespan_minutes = 0.0;
    std::uint64_t commands = 0;
    double arm_busy_minutes = 0.0;
    double ot2_busy_minutes = 0.0;
};

PipelineResult simulate(int n_ot2, int total_samples, int batch_size) {
    des::Simulation sim;
    des::Resource arm(sim, 1, "pf400");
    des::Resource decks(sim, static_cast<std::size_t>(n_ot2), "ot2");
    des::Resource camera(sim, 1, "camera");

    const devices::Pf400Timing pf400;
    const devices::Ot2Timing ot2;
    const devices::CameraTiming cam;
    const devices::SciclopsTiming sciclops;
    const devices::BartyTiming barty;

    auto result = std::make_shared<PipelineResult>();
    result->n_ot2 = n_ot2;

    // Split the sample budget across the plates-in-flight.
    const int iterations_total = total_samples / batch_size;
    const int per_plate = iterations_total / n_ot2;
    const int extra = iterations_total % n_ot2;

    const Duration mix_time = ot2.protocol_overhead + ot2.per_well * batch_size;

    // Per-plate process: a self-continuing chain of resource-acquire /
    // hold-for-duration / release steps.
    struct Plate {
        int remaining;
    };
    auto spawn_plate = [&](int iterations) {
        auto plate = std::make_shared<Plate>(Plate{iterations});
        auto loop = std::make_shared<std::function<void()>>();
        *loop = [&, plate, loop] {
            if (plate->remaining-- <= 0) return;
            arm.acquire([&, plate, loop] {
                sim.schedule_in(pf400.transfer, [&, plate, loop] {
                    ++result->commands;
                    result->arm_busy_minutes += pf400.transfer.to_minutes();
                    arm.release();
                    decks.acquire([&, plate, loop] {
                        sim.schedule_in(mix_time, [&, plate, loop] {
                            ++result->commands;
                            result->ot2_busy_minutes += mix_time.to_minutes();
                            decks.release();
                            arm.acquire([&, plate, loop] {
                                sim.schedule_in(pf400.transfer, [&, plate, loop] {
                                    ++result->commands;
                                    result->arm_busy_minutes += pf400.transfer.to_minutes();
                                    arm.release();
                                    camera.acquire([&, plate, loop] {
                                        sim.schedule_in(cam.capture, [&, plate, loop] {
                                            camera.release();
                                            (*loop)();  // next iteration
                                        });
                                    });
                                });
                            });
                        });
                    });
                });
            });
        };
        // Plate setup: sciclops.get_plate + pf400 staging + barty fill.
        sim.schedule_in(sciclops.get_plate + pf400.transfer + barty.fill, [&, loop] {
            result->commands += 3;
            (*loop)();
        });
    };

    for (int p = 0; p < n_ot2; ++p) {
        spawn_plate(per_plate + (p < extra ? 1 : 0));
    }
    sim.run_all();
    result->makespan_minutes = sim.now().to_minutes();
    return *result;
}

}  // namespace

int main() {
    std::printf("================================================================\n");
    std::printf("Ablation A5 — multiple OT2s (the paper's §4 future experiment)\n");
    std::printf("  N=128 samples, B=1, shared pf400 arm and camera, K plates in\n");
    std::printf("  flight on K OT2 decks; Table-1-calibrated durations\n");
    std::printf("================================================================\n\n");

    support::TextTable table({"OT2s", "TWH (makespan)", "CCWH", "Time per color",
                              "pf400 utilization", "ot2 utilization (per deck)"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (const int k : {1, 2, 3, 4}) {
        const PipelineResult r = simulate(k, 128, 1);
        const double per_color_min = r.makespan_minutes / 128.0;
        table.add_row(
            {std::to_string(k), Duration::minutes(r.makespan_minutes).pretty(),
             std::to_string(r.commands),
             Duration::minutes(per_color_min).pretty(),
             support::fmt_double(100.0 * r.arm_busy_minutes / r.makespan_minutes, 1) + " %",
             support::fmt_double(100.0 * r.ot2_busy_minutes / (r.makespan_minutes * k), 1) +
                 " %"});
    }
    std::printf("%s", table.str().c_str());

    std::printf("\nExpected shape (paper §4): CCWH grows (extra plate setups) while\n"
                "TWH falls for the same 128 samples — until the shared pf400 arm\n"
                "saturates and adding decks stops helping.\n");
    return 0;
}
