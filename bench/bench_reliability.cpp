// Ablation A2 — reliability and the CCWH metric (§4).
//
// "In our experience, most failures occur during reception and processing
// of commands, making CCWH a good measure of the resiliency of the SDL's
// communications." This harness injects command rejections at increasing
// rates and compares two control planes: no retries (a rejection aborts
// the experiment) versus the engine's retry-with-backoff policy. Columns
// report whether the experiment finished, the CCWH achieved, how many
// human interventions were needed, and the time cost of the resilience.
#include <cstdio>
#include <vector>

#include "core/presets.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "wei/engine.hpp"

using namespace sdl;

namespace {

struct Trial {
    double rejection_prob;
    bool retries;
    bool completed = false;
    std::uint64_t commands = 0;
    int interventions = 0;
    int rejections_logged = 0;
    double total_minutes = 0.0;
};

Trial run_trial(double prob, bool retries) {
    Trial trial;
    trial.rejection_prob = prob;
    trial.retries = retries;

    core::ColorPickerConfig config = core::preset_quickstart(11);
    config.total_samples = 32;
    config.batch_size = 8;
    config.faults.command_rejection_prob = prob;
    if (!retries) {
        config.retry.max_attempts = 1;
        config.retry.human_rescue = false;
    }
    config.experiment_id = "a2_p" + std::to_string(prob) + (retries ? "_retry" : "_bare");

    core::ColorPickerApp app(config);
    try {
        const core::ExperimentOutcome outcome = app.run();
        trial.completed = true;
        trial.commands = outcome.metrics.commands_completed;
        trial.interventions = outcome.metrics.interventions;
        trial.total_minutes = outcome.metrics.total_time.to_minutes();
    } catch (const wei::WorkflowError&) {
        trial.completed = false;
        trial.commands = app.event_log().successful_commands();
        trial.total_minutes =
            (app.event_log().last_end() - app.event_log().first_start()).to_minutes();
    }
    for (const auto& step : app.event_log().steps()) {
        if (step.status == wei::ActionStatus::Rejected) ++trial.rejections_logged;
    }
    return trial;
}

}  // namespace

int main() {
    support::set_log_level(support::LogLevel::Off);
    std::printf("================================================================\n");
    std::printf("Ablation A2 — command rejections vs retry policy (CCWH)\n");
    std::printf("  N=32 samples, B=8; rejection injected at command reception\n");
    std::printf("================================================================\n\n");

    const std::vector<double> probs{0.0, 0.02, 0.05, 0.10, 0.20};
    struct Job {
        double prob;
        bool retries;
    };
    std::vector<Job> jobs;
    for (const double p : probs) {
        jobs.push_back({p, false});
        jobs.push_back({p, true});
    }
    const auto trials = support::global_pool().parallel_map(
        jobs.size(), [&](std::size_t i) { return run_trial(jobs[i].prob, jobs[i].retries); });

    support::TextTable table({"P(reject)", "Policy", "Completed", "CCWH", "Rejections",
                              "Interventions", "Run time"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Left,
                         support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (const Trial& t : trials) {
        table.add_row({support::fmt_double(t.rejection_prob, 2),
                       t.retries ? "retry x5 + rescue" : "no retries",
                       t.completed ? "yes" : "ABORTED", std::to_string(t.commands),
                       std::to_string(t.rejections_logged),
                       std::to_string(t.interventions),
                       support::fmt_double(t.total_minutes, 1) + " min"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nExpected shape: without retries any nonzero rejection rate kills\n"
                "the run early (low CCWH); with the retry policy CCWH stays at the\n"
                "fault-free count and only the run time grows.\n");
    return 0;
}
