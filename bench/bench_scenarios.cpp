// Ablation A6 — the workcell as the swept variable.
//
// The paper's thesis is that color matching makes a good SDL benchmark
// because the *system under test* — the workcell — can vary while the
// application stays fixed. This driver runs the identical experiment
// (genetic solver, N=64, B=8, seed-paired) on every scenario in the
// registry and reports the SDL metrics side by side:
//
//   baseline   — the Figure-2 reference numbers
//   multi_ot2  — extra decks mounted (CCWH unchanged here: the Figure-2
//                loop drives one plate; see bench_multi_ot2 for the
//                K-plates-in-flight pipeline study)
//   degraded   — rejections + retakes: TWH stretches, interventions
//                appear when retries exhaust
//   fast_lane  — the 4x-hardware lower bound on TWH
//   minimal    — human handling: CCWH collapses, TWH balloons
//
// Implemented as a scenario-sweeping campaign (grid.workcells), i.e.
// exactly what `sdlbench_run --campaign` does for a workcells: axis —
// per_replicate seeding pairs the comparison so every scenario sees the
// same solver proposals.
#include <cstdio>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"
#include "core/scenarios.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/units.hpp"

using namespace sdl;
using support::Duration;

int main() {
    support::set_log_level(support::LogLevel::Error);

    std::printf("================================================================\n");
    std::printf("Ablation A6 — one experiment, every workcell scenario\n");
    std::printf("  genetic solver, N=64, B=8, seed-paired across scenarios\n");
    std::printf("================================================================\n\n");

    campaign::CampaignSpec spec;
    spec.name = "bench_scenarios";
    spec.base.total_samples = 64;
    spec.base.batch_size = 8;
    spec.base.solver = "genetic";
    spec.base_seed = 1;
    spec.seed_mode = campaign::SeedMode::PerReplicate;
    spec.axes.workcells = core::scenario_names();
    spec.axes.solvers = {"genetic"};

    campaign::CampaignRunnerOptions options;
    options.log_progress = false;
    const auto results = campaign::CampaignRunner(options).run(spec);

    support::TextTable table({"Scenario", "Best", "TWH (total)", "CCWH",
                              "Time per color", "Interventions", "Wall s"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (const campaign::CellResult& result : results) {
        const metrics::SdlMetrics& m = result.outcome.metrics;
        table.add_row({result.cell.workcell,
                       support::fmt_double(result.outcome.best_score, 2),
                       m.total_time.pretty(), std::to_string(m.commands_completed),
                       m.time_per_color.pretty(), std::to_string(m.interventions),
                       support::fmt_double(result.wall_seconds, 2)});
    }
    std::printf("%s", table.str().c_str());

    std::printf("\nExpected shape: identical sample budgets everywhere; fast_lane\n"
                "compresses TWH ~4x, degraded pays rejection latency + retry\n"
                "backoff on top of the baseline, minimal trades CCWH (human\n"
                "handling is not a robot command) for cheaper hardware. The\n"
                "solver never changed — any score drift is the scenario's own\n"
                "fault/glitch draws, which is the paper's point.\n");
    return 0;
}
