// Ablation A1 — solver comparison (§2.5).
//
// The paper implements a genetic and a Bayesian solver and reports that
// Bayesian optimization "does not yield a systematic improvement over the
// genetic algorithm". This harness runs both (plus random search and the
// analytic oracle) through the *full* closed loop — robots, camera,
// vision — across several seeds and reports the final best score per
// solver. The oracle row is the workcell's noise floor: no optimizer can
// beat it, because it always mixes the analytically exact recipe.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "solver/bayes.hpp"
#include "support/log.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;

int main() {
    support::set_log_level(support::LogLevel::Error);
    std::printf("================================================================\n");
    std::printf("Ablation A1 — solver comparison on the full closed loop\n");
    std::printf("  N=64 samples, B=8, target rgb(120,120,120), 4 seeds each\n");
    std::printf("================================================================\n\n");

    const std::vector<std::string> solvers{"genetic", "bayesian", "anneal",
                                           "pattern",  "random",  "oracle"};
    constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4};

    struct Job {
        std::string solver;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (const auto& solver : solvers) {
        for (const auto seed : kSeeds) jobs.push_back({solver, seed});
    }

    const auto results =
        support::global_pool().parallel_map(jobs.size(), [&](std::size_t i) {
            core::ColorPickerConfig config = core::preset_quickstart(jobs[i].seed);
            config.solver = jobs[i].solver;
            config.total_samples = 64;
            config.batch_size = 8;
            config.experiment_id =
                "a1_" + jobs[i].solver + "_s" + std::to_string(jobs[i].seed);
            core::ColorPickerApp app(config);
            return app.run();
        });

    support::TextTable table(
        {"Solver", "Final best (mean±sd)", "Min", "Max", "Best @32 (mean)"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (std::size_t s = 0; s < solvers.size(); ++s) {
        support::OnlineStats finals, at32;
        for (std::size_t k = 0; k < std::size(kSeeds); ++k) {
            const auto& outcome = results[s * std::size(kSeeds) + k];
            finals.add(outcome.best_score);
            for (const auto& sample : outcome.samples) {
                if (sample.index == 32) at32.add(sample.best_so_far);
            }
        }
        table.add_row({solvers[s],
                       support::fmt_double(finals.mean(), 2) + " ± " +
                           support::fmt_double(finals.stddev(), 2),
                       support::fmt_double(finals.min(), 2),
                       support::fmt_double(finals.max(), 2),
                       support::fmt_double(at32.mean(), 2)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nExpected shape: the learned/structured solvers (genetic, bayesian,\n"
                "anneal, pattern) beat random; oracle defines the noise floor. The\n"
                "paper found no systematic genetic-vs-bayesian winner; see\n"
                "EXPERIMENTS.md for how our measurement compares.\n");

    // GP hot path: absorbing one observation at fixed hyperparameters via
    // the rank-1 Cholesky extension (GaussianProcess::observe) vs the old
    // full O(n³) refit per point. Same data, same hyperparameters.
    {
        constexpr std::size_t kBase = 192;
        constexpr std::size_t kAdded = 32;
        support::Rng rng(7);
        std::vector<std::vector<double>> xs;
        std::vector<double> ys;
        for (std::size_t i = 0; i < kBase + kAdded; ++i) {
            std::vector<double> x{rng.uniform(), rng.uniform(), rng.uniform(),
                                  rng.uniform()};
            ys.push_back(std::sin(3.0 * x[0]) + x[1] * x[1] + 0.05 * rng.normal(0, 1));
            xs.push_back(std::move(x));
        }
        const auto now = [] { return std::chrono::steady_clock::now(); };

        auto t0 = now();
        solver::GaussianProcess refit;
        for (std::size_t n = kBase; n <= kBase + kAdded; ++n) {
            refit.fit({xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(n)},
                      {ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(n)},
                      /*optimize=*/false);
        }
        const double refit_s = std::chrono::duration<double>(now() - t0).count();

        t0 = now();
        solver::GaussianProcess incremental;
        incremental.fit({xs.begin(), xs.begin() + kBase},
                        {ys.begin(), ys.begin() + kBase}, /*optimize=*/false);
        for (std::size_t i = kBase; i < kBase + kAdded; ++i) {
            incremental.observe(xs[i], ys[i]);
        }
        const double incr_s = std::chrono::duration<double>(now() - t0).count();

        std::printf("\nGP update path (%zu -> %zu points, fixed hyperparams):\n"
                    "  full refit per point: %8.2f ms\n"
                    "  rank-1 observe():     %8.2f ms   (%.1fx faster)\n",
                    kBase, kBase + kAdded, refit_s * 1e3, incr_s * 1e3,
                    incr_s > 0.0 ? refit_s / incr_s : 0.0);
    }
    return 0;
}
