// Ablation A1 — solver comparison (§2.5).
//
// The paper implements a genetic and a Bayesian solver and reports that
// Bayesian optimization "does not yield a systematic improvement over the
// genetic algorithm". This harness runs both (plus random search and the
// analytic oracle) through the *full* closed loop — robots, camera,
// vision — across several seeds and reports the final best score per
// solver. The oracle row is the workcell's noise floor: no optimizer can
// beat it, because it always mixes the analytically exact recipe.
#include <cstdio>
#include <string>
#include <vector>

#include "core/presets.hpp"
#include "support/log.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;

int main() {
    support::set_log_level(support::LogLevel::Error);
    std::printf("================================================================\n");
    std::printf("Ablation A1 — solver comparison on the full closed loop\n");
    std::printf("  N=64 samples, B=8, target rgb(120,120,120), 4 seeds each\n");
    std::printf("================================================================\n\n");

    const std::vector<std::string> solvers{"genetic", "bayesian", "anneal",
                                           "pattern",  "random",  "oracle"};
    constexpr std::uint64_t kSeeds[] = {1, 2, 3, 4};

    struct Job {
        std::string solver;
        std::uint64_t seed;
    };
    std::vector<Job> jobs;
    for (const auto& solver : solvers) {
        for (const auto seed : kSeeds) jobs.push_back({solver, seed});
    }

    const auto results =
        support::global_pool().parallel_map(jobs.size(), [&](std::size_t i) {
            core::ColorPickerConfig config = core::preset_quickstart(jobs[i].seed);
            config.solver = jobs[i].solver;
            config.total_samples = 64;
            config.batch_size = 8;
            config.experiment_id =
                "a1_" + jobs[i].solver + "_s" + std::to_string(jobs[i].seed);
            core::ColorPickerApp app(config);
            return app.run();
        });

    support::TextTable table(
        {"Solver", "Final best (mean±sd)", "Min", "Max", "Best @32 (mean)"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (std::size_t s = 0; s < solvers.size(); ++s) {
        support::OnlineStats finals, at32;
        for (std::size_t k = 0; k < std::size(kSeeds); ++k) {
            const auto& outcome = results[s * std::size(kSeeds) + k];
            finals.add(outcome.best_score);
            for (const auto& sample : outcome.samples) {
                if (sample.index == 32) at32.add(sample.best_so_far);
            }
        }
        table.add_row({solvers[s],
                       support::fmt_double(finals.mean(), 2) + " ± " +
                           support::fmt_double(finals.stddev(), 2),
                       support::fmt_double(finals.min(), 2),
                       support::fmt_double(finals.max(), 2),
                       support::fmt_double(at32.mean(), 2)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nExpected shape: the learned/structured solvers (genetic, bayesian,\n"
                "anneal, pattern) beat random; oracle defines the noise floor. The\n"
                "paper found no systematic genetic-vs-bayesian winner; see\n"
                "EXPERIMENTS.md for how our measurement compares.\n");
    return 0;
}
