// Reproduces Table 1: "Proposed metrics for self-driving labs and our
// best results for a color picker batch size of 1."
//
// Runs the calibrated B=1, N=128 experiment twice — on a single 128-well
// plate (the decomposition under which the paper's 387-command count is
// exact) and on standard 96-well plates — and prints the measured metrics
// next to the paper's values.
#include <cstdio>

#include "core/presets.hpp"
#include "metrics/metrics.hpp"
#include "support/log.hpp"

using namespace sdl;

namespace {

void run_variant(const char* title, const core::ColorPickerConfig& config) {
    std::printf("\n--- %s ---\n", title);
    core::ColorPickerApp app(config);
    const core::ExperimentOutcome outcome = app.run();

    const metrics::SdlMetrics paper = metrics::paper_table1_reference();
    std::printf("%s", metrics::render_metrics_table(outcome.metrics, &paper).c_str());
    std::printf("Plates used: %d | Batches (upload steps): %d | Best score: %.2f "
                "(color %s vs target %s)\n",
                outcome.plates_used, outcome.batches_run, outcome.best_score,
                outcome.best_color.str().c_str(), config.target.str().c_str());
}

}  // namespace

int main() {
    support::set_log_level(support::LogLevel::Error);
    std::printf("================================================================\n");
    std::printf("Table 1 — SDL metrics for the color picker at batch size B=1\n");
    std::printf("  (N=128 samples, genetic solver, target rgb(120,120,120))\n");
    std::printf("================================================================\n");

    run_variant("single 128-well plate (paper-exact command accounting)",
                core::preset_table1(1));
    run_variant("standard 96-well plates (two plates, mid-run swap)",
                core::preset_table1_96well(1));

    std::printf("\nNotes:\n"
                "  * CCWH counts robotic commands only (camera reads are sensor\n"
                "    operations); the terminal trashplate runs after the last\n"
                "    measurement and is outside the experiment window.\n"
                "  * 387 = 3 setup commands + 128 iterations x 3 commands\n"
                "    (pf400 -> ot2 -> pf400).\n");
    return 0;
}
