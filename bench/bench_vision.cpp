// Ablation A3 — the §2.4 vision pipeline.
//
// Quantifies (a) HoughCircles' false-negative behaviour on partially
// filled plates, (b) the value of the paper's grid-alignment rescue
// ("use this grid's size and orientation to predict the center points for
// all wells ... even those originally missed"), and (c) robustness to
// sensor noise and camera rotation.
#include <cmath>
#include <cstdio>
#include <vector>

#include "color/mixing.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/well_reader.hpp"
#include "support/log.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

using namespace sdl;
using namespace sdl::imaging;

namespace {

struct SceneResult {
    std::size_t hough = 0;
    std::size_t rescued = 0;
    double worst_center_err = 0.0;
    double mean_color_err = 0.0;  ///< over filled wells
    bool ok = false;
};

SceneResult evaluate_scene(double noise, double angle, int filled_count,
                           std::uint64_t seed) {
    PlateScene scene;
    scene.noise_sigma = noise;
    scene.angle_rad = angle;

    const color::BeerLambertMixer mixer(color::DyeLibrary::cmyk());
    support::Rng color_rng(seed);
    std::vector<color::Rgb8> colors;
    for (int i = 0; i < 96; ++i) {
        std::vector<double> ratios{color_rng.uniform(), color_rng.uniform(),
                                   color_rng.uniform(), color_rng.uniform() * 0.4};
        colors.push_back(mixer.mix_ratios(ratios));
    }
    std::vector<bool> filled(96, false);
    for (int i = 0; i < filled_count; ++i) filled[static_cast<std::size_t>(i)] = true;

    support::Rng render_rng(seed * 31 + 7);
    const Image frame = render_plate(scene, colors, render_rng, &filled);

    WellReadParams params;
    params.geometry = scene.geometry;
    const WellReadout readout = read_plate(frame, params);

    SceneResult result;
    result.ok = readout.ok;
    if (!readout.ok) return result;
    result.hough = readout.hough_circles_found;
    result.rescued = readout.wells_rescued;

    const auto truth = true_well_centers(scene);
    for (std::size_t i = 0; i < truth.size(); ++i) {
        result.worst_center_err =
            std::max(result.worst_center_err, distance(truth[i], readout.centers[i]));
    }
    support::OnlineStats color_err;
    for (int i = 0; i < filled_count; ++i) {
        color_err.add(color::rgb_distance(readout.colors[static_cast<std::size_t>(i)],
                                          colors[static_cast<std::size_t>(i)]));
    }
    result.mean_color_err = color_err.mean();
    return result;
}

}  // namespace

int main() {
    support::set_log_level(support::LogLevel::Error);
    std::printf("================================================================\n");
    std::printf("Ablation A3 — vision pipeline: Hough false negatives and the\n");
    std::printf("grid-alignment rescue (§2.4)\n");
    std::printf("================================================================\n");

    // (a) Fill-fraction sweep: empty wells are low-contrast, so Hough
    // misses most of them; the grid predicts every center regardless.
    std::printf("\n[Fill sweep] noise=2.0, no rotation:\n");
    {
        support::TextTable table({"Filled wells", "Hough circles", "Rescued",
                                  "Worst center err", "Mean color err (filled)"});
        table.set_alignment({support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right});
        for (const int filled : {4, 16, 48, 96}) {
            const SceneResult r = evaluate_scene(2.0, 0.0, filled, 11);
            table.add_row({std::to_string(filled), std::to_string(r.hough),
                           std::to_string(r.rescued),
                           support::fmt_double(r.worst_center_err, 2) + " px",
                           support::fmt_double(r.mean_color_err, 2)});
        }
        std::printf("%s", table.str().c_str());
    }

    // (b) Sensor-noise sweep on a fully filled plate.
    std::printf("\n[Noise sweep] all 96 wells filled:\n");
    {
        support::TextTable table({"Noise sigma", "Hough circles", "Worst center err",
                                  "Mean color err"});
        table.set_alignment({support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right});
        for (const double noise : {0.5, 2.0, 4.0, 8.0, 12.0}) {
            const SceneResult r = evaluate_scene(noise, 0.05, 96, 13);
            table.add_row({support::fmt_double(noise, 1), std::to_string(r.hough),
                           support::fmt_double(r.worst_center_err, 2) + " px",
                           support::fmt_double(r.mean_color_err, 2)});
        }
        std::printf("%s", table.str().c_str());
    }

    // (c) Rotation sweep: the marker carries the orientation.
    std::printf("\n[Rotation sweep] all wells filled, noise=2.0:\n");
    {
        support::TextTable table({"Rotation (deg)", "Marker found", "Worst center err",
                                  "Mean color err"});
        table.set_alignment({support::TextTable::Align::Right,
                             support::TextTable::Align::Left,
                             support::TextTable::Align::Right,
                             support::TextTable::Align::Right});
        for (const double deg : {-8.0, -3.0, 0.0, 3.0, 8.0, 15.0}) {
            const SceneResult r = evaluate_scene(2.0, deg * 3.14159265 / 180.0, 96, 17);
            table.add_row({support::fmt_double(deg, 1), r.ok ? "yes" : "NO",
                           r.ok ? support::fmt_double(r.worst_center_err, 2) + " px" : "-",
                           r.ok ? support::fmt_double(r.mean_color_err, 2) : "-"});
        }
        std::printf("%s", table.str().c_str());
    }

    std::printf("\nExpected shape: rescued wells dominate on sparse plates while\n"
                "center error stays within a couple of pixels (the paper's rescue);\n"
                "accuracy degrades gracefully with noise; rotation is absorbed by\n"
                "the fiducial's orientation estimate.\n");
    return 0;
}
