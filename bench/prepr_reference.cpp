// Verbatim PR-4 hot-path implementations (see header). Sourced from the
// pre-optimization revisions of imaging/filters.cpp, imaging/hough.cpp,
// imaging/fiducial.cpp, imaging/well_reader.cpp, imaging/plate_render.cpp
// and solver/bayes.cpp; only namespaced and stitched to the public
// geometry/draw/components/quad APIs (which did not change).
#include "prepr_reference.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <optional>

#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/gridfit.hpp"
#include "imaging/quad.hpp"
#include "support/common.hpp"

namespace prepr {

using namespace sdl;
using namespace sdl::imaging;

// ----------------------------------------------------------- old filters

namespace {

GrayImage old_to_gray(const Image& rgb) {
    GrayImage out(rgb.width(), rgb.height());
    for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
            const color::Rgb8 c = rgb.pixel(x, y);
            out.at(x, y) =
                static_cast<float>((0.299 * c.r + 0.587 * c.g + 0.114 * c.b) / 255.0);
        }
    }
    return out;
}

GrayImage old_gaussian_blur(const GrayImage& img, double sigma) {
    if (sigma <= 0.0 || img.width() == 0 || img.height() == 0) return img;
    const int radius = static_cast<int>(std::ceil(3.0 * sigma));
    std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
    float sum = 0.0F;
    for (int i = -radius; i <= radius; ++i) {
        const auto w = static_cast<float>(std::exp(-0.5 * (i * i) / (sigma * sigma)));
        kernel[static_cast<std::size_t>(i + radius)] = w;
        sum += w;
    }
    for (float& w : kernel) w /= sum;

    const int width = img.width();
    const int height = img.height();
    GrayImage tmp(width, height);
    GrayImage out(width, height);

    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float acc = 0.0F;
            for (int k = -radius; k <= radius; ++k) {
                const int xx = support::clamp(x + k, 0, width - 1);
                acc += kernel[static_cast<std::size_t>(k + radius)] * img.at(xx, y);
            }
            tmp.at(x, y) = acc;
        }
    }
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float acc = 0.0F;
            for (int k = -radius; k <= radius; ++k) {
                const int yy = support::clamp(y + k, 0, height - 1);
                acc += kernel[static_cast<std::size_t>(k + radius)] * tmp.at(x, yy);
            }
            out.at(x, y) = acc;
        }
    }
    return out;
}

Gradients old_sobel(const GrayImage& img) {
    const int width = img.width();
    const int height = img.height();
    Gradients g{GrayImage(width, height), GrayImage(width, height)};
    if (width < 3 || height < 3) return g;
    for (int y = 1; y < height - 1; ++y) {
        for (int x = 1; x < width - 1; ++x) {
            const float p00 = img.at(x - 1, y - 1), p10 = img.at(x, y - 1),
                        p20 = img.at(x + 1, y - 1);
            const float p01 = img.at(x - 1, y), p21 = img.at(x + 1, y);
            const float p02 = img.at(x - 1, y + 1), p12 = img.at(x, y + 1),
                        p22 = img.at(x + 1, y + 1);
            g.gx.at(x, y) = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
            g.gy.at(x, y) = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
        }
    }
    return g;
}

std::vector<double> old_integral_image(const GrayImage& img) {
    const int width = img.width();
    const int height = img.height();
    std::vector<double> integral(static_cast<std::size_t>(width + 1) *
                                 static_cast<std::size_t>(height + 1));
    const auto at = [&](int x, int y) -> double& {
        return integral[static_cast<std::size_t>(y) * static_cast<std::size_t>(width + 1) +
                        static_cast<std::size_t>(x)];
    };
    for (int y = 1; y <= height; ++y) {
        double row_sum = 0.0;
        for (int x = 1; x <= width; ++x) {
            row_sum += img.at(x - 1, y - 1);
            at(x, y) = at(x, y - 1) + row_sum;
        }
    }
    return integral;
}

double old_boxed_sum(const std::vector<double>& integral, int width, Rect r) {
    const auto at = [&](int x, int y) {
        return integral[static_cast<std::size_t>(y) * static_cast<std::size_t>(width + 1) +
                        static_cast<std::size_t>(x)];
    };
    return at(r.x1, r.y1) - at(r.x0, r.y1) - at(r.x1, r.y0) + at(r.x0, r.y0);
}

BinaryImage old_adaptive_threshold(const GrayImage& img, int window, float offset) {
    const int width = img.width();
    const int height = img.height();
    BinaryImage mask(width, height);
    if (width == 0 || height == 0) return mask;
    const std::vector<double> integral = old_integral_image(img);
    const int half = window / 2;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const Rect r = Rect{x - half, y - half, x + half + 1, y + half + 1}.clipped(
                width, height);
            const double n = static_cast<double>(r.width()) * r.height();
            const double mean = old_boxed_sum(integral, width, r) / n;
            mask.set(x, y, img.at(x, y) < mean - offset);
        }
    }
    return mask;
}

}  // namespace

// ------------------------------------------------------------ old render

namespace {

double old_illumination(const PlateScene& scene, int x, int y) noexcept {
    const double nx = static_cast<double>(x) / scene.width - 0.5;
    const double ny = static_cast<double>(y) / scene.height - 0.5;
    const double gradient = 1.0 + scene.illum_gradient.x * nx + scene.illum_gradient.y * ny;
    const double r2 = (nx * nx + ny * ny) / 0.5;
    const double vignette = 1.0 - scene.vignette * r2;
    return gradient * vignette;
}

std::uint8_t old_shade(std::uint8_t value, double factor, double noise) noexcept {
    const double v = value * factor + noise;
    const long q = std::lround(v);
    return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
}

}  // namespace

Image render_plate(const PlateScene& scene, std::span<const color::Rgb8> well_colors,
                   support::Rng& rng, const std::vector<bool>* filled) {
    const SceneGeometry& g = scene.geometry;
    support::check(well_colors.size() == static_cast<std::size_t>(g.well_count()),
                   "well color count must equal rows*cols");

    Image img(scene.width, scene.height, scene.background);
    const double s = scene.marker_side_px;
    const double radius = g.well_radius * s;
    const double pitch = g.spacing * s;
    const std::vector<Vec2> centers = true_well_centers(scene);

    {
        const Vec2 ux = Vec2{1, 0}.rotated(scene.angle_rad);
        const Vec2 uy = Vec2{0, 1}.rotated(scene.angle_rad);
        const double margin = pitch * 0.9;
        const Vec2 tl = centers[0] - ux * margin - uy * margin;
        const Vec2 br = centers[static_cast<std::size_t>(g.well_count() - 1)] + ux * margin +
                        uy * margin;
        const Vec2 tr = tl + ux * ((br - tl).dot(ux));
        const Vec2 bl = tl + uy * ((br - tl).dot(uy));
        const Vec2 corners[4] = {tl, tr, br, bl};
        fill_quad(img, corners, scene.plate_body);
    }

    for (int i = 0; i < g.well_count(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool has_sample = filled == nullptr || (*filled)[idx];
        const Vec2 c = centers[idx];
        fill_ring(img, c, radius, radius * (1.0 - scene.wall_thickness),
                  has_sample ? scene.well_wall : scene.empty_rim);
        const color::Rgb8 interior = has_sample ? well_colors[idx] : scene.empty_well;
        fill_circle(img, c, radius * (1.0 - scene.wall_thickness), interior);
    }

    render_marker(img, MarkerDictionary::standard(), scene.marker_id, scene.marker_center,
                  scene.marker_side_px, scene.angle_rad);

    for (int y = 0; y < scene.height; ++y) {
        for (int x = 0; x < scene.width; ++x) {
            const double factor = old_illumination(scene, x, y);
            const color::Rgb8 p = img.pixel(x, y);
            img.set_pixel(x, y,
                          {old_shade(p.r, factor, rng.normal(0.0, scene.noise_sigma)),
                           old_shade(p.g, factor, rng.normal(0.0, scene.noise_sigma)),
                           old_shade(p.b, factor, rng.normal(0.0, scene.noise_sigma))});
        }
    }
    return img;
}

// ---------------------------------------------------------- old fiducial

namespace {

std::optional<std::uint16_t> old_sample_payload(const GrayImage& gray, const Homography& h) {
    std::array<std::array<float, kMarkerCells>, kMarkerCells> cells{};
    float lo = 1.0F, hi = 0.0F;
    for (int r = 0; r < kMarkerCells; ++r) {
        for (int c = 0; c < kMarkerCells; ++c) {
            float acc = 0.0F;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    const double u = (c + 0.5 + dx * 0.2) / kMarkerCells;
                    const double v = (r + 0.5 + dy * 0.2) / kMarkerCells;
                    const Vec2 p = h.apply({u, v});
                    acc += sample_bilinear(gray, p.x, p.y);
                }
            }
            const float val = acc / 9.0F;
            cells[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = val;
            lo = std::min(lo, val);
            hi = std::max(hi, val);
        }
    }
    if (hi - lo < 0.15F) return std::nullopt;
    const float mid = 0.5F * (lo + hi);

    for (int i = 0; i < kMarkerCells; ++i) {
        if (cells[0][static_cast<std::size_t>(i)] > mid ||
            cells[kMarkerCells - 1][static_cast<std::size_t>(i)] > mid ||
            cells[static_cast<std::size_t>(i)][0] > mid ||
            cells[static_cast<std::size_t>(i)][kMarkerCells - 1] > mid) {
            return std::nullopt;
        }
    }
    std::uint16_t code = 0;
    for (int r = 0; r < kGridBits; ++r) {
        for (int c = 0; c < kGridBits; ++c) {
            if (cells[static_cast<std::size_t>(r + 1)][static_cast<std::size_t>(c + 1)] > mid) {
                code = static_cast<std::uint16_t>(code | (1U << (r * kGridBits + c)));
            }
        }
    }
    return code;
}

}  // namespace

std::vector<MarkerDetection> detect_markers(const Image& img, const MarkerDictionary& dict,
                                            const MarkerDetectParams& params) {
    std::vector<MarkerDetection> detections;
    if (img.width() < 8 || img.height() < 8) return detections;

    const GrayImage gray = old_to_gray(img);
    const GrayImage smooth = old_gaussian_blur(gray, params.blur_sigma);
    const BinaryImage dark = old_adaptive_threshold(smooth, params.adaptive_window,
                                                    params.adaptive_offset);
    const auto min_area =
        static_cast<std::size_t>(params.min_side_px * params.min_side_px * 0.3);
    const Labeling labeling = label_components(dark, min_area);

    for (std::int32_t i = 0; i < static_cast<std::int32_t>(labeling.blobs.size()); ++i) {
        const Blob& blob = labeling.blobs[static_cast<std::size_t>(i)];
        const double bbox_side = std::max(blob.bbox.width(), blob.bbox.height());
        if (bbox_side < params.min_side_px || bbox_side > params.max_side_px * 1.5) continue;

        const std::vector<Vec2> boundary = boundary_pixels(labeling, i);
        const auto quad = extract_quad(boundary);
        if (!quad) continue;
        if (squareness(*quad) < params.min_squareness) continue;
        const double side = mean_side(*quad);
        if (side < params.min_side_px || side > params.max_side_px) continue;

        const double quad_area = side * side;
        const double fill = static_cast<double>(blob.area) / quad_area;
        if (fill < 0.35 || fill > 1.05) continue;

        Homography h;
        try {
            h = Homography::unit_square_to(*quad);
        } catch (const support::Error&) {
            continue;
        }
        const auto payload = old_sample_payload(smooth, h);
        if (!payload) continue;
        const auto match = dict.match(*payload, params.max_correctable_bits);
        if (!match) continue;

        MarkerDetection det;
        det.id = match->id;
        det.corners = *quad;
        det.center = (det.corners[0] + det.corners[1] + det.corners[2] + det.corners[3]) * 0.25;
        det.side = side;
        det.bit_errors = match->distance;
        const std::size_t j0 = static_cast<std::size_t>(match->rotation % 4);
        const std::size_t j1 = (j0 + 1) % 4;
        const Vec2 xaxis = det.corners[j1] - det.corners[j0];
        det.angle = std::atan2(xaxis.y, xaxis.x);
        detections.push_back(det);
    }
    return detections;
}

// ------------------------------------------------------------- old hough

std::vector<CircleDetection> hough_circles(const GrayImage& gray, const HoughParams& params) {
    support::check(params.r_min > 0 && params.r_max >= params.r_min, "invalid radius range");
    std::vector<CircleDetection> circles;

    Rect roi = params.roi;
    if (roi.width() <= 0 || roi.height() <= 0) {
        roi = {0, 0, gray.width(), gray.height()};
    }
    roi = roi.clipped(gray.width(), gray.height());
    const int rw = roi.width();
    const int rh = roi.height();
    if (rw < 3 || rh < 3) return circles;

    GrayImage cropped(rw, rh);
    for (int y = 0; y < rh; ++y) {
        for (int x = 0; x < rw; ++x) {
            cropped.at(x, y) = gray.at(x + roi.x0, y + roi.y0);
        }
    }
    const GrayImage smooth = old_gaussian_blur(cropped, params.blur_sigma);
    const Gradients grad = old_sobel(smooth);

    struct Edge {
        float x;
        float y;
        float dx;
        float dy;
    };
    std::vector<Edge> edges;
    for (int y = 0; y < rh; ++y) {
        for (int x = 0; x < rw; ++x) {
            const double gx = grad.gx.at(x, y);
            const double gy = grad.gy.at(x, y);
            const double mag = std::hypot(gx, gy);
            if (mag < params.grad_threshold) continue;
            edges.push_back({static_cast<float>(x), static_cast<float>(y),
                             static_cast<float>(gx / mag), static_cast<float>(gy / mag)});
        }
    }
    if (edges.empty()) return circles;

    std::vector<float> acc(static_cast<std::size_t>(rw) * static_cast<std::size_t>(rh), 0.0F);
    const int ir_min = static_cast<int>(std::floor(params.r_min));
    const int ir_max = static_cast<int>(std::ceil(params.r_max));
    for (const Edge& e : edges) {
        for (int r = ir_min; r <= ir_max; ++r) {
            for (const int sign : {-1, 1}) {
                const int cx = static_cast<int>(std::lround(e.x + sign * r * e.dx));
                const int cy = static_cast<int>(std::lround(e.y + sign * r * e.dy));
                if (cx < 0 || cx >= rw || cy < 0 || cy >= rh) continue;
                acc[static_cast<std::size_t>(cy) * static_cast<std::size_t>(rw) +
                    static_cast<std::size_t>(cx)] += 1.0F;
            }
        }
    }

    std::vector<float> smooth_acc(acc.size(), 0.0F);
    for (int y = 1; y < rh - 1; ++y) {
        for (int x = 1; x < rw - 1; ++x) {
            float s = 0.0F;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    s += acc[static_cast<std::size_t>(y + dy) * static_cast<std::size_t>(rw) +
                             static_cast<std::size_t>(x + dx)];
                }
            }
            smooth_acc[static_cast<std::size_t>(y) * static_cast<std::size_t>(rw) +
                       static_cast<std::size_t>(x)] = s / 9.0F;
        }
    }

    struct Peak {
        int x;
        int y;
        float votes;
    };
    std::vector<Peak> peaks;
    float strongest = 0.0F;
    for (int y = 1; y < rh - 1; ++y) {
        for (int x = 1; x < rw - 1; ++x) {
            const float v = smooth_acc[static_cast<std::size_t>(y) * static_cast<std::size_t>(rw) +
                                       static_cast<std::size_t>(x)];
            if (v < params.min_votes) continue;
            bool is_max = true;
            for (int dy = -1; dy <= 1 && is_max; ++dy) {
                for (int dx = -1; dx <= 1 && is_max; ++dx) {
                    if (dx == 0 && dy == 0) continue;
                    const float n =
                        smooth_acc[static_cast<std::size_t>(y + dy) * static_cast<std::size_t>(rw) +
                                   static_cast<std::size_t>(x + dx)];
                    if (n > v) is_max = false;
                }
            }
            if (is_max) {
                peaks.push_back({x, y, v});
                strongest = std::max(strongest, v);
            }
        }
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak& a, const Peak& b) { return a.votes > b.votes; });

    const double vote_floor = std::max(params.min_votes,
                                       params.vote_fraction * static_cast<double>(strongest));
    const double min_dist2 = params.min_center_dist * params.min_center_dist;
    const float reach = static_cast<float>(ir_max + 1);
    std::vector<int> radius_hist(static_cast<std::size_t>(ir_max) + 2, 0);
    for (const Peak& p : peaks) {
        if (p.votes < vote_floor) break;
        bool suppressed = false;
        for (const CircleDetection& c : circles) {
            const double ddx = c.center.x - (p.x + roi.x0);
            const double ddy = c.center.y - (p.y + roi.y0);
            if (ddx * ddx + ddy * ddy < min_dist2) {
                suppressed = true;
                break;
            }
        }
        if (suppressed) continue;

        std::fill(radius_hist.begin(), radius_hist.end(), 0);
        const float r2_max = reach * reach;
        const float r2_min = static_cast<float>((ir_min - 1) * (ir_min - 1));
        for (const Edge& e : edges) {
            const float dx = e.x - static_cast<float>(p.x);
            const float dy = e.y - static_cast<float>(p.y);
            const float d2 = dx * dx + dy * dy;
            if (d2 > r2_max || d2 < r2_min || d2 < 1e-6F) continue;
            const float d = std::sqrt(d2);
            const float align = std::fabs((dx * e.dx + dy * e.dy) / d);
            if (align < 0.85F) continue;
            const auto bin = static_cast<std::size_t>(std::lround(d));
            if (bin < radius_hist.size()) ++radius_hist[bin];
        }
        std::size_t best_bin = static_cast<std::size_t>(ir_min);
        for (std::size_t r = static_cast<std::size_t>(ir_min); r < radius_hist.size(); ++r) {
            if (radius_hist[r] > radius_hist[best_bin]) best_bin = r;
        }
        if (radius_hist[best_bin] <= 2) continue;

        circles.push_back({{static_cast<double>(p.x + roi.x0),
                            static_cast<double>(p.y + roi.y0)},
                           static_cast<double>(best_bin),
                           static_cast<double>(p.votes)});
        if (circles.size() >= params.max_circles) break;
    }
    return circles;
}

// -------------------------------------------------------- old well read

WellReadout read_plate(const Image& frame, const WellReadParams& params) {
    WellReadout out;
    const SceneGeometry& g = params.geometry;

    const auto markers =
        prepr::detect_markers(frame, MarkerDictionary::standard(), params.marker);
    const MarkerDetection* marker = nullptr;
    for (const auto& m : markers) {
        if (params.marker_id < 0 || m.id == static_cast<std::size_t>(params.marker_id)) {
            if (marker == nullptr || m.side > marker->side) marker = &m;
        }
    }
    if (marker == nullptr) {
        out.error = "fiducial marker not found";
        return out;
    }
    out.marker = *marker;

    const double s = marker->side;
    const Vec2 ux = Vec2{1, 0}.rotated(marker->angle);
    const Vec2 uy = Vec2{0, 1}.rotated(marker->angle);
    GridModel initial;
    initial.origin = marker->center + ux * (g.plate_offset.x * s) + uy * (g.plate_offset.y * s);
    initial.row_axis = uy * (g.spacing * s);
    initial.col_axis = ux * (g.spacing * s);

    const double pitch = g.spacing * s;
    double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
    for (const int r : {0, g.rows - 1}) {
        for (const int c : {0, g.cols - 1}) {
            const Vec2 p = initial.center(r, c);
            min_x = std::min(min_x, p.x);
            max_x = std::max(max_x, p.x);
            min_y = std::min(min_y, p.y);
            max_y = std::max(max_y, p.y);
        }
    }
    const double margin = params.roi_margin * pitch;
    const Rect roi = Rect{static_cast<int>(std::floor(min_x - margin)),
                          static_cast<int>(std::floor(min_y - margin)),
                          static_cast<int>(std::ceil(max_x + margin)),
                          static_cast<int>(std::ceil(max_y + margin))}
                         .clipped(frame.width(), frame.height());

    const double expected_r = g.well_radius * s;
    HoughParams hough;
    hough.roi = roi;
    hough.r_min = std::max(2.0, expected_r * (1.0 - params.radius_tolerance));
    hough.r_max = expected_r * (1.0 + params.radius_tolerance);
    hough.min_center_dist = 0.6 * pitch;
    hough.max_circles = static_cast<std::size_t>(g.well_count()) * 2;
    const GrayImage gray = old_to_gray(frame);
    const auto circles = prepr::hough_circles(gray, hough);
    out.hough_circles_found = circles.size();

    std::vector<Vec2> centers_detected;
    centers_detected.reserve(circles.size());
    for (const auto& c : circles) centers_detected.push_back(c.center);

    const GridFit fit = fit_grid(centers_detected, initial, g.rows, g.cols,
                                 params.inlier_radius * pitch);
    out.grid_residual_px = fit.mean_residual;

    std::vector<bool> supported(static_cast<std::size_t>(g.well_count()), false);
    for (const Vec2& p : centers_detected) {
        Vec2 rc;
        try {
            rc = fit.model.to_grid(p);
        } catch (const support::Error&) {
            continue;
        }
        const int r = static_cast<int>(std::lround(rc.x));
        const int c = static_cast<int>(std::lround(rc.y));
        if (r < 0 || r >= g.rows || c < 0 || c >= g.cols) continue;
        if (distance(fit.model.center(r, c), p) <= params.inlier_radius * pitch) {
            supported[static_cast<std::size_t>(r * g.cols + c)] = true;
        }
    }
    out.wells_with_circle = static_cast<std::size_t>(
        std::count(supported.begin(), supported.end(), true));
    out.wells_rescued = static_cast<std::size_t>(g.well_count()) - out.wells_with_circle;

    out.centers.reserve(static_cast<std::size_t>(g.well_count()));
    out.colors.reserve(static_cast<std::size_t>(g.well_count()));
    const double sample_r = params.sample_radius * expected_r;
    for (int r = 0; r < g.rows; ++r) {
        for (int c = 0; c < g.cols; ++c) {
            const Vec2 center = fit.model.center(r, c);
            out.centers.push_back(center);
            out.colors.push_back(mean_color_in_disk(frame, center.x, center.y, sample_r));
        }
    }
    out.ok = true;
    return out;
}

// --------------------------------------------------------------- old GP

double Gp::kernel(std::span<const double> a, std::span<const double> b) const noexcept {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return signal_var_ * std::exp(-0.5 * d2 / (lengthscale_ * lengthscale_));
}

void Gp::fit(std::vector<std::vector<double>> xs, std::vector<double> ys,
             double lengthscale, double noise_var) {
    xs_ = std::move(xs);
    lengthscale_ = lengthscale;
    noise_var_ = noise_var;

    double mean = 0.0;
    for (const double y : ys) mean += y;
    mean /= static_cast<double>(ys.size());
    double var = 0.0;
    for (const double y : ys) var += (y - mean) * (y - mean);
    var /= static_cast<double>(ys.size());
    y_mean_ = mean;
    y_scale_ = var > 1e-12 ? std::sqrt(var) : 1.0;
    ys_std_.resize(ys.size());
    for (std::size_t i = 0; i < ys.size(); ++i) ys_std_[i] = (ys[i] - y_mean_) / y_scale_;

    const std::size_t n = xs_.size();
    sdl::linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double v = kernel(xs_[i], xs_[j]);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += noise_var_;
    }
    chol_ = std::make_unique<sdl::linalg::Cholesky>(sdl::linalg::cholesky_with_jitter(k));
    alpha_ = chol_->solve(ys_std_);
}

Gp::Prediction Gp::predict(std::span<const double> x) const {
    const std::size_t n = xs_.size();
    sdl::linalg::Vec kx(n);
    for (std::size_t i = 0; i < n; ++i) kx[i] = kernel(xs_[i], x);

    const double mean_std = sdl::linalg::dot(kx, alpha_);
    const sdl::linalg::Vec v = chol_->solve_lower(kx);
    double var_std = signal_var_ + noise_var_ - sdl::linalg::dot(v, v);
    if (var_std < 1e-12) var_std = 1e-12;

    return {mean_std * y_scale_ + y_mean_, var_std * y_scale_ * y_scale_};
}

}  // namespace prepr
