// Frozen pre-optimization (PR 4) implementations of the two hot paths,
// kept verbatim inside the bench tree as the yardstick bench_hotpath
// measures speedups against. Do NOT "fix" or modernize this code — its
// whole value is that it stays the way the shipped pipeline looked
// before the batched-GP / zero-allocation-vision work, so the recorded
// speedups keep meaning the same thing across future PRs.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "imaging/fiducial.hpp"
#include "imaging/hough.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/well_reader.hpp"
#include "linalg/cholesky.hpp"
#include "support/random.hpp"

namespace prepr {

/// PR-4 render_plate: full background + plate + wells + marker raster
/// every frame, per-pixel illumination recompute, libm lround per
/// channel.
[[nodiscard]] sdl::imaging::Image render_plate(
    const sdl::imaging::PlateScene& scene,
    std::span<const sdl::color::Rgb8> well_colors, sdl::support::Rng& rng,
    const std::vector<bool>* filled = nullptr);

/// PR-4 detect_markers: fresh gray/blur/threshold planes and labeling
/// per call.
[[nodiscard]] std::vector<sdl::imaging::MarkerDetection> detect_markers(
    const sdl::imaging::Image& img, const sdl::imaging::MarkerDictionary& dict,
    const sdl::imaging::MarkerDetectParams& params = {});

/// PR-4 hough_circles: crop copy, per-call accumulators, hypot edge
/// magnitudes, full-edge-list radius scans per peak.
[[nodiscard]] std::vector<sdl::imaging::CircleDetection> hough_circles(
    const sdl::imaging::GrayImage& gray, const sdl::imaging::HoughParams& params);

/// PR-4 read_plate: full-frame marker scan, a second full-frame gray
/// conversion for the Hough stage, all buffers allocated per frame.
[[nodiscard]] sdl::imaging::WellReadout read_plate(
    const sdl::imaging::Image& frame, const sdl::imaging::WellReadParams& params);

/// PR-4 GP posterior, reconstructed with the public linalg pieces it was
/// built from: std::exp RBF kernel, jittered Cholesky, and a fresh
/// kx/solve per query point.
class Gp {
public:
    void fit(std::vector<std::vector<double>> xs, std::vector<double> ys,
             double lengthscale, double noise_var);

    struct Prediction {
        double mean = 0.0;
        double variance = 0.0;
    };
    [[nodiscard]] Prediction predict(std::span<const double> x) const;

private:
    [[nodiscard]] double kernel(std::span<const double> a,
                                std::span<const double> b) const noexcept;

    std::vector<std::vector<double>> xs_;
    double lengthscale_ = 0.4;
    double noise_var_ = 1e-2;
    double signal_var_ = 1.0;
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    std::vector<double> ys_std_;
    std::unique_ptr<sdl::linalg::Cholesky> chol_;
    sdl::linalg::Vec alpha_;
};

}  // namespace prepr
