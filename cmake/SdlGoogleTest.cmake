# GoogleTest integration: prefer the system package (libgtest-dev),
# fall back to FetchContent when no system copy exists and downloads
# are allowed. Exposes the imported target `sdlbench::gtest_main`.

find_package(GTest QUIET)

if(GTest_FOUND)
  message(STATUS "sdlbench: using system GoogleTest")
  add_library(sdlbench_gtest_main INTERFACE)
  target_link_libraries(sdlbench_gtest_main INTERFACE GTest::gtest_main GTest::gtest)
else()
  message(STATUS "sdlbench: system GoogleTest not found, fetching v1.14.0")
  include(FetchContent)
  FetchContent_Declare(
    googletest
    URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.zip
    DOWNLOAD_EXTRACT_TIMESTAMP TRUE
  )
  # For Windows: prevent overriding the parent project's CRT settings.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  set(BUILD_GMOCK OFF CACHE BOOL "" FORCE)
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  FetchContent_MakeAvailable(googletest)
  add_library(sdlbench_gtest_main INTERFACE)
  target_link_libraries(sdlbench_gtest_main INTERFACE gtest_main gtest)
endif()

add_library(sdlbench::gtest_main ALIAS sdlbench_gtest_main)
include(GoogleTest)
