# Shared helpers for declaring the per-layer sdlbench targets.

# Warning flags applied to every sdlbench target (libraries, tests,
# benches, examples, tools). Escalated to errors by SDLBENCH_WARNINGS_AS_ERRORS.
function(sdl_apply_warnings target)
  if(MSVC)
    target_compile_options(${target} PRIVATE /W4)
    if(SDLBENCH_WARNINGS_AS_ERRORS)
      target_compile_options(${target} PRIVATE /WX)
    endif()
  else()
    target_compile_options(${target} PRIVATE -Wall -Wextra)
    # GCC 12's -Wrestrict fires a false positive inside libstdc++'s
    # std::string operator+ at -O2 (GCC PR 105329); keep strict builds
    # usable by dropping just that check there.
    if(CMAKE_CXX_COMPILER_ID STREQUAL "GNU"
       AND CMAKE_CXX_COMPILER_VERSION VERSION_GREATER_EQUAL 12
       AND CMAKE_CXX_COMPILER_VERSION VERSION_LESS 13)
      target_compile_options(${target} PRIVATE -Wno-restrict)
    endif()
    if(SDLBENCH_WARNINGS_AS_ERRORS)
      target_compile_options(${target} PRIVATE -Werror)
    endif()
  endif()
endfunction()

# sdl_add_library(<layer> SOURCES a.cpp ... [DEPS sdl_x ...])
#
# Declares the static library target `sdl_<layer>` with the repo-root
# `src/` directory on its public include path, so all code uses
# `#include "<layer>/<header>.hpp"` paths. DEPS are PUBLIC so include
# paths and transitive link edges propagate.
function(sdl_add_library layer)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  set(target sdl_${layer})
  if(ARG_SOURCES)
    add_library(${target} STATIC ${ARG_SOURCES})
  else()
    add_library(${target} INTERFACE)
  endif()
  add_library(sdlbench::${layer} ALIAS ${target})
  if(ARG_SOURCES)
    target_include_directories(${target} PUBLIC ${PROJECT_SOURCE_DIR}/src)
    target_link_libraries(${target} PUBLIC ${ARG_DEPS})
    sdl_apply_warnings(${target})
  else()
    target_include_directories(${target} INTERFACE ${PROJECT_SOURCE_DIR}/src)
    target_link_libraries(${target} INTERFACE ${ARG_DEPS})
  endif()
endfunction()

# sdl_add_executable(<name> SOURCES main.cpp ... [DEPS sdl_x ...])
function(sdl_add_executable name)
  cmake_parse_arguments(ARG "" "" "SOURCES;DEPS" ${ARGN})
  add_executable(${name} ${ARG_SOURCES})
  target_link_libraries(${name} PRIVATE ${ARG_DEPS})
  sdl_apply_warnings(${name})
endfunction()
