// Batch-size trade-off study: a miniature of the paper's Figure 4.
//
// Compares a small and a large batch size at equal sample budget and
// shows the throughput/accuracy trade-off: larger batches amortize the
// ot2 protocol overhead and the pf400 round trips, but give the solver
// fewer feedback rounds.
//
// Declared as a CampaignSpec: the campaign layer expands the batch-size
// axis, fans the cells out on the thread pool, and hands back the
// outcomes in grid order. Seed mode per_cell with base_seed 500 gives
// the cells seeds 500, 501, 502 — each experiment starts from its own
// random guesses.
#include <cstdio>

#include "campaign/runner.hpp"
#include "core/presets.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

using namespace sdl;

int main() {
    support::set_log_level(support::LogLevel::Error);
    constexpr int kBudget = 48;

    std::printf("Mini Figure 4: N=%d samples, batch sizes 2 / 8 / 24\n\n", kBudget);

    campaign::CampaignSpec spec;
    spec.name = "batch_size_study";
    spec.base = core::preset_fig4(/*batch_size=*/2, /*seed=*/500);
    spec.base.total_samples = kBudget;
    spec.axes.batch_sizes = {2, 8, 24};
    spec.base_seed = 500;
    spec.seed_mode = campaign::SeedMode::PerCell;

    const auto results = campaign::CampaignRunner().run(spec);

    support::TextTable table({"B", "Feedback rounds", "Total time", "Time per color",
                              "Final best"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (const campaign::CellResult& result : results) {
        table.add_row({std::to_string(result.cell.batch_size),
                       std::to_string(result.outcome.batches_run),
                       result.outcome.metrics.total_time.pretty(),
                       result.outcome.metrics.time_per_color.pretty(),
                       support::fmt_double(result.outcome.best_score, 2)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nEach dot of the full Figure 4 comes from bench_fig4; this example\n"
                "shows the same trade-off at a size that runs in a second or two.\n");
    return 0;
}
