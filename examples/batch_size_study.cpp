// Batch-size trade-off study: a miniature of the paper's Figure 4.
//
// Compares a small and a large batch size at equal sample budget and
// shows the throughput/accuracy trade-off: larger batches amortize the
// ot2 protocol overhead and the pf400 round trips, but give the solver
// fewer feedback rounds.
#include <cstdio>

#include "core/presets.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;

int main() {
    support::set_log_level(support::LogLevel::Error);
    constexpr int kBatchSizes[] = {2, 8, 24};
    constexpr int kBudget = 48;

    std::printf("Mini Figure 4: N=%d samples, batch sizes 2 / 8 / 24\n\n", kBudget);

    const auto outcomes = support::global_pool().parallel_map(
        std::size(kBatchSizes), [&](std::size_t i) {
            core::ColorPickerConfig config = core::preset_fig4(kBatchSizes[i], 500 + i);
            config.total_samples = kBudget;
            return core::ColorPickerApp(config).run();
        });

    support::TextTable table({"B", "Feedback rounds", "Total time", "Time per color",
                              "Final best"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        table.add_row({std::to_string(kBatchSizes[i]),
                       std::to_string(outcomes[i].batches_run),
                       outcomes[i].metrics.total_time.pretty(),
                       outcomes[i].metrics.time_per_color.pretty(),
                       support::fmt_double(outcomes[i].best_score, 2)});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nEach dot of the full Figure 4 comes from bench_fig4; this example\n"
                "shows the same trade-off at a size that runs in a second or two.\n");
    return 0;
}
