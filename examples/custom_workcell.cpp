// Building a workcell by hand from the WEI primitives: load a workcell
// definition and workflows from YAML (the files under configs/), wire the
// simulated devices, and drive them with the workflow engine directly —
// the layer beneath ColorPickerApp, for users composing their own
// applications.
#include <cstdio>
#include <memory>

#include "des/simulation.hpp"
#include "devices/barty.hpp"
#include "devices/camera.hpp"
#include "devices/ot2.hpp"
#include "devices/pf400.hpp"
#include "devices/sciclops.hpp"
#include "support/log.hpp"
#include "support/units.hpp"
#include "wei/engine.hpp"
#include "wei/sim_transport.hpp"
#include "wei/workcell.hpp"
#include "wei/workflow.hpp"

using namespace sdl;
using support::Volume;

namespace {

constexpr const char* kWorkcellYaml = R"(name: my_minimal_cell
modules:
  - name: sciclops
    model: Hudson SciClops
  - name: pf400
    model: Precise PF400
  - name: ot2
    model: Opentrons OT-2
  - name: barty
    model: RPL Barty
  - name: camera
    model: Logitech webcam
)";

constexpr const char* kStageAndMixYaml = R"(name: stage_and_mix
steps:
  - name: fetch plate
    module: sciclops
    action: get_plate
  - name: fill dyes
    module: barty
    action: fill_colors
  - name: plate to deck
    module: pf400
    action: transfer
    args: {source: sciclops.exchange, target: ot2.deck}
  - name: mix one gray well
    module: ot2
    action: run_protocol
    args: {protocol: mix_colors}
  - name: plate to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: snapshot
    module: camera
    action: take_picture
)";

}  // namespace

int main() {
    support::set_log_level(support::LogLevel::Info);

    // 1. Parse the declarative workcell description.
    const wei::WorkcellConfig cell = wei::WorkcellConfig::from_yaml(kWorkcellYaml);
    std::printf("%s\n", cell.describe().c_str());

    // 2. Instantiate state and the simulated instruments named by it.
    des::Simulation sim;
    wei::PlateRegistry plates;
    wei::LocationMap locations;
    for (const char* loc : {wei::locations::kExchange, wei::locations::kCamera,
                            wei::locations::kOt2Deck, wei::locations::kTrash}) {
        locations.add_location(loc);
    }
    wei::ModuleRegistry registry;
    auto ot2 = std::make_shared<devices::Ot2Sim>(devices::Ot2Config{}, plates, locations);
    registry.add(std::make_shared<devices::SciclopsSim>(devices::SciclopsConfig{}, plates,
                                                        locations));
    registry.add(std::make_shared<devices::Pf400Sim>(devices::Pf400Config{}, locations));
    registry.add(ot2);
    registry.add(std::make_shared<devices::BartySim>(devices::BartyConfig{},
                                                     ot2->reservoirs()));
    auto camera = std::make_shared<devices::CameraSim>(devices::CameraConfig{}, plates,
                                                       locations);
    registry.add(camera);

    // 3. Parse a workflow and parameterize its ot2 step.
    wei::Workflow workflow = wei::Workflow::from_yaml(kStageAndMixYaml);
    std::vector<devices::DispenseOrder> orders(1);
    orders[0].well = 0;
    orders[0].volumes = {Volume::microliters(20.6), Volume::microliters(17.5),
                         Volume::microliters(23.4), Volume::microliters(18.5)};
    workflow = workflow.with_step_args("mix one gray well",
                                       devices::Ot2Sim::make_protocol_args(orders));

    // 4. Run it through the engine on the DES transport.
    wei::SimTransport transport(sim, registry);
    wei::EventLog log;
    wei::WorkflowEngine engine(transport, registry, log);
    const wei::WorkflowRunStats stats = engine.run(workflow);

    std::printf("\nWorkflow '%s': %d steps in %s (simulated)\n",
                workflow.name().c_str(), stats.steps_completed,
                stats.duration.pretty().c_str());
    for (const auto& step : log.steps()) {
        std::printf("  %-18s %-10s %8.1fs -> %8.1fs  (%s)\n", step.step.c_str(),
                    step.module.c_str(), step.start.to_seconds(), step.end.to_seconds(),
                    to_string(step.status));
    }
    const auto frame_id = stats.results.back().data.at("frame_id").as_int();
    std::printf("\nCamera frame %lld captured (%dx%d). Event-log JSON:\n%s\n",
                static_cast<long long>(frame_id), camera->frame(frame_id).width(),
                camera->frame(frame_id).height(),
                log.to_json().pretty().substr(0, 600).c_str());
    return 0;
}
