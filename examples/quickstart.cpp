// Quickstart: run a small closed-loop color-matching experiment on the
// simulated workcell and print what happened.
//
//   $ ./quickstart [target_r target_g target_b]
//
// This is the whole public API surface a typical user needs: configure,
// construct the app, run, inspect the outcome.
#include <cstdio>
#include <cstdlib>

#include "core/colorpicker.hpp"
#include "core/presets.hpp"
#include "metrics/metrics.hpp"
#include "support/log.hpp"

using namespace sdl;

int main(int argc, char** argv) {
    support::set_log_level(support::LogLevel::Warn);

    // 1. Configure the experiment. preset_quickstart gives a small, fast
    //    run; every field can be overridden.
    core::ColorPickerConfig config = core::preset_quickstart(/*seed=*/42);
    if (argc == 4) {
        config.target = {static_cast<std::uint8_t>(std::atoi(argv[1])),
                         static_cast<std::uint8_t>(std::atoi(argv[2])),
                         static_cast<std::uint8_t>(std::atoi(argv[3]))};
    }
    config.total_samples = 32;  // N: samples to mix and measure
    config.batch_size = 8;      // B: wells mixed per ot2 protocol

    std::printf("Matching target %s with %d samples in batches of %d...\n",
                config.target.str().c_str(), config.total_samples, config.batch_size);

    // 2. Run. The app owns a full simulated workcell: sciclops, pf400,
    //    ot2, barty, camera, the WEI engine, the vision pipeline and the
    //    publication flow.
    core::ColorPickerApp app(config);
    const core::ExperimentOutcome outcome = app.run();

    // 3. Inspect the outcome.
    std::printf("\nBest match: %s (score %.2f) using ratios [c=%.2f m=%.2f y=%.2f k=%.2f]\n",
                outcome.best_color.str().c_str(), outcome.best_score,
                outcome.best_ratios[0], outcome.best_ratios[1], outcome.best_ratios[2],
                outcome.best_ratios[3]);
    std::printf("Simulated wall time: %s | plates used: %d | batches: %d\n",
                outcome.metrics.total_time.pretty().c_str(), outcome.plates_used,
                outcome.batches_run);

    std::printf("\nSDL metrics for this run:\n%s",
                metrics::render_metrics_table(outcome.metrics).c_str());

    std::printf("\nImprovement trace (best score after each batch):\n  ");
    double last_best = -1.0;
    for (const auto& sample : outcome.samples) {
        if (sample.best_so_far != last_best) {
            std::printf("%.1f@%d ", sample.best_so_far, sample.index);
            last_best = sample.best_so_far;
        }
    }
    std::printf("\n");
    return 0;
}
