// Swapping decision procedures (§2.5): run the same experiment with each
// registered solver "without changes to other elements of the system".
//
// Declared as a CampaignSpec with a solver axis: every registered solver
// becomes one grid cell, run in parallel by the campaign layer. Seed mode
// per_replicate keeps a single shared seed (9) across the cells, so the
// solvers face identical device noise — a paired comparison.
#include <cstdio>

#include "campaign/runner.hpp"
#include "core/presets.hpp"
#include "solver/factory.hpp"
#include "support/log.hpp"
#include "support/table.hpp"

using namespace sdl;

int main() {
    support::set_log_level(support::LogLevel::Error);

    std::printf("Running N=32, B=8 with every registered solver...\n\n");

    campaign::CampaignSpec spec;
    spec.name = "shootout";
    spec.base = core::preset_quickstart(9);
    spec.base.total_samples = 32;
    spec.base.batch_size = 8;
    spec.axes.solvers = solver::solver_names();
    spec.base_seed = 9;
    spec.seed_mode = campaign::SeedMode::PerReplicate;

    const auto results = campaign::CampaignRunner().run(spec);

    support::TextTable table({"Solver", "Final best", "Best color", "Samples to < 15"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Left,
                         support::TextTable::Align::Right});
    for (const campaign::CellResult& result : results) {
        int to_threshold = -1;
        for (const auto& sample : result.outcome.samples) {
            if (sample.best_so_far < 15.0) {
                to_threshold = sample.index;
                break;
            }
        }
        table.add_row({result.cell.solver,
                       support::fmt_double(result.outcome.best_score, 2),
                       result.outcome.best_color.str(),
                       to_threshold > 0 ? std::to_string(to_threshold) : "never"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nThe oracle knows the analytic recipe (its score is pure\n"
                "measurement noise); grid/random are uninformed baselines.\n");
    return 0;
}
