// Swapping decision procedures (§2.5): run the same experiment with each
// registered solver "without changes to other elements of the system".
#include <cstdio>

#include "core/presets.hpp"
#include "solver/factory.hpp"
#include "support/log.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

using namespace sdl;

int main() {
    support::set_log_level(support::LogLevel::Error);
    const auto names = solver::solver_names();

    std::printf("Running N=32, B=8 with every registered solver...\n\n");
    const auto outcomes = support::global_pool().parallel_map(
        names.size(), [&](std::size_t i) {
            core::ColorPickerConfig config = core::preset_quickstart(9);
            config.solver = names[i];
            config.total_samples = 32;
            config.batch_size = 8;
            config.experiment_id = "shootout_" + names[i];
            return core::ColorPickerApp(config).run();
        });

    support::TextTable table({"Solver", "Final best", "Best color", "Samples to < 15"});
    table.set_alignment({support::TextTable::Align::Left, support::TextTable::Align::Right,
                         support::TextTable::Align::Left,
                         support::TextTable::Align::Right});
    for (std::size_t i = 0; i < names.size(); ++i) {
        int to_threshold = -1;
        for (const auto& sample : outcomes[i].samples) {
            if (sample.best_so_far < 15.0) {
                to_threshold = sample.index;
                break;
            }
        }
        table.add_row({names[i], support::fmt_double(outcomes[i].best_score, 2),
                       outcomes[i].best_color.str(),
                       to_threshold > 0 ? std::to_string(to_threshold) : "never"});
    }
    std::printf("%s", table.str().c_str());
    std::printf("\nThe oracle knows the analytic recipe (its score is pure\n"
                "measurement noise); grid/random are uninformed baselines.\n");
    return 0;
}
