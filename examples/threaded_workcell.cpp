// The same modules under a live message-passing control plane: every
// instrument runs its own device-server thread behind a channel, exactly
// how a deployment with real drivers would look (WEI's "commands sent to
// computers connected to devices"). Time is wall clock, scaled down so
// the demo finishes quickly; reported durations stay in modeled time.
#include <chrono>
#include <cstdio>
#include <memory>

#include "devices/barty.hpp"
#include "devices/camera.hpp"
#include "devices/ot2.hpp"
#include "devices/pf400.hpp"
#include "devices/sciclops.hpp"
#include "support/log.hpp"
#include "wei/engine.hpp"
#include "wei/thread_transport.hpp"
#include "core/workflows.hpp"

using namespace sdl;
using support::Volume;

int main() {
    support::set_log_level(support::LogLevel::Info);

    wei::PlateRegistry plates;
    wei::LocationMap locations;
    for (const char* loc : {wei::locations::kExchange, wei::locations::kCamera,
                            wei::locations::kOt2Deck, wei::locations::kTrash}) {
        locations.add_location(loc);
    }
    wei::ModuleRegistry registry;
    auto ot2 = std::make_shared<devices::Ot2Sim>(devices::Ot2Config{}, plates, locations);
    registry.add(std::make_shared<devices::SciclopsSim>(devices::SciclopsConfig{}, plates,
                                                        locations));
    registry.add(std::make_shared<devices::Pf400Sim>(devices::Pf400Config{}, locations));
    registry.add(ot2);
    registry.add(std::make_shared<devices::BartySim>(devices::BartyConfig{},
                                                     ot2->reservoirs()));
    registry.add(std::make_shared<devices::CameraSim>(devices::CameraConfig{}, plates,
                                                      locations));

    // 1 modeled second = 0.2 real milliseconds: the 340-second workflow
    // pair below takes ~70 ms of wall time.
    wei::ThreadTransport transport(registry, /*time_scale=*/2e-4);
    wei::EventLog log;
    wei::WorkflowEngine engine(transport, registry, log);

    const auto wall_start = std::chrono::steady_clock::now();
    (void)engine.run(core::wf_newplate());

    std::vector<devices::DispenseOrder> orders(4);
    for (int i = 0; i < 4; ++i) {
        orders[static_cast<std::size_t>(i)].well = i;
        orders[static_cast<std::size_t>(i)].volumes = {
            Volume::microliters(20), Volume::microliters(20), Volume::microliters(20),
            Volume::microliters(5.0 * (i + 1))};
    }
    (void)engine.run(core::wf_mixcolor().with_step_args(
        core::kMixStepName, devices::Ot2Sim::make_protocol_args(orders)));
    const auto wall_end = std::chrono::steady_clock::now();

    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall_end - wall_start).count();
    std::printf("\nModeled workcell time: %s | actual wall time: %.0f ms\n",
                (log.last_end() - log.first_start()).pretty().c_str(), wall_ms);
    std::printf("Commands completed without humans: %llu\n",
                static_cast<unsigned long long>(log.successful_commands()));
    std::printf("Per-step log (modeled seconds):\n");
    for (const auto& step : log.steps()) {
        std::printf("  %-18s %-9s %8.1fs -> %8.1fs\n", step.step.c_str(),
                    step.module.c_str(), step.start.to_seconds(), step.end.to_seconds());
    }
    return 0;
}
