// The §2.4 image-processing pipeline, step by step: render a synthetic
// camera frame, detect the fiducial marker, find wells with the Hough
// transform, align the grid, read colors — and write PPM images you can
// open to see each stage (frame + annotated detection overlay).
#include <cstdio>

#include "color/mixing.hpp"
#include "imaging/draw.hpp"
#include "imaging/fiducial.hpp"
#include "imaging/hough.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/ppm.hpp"
#include "imaging/well_reader.hpp"
#include "support/log.hpp"
#include "support/random.hpp"
#include "support/stats.hpp"

using namespace sdl;
using namespace sdl::imaging;

int main() {
    support::set_log_level(support::LogLevel::Warn);

    // A plate with a gray gradient across its 96 wells, photographed at a
    // slight angle — 60 of 96 wells filled.
    PlateScene scene;
    scene.angle_rad = 0.06;
    const color::BeerLambertMixer mixer(color::DyeLibrary::cmyk());
    std::vector<color::Rgb8> colors;
    std::vector<bool> filled(96, false);
    for (int i = 0; i < 96; ++i) {
        const double k = 0.1 + 0.8 * i / 95.0;
        const std::vector<double> ratios{0.25 * (1 - k), 0.25 * (1 - k), 0.25 * (1 - k), k};
        colors.push_back(mixer.mix_ratios(ratios));
        filled[static_cast<std::size_t>(i)] = i < 60;
    }

    support::Rng rng(21);
    const Image frame = render_plate(scene, colors, rng, &filled);
    save_ppm(frame, "vision_frame.ppm");
    std::printf("Rendered camera frame -> vision_frame.ppm (%dx%d)\n", frame.width(),
                frame.height());

    // Stage 1: fiducial marker.
    const auto markers = detect_markers(frame, MarkerDictionary::standard());
    std::printf("\nStage 1 — fiducial: %zu marker(s) found\n", markers.size());
    for (const auto& m : markers) {
        std::printf("  id=%zu center=(%.1f, %.1f) side=%.1fpx angle=%.1f deg "
                    "bit_errors=%d\n",
                    m.id, m.center.x, m.center.y, m.side, m.angle * 180.0 / 3.14159265,
                    m.bit_errors);
    }

    // Stages 2-5 via the full reader (plate region, Hough, grid, colors).
    WellReadParams params;
    params.geometry = scene.geometry;
    const WellReadout readout = read_plate(frame, params);
    if (!readout.ok) {
        std::printf("pipeline failed: %s\n", readout.error.c_str());
        return 1;
    }
    std::printf("\nStages 2-4 — wells: %zu circles from Hough, %zu wells with direct\n"
                "circle support, %zu rescued by the grid fit (residual %.2f px)\n",
                readout.hough_circles_found, readout.wells_with_circle,
                readout.wells_rescued, readout.grid_residual_px);

    // Accuracy against ground truth.
    const auto truth = true_well_centers(scene);
    double worst = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        worst = std::max(worst, distance(truth[i], readout.centers[i]));
    }
    support::OnlineStats color_err;
    for (int i = 0; i < 60; ++i) {
        color_err.add(color::rgb_distance(readout.colors[static_cast<std::size_t>(i)],
                                          colors[static_cast<std::size_t>(i)]));
    }
    std::printf("\nStage 5 — readout: worst center error %.2f px, mean color error "
                "%.2f RGB units over the 60 filled wells\n",
                worst, color_err.mean());

    // Annotated overlay: predicted centers (green) + marker corners (red).
    Image overlay = frame;
    for (const auto& center : readout.centers) {
        draw_circle(overlay, center, 3.0, {0, 220, 0});
    }
    for (const auto& m : markers) {
        for (const auto& corner : m.corners) draw_circle(overlay, corner, 4.0, {255, 40, 40});
    }
    save_ppm(overlay, "vision_overlay.ppm");
    std::printf("\nAnnotated detection overlay -> vision_overlay.ppm\n");
    return 0;
}
