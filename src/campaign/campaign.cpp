#include "campaign/campaign.hpp"

#include <map>

#include "core/config_io.hpp"
#include "core/scenario_gen.hpp"
#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "support/common.hpp"

namespace sdl::campaign {

CampaignSpec normalize(CampaignSpec spec) {
    if (spec.replicates < 1) {
        throw support::ConfigError("campaign replicates must be >= 1");
    }
    if (spec.axes.workcells.empty()) {
        spec.axes.workcells = {spec.base.workcell.scenario};
    }
    if (spec.axes.solvers.empty()) spec.axes.solvers = {spec.base.solver};
    if (spec.axes.batch_sizes.empty()) spec.axes.batch_sizes = {spec.base.batch_size};
    if (spec.axes.objectives.empty()) spec.axes.objectives = {spec.base.objective};
    if (spec.axes.targets.empty()) spec.axes.targets = {spec.base.target};
    return spec;
}

bool sweeps_workcells(const CampaignSpec& spec) {
    return !spec.axes.workcells.empty() &&
           !(spec.axes.workcells.size() == 1 &&
             spec.axes.workcells.front() == spec.base.workcell.scenario);
}

std::size_t cell_count(const CampaignSpec& spec) {
    const CampaignSpec n = normalize(spec);
    return n.axes.workcells.size() * n.axes.solvers.size() * n.axes.batch_sizes.size() *
           n.axes.objectives.size() * n.axes.targets.size() *
           static_cast<std::size_t>(n.replicates);
}

std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t index, int replicate) {
    switch (spec.seed_mode) {
        case SeedMode::PerCell: return spec.base_seed + index;
        case SeedMode::PerReplicate:
            return spec.base_seed + static_cast<std::uint64_t>(replicate);
    }
    return spec.base_seed;
}

namespace {

std::string cell_experiment_id(const CampaignSpec& spec, const CampaignCell& cell,
                               bool sweeps_workcells) {
    std::string id = spec.name;
    // The scenario segment appears only in scenario-sweeping campaigns,
    // so single-workcell campaigns keep their PR-2-era ids.
    if (sweeps_workcells) id += "_" + cell.workcell;
    return id + "_" + cell.solver + "_B" + std::to_string(cell.batch_size) + "_" +
           core::objective_to_string(cell.objective) + "_t" +
           std::to_string(cell.target.r) + "-" + std::to_string(cell.target.g) + "-" +
           std::to_string(cell.target.b) + "_r" + std::to_string(cell.replicate);
}

}  // namespace

std::vector<CampaignCell> expand_grid(const CampaignSpec& raw) {
    // A swept workcells axis re-resolves every cell's hardware through
    // the scenario registry; otherwise the base config's devices stay
    // untouched (the base may carry in-code customizations no named
    // scenario describes).
    const bool sweeping = sweeps_workcells(raw);
    const CampaignSpec spec = normalize(raw);

    std::map<std::string, core::WorkcellSpec> scenarios;
    if (sweeping) {
        // Distinct axis entries must resolve to distinct scenario names:
        // the name feeds experiment ids, whose uniqueness downstream
        // tooling relies on.
        std::map<std::string, std::string> name_to_ref;
        for (const std::string& ref : spec.axes.workcells) {
            const auto [it, inserted] = scenarios.emplace(ref, core::WorkcellSpec{});
            if (!inserted) {
                throw support::ConfigError("workcells entry '" + ref +
                                           "' is listed twice");
            }
            it->second = core::resolve_scenario(ref);
            const auto [named, fresh] = name_to_ref.emplace(it->second.name, ref);
            if (!fresh) {
                throw support::ConfigError(
                    "workcells entries '" + named->second + "' and '" + ref +
                    "' both resolve to scenario name '" + it->second.name +
                    "', which would collide in experiment ids");
            }
        }
    }

    std::vector<CampaignCell> cells;
    cells.reserve(cell_count(spec));
    for (const std::string& workcell : spec.axes.workcells) {
        for (const std::string& solver : spec.axes.solvers) {
            for (const int batch_size : spec.axes.batch_sizes) {
                for (const core::Objective objective : spec.axes.objectives) {
                    for (const color::Rgb8 target : spec.axes.targets) {
                        for (int rep = 0; rep < spec.replicates; ++rep) {
                            CampaignCell cell;
                            cell.index = cells.size();
                            cell.solver = solver;
                            cell.batch_size = batch_size;
                            cell.objective = objective;
                            cell.target = target;
                            cell.replicate = rep;

                            cell.config = spec.base;
                            if (sweeping) {
                                const core::WorkcellSpec& scenario =
                                    scenarios.at(workcell);
                                cell.config = core::apply_workcell_spec(
                                    std::move(cell.config), scenario);
                                if (core::is_generated_ref(workcell)) {
                                    cell.generated_seed =
                                        core::parse_generated_ref(workcell);
                                }
                            }
                            cell.workcell = cell.config.workcell.scenario;
                            cell.config.solver = solver;
                            cell.config.batch_size = batch_size;
                            cell.config.objective = objective;
                            cell.config.target = target;
                            cell.config.seed = cell_seed(spec, cell.index, rep);
                            cell.config.experiment_id =
                                cell_experiment_id(spec, cell, sweeping);
                            cells.push_back(std::move(cell));
                        }
                    }
                }
            }
        }
    }
    return cells;
}

}  // namespace sdl::campaign
