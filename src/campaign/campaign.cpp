#include "campaign/campaign.hpp"

#include "core/config_io.hpp"
#include "support/common.hpp"

namespace sdl::campaign {

CampaignSpec normalize(CampaignSpec spec) {
    if (spec.replicates < 1) {
        throw support::ConfigError("campaign replicates must be >= 1");
    }
    if (spec.axes.solvers.empty()) spec.axes.solvers = {spec.base.solver};
    if (spec.axes.batch_sizes.empty()) spec.axes.batch_sizes = {spec.base.batch_size};
    if (spec.axes.objectives.empty()) spec.axes.objectives = {spec.base.objective};
    if (spec.axes.targets.empty()) spec.axes.targets = {spec.base.target};
    return spec;
}

std::size_t cell_count(const CampaignSpec& spec) {
    const CampaignSpec n = normalize(spec);
    return n.axes.solvers.size() * n.axes.batch_sizes.size() * n.axes.objectives.size() *
           n.axes.targets.size() * static_cast<std::size_t>(n.replicates);
}

std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t index, int replicate) {
    switch (spec.seed_mode) {
        case SeedMode::PerCell: return spec.base_seed + index;
        case SeedMode::PerReplicate:
            return spec.base_seed + static_cast<std::uint64_t>(replicate);
    }
    return spec.base_seed;
}

namespace {

std::string cell_experiment_id(const CampaignSpec& spec, const CampaignCell& cell) {
    return spec.name + "_" + cell.solver + "_B" + std::to_string(cell.batch_size) + "_" +
           core::objective_to_string(cell.objective) + "_t" +
           std::to_string(cell.target.r) + "-" + std::to_string(cell.target.g) + "-" +
           std::to_string(cell.target.b) + "_r" + std::to_string(cell.replicate);
}

}  // namespace

std::vector<CampaignCell> expand_grid(const CampaignSpec& raw) {
    const CampaignSpec spec = normalize(raw);
    std::vector<CampaignCell> cells;
    cells.reserve(spec.axes.solvers.size() * spec.axes.batch_sizes.size() *
                  spec.axes.objectives.size() * spec.axes.targets.size() *
                  static_cast<std::size_t>(spec.replicates));
    for (const std::string& solver : spec.axes.solvers) {
        for (const int batch_size : spec.axes.batch_sizes) {
            for (const core::Objective objective : spec.axes.objectives) {
                for (const color::Rgb8 target : spec.axes.targets) {
                    for (int rep = 0; rep < spec.replicates; ++rep) {
                        CampaignCell cell;
                        cell.index = cells.size();
                        cell.solver = solver;
                        cell.batch_size = batch_size;
                        cell.objective = objective;
                        cell.target = target;
                        cell.replicate = rep;

                        cell.config = spec.base;
                        cell.config.solver = solver;
                        cell.config.batch_size = batch_size;
                        cell.config.objective = objective;
                        cell.config.target = target;
                        cell.config.seed = cell_seed(spec, cell.index, rep);
                        cell.config.experiment_id = cell_experiment_id(spec, cell);
                        cells.push_back(std::move(cell));
                    }
                }
            }
        }
    }
    return cells;
}

}  // namespace sdl::campaign
