// Campaign grids: cartesian products of experiment knobs.
//
// The paper's core claim is that the color-matching benchmark lets you
// "run multiple optimization algorithms without changes to other elements
// of the system". A CampaignSpec turns that into a first-class object: a
// base experiment config plus axes (solver x batch size x objective x
// target) and seed replicates, expanded into a deterministic list of
// fully resolved per-cell ColorPickerConfigs. CampaignRunner (runner.hpp)
// executes the cells on the thread pool; campaign_report (report.hpp)
// aggregates and serializes the results.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment_config.hpp"

namespace sdl::campaign {

/// How per-cell seeds derive from the campaign base seed.
enum class SeedMode {
    /// seed = base_seed + cell index: every cell draws its own noise
    /// streams (a sweep of independent experiments, as in Figure 4).
    PerCell,
    /// seed = base_seed + replicate: cells of the same replicate share a
    /// seed, pairing the comparison across solvers/batch sizes.
    PerReplicate,
};

/// The swept axes. An empty axis is invalid; axes you don't sweep keep
/// their single base-config value (campaign_io fills that in when the
/// grid section omits an axis).
struct CampaignAxes {
    /// Workcell scenarios: registry names or spec file paths (see
    /// core/scenarios.hpp). When the axis sweeps anything beyond the
    /// base config's own scenario, each cell's config gets its scenario
    /// applied via apply_workcell_spec before the other axes resolve; an
    /// empty axis (or one equal to just the base scenario) keeps the
    /// base's devices as-is.
    std::vector<std::string> workcells;
    std::vector<std::string> solvers;
    std::vector<int> batch_sizes;
    std::vector<core::Objective> objectives;
    std::vector<color::Rgb8> targets;
};

struct CampaignSpec {
    std::string name = "campaign";
    /// Per-cell base configuration; solver, batch_size, objective,
    /// target, seed and experiment_id are overridden per cell.
    core::ColorPickerConfig base;
    CampaignAxes axes;
    int replicates = 1;
    std::uint64_t base_seed = 1;
    SeedMode seed_mode = SeedMode::PerCell;
};

/// One expanded grid point with its fully resolved experiment config.
struct CampaignCell {
    std::size_t index = 0;  ///< position in expansion order
    std::string workcell;   ///< resolved scenario name (spec.name, not the raw ref)
    std::string solver;
    int batch_size = 1;
    core::Objective objective = core::Objective::RgbEuclidean;
    color::Rgb8 target;
    int replicate = 0;      ///< 0-based
    /// Set when the cell's workcell came from a "generated:seed=K" axis
    /// entry; reports score and record the scenario's difficulty for
    /// these cells. Reconstituted on resume by re-expanding the grid.
    std::optional<std::uint64_t> generated_seed;
    core::ColorPickerConfig config;
};

/// Returns a spec whose empty axes are filled from the base config, so
/// expand_grid always sees non-empty axes. Throws ConfigError when
/// replicates < 1.
[[nodiscard]] CampaignSpec normalize(CampaignSpec spec);

/// True when the workcells axis actually varies the hardware: anything
/// beyond (empty or just the base config's own scenario). expand_grid
/// re-resolves cell hardware exactly when this holds, and
/// campaign_to_yaml serializes the axis exactly when this holds, so
/// round-tripped specs expand identically. Normalize()-stable.
[[nodiscard]] bool sweeps_workcells(const CampaignSpec& spec);

/// Number of cells the spec expands to (after normalize()).
[[nodiscard]] std::size_t cell_count(const CampaignSpec& spec);

/// The deterministic seed of cell `index` / replicate `replicate`.
[[nodiscard]] std::uint64_t cell_seed(const CampaignSpec& spec, std::size_t index,
                                      int replicate);

/// Expands the cartesian grid in a fixed order: workcells (outermost) x
/// solvers x batch_sizes x objectives x targets x replicates (innermost).
/// The same spec always produces the same cells, seeds and experiment
/// ids. Scenario resolution (registry lookup / spec file load) happens
/// once per distinct axis entry, then applies to every matching cell.
[[nodiscard]] std::vector<CampaignCell> expand_grid(const CampaignSpec& spec);

}  // namespace sdl::campaign
