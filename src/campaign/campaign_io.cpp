#include "campaign/campaign_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/config_io.hpp"
#include "core/scenario_gen.hpp"
#include "core/scenarios.hpp"
#include "support/common.hpp"
#include "support/yaml.hpp"

namespace sdl::campaign {

namespace json = support::json;

using core::reject_unknown_keys;

namespace {

SeedMode seed_mode_from_string(const std::string& name) {
    if (name == "per_cell") return SeedMode::PerCell;
    if (name == "per_replicate") return SeedMode::PerReplicate;
    throw support::ConfigError("unknown seed_mode '" + name +
                               "' (expected per_cell | per_replicate)");
}

const char* seed_mode_to_string(SeedMode mode) {
    return mode == SeedMode::PerReplicate ? "per_replicate" : "per_cell";
}

}  // namespace

namespace {

CampaignSpec campaign_from_doc(const json::Value& doc) {
    if (!doc.is_object()) {
        throw support::ConfigError("campaign file must be a YAML mapping");
    }
    const json::Value* campaign = doc.find("campaign");
    if (campaign == nullptr) {
        throw support::ConfigError(
            "campaign file must have a 'campaign' section (a plain experiment "
            "file runs with sdlbench_run <file>, not --campaign)");
    }

    CampaignSpec spec;
    reject_unknown_keys(*campaign, {"name", "replicates", "base_seed", "seed_mode"},
                        "campaign");
    spec.name = campaign->get_or("name", spec.name);
    spec.replicates =
        static_cast<int>(campaign->get_or("replicates", std::int64_t{spec.replicates}));
    spec.base_seed = static_cast<std::uint64_t>(
        campaign->get_or("base_seed", static_cast<std::int64_t>(spec.base_seed)));
    if (const json::Value* mode = campaign->find("seed_mode")) {
        spec.seed_mode = seed_mode_from_string(mode->as_string());
    }

    if (const json::Value* grid = doc.find("grid")) {
        reject_unknown_keys(
            *grid, {"workcells", "solvers", "batch_sizes", "objectives", "targets"},
            "grid");
        if (const json::Value* workcells = grid->find("workcells")) {
            for (const json::Value& w : workcells->as_array()) {
                // "generated:seed=K..M" fans out to one entry per seed;
                // other refs pass through unchanged. Overlapping ranges
                // produce duplicate entries, which expand_grid rejects
                // by name.
                for (std::string& ref : core::expand_generated_refs(w.as_string())) {
                    spec.axes.workcells.push_back(std::move(ref));
                }
            }
        }
        if (const json::Value* solvers = grid->find("solvers")) {
            for (const json::Value& s : solvers->as_array()) {
                spec.axes.solvers.push_back(s.as_string());
            }
        }
        if (const json::Value* batches = grid->find("batch_sizes")) {
            for (const json::Value& b : batches->as_array()) {
                spec.axes.batch_sizes.push_back(static_cast<int>(b.as_int()));
            }
        }
        if (const json::Value* objectives = grid->find("objectives")) {
            for (const json::Value& o : objectives->as_array()) {
                spec.axes.objectives.push_back(core::objective_from_string(o.as_string()));
            }
        }
        if (const json::Value* targets = grid->find("targets")) {
            for (const json::Value& t : targets->as_array()) {
                spec.axes.targets.push_back(core::rgb_from_doc(t, "grid.targets entry"));
            }
        }
    }

    // Everything else is the per-cell base configuration, in the plain
    // experiment-file schema.
    json::Value base_doc = json::Value::object();
    for (const auto& [key, value] : doc.as_object()) {
        if (key == "campaign" || key == "grid") continue;
        base_doc.set(key, value);
    }
    spec.base = core::config_from_doc(base_doc);
    return normalize(std::move(spec));
}

}  // namespace

CampaignSpec campaign_from_yaml(std::string_view text) {
    return campaign_from_doc(support::yaml::parse(text));
}

CampaignSpec campaign_from_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw support::Error("io", "cannot open campaign file '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    json::Value doc = support::yaml::parse(buffer.str());
    // Scenario spec-file references — grid.workcells entries and the base
    // config's workcell.scenario — are written relative to the campaign
    // file, not to wherever the process happens to run. Rebase before
    // parsing: the base section resolves its scenario during parsing.
    const std::string base_dir = std::filesystem::path(path).parent_path().string();
    if (doc.is_object()) {
        if (json::Value* grid = doc.as_object().find("grid")) {
            if (grid->is_object()) {
                if (json::Value* workcells = grid->as_object().find("workcells")) {
                    if (workcells->is_array()) {
                        for (json::Value& ref : workcells->as_array()) {
                            ref = core::rebase_scenario_ref(ref.as_string(), base_dir);
                        }
                    }
                }
            }
        }
        if (json::Value* workcell = doc.as_object().find("workcell")) {
            if (const json::Value* scenario = workcell->find("scenario")) {
                workcell->set("scenario", core::rebase_scenario_ref(
                                              scenario->as_string(), base_dir));
            }
        }
    }
    return campaign_from_doc(doc);
}

std::string campaign_to_yaml(const CampaignSpec& raw) {
    const CampaignSpec spec = normalize(raw);
    json::Value doc = json::Value::object();

    json::Value campaign = json::Value::object();
    campaign.set("name", spec.name);
    campaign.set("replicates", spec.replicates);
    campaign.set("base_seed", static_cast<std::int64_t>(spec.base_seed));
    campaign.set("seed_mode", seed_mode_to_string(spec.seed_mode));
    doc.set("campaign", std::move(campaign));

    json::Value grid = json::Value::object();
    // A non-sweeping workcells axis stays implicit — expand_grid ignores
    // it, and a custom spec's name would not resolve through the
    // registry on reparse.
    if (sweeps_workcells(spec)) {
        json::Value workcells = json::Value::array();
        for (const std::string& w : spec.axes.workcells) workcells.push_back(w);
        grid.set("workcells", std::move(workcells));
    }
    json::Value solvers = json::Value::array();
    for (const std::string& s : spec.axes.solvers) solvers.push_back(s);
    grid.set("solvers", std::move(solvers));
    json::Value batches = json::Value::array();
    for (const int b : spec.axes.batch_sizes) batches.push_back(b);
    grid.set("batch_sizes", std::move(batches));
    json::Value objectives = json::Value::array();
    for (const core::Objective o : spec.axes.objectives) {
        objectives.push_back(core::objective_to_string(o));
    }
    grid.set("objectives", std::move(objectives));
    json::Value targets = json::Value::array();
    for (const color::Rgb8 t : spec.axes.targets) {
        json::Value triple = json::Value::array();
        triple.push_back(static_cast<std::int64_t>(t.r));
        triple.push_back(static_cast<std::int64_t>(t.g));
        triple.push_back(static_cast<std::int64_t>(t.b));
        targets.push_back(std::move(triple));
    }
    grid.set("targets", std::move(targets));
    doc.set("grid", std::move(grid));

    const json::Value base_doc = core::config_to_doc(spec.base);
    for (const auto& [key, value] : base_doc.as_object()) {
        doc.set(key, value);
    }
    return support::yaml::dump(doc);
}

}  // namespace sdl::campaign
