// Campaign YAML I/O — the declarative form of a CampaignSpec.
//
// A campaign file is an experiment file plus two extra sections:
//
//   campaign:
//     name: fig4_grid          # optional; also the result-id prefix
//     replicates: 2            # optional, default 1
//     base_seed: 100           # optional, default 1
//     seed_mode: per_cell      # per_cell (default) | per_replicate
//   grid:                      # every axis optional; omitted axes keep
//     workcells: [baseline, degraded]     # ...the base-config value
//     solvers: [genetic, bayesian]        # (workcells: scenario names or
//     batch_sizes: [1, 8, 64]             #  workcell spec file paths)
//     objectives: [rgb, de2000]
//     targets: [[120, 120, 120], [200, 40, 80]]
//   experiment:                # the usual single-experiment document
//     total_samples: 128       # (config_io schema); solver, batch_size,
//   plate:                     # objective, target, seed and id are
//     rows: 8                  # overridden per cell by the grid
//     cols: 12
//
// Unknown keys raise ConfigError so typos fail loudly.
#pragma once

#include <string>
#include <string_view>

#include "campaign/campaign.hpp"

namespace sdl::campaign {

/// Parses a campaign document (the `campaign:` section is what marks a
/// file as a campaign; it may be empty but must be present).
[[nodiscard]] CampaignSpec campaign_from_yaml(std::string_view text);

/// Loads a campaign spec from a file path.
[[nodiscard]] CampaignSpec campaign_from_file(const std::string& path);

/// Serializes a spec back to YAML (inverse of campaign_from_yaml for the
/// documented subset).
[[nodiscard]] std::string campaign_to_yaml(const CampaignSpec& spec);

}  // namespace sdl::campaign
