#include "campaign/checkpoint.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/campaign_io.hpp"
#include "campaign/report.hpp"
#include "core/config_io.hpp"
#include "support/common.hpp"

namespace sdl::campaign {

namespace json = support::json;

std::string journal_path(const std::string& out_dir) {
    return out_dir + "/cells.jsonl";
}

// ------------------------------------------------------------------ shard

std::string Shard::str() const {
    return std::to_string(index + 1) + "/" + std::to_string(count);
}

Shard Shard::parse(const std::string& text) {
    const std::size_t slash = text.find('/');
    std::size_t i = 0;
    std::size_t n = 0;
    try {
        if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
            throw std::invalid_argument("shape");
        }
        std::size_t parsed = 0;
        i = std::stoul(text.substr(0, slash), &parsed);
        if (parsed != slash) throw std::invalid_argument("index");
        const std::string rest = text.substr(slash + 1);
        n = std::stoul(rest, &parsed);
        if (parsed != rest.size()) throw std::invalid_argument("count");
    } catch (const std::exception&) {
        throw support::ConfigError("bad shard '" + text +
                                   "' (expected i/N, e.g. --shard 1/3)");
    }
    if (n == 0 || i == 0 || i > n) {
        throw support::ConfigError("shard '" + text + "' out of range: i must be in [1, " +
                                   (n == 0 ? std::string("N") : std::to_string(n)) + "]");
    }
    return Shard{i - 1, n};
}

// ---------------------------------------------------------------- digests

namespace {

std::string fnv1a_hex(std::string_view text) {
    std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ULL;  // FNV prime
    }
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, h);
    return buf;
}

color::Rgb8 rgb_from_json(const json::Value& v) {
    const json::Array& a = v.as_array();
    support::check(a.size() == 3, "journal rgb triple must have 3 entries");
    return color::Rgb8{support::narrow<std::uint8_t>(a[0].as_int()),
                       support::narrow<std::uint8_t>(a[1].as_int()),
                       support::narrow<std::uint8_t>(a[2].as_int())};
}

// The journal stores the outcome in native units — durations in seconds,
// doubles in shortest-round-trip text (the JSON writer's format) — so
// outcome_from_json(outcome_to_json(o)) reproduces every field bit for
// bit, which is what makes resumed/merged reports byte-identical.
json::Value outcome_to_json(const core::ExperimentOutcome& outcome) {
    json::Value doc = json::Value::object();
    doc.set("experiment_id", outcome.experiment_id);
    json::Value samples = json::Value::array();
    for (const core::SamplePoint& s : outcome.samples) {
        json::Value point = json::Value::object();
        point.set("index", s.index);
        point.set("elapsed_min", s.elapsed_minutes);
        point.set("score", s.score);
        point.set("best_so_far", s.best_so_far);
        json::Value ratios = json::Value::array();
        for (const double r : s.ratios) ratios.push_back(r);
        point.set("ratios", std::move(ratios));
        point.set("measured", rgb_to_json(s.measured));
        samples.push_back(std::move(point));
    }
    doc.set("samples", std::move(samples));
    doc.set("best_score", outcome.best_score);
    json::Value best_ratios = json::Value::array();
    for (const double r : outcome.best_ratios) best_ratios.push_back(r);
    doc.set("best_ratios", std::move(best_ratios));
    doc.set("best_color", rgb_to_json(outcome.best_color));
    doc.set("reached_threshold", outcome.reached_threshold);

    const metrics::SdlMetrics& m = outcome.metrics;
    json::Value met = json::Value::object();
    met.set("time_without_humans_s", m.time_without_humans.to_seconds());
    met.set("commands_completed", static_cast<std::int64_t>(m.commands_completed));
    met.set("synthesis_s", m.synthesis_time.to_seconds());
    met.set("transfer_s", m.transfer_time.to_seconds());
    met.set("total_s", m.total_time.to_seconds());
    met.set("total_colors", m.total_colors);
    met.set("time_per_color_s", m.time_per_color.to_seconds());
    met.set("mean_upload_interval_s", m.mean_upload_interval.to_seconds());
    met.set("interventions", m.interventions);
    doc.set("metrics", std::move(met));

    doc.set("plates_used", outcome.plates_used);
    doc.set("replenishes", outcome.replenishes);
    doc.set("batches_run", outcome.batches_run);
    doc.set("frame_retakes", outcome.frame_retakes);
    // Conditional so journals from clog-free runs keep their exact bytes
    // (the resume round trip diffs them byte for byte).
    if (outcome.reprimes > 0) doc.set("reprimes", outcome.reprimes);
    doc.set("wells_rescued_total", static_cast<std::int64_t>(outcome.wells_rescued_total));
    doc.set("mean_grid_residual_px", outcome.mean_grid_residual_px);
    return doc;
}

core::ExperimentOutcome outcome_from_json(const json::Value& doc) {
    core::ExperimentOutcome outcome;
    outcome.experiment_id = doc.at("experiment_id").as_string();
    for (const json::Value& point : doc.at("samples").as_array()) {
        core::SamplePoint s;
        s.index = static_cast<int>(point.at("index").as_int());
        s.elapsed_minutes = point.at("elapsed_min").as_double();
        s.score = point.at("score").as_double();
        s.best_so_far = point.at("best_so_far").as_double();
        for (const json::Value& r : point.at("ratios").as_array()) {
            s.ratios.push_back(r.as_double());
        }
        s.measured = rgb_from_json(point.at("measured"));
        outcome.samples.push_back(std::move(s));
    }
    outcome.best_score = doc.at("best_score").as_double();
    for (const json::Value& r : doc.at("best_ratios").as_array()) {
        outcome.best_ratios.push_back(r.as_double());
    }
    outcome.best_color = rgb_from_json(doc.at("best_color"));
    outcome.reached_threshold = doc.at("reached_threshold").as_bool();

    const json::Value& met = doc.at("metrics");
    metrics::SdlMetrics& m = outcome.metrics;
    m.time_without_humans =
        support::Duration::seconds(met.at("time_without_humans_s").as_double());
    m.commands_completed =
        static_cast<std::uint64_t>(met.at("commands_completed").as_int());
    m.synthesis_time = support::Duration::seconds(met.at("synthesis_s").as_double());
    m.transfer_time = support::Duration::seconds(met.at("transfer_s").as_double());
    m.total_time = support::Duration::seconds(met.at("total_s").as_double());
    m.total_colors = static_cast<int>(met.at("total_colors").as_int());
    m.time_per_color = support::Duration::seconds(met.at("time_per_color_s").as_double());
    m.mean_upload_interval =
        support::Duration::seconds(met.at("mean_upload_interval_s").as_double());
    m.interventions = static_cast<int>(met.at("interventions").as_int());

    outcome.plates_used = static_cast<int>(doc.at("plates_used").as_int());
    outcome.replenishes = static_cast<int>(doc.at("replenishes").as_int());
    outcome.batches_run = static_cast<int>(doc.at("batches_run").as_int());
    outcome.frame_retakes = static_cast<int>(doc.at("frame_retakes").as_int());
    outcome.reprimes = static_cast<int>(doc.get_or("reprimes", std::int64_t{0}));
    outcome.wells_rescued_total =
        static_cast<std::size_t>(doc.at("wells_rescued_total").as_int());
    outcome.mean_grid_residual_px = doc.at("mean_grid_residual_px").as_double();
    return outcome;
}

}  // namespace

std::string spec_digest(const CampaignSpec& spec) {
    return fnv1a_hex(campaign_to_yaml(spec));
}

std::string cell_digest(const CampaignCell& cell) {
    return fnv1a_hex(core::config_to_yaml(cell.config));
}

// ---------------------------------------------------------------- records

json::Value journal_header(const CampaignSpec& spec, std::size_t cells_total,
                           Shard shard) {
    json::Value doc = json::Value::object();
    doc.set("schema", std::string(kJournalSchema));
    doc.set("campaign", spec.name);
    doc.set("spec_digest", spec_digest(spec));
    doc.set("cells_total", static_cast<std::int64_t>(cells_total));
    doc.set("shard_index", static_cast<std::int64_t>(shard.index));
    doc.set("shard_count", static_cast<std::int64_t>(shard.count));
    return doc;
}

json::Value cell_record_to_json(const CellResult& result) {
    json::Value doc = json::Value::object();
    doc.set("schema", std::string(kCellRecordSchema));
    doc.set("cell_index", static_cast<std::int64_t>(result.cell.index));
    doc.set("experiment_id", result.cell.config.experiment_id);
    doc.set("config_digest", cell_digest(result.cell));
    // Host wall time: useful for shard balancing, excluded from reports.
    doc.set("wall_seconds", result.wall_seconds);
    doc.set("outcome", outcome_to_json(result.outcome));
    return doc;
}

// ---------------------------------------------------------------- journal

namespace {

support::AppendWriter start_journal(const std::string& out_dir,
                                    const CampaignSpec& spec, std::size_t cells_total,
                                    Shard shard) {
    const std::string path = journal_path(out_dir);
    support::atomic_write(path, journal_header(spec, cells_total, shard).dump() + "\n");
    return support::AppendWriter(path);
}

}  // namespace

CheckpointJournal::CheckpointJournal(support::AppendWriter writer)
    : writer_(std::move(writer)) {}

CheckpointJournal::CheckpointJournal(const std::string& out_dir,
                                     const CampaignSpec& spec, std::size_t cells_total,
                                     Shard shard)
    : writer_(start_journal(out_dir, spec, cells_total, shard)) {}

CheckpointJournal CheckpointJournal::reopen(const std::string& out_dir) {
    return CheckpointJournal(support::AppendWriter(journal_path(out_dir)));
}

void CheckpointJournal::append(const CellResult& result) {
    writer_.append_line(cell_record_to_json(result).dump());
}

// ------------------------------------------------------------------ load

namespace {

[[noreturn]] void reject(const std::string& path, const std::string& why) {
    throw support::ConfigError("journal '" + path + "': " + why);
}

}  // namespace

std::size_t journal_progress(const std::string& path,
                             const CampaignSpec& spec) noexcept {
    try {
        std::ifstream file(path, std::ios::binary);
        if (!file) return 0;
        std::ostringstream buffer;
        buffer << file.rdbuf();
        const std::string text = buffer.str();
        // Only '\n'-terminated lines count: a torn final fragment (kill
        // mid-append) is not a completed record — counting it would let
        // an almost-finished crashed run masquerade as complete.
        std::vector<std::string> lines;
        std::size_t start = 0;
        for (std::size_t nl = text.find('\n', start); nl != std::string::npos;
             start = nl + 1, nl = text.find('\n', start)) {
            lines.push_back(text.substr(start, nl - start));
        }
        if (lines.empty()) return 0;
        const json::Value header = json::parse(lines.front());
        if (header.get_or("schema", std::string()) != kJournalSchema ||
            header.get_or("spec_digest", std::string()) != spec_digest(spec)) {
            return 0;
        }
        std::size_t records = 0;
        for (std::size_t i = 1; i < lines.size(); ++i) {
            if (!lines[i].empty()) ++records;
        }
        // A journal that already covers its whole slice is a finished
        // run: rerunning reproduces it, nothing is lost by truncation.
        const auto cells_total =
            static_cast<std::size_t>(header.get_or("cells_total", std::int64_t{0}));
        const auto shard_count =
            static_cast<std::size_t>(header.get_or("shard_count", std::int64_t{1}));
        const auto shard_index =
            static_cast<std::size_t>(header.get_or("shard_index", std::int64_t{0}));
        if (shard_count == 0 || shard_index >= shard_count) return records;
        const Shard shard{shard_index, shard_count};
        std::size_t expected = 0;
        for (std::size_t i = 0; i < cells_total; ++i) {
            if (shard.contains(i)) ++expected;
        }
        return records >= expected ? 0 : records;
    } catch (...) {
        return 0;
    }
}

Shard validate_journal_header(const std::string& line, const CampaignSpec& spec,
                              std::size_t grid_cells, const std::string& path) {
    json::Value header;
    try {
        header = json::parse(line);
    } catch (const support::Error& e) {
        reject(path, std::string("corrupt header record: ") + e.what());
    }
    if (header.get_or("schema", std::string()) != kJournalSchema) {
        reject(path, "unexpected header schema '" +
                         header.get_or("schema", std::string("<missing>")) +
                         "' (expected " + std::string(kJournalSchema) + ")");
    }
    const std::string expected_digest = spec_digest(spec);
    const std::string found_digest = header.get_or("spec_digest", std::string());
    if (found_digest != expected_digest) {
        reject(path, "spec digest mismatch: journal was written for spec " +
                         found_digest + ", but this campaign file digests to " +
                         expected_digest +
                         " — resuming/merging across different specs is not allowed");
    }
    const auto cells_total =
        static_cast<std::size_t>(header.get_or("cells_total", std::int64_t{0}));
    if (cells_total != grid_cells) {
        reject(path, "cell count mismatch: journal expects " +
                         std::to_string(cells_total) + " cells, grid expands to " +
                         std::to_string(grid_cells));
    }
    Shard shard;
    shard.index = static_cast<std::size_t>(header.get_or("shard_index", std::int64_t{0}));
    shard.count = static_cast<std::size_t>(header.get_or("shard_count", std::int64_t{1}));
    if (shard.count == 0 || shard.index >= shard.count) {
        reject(path, "invalid shard " + std::to_string(shard.index) + "/" +
                         std::to_string(shard.count) + " in header");
    }
    return shard;
}

CellResult parse_cell_record(const std::string& line,
                             const std::vector<CampaignCell>& grid,
                             const std::string& path) {
    const json::Value record = json::parse(line);  // throws on corrupt JSON
    if (record.get_or("schema", std::string()) != kCellRecordSchema) {
        reject(path, "unexpected record schema '" +
                         record.get_or("schema", std::string("<missing>")) + "'");
    }
    const auto index = static_cast<std::size_t>(record.at("cell_index").as_int());
    if (index >= grid.size()) {
        reject(path, "cell index " + std::to_string(index) + " out of range (grid has " +
                         std::to_string(grid.size()) + " cells)");
    }
    const CampaignCell& cell = grid[index];
    const std::string digest = record.at("config_digest").as_string();
    if (digest != cell_digest(cell)) {
        reject(path, "cell " + std::to_string(index) + " config digest mismatch (journal " +
                         digest + ", re-expanded grid " + cell_digest(cell) + ")");
    }
    const std::string id = record.at("experiment_id").as_string();
    if (id != cell.config.experiment_id) {
        reject(path, "cell " + std::to_string(index) + " experiment id mismatch ('" + id +
                         "' vs '" + cell.config.experiment_id + "')");
    }
    CellResult result;
    result.cell = cell;
    result.outcome = outcome_from_json(record.at("outcome"));
    result.wall_seconds = record.get_or("wall_seconds", 0.0);
    return result;
}

LoadedJournal load_journal(const std::string& path, const CampaignSpec& spec,
                           const std::vector<CampaignCell>& grid) {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw support::Error("io", "cannot open journal '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();

    // Split into lines; a final fragment without '\n' is the torn tail a
    // kill mid-append leaves behind.
    std::vector<std::string> lines;
    std::string torn_tail;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) {
            torn_tail = text.substr(start);
            break;
        }
        lines.push_back(text.substr(start, nl - start));
        start = nl + 1;
    }
    if (lines.empty()) {
        reject(path, torn_tail.empty()
                         ? "journal is empty"
                         : "header record is truncated — the run died before "
                           "checkpointing anything; start fresh without --resume");
    }

    LoadedJournal loaded;
    loaded.shard = validate_journal_header(lines.front(), spec, grid.size(), path);
    loaded.cells_total = grid.size();
    loaded.lines.push_back(lines.front());

    std::vector<bool> seen(grid.size(), false);
    const auto load_record = [&](const std::string& line) {
        CellResult result = parse_cell_record(line, grid, path);
        const std::size_t index = result.cell.index;
        if (!loaded.shard.contains(index)) {
            reject(path, "cell " + std::to_string(index) + " does not belong to shard " +
                             loaded.shard.str());
        }
        if (seen[index]) {
            reject(path, "cell " + std::to_string(index) + " recorded twice");
        }
        seen[index] = true;
        loaded.cells.push_back(std::move(result));
        loaded.lines.push_back(line);
    };

    for (std::size_t i = 1; i < lines.size(); ++i) {
        try {
            load_record(lines[i]);
        } catch (const support::ConfigError&) {
            throw;  // validation failures are always loud
        } catch (const support::Error& e) {
            // Corrupt JSON mid-journal means real corruption; only the
            // final complete-line slot could plausibly be a torn write
            // that still ended in '\n' (it cannot — appends are single
            // writes) — stay strict.
            reject(path, "corrupt record on line " + std::to_string(i + 1) + ": " +
                             e.what());
        }
    }
    if (!torn_tail.empty()) loaded.dropped_torn_tail = true;
    return loaded;
}

// ----------------------------------------------------------------- merge

std::vector<CellResult> merge_journals(const std::vector<std::string>& journal_paths,
                                       const CampaignSpec& spec) {
    support::check(!journal_paths.empty(), "merge_journals needs at least one journal");
    const std::vector<CampaignCell> grid = expand_grid(spec);

    std::vector<CellResult> merged;
    merged.reserve(grid.size());
    // Which journal claimed each cell (for the overlap message).
    std::vector<std::ptrdiff_t> owner(grid.size(), -1);
    for (std::size_t j = 0; j < journal_paths.size(); ++j) {
        LoadedJournal loaded = load_journal(journal_paths[j], spec, grid);
        for (CellResult& result : loaded.cells) {
            const std::size_t index = result.cell.index;
            if (owner[index] >= 0) {
                throw support::ConfigError(
                    "overlapping shards: cell " + std::to_string(index) +
                    " appears in both '" +
                    journal_paths[static_cast<std::size_t>(owner[index])] + "' and '" +
                    journal_paths[j] + "'");
            }
            owner[index] = static_cast<std::ptrdiff_t>(j);
            merged.push_back(std::move(result));
        }
    }

    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < grid.size(); ++i) {
        if (owner[i] < 0) missing.push_back(i);
    }
    if (!missing.empty()) {
        std::string sample;
        for (std::size_t i = 0; i < missing.size() && i < 8; ++i) {
            if (!sample.empty()) sample += ", ";
            sample += std::to_string(missing[i]);
        }
        throw support::ConfigError(
            "incomplete merge: " + std::to_string(missing.size()) + " of " +
            std::to_string(grid.size()) + " cells missing (e.g. " + sample +
            ") — a shard is absent or was interrupted; finish it (--resume) first");
    }

    std::sort(merged.begin(), merged.end(), [](const CellResult& a, const CellResult& b) {
        return a.cell.index < b.cell.index;
    });
    return merged;
}

}  // namespace sdl::campaign
