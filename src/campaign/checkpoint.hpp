// Campaign checkpointing: a durable per-cell journal that makes campaign
// execution fault-tolerant (resume after a crash) and horizontally
// scalable (shard one grid across machines, merge the journals).
//
// As each cell finishes, CampaignRunner's completion hook appends one
// self-describing JSONL record ("sdlbench.cell_result.v1") to
// <out_dir>/cells.jsonl through support::AppendWriter, so a killed run
// preserves every completed cell. The journal opens with a header record
// ("sdlbench.campaign_journal.v1") carrying a digest of the normalized
// campaign spec plus the shard slice; loading re-expands the grid,
// rejects digest mismatches loudly, validates every record against its
// expanded cell, and drops a torn final line (the only damage a kill can
// inflict, by the O_APPEND one-write-per-record discipline).
//
// Everything journaled is modeled time in native units (seconds), and
// both the journal and the reports serialize doubles in shortest
// round-trip form — so a resumed or shard-merged campaign.json is
// byte-identical to an uninterrupted single run.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/runner.hpp"
#include "support/atomic_io.hpp"
#include "support/json.hpp"

namespace sdl::campaign {

inline constexpr std::string_view kJournalSchema = "sdlbench.campaign_journal.v1";
inline constexpr std::string_view kCellRecordSchema = "sdlbench.cell_result.v1";

/// <out_dir>/cells.jsonl — where a campaign run keeps its journal.
[[nodiscard]] std::string journal_path(const std::string& out_dir);

/// A deterministic round-robin slice of the expanded grid: shard i of N
/// owns every cell whose index ≡ i (mod N). The default {0, 1} is the
/// whole grid.
struct Shard {
    std::size_t index = 0;  ///< 0-based
    std::size_t count = 1;

    [[nodiscard]] bool contains(std::size_t cell_index) const noexcept {
        return cell_index % count == index;
    }
    [[nodiscard]] bool is_whole() const noexcept { return count == 1; }
    /// "i/N" with a 1-based i, matching the CLI flag.
    [[nodiscard]] std::string str() const;
    /// Parses "i/N" (1-based i in [1, N]). Throws ConfigError on
    /// malformed text or an out-of-range shard.
    [[nodiscard]] static Shard parse(const std::string& text);

    friend bool operator==(const Shard& a, const Shard& b) noexcept {
        return a.index == b.index && a.count == b.count;
    }
};

/// Digest of the normalized spec (FNV-1a 64 over its canonical YAML
/// form). Two runs may be resumed into / merged with each other exactly
/// when their digests agree.
[[nodiscard]] std::string spec_digest(const CampaignSpec& spec);

/// Digest of one expanded cell's fully resolved config — the per-record
/// guard that a journal entry still matches the re-expanded grid.
[[nodiscard]] std::string cell_digest(const CampaignCell& cell);

/// The journal header record (first line of cells.jsonl).
[[nodiscard]] support::json::Value journal_header(const CampaignSpec& spec,
                                                  std::size_t cells_total, Shard shard);

/// One finished cell as a self-describing journal record: cell index,
/// experiment id, config digest, host wall seconds, and the full outcome
/// in native (seconds) units so it reconstructs losslessly.
[[nodiscard]] support::json::Value cell_record_to_json(const CellResult& result);

/// Append side of the journal. Construction starts a fresh journal
/// (header written atomically, truncating any previous one); reopen()
/// continues an existing, already-compacted journal after a resume.
class CheckpointJournal {
public:
    CheckpointJournal(const std::string& out_dir, const CampaignSpec& spec,
                      std::size_t cells_total, Shard shard = {});

    [[nodiscard]] static CheckpointJournal reopen(const std::string& out_dir);

    /// Appends one cell record (single O_APPEND write + flush).
    void append(const CellResult& result);

private:
    explicit CheckpointJournal(support::AppendWriter writer);

    support::AppendWriter writer_;
};

/// A validated journal, ready to resume from or merge.
struct LoadedJournal {
    Shard shard;
    std::size_t cells_total = 0;
    /// Validated cells in journal (completion) order, each reattached to
    /// its re-expanded CampaignCell.
    std::vector<CellResult> cells;
    /// True when a torn final line (kill mid-append) was discarded.
    bool dropped_torn_tail = false;
    /// Header + every valid record line — rewrite these (atomically) to
    /// compact a torn journal before appending to it again.
    std::vector<std::string> lines;
};

/// Parses and validates a journal header line against `spec` (schema +
/// spec digest) and the expanded grid size; returns the journal's shard.
/// Throws ConfigError naming `path` on any mismatch. The header half of
/// load_journal, exposed for incremental readers (the fleet coordinator
/// tails worker journals line by line as acks arrive).
[[nodiscard]] Shard validate_journal_header(const std::string& line,
                                            const CampaignSpec& spec,
                                            std::size_t grid_cells,
                                            const std::string& path);

/// Parses and validates one cell record line against the re-expanded
/// grid: record schema, cell index range, per-cell config digest, and
/// experiment id must all match. Throws ConfigError naming `path` on a
/// validation failure and Error("json") on corrupt JSON. Duplicate and
/// shard-membership checks remain the caller's (they need cross-record
/// state). The record half of load_journal, exposed for the same
/// incremental readers.
[[nodiscard]] CellResult parse_cell_record(const std::string& line,
                                           const std::vector<CampaignCell>& grid,
                                           const std::string& path);

/// Number of cell records in the journal at `path` IF it belongs to
/// `spec` (header parses, spec digest matches) and is an *incomplete*
/// run — i.e. progress a fresh run would destroy; 0 otherwise. A
/// missing file, a foreign spec, an unreadable header, and a journal
/// that already covers its whole slice (a finished run, safe to redo)
/// all count as "nothing to protect". The cheap guard `sdlbench_run`
/// uses to refuse to truncate real progress when `--resume` was
/// forgotten.
[[nodiscard]] std::size_t journal_progress(const std::string& path,
                                           const CampaignSpec& spec) noexcept;

/// Reads and validates `path` against the re-expanded `grid` of `spec`.
/// Loud failures (ConfigError): spec-digest or cell-count mismatch,
/// schema mismatch, a record whose config digest or experiment id does
/// not match its grid cell, duplicate or out-of-shard cell indices, or a
/// corrupt record that is not the torn final line. The torn final line of
/// a killed run is silently dropped (reported via dropped_torn_tail).
[[nodiscard]] LoadedJournal load_journal(const std::string& path,
                                         const CampaignSpec& spec,
                                         const std::vector<CampaignCell>& grid);

/// Fuses shard journals into one complete result set, sorted by cell
/// index — the merge side of `--shard`. Every journal is validated with
/// load_journal; overlapping cells (two journals claiming one index) and
/// incomplete coverage (missing cells, e.g. a shard that never finished)
/// are rejected loudly with the offending journal named. The returned
/// vector is byte-for-byte equivalent input to campaign_results_to_json
/// as a single uninterrupted run.
[[nodiscard]] std::vector<CellResult> merge_journals(
    const std::vector<std::string>& journal_paths, const CampaignSpec& spec);

}  // namespace sdl::campaign
