#include "campaign/cost_model.hpp"

#include <algorithm>
#include <numeric>

namespace sdl::campaign {

namespace {

// Per-proposal compute weight relative to "random" = 1. The GP solver
// additionally scales with the observation count (below); the others
// are flat per proposal.
double solver_weight(const std::string& solver) {
    if (solver == "bayesian") return 8.0;
    if (solver == "genetic") return 2.0;
    if (solver == "anneal" || solver == "pattern") return 1.5;
    return 1.0;  // random, grid, oracle, unknown
}

}  // namespace

double expected_cell_cost(const CampaignCell& cell) {
    const double samples = std::max(1, cell.config.total_samples);
    const double batch = std::max(1, cell.batch_size);
    const double batches = (samples + batch - 1.0) / batch;  // ceil
    double per_sample = solver_weight(cell.solver);
    if (cell.solver == "bayesian") {
        // GP fit + candidate scoring climb with n; average over the run.
        per_sample *= 1.0 + samples / 64.0;
    }
    // Every batch is a synthesize -> render -> read cycle with a fixed
    // vision/workcell overhead that dwarfs one proposal's solver cost.
    constexpr double kBatchOverhead = 24.0;
    return samples * per_sample + batches * kBatchOverhead;
}

std::vector<std::size_t> schedule_order(const std::vector<CampaignCell>& cells) {
    std::vector<double> cost(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) cost[i] = expected_cell_cost(cells[i]);
    std::vector<std::size_t> order(cells.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return cost[a] > cost[b];  // stable: equal costs keep position order
    });
    return order;
}

}  // namespace sdl::campaign
