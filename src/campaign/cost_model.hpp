// Cost-model cell ordering: claim expensive cells first.
//
// A campaign grid's cells differ wildly in wall cost — a bayesian cell
// at N=128 pays O(n^2)-and-up GP refits per batch while a random cell
// just draws; a B=1 cell runs 128 full plate-read cycles where B=64
// runs two. Whoever schedules cells (the in-process pool in
// CampaignRunner, the fleet's lease table) should start the
// longest-expected cells first so the makespan tail is short: the
// classic longest-processing-time (LPT) greedy, which is within 4/3 of
// the optimal makespan on identical workers.
//
// The model is deliberately coarse — relative units tuned from
// bench_campaign's measured per-cell wall times, not a prediction — and
// only its *ordering* matters. Execution order is decoupled from result
// order everywhere (results stay in grid order), so the model can be
// retuned freely without touching any byte-identity contract.
#pragma once

#include <cstddef>
#include <vector>

#include "campaign/campaign.hpp"

namespace sdl::campaign {

/// Relative expected wall cost of one cell (arbitrary units, > 0).
/// Grows with total_samples, with the per-solver per-proposal weight,
/// superlinearly for the GP-backed solver (its fit cost climbs with the
/// observation count), and with the number of batches (each batch is a
/// full synthesize-image-measure cycle).
[[nodiscard]] double expected_cell_cost(const CampaignCell& cell);

/// Positions into `cells`, ordered by descending expected_cell_cost;
/// ties break toward the lower position so the order is deterministic
/// for a given cell list. schedule_order(cells)[0] is the cell every
/// scheduler should start first.
[[nodiscard]] std::vector<std::size_t> schedule_order(
    const std::vector<CampaignCell>& cells);

}  // namespace sdl::campaign
