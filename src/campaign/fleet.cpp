#include "campaign/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <thread>
#include <utility>

#include "campaign/campaign_io.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/cost_model.hpp"
#include "campaign/lease.hpp"
#include "campaign/report.hpp"
#include "core/colorpicker.hpp"
#include "support/atomic_io.hpp"
#include "support/channel.hpp"
#include "support/common.hpp"
#include "support/csv.hpp"
#include "support/mutex.hpp"
#include "support/subprocess.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace sdl::campaign {

namespace {

// sdlbench-lint: allow(steady-clock): heartbeat deadlines and makespan are operational wall time, never report bytes
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Splits on single spaces; strict (no empty tokens) so a malformed
/// frame never half-parses.
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= line.size()) {
        const std::size_t space = line.find(' ', start);
        if (space == std::string::npos) {
            tokens.push_back(line.substr(start));
            break;
        }
        tokens.push_back(line.substr(start, space - start));
        start = space + 1;
    }
    return tokens;
}

std::optional<std::size_t> parse_index(const std::string& token) {
    if (token.empty() || token.size() > 18) return std::nullopt;
    std::size_t value = 0;
    for (const char c : token) {
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
}

}  // namespace

// --------------------------------------------------------------- protocol

std::optional<WorkerMessage> parse_worker_line(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) return std::nullopt;
    WorkerMessage msg;
    if (tokens[0] == "beat" && tokens.size() == 1) {
        msg.kind = WorkerMsgKind::Beat;
        return msg;
    }
    if (tokens[0] == "hello" && tokens.size() == 2) {
        const auto pid = parse_index(tokens[1]);
        if (!pid) return std::nullopt;
        msg.kind = WorkerMsgKind::Hello;
        msg.pid = static_cast<long>(*pid);
        return msg;
    }
    if (tokens[0] == "ack" && tokens.size() == 2) {
        const auto cell = parse_index(tokens[1]);
        if (!cell) return std::nullopt;
        msg.kind = WorkerMsgKind::Ack;
        msg.cell = *cell;
        return msg;
    }
    return std::nullopt;
}

std::optional<CoordMessage> parse_coordinator_line(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) return std::nullopt;
    CoordMessage msg;
    if (tokens[0] == "stop" && tokens.size() == 1) {
        msg.kind = CoordMsgKind::Stop;
        return msg;
    }
    if (tokens[0] == "lease" && tokens.size() >= 2) {
        msg.kind = CoordMsgKind::Lease;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            const auto cell = parse_index(tokens[i]);
            if (!cell) return std::nullopt;
            msg.cells.push_back(*cell);
        }
        return msg;
    }
    return std::nullopt;
}

std::string format_hello(long pid) { return "hello " + std::to_string(pid); }
std::string format_beat() { return "beat"; }
std::string format_ack(std::size_t cell) { return "ack " + std::to_string(cell); }

std::string format_lease(const std::vector<std::size_t>& cells) {
    support::check(!cells.empty(), "a lease must carry at least one cell");
    std::string line = "lease";
    for (const std::size_t cell : cells) {
        line += ' ';
        line += std::to_string(cell);
    }
    return line;
}

std::string format_stop() { return "stop"; }

// ------------------------------------------------------------ coordinator

namespace {

struct WorkerState {
    int id = 0;
    std::string dir;
    support::ChildProcess proc;
    support::LineBuffer lines;
    Clock::time_point last_heard;
    std::size_t journal_offset = 0;
    bool header_seen = false;
    bool hello_seen = false;
    bool alive = false;
    bool send_failed = false;
};

}  // namespace

FleetResult run_fleet(const std::string& spec_path, const std::string& out_dir,
                      const FleetOptions& options) {
    support::ignore_sigpipe();
    support::check(!options.worker_exe.empty(), "FleetOptions.worker_exe must be set");

    CampaignSpec spec = campaign_from_file(spec_path);
    if (!options.backend.empty()) spec.base.linalg_backend = options.backend;
    const std::vector<CampaignCell> grid = expand_grid(spec);
    const std::string digest = spec_digest(spec);

    // Same refusal as sdlbench_run: an incomplete journal for this very
    // spec in out_dir is a crashed run's progress; the fleet has no
    // resume mode (yet), so make the operator decide, don't truncate.
    const std::size_t progress = journal_progress(journal_path(out_dir), spec);
    if (progress > 0) {
        throw support::ConfigError(
            "'" + out_dir + "' already holds a journal with " + std::to_string(progress) +
            " completed cell(s) for this campaign — resume it with `sdlbench_run "
            "--campaign ... --resume " + out_dir + "`, or delete " +
            journal_path(out_dir) + " to start over");
    }
    std::filesystem::create_directories(out_dir);

    const std::size_t n_workers =
        std::min(std::max<std::size_t>(1, options.workers), grid.size());
    std::size_t threads = options.worker_threads;
    if (threads == 0) {
        // Disjoint core budgets: divide the host instead of letting every
        // worker's in-process pool claim all of it.
        const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
        threads = std::max<std::size_t>(1, hw / n_workers);
    }

    LeaseTable table(grid.size(), schedule_order(grid));
    std::vector<std::optional<CellResult>> results(grid.size());
    FleetSummary summary;
    summary.cells = grid.size();
    summary.workers_started = n_workers;

    if (options.log_progress) {
        std::printf("Fleet: %zu cells on %zu workers (%zu threads each), "
                    "cost-ordered leases\n",
                    grid.size(), n_workers, threads);
    }

    const auto start_time = Clock::now();
    std::vector<WorkerState> workers(n_workers);
    for (std::size_t i = 0; i < n_workers; ++i) {
        WorkerState& w = workers[i];
        w.id = static_cast<int>(i);
        w.dir = out_dir + "/workers/w" + std::to_string(i);
        std::filesystem::create_directories(w.dir);
        // A stale journal from a previous fleet run must not be tailed
        // before the fresh worker truncates it.
        std::filesystem::remove(journal_path(w.dir));

        std::vector<std::string> argv = {
            options.worker_exe, "--worker",
            "--campaign", spec_path,
            "--dir", w.dir,
            "--expect-digest", digest,
            "--heartbeat-interval", support::fmt_roundtrip(options.heartbeat_interval_s)};
        if (!options.backend.empty()) {
            argv.push_back("--backend");
            argv.push_back(options.backend);
        }
        if (options.chaos_kill_worker == static_cast<int>(i) &&
            options.chaos_kill_after > 0) {
            argv.push_back("--chaos-after");
            argv.push_back(std::to_string(options.chaos_kill_after));
        }
        w.proc = support::spawn_child(
            argv, {"SDLBENCH_WORKERS=" + std::to_string(threads)});
        w.alive = true;
        w.last_heard = Clock::now();
    }

    std::size_t alive_count = n_workers;
    std::size_t since_merge = 0;

    const auto collect_results = [&] {
        std::vector<CellResult> collected;
        collected.reserve(table.done_count());
        for (const auto& r : results) {
            if (r) collected.push_back(*r);
        }
        return collected;
    };

    // Tails the worker's journal from the last consumed offset; every
    // complete new line is validated and folded into the result set.
    // Returns the number of records consumed. Throws loudly on digest
    // mismatches and on duplicates (LeaseTable::complete).
    const auto drain_journal = [&](WorkerState& w) -> std::size_t {
        const std::string path = journal_path(w.dir);
        std::ifstream file(path, std::ios::binary);
        if (!file) return 0;
        file.seekg(0, std::ios::end);
        const auto size = static_cast<std::size_t>(file.tellg());
        if (size <= w.journal_offset) return 0;
        file.seekg(static_cast<std::streamoff>(w.journal_offset));
        std::string chunk(size - w.journal_offset, '\0');
        file.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));

        std::size_t consumed = 0;
        std::size_t records = 0;
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = chunk.find('\n', start);
            if (nl == std::string::npos) break;  // torn tail: wait for more
            const std::string line = chunk.substr(start, nl - start);
            start = nl + 1;
            consumed = start;
            if (!w.header_seen) {
                (void)validate_journal_header(line, spec, grid.size(), path);
                w.header_seen = true;
                continue;
            }
            CellResult record = parse_cell_record(line, grid, path);
            const std::size_t index = record.cell.index;
            table.complete(index);  // throws if any worker already did this cell
            summary.busy_s += record.wall_seconds;
            if (options.log_progress) {
                // sdlbench-lint: allow(printf-float): stdout progress line, never serialized into an artifact
                std::printf("  [%zu/%zu] %s best=%.2f (w%d, %.1fs)\n",
                            table.done_count(), grid.size(),
                            record.cell.config.experiment_id.c_str(),
                            record.outcome.best_score, w.id, record.wall_seconds);
            }
            results[index] = std::move(record);
            ++records;
            ++since_merge;
        }
        w.journal_offset += consumed;
        return records;
    };

    const auto grant_to = [&](WorkerState& w) {
        const std::size_t size = table.suggested_lease(alive_count, options.max_lease);
        if (size == 0) return;
        const std::vector<std::size_t> lease = table.grant(w.id, size);
        if (lease.empty()) return;
        if (!support::write_line_fd(w.proc.stdin_fd(), format_lease(lease))) {
            w.send_failed = true;  // death handled by the main loop
        }
    };

    const auto handle_death = [&](WorkerState& w, const char* why) {
        if (!w.alive) return;
        // Kill unconditionally: a merely-hung worker that woke up later
        // could journal a cell the table has meanwhile re-leased.
        support::kill_hard(w.proc);
        (void)support::wait_exit(w.proc);
        // The journal tail is the dead worker's last word: everything
        // durably appended (acked or not) is salvaged, never recomputed.
        const std::size_t salvaged = drain_journal(w);
        w.proc.close_pipes();
        w.alive = false;
        --alive_count;
        const std::vector<std::size_t> revoked = table.revoke(w.id);
        ++summary.workers_lost;
        summary.cells_salvaged += salvaged;
        summary.cells_releases += revoked.size();
        std::fprintf(stderr,
                     "fleet: worker w%d lost (%s): salvaged %zu journaled cell(s), "
                     "re-leasing %zu\n",
                     w.id, why, salvaged, revoked.size());
    };

    while (!table.all_done()) {
        if (alive_count == 0) {
            throw support::Error(
                "fleet", "all " + std::to_string(n_workers) + " workers died with " +
                             std::to_string(grid.size() - table.done_count()) +
                             " cell(s) incomplete — worker journals remain under '" +
                             out_dir + "/workers/' for inspection");
        }

        // Poll until the next heartbeat deadline (bounded so revocation
        // and timeout checks stay responsive).
        std::vector<int> fds(workers.size(), -1);
        int timeout_ms = 500;
        const auto now = Clock::now();
        for (const WorkerState& w : workers) {
            if (!w.alive) continue;
            fds[static_cast<std::size_t>(w.id)] = w.proc.stdout_fd();
            const double remaining =
                options.heartbeat_timeout_s -
                std::chrono::duration<double>(now - w.last_heard).count();
            timeout_ms = std::min(timeout_ms, static_cast<int>(remaining * 1000.0));
        }
        timeout_ms = std::max(timeout_ms, 20);
        const std::vector<bool> readable = support::poll_readable(fds, timeout_ms);

        for (WorkerState& w : workers) {
            if (!w.alive || !readable[static_cast<std::size_t>(w.id)]) continue;
            const long n = support::read_some(w.proc.stdout_fd(), w.lines);
            bool protocol_error = false;
            while (auto line = w.lines.next_line()) {
                const auto msg = parse_worker_line(*line);
                if (!msg) {
                    std::fprintf(stderr, "fleet: worker w%d sent garbage '%s'\n", w.id,
                                 line->c_str());
                    protocol_error = true;
                    break;
                }
                w.last_heard = Clock::now();
                switch (msg->kind) {
                    case WorkerMsgKind::Hello:
                        if (!w.hello_seen) {
                            w.hello_seen = true;
                            grant_to(w);
                        }
                        break;
                    case WorkerMsgKind::Beat:
                        break;
                    case WorkerMsgKind::Ack:
                        // The payload travels through the journal, not
                        // the pipe; the ack is the read barrier.
                        (void)drain_journal(w);
                        // Pipelined refill: keep one cell queued behind
                        // the one running, sized down as the queue
                        // drains (this is the work-stealing).
                        if (table.outstanding(w.id) <= 1) grant_to(w);
                        break;
                }
            }
            if (protocol_error || n <= 0) {
                handle_death(w, protocol_error ? "protocol error" : "pipe closed");
            }
        }

        // Deferred deaths (lease writes that hit a closed pipe).
        for (WorkerState& w : workers) {
            if (w.alive && w.send_failed) handle_death(w, "lease write failed");
        }
        // Hung workers: no hello/beat/ack inside the timeout window.
        const auto after = Clock::now();
        for (WorkerState& w : workers) {
            if (w.alive &&
                std::chrono::duration<double>(after - w.last_heard).count() >
                    options.heartbeat_timeout_s) {
                handle_death(w, "heartbeat timeout");
            }
        }
        // Revocation or an earlier empty queue can leave live workers
        // idle while cells are pending — top them up.
        for (WorkerState& w : workers) {
            if (w.alive && w.hello_seen && !w.send_failed &&
                table.outstanding(w.id) == 0) {
                grant_to(w);
            }
        }

        // Live merge: aggregates stay current while the fleet runs.
        if (since_merge >= options.merge_every && !table.all_done()) {
            since_merge = 0;
            write_campaign_outputs(out_dir, spec, collect_results());
        }
    }

    // Final merge from index-sorted results — the exact bytes of a
    // single-process uninterrupted run — plus the fused whole-grid
    // journal, so the fleet directory is resumable/mergeable like any
    // other campaign directory.
    std::vector<CellResult> final_results;
    final_results.reserve(grid.size());
    for (auto& r : results) final_results.push_back(std::move(*r));
    write_campaign_outputs(out_dir, spec, final_results);
    std::string journal_text = journal_header(spec, grid.size(), Shard{}).dump() + "\n";
    for (const CellResult& result : final_results) {
        journal_text += cell_record_to_json(result).dump();
        journal_text += '\n';
    }
    support::atomic_write(journal_path(out_dir), journal_text);

    for (WorkerState& w : workers) {
        if (!w.alive) continue;
        (void)support::write_line_fd(w.proc.stdin_fd(), format_stop());
        w.proc.close_stdin();  // reader thread EOF: the worker exits cleanly
    }
    for (WorkerState& w : workers) {
        if (!w.alive) continue;
        (void)support::wait_exit(w.proc);
        w.proc.close_pipes();
        w.alive = false;
    }

    summary.makespan_s = seconds_since(start_time);
    if (summary.makespan_s > 0.0 && summary.workers_started > 0) {
        summary.efficiency =
            summary.busy_s /
            (summary.makespan_s * static_cast<double>(summary.workers_started));
    }
    return FleetResult{summary, std::move(final_results)};
}

// ----------------------------------------------------------------- worker

int run_fleet_worker(const FleetWorkerOptions& options) {
    support::ignore_sigpipe();

    CampaignSpec spec = campaign_from_file(options.campaign_path);
    if (!options.backend.empty()) spec.base.linalg_backend = options.backend;
    const std::string digest = spec_digest(spec);
    if (!options.expect_digest.empty() && digest != options.expect_digest) {
        std::fprintf(stderr,
                     "fleet worker: spec digest mismatch (coordinator %s, local %s) — "
                     "coordinator and worker must see the same campaign file\n",
                     options.expect_digest.c_str(), digest.c_str());
        return 3;
    }
    const std::vector<CampaignCell> grid = expand_grid(spec);
    std::filesystem::create_directories(options.dir);
    // Whole-grid header: a worker may journal any subset of the grid, so
    // its journal is not a round-robin shard — Shard{} (1/1) makes every
    // cell index a member and load_journal/merge_journals validate it
    // like any other journal.
    CheckpointJournal journal(options.dir, spec, grid.size(), Shard{});

    // stdout carries the protocol; acks (main thread) and beats
    // (heartbeat thread) must not interleave mid-line.
    support::Mutex out_mutex;
    const auto send = [&out_mutex](const std::string& line) {
        support::MutexLock lock(out_mutex);
        return support::write_line_fd(1, line);
    };

    // The reader thread owns stdin; the channel hands lines to the main
    // loop. Shared ownership lets the thread be detached safely on the
    // rare early-exit paths where stdin never reaches EOF.
    auto inbox = std::make_shared<support::Channel<std::string>>();
    std::thread reader([inbox] {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!inbox->send(line)) return;
        }
        inbox->close();  // coordinator closed our stdin (stop or death)
    });
    reader.detach();

    // The stop flag is written under hb_mutex and the notify happens
    // after the locked store — storing it unlocked (the old atomic
    // version) left a lost-wake-up window between the heartbeat
    // thread's predicate check and its block, costing one extra
    // interval of shutdown latency.
    support::Mutex hb_mutex;
    support::CondVar hb_cv;
    bool hb_stop = false;  // guarded by hb_mutex
    std::thread heartbeat([&] {
        const auto interval = std::chrono::duration<double>(
            std::max(0.05, options.heartbeat_interval_s));
        support::MutexLock lock(hb_mutex);
        while (!hb_stop) {
            if (hb_cv.wait_for(hb_mutex, interval) == std::cv_status::timeout) {
                if (!send(format_beat())) return;  // coordinator gone
            }
        }
    });

    int exit_code = 0;
    std::deque<std::size_t> queue;
    bool stop = false;
    std::size_t appended = 0;

#if !defined(_WIN32)
    (void)send(format_hello(static_cast<long>(::getpid())));
#else
    (void)send(format_hello(0));
#endif

    const auto handle = [&](const std::string& line) {
        const auto msg = parse_coordinator_line(line);
        if (!msg) {
            std::fprintf(stderr, "fleet worker: bad coordinator line '%s'\n",
                         line.c_str());
            stop = true;
            exit_code = 4;
            return;
        }
        if (msg->kind == CoordMsgKind::Stop) {
            stop = true;
            return;
        }
        for (const std::size_t cell : msg->cells) {
            if (cell >= grid.size()) {
                std::fprintf(stderr, "fleet worker: leased cell %zu out of range\n",
                             cell);
                stop = true;
                exit_code = 4;
                return;
            }
            queue.push_back(cell);
        }
    };

    while (!stop) {
        if (queue.empty()) {
            // Idle: block for the next lease (heartbeats keep flowing
            // from the side thread).
            const auto line = inbox->receive();
            if (!line) break;  // EOF: coordinator is gone
            handle(*line);
        }
        while (!stop) {
            const auto line = inbox->try_receive();
            if (!line) break;
            handle(*line);
        }
        if (stop || queue.empty()) continue;

        const std::size_t cell = queue.front();
        queue.pop_front();
        const auto started = Clock::now();
        CellResult result;
        result.cell = grid[cell];
        result.outcome = core::ColorPickerApp(result.cell.config).run();
        result.wall_seconds = seconds_since(started);
        journal.append(result);  // durable (fdatasync) before the ack
        ++appended;
#if !defined(_WIN32)
        if (options.chaos_kill_after > 0 && appended >= options.chaos_kill_after) {
            // Crash-recovery drill: die the hard way — record durable,
            // ack never sent. SIGKILL is uncatchable, so no destructor
            // or flush can soften the crash.
            (void)std::raise(SIGKILL);
        }
#endif
        if (!send(format_ack(cell))) break;  // coordinator is gone
    }

    {
        support::MutexLock lock(hb_mutex);
        hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
    return exit_code;
}

}  // namespace sdl::campaign
