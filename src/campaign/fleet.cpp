#include "campaign/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <memory>
#include <thread>
#include <utility>

#include "campaign/campaign_io.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/cost_model.hpp"
#include "campaign/lease.hpp"
#include "campaign/report.hpp"
#include "core/colorpicker.hpp"
#include "support/atomic_io.hpp"
#include "support/channel.hpp"
#include "support/common.hpp"
#include "support/csv.hpp"
#include "support/failpoint.hpp"
#include "support/mutex.hpp"
#include "support/subprocess.hpp"

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace sdl::campaign {

namespace {

// sdlbench-lint: allow(steady-clock): heartbeat deadlines and makespan are operational wall time, never report bytes
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Splits on single spaces; strict (no empty tokens) so a malformed
/// frame never half-parses.
std::vector<std::string> tokenize(const std::string& line) {
    std::vector<std::string> tokens;
    std::size_t start = 0;
    while (start <= line.size()) {
        const std::size_t space = line.find(' ', start);
        if (space == std::string::npos) {
            tokens.push_back(line.substr(start));
            break;
        }
        tokens.push_back(line.substr(start, space - start));
        start = space + 1;
    }
    return tokens;
}

std::optional<std::size_t> parse_index(const std::string& token) {
    if (token.empty() || token.size() > 18) return std::nullopt;
    std::size_t value = 0;
    for (const char c : token) {
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    return value;
}

}  // namespace

// --------------------------------------------------------------- protocol

std::optional<WorkerMessage> parse_worker_line(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) return std::nullopt;
    WorkerMessage msg;
    if (tokens[0] == "beat" && tokens.size() == 1) {
        msg.kind = WorkerMsgKind::Beat;
        return msg;
    }
    if (tokens[0] == "hello" && tokens.size() == 2) {
        const auto pid = parse_index(tokens[1]);
        if (!pid) return std::nullopt;
        msg.kind = WorkerMsgKind::Hello;
        msg.pid = static_cast<long>(*pid);
        return msg;
    }
    if (tokens[0] == "ack" && tokens.size() == 2) {
        const auto cell = parse_index(tokens[1]);
        if (!cell) return std::nullopt;
        msg.kind = WorkerMsgKind::Ack;
        msg.cell = *cell;
        return msg;
    }
    return std::nullopt;
}

std::optional<CoordMessage> parse_coordinator_line(const std::string& line) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) return std::nullopt;
    CoordMessage msg;
    if (tokens[0] == "stop" && tokens.size() == 1) {
        msg.kind = CoordMsgKind::Stop;
        return msg;
    }
    if (tokens[0] == "lease" && tokens.size() >= 2) {
        msg.kind = CoordMsgKind::Lease;
        for (std::size_t i = 1; i < tokens.size(); ++i) {
            const auto cell = parse_index(tokens[i]);
            if (!cell) return std::nullopt;
            msg.cells.push_back(*cell);
        }
        return msg;
    }
    return std::nullopt;
}

std::string format_hello(long pid) { return "hello " + std::to_string(pid); }
std::string format_beat() { return "beat"; }
std::string format_ack(std::size_t cell) { return "ack " + std::to_string(cell); }

std::string format_lease(const std::vector<std::size_t>& cells) {
    support::check(!cells.empty(), "a lease must carry at least one cell");
    std::string line = "lease";
    for (const std::size_t cell : cells) {
        line += ' ';
        line += std::to_string(cell);
    }
    return line;
}

std::string format_stop() { return "stop"; }

// ------------------------------------------------------------ coordinator

namespace {

namespace json = support::json;

/// One worker slot. The slot outlives process deaths: each respawn gets
/// a fresh incarnation (process + journal directory) while the slot
/// keeps the crash/backoff bookkeeping.
struct WorkerState {
    int slot = 0;
    int generation = -1;    ///< -1 = never spawned; spawn pre-increments
    long incarnation = -1;  ///< unique per spawned process (ledger-sequenced)
    std::string dir;
    support::ChildProcess proc;
    support::LineBuffer lines;
    Clock::time_point last_heard;
    std::size_t journal_offset = 0;
    bool header_seen = false;
    bool hello_seen = false;
    bool alive = false;
    bool send_failed = false;
    // Respawn bookkeeping (slot-lifetime, not incarnation-lifetime).
    std::size_t respawns_used = 0;
    std::size_t crash_streak = 0;  ///< backoff exponent; reset on any ack
    std::optional<Clock::time_point> respawn_at;
    bool retired = false;  ///< respawn budget exhausted
};

/// Kills and reaps every still-running child no matter how run_fleet
/// exits — early throws (spec errors, duplicate cells, all workers
/// lost) included — so no zombie outlives the coordinator.
struct ReapGuard {
    std::vector<WorkerState>& workers;
    ~ReapGuard() {
        for (WorkerState& w : workers) {
            if (!w.alive) continue;
            support::kill_hard(w.proc);
            (void)support::wait_exit(w.proc);
            w.proc.close_pipes();
            w.alive = false;
        }
    }
};

// ------------------------------------------------- coordinator ledger

std::string ledger_path(const std::string& out_dir) {
    return out_dir + "/coordinator.jsonl";
}

/// Write-ahead ledger of coordinator decisions (spawns, crash blames,
/// quarantines), one fsync'd JSONL record each — the durable state a
/// killed coordinator is resumed from (worker journals carry the
/// results; the ledger says where they live and what was convicted).
/// Removed on successful completion; its presence marks a crashed run.
class CoordinatorLedger {
public:
    /// Writes `prefix_text` (header, plus retained events on resume)
    /// atomically, then switches to append mode.
    void open(const std::string& out_dir, const std::string& prefix_text) {
        path_ = ledger_path(out_dir);
        support::atomic_write(path_, prefix_text);
        writer_.emplace(path_);
    }
    void append(const json::Value& event) { writer_->append_line(event.dump()); }
    void remove() {
        writer_.reset();
        std::error_code ignored;
        std::filesystem::remove(path_, ignored);
    }

private:
    std::string path_;
    std::optional<support::AppendWriter> writer_;
};

struct LedgerSpawn {
    int slot = 0;
    int generation = 0;
    long incarnation = 0;
    long pid = 0;
    std::string dir;
};
struct LedgerCrash {
    std::size_t cell = 0;
    int slot = 0;
    int generation = 0;
    long incarnation = 0;
    long pid = 0;
    std::string reason;
};
struct LedgerState {
    std::string spec_digest;
    std::size_t cells_total = 0;
    std::vector<LedgerSpawn> spawns;
    std::vector<LedgerCrash> crashes;
    std::vector<std::size_t> quarantines;
    /// Every event line that parsed, verbatim — rewritten into the
    /// compacted ledger on resume so a resume-of-a-resume still knows
    /// every journal directory and conviction.
    std::vector<std::string> raw_events;
};

/// Loads a coordinator ledger, tolerating a torn tail (each record is
/// one fsync'd write, so only the final line can be incomplete — it is
/// dropped, like the cell journals' torn-tail recovery).
LedgerState load_ledger(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        throw support::ConfigError("cannot read coordinator ledger '" + path + "'");
    }
    const std::string text((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>());
    LedgerState state;
    bool header_seen = false;
    std::size_t start = 0;
    while (start < text.size()) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) break;  // torn tail: drop
        const std::string line = text.substr(start, nl - start);
        start = nl + 1;
        if (line.empty()) continue;
        json::Value doc;
        try {
            doc = json::parse(line);
        } catch (const support::Error&) {
            break;  // unreadable line: treat as the torn tail, keep what stands
        }
        if (!header_seen) {
            if (doc.get_or("schema", std::string()) != "sdlbench.coordinator_journal.v1") {
                throw support::ConfigError("'" + path +
                                           "' is not a coordinator ledger (bad schema)");
            }
            state.spec_digest = doc.at("spec_digest").as_string();
            state.cells_total = static_cast<std::size_t>(doc.at("cells_total").as_int());
            header_seen = true;
            continue;
        }
        const std::string event = doc.get_or("event", std::string());
        if (event == "spawn") {
            state.spawns.push_back({static_cast<int>(doc.at("slot").as_int()),
                                    static_cast<int>(doc.at("generation").as_int()),
                                    doc.at("incarnation").as_int(), doc.at("pid").as_int(),
                                    doc.at("dir").as_string()});
        } else if (event == "crash") {
            state.crashes.push_back({static_cast<std::size_t>(doc.at("cell").as_int()),
                                     static_cast<int>(doc.at("slot").as_int()),
                                     static_cast<int>(doc.at("generation").as_int()),
                                     doc.at("incarnation").as_int(), doc.at("pid").as_int(),
                                     doc.at("reason").as_string()});
        } else if (event == "quarantine") {
            state.quarantines.push_back(
                static_cast<std::size_t>(doc.at("cell").as_int()));
        }  // unknown events: skip (forward compatibility)
        state.raw_events.push_back(line);
    }
    if (!header_seen) {
        throw support::ConfigError("coordinator ledger '" + path +
                                   "' has no intact header — nothing to resume");
    }
    return state;
}

}  // namespace

FleetResult run_fleet(const std::string& spec_path, const std::string& out_dir,
                      const FleetOptions& options) {
    support::ignore_sigpipe();
    support::check(!options.worker_exe.empty(), "FleetOptions.worker_exe must be set");

    CampaignSpec spec = campaign_from_file(spec_path);
    if (!options.backend.empty()) spec.base.linalg_backend = options.backend;
    const std::vector<CampaignCell> grid = expand_grid(spec);
    const std::string digest = spec_digest(spec);

    // Same refusal as sdlbench_run: an incomplete journal for this very
    // spec in out_dir is a crashed run's progress; make the operator
    // decide, don't truncate.
    const std::size_t progress = journal_progress(journal_path(out_dir), spec);
    if (progress > 0) {
        throw support::ConfigError(
            "'" + out_dir + "' already holds a journal with " + std::to_string(progress) +
            " completed cell(s) for this campaign — resume it with `sdlbench_run "
            "--campaign ... --resume " + out_dir + "`, or delete " +
            journal_path(out_dir) + " to start over");
    }
    // A leftover coordinator ledger marks a fleet whose coordinator died
    // mid-campaign; demand an explicit decision rather than redoing (and
    // possibly duplicating) work the worker journals already hold.
    const bool ledger_exists = std::filesystem::exists(ledger_path(out_dir));
    if (ledger_exists && !options.resume) {
        throw support::ConfigError(
            "'" + out_dir + "' holds a coordinator ledger from an interrupted fleet "
            "run — resume it with `sdlbench_fleet --campaign ... --resume " + out_dir +
            "`, or delete " + ledger_path(out_dir) + " to start over");
    }
    if (options.resume && !ledger_exists) {
        throw support::ConfigError("--resume: no coordinator ledger at '" +
                                   ledger_path(out_dir) + "' — nothing to resume");
    }
    std::filesystem::create_directories(out_dir);

    const std::size_t n_workers =
        std::min(std::max<std::size_t>(1, options.workers), grid.size());
    std::size_t threads = options.worker_threads;
    if (threads == 0) {
        // Disjoint core budgets: divide the host instead of letting every
        // worker's in-process pool claim all of it.
        const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
        threads = std::max<std::size_t>(1, hw / n_workers);
    }

    // --chaos-kill is sugar for a generation-0 worker failpoint; every
    // schedule is parsed up front so a typo aborts before any spawn.
    std::vector<FleetOptions::WorkerFailpoint> worker_failpoints = options.worker_failpoints;
    if (options.chaos_kill_worker >= 0 && options.chaos_kill_after > 0) {
        worker_failpoints.push_back(
            {options.chaos_kill_worker,
             "worker.pre_ack_kill=kill@" + std::to_string(options.chaos_kill_after) +
                 "#1"});
    }
    for (const FleetOptions::WorkerFailpoint& wf : worker_failpoints) {
        (void)support::failpoint::parse(wf.spec);
    }

    LeaseTable table(grid.size(), schedule_order(grid));
    std::vector<std::optional<CellResult>> results(grid.size());
    std::vector<std::vector<CellCrash>> crash_log(grid.size());
    FleetSummary summary;
    summary.cells = grid.size();
    summary.workers_started = n_workers;

    std::vector<WorkerState> workers(n_workers);
    ReapGuard reaper{workers};
    long next_incarnation = 0;

    // Resume: rebuild coordinator state from the ledger plus the worker
    // journals it references. The journals are the source of truth for
    // results; the ledger contributes locations, crash history, and
    // quarantine convictions.
    std::string ledger_prefix;
    {
        json::Value header = json::Value::object();
        header.set("schema", "sdlbench.coordinator_journal.v1");
        header.set("spec_digest", digest);
        header.set("cells_total", static_cast<std::int64_t>(grid.size()));
        header.set("campaign_path", spec_path);
        ledger_prefix = header.dump() + "\n";
    }
    if (options.resume) {
        const LedgerState prior = load_ledger(ledger_path(out_dir));
        if (prior.spec_digest != digest) {
            throw support::ConfigError(
                "--resume: ledger spec digest " + prior.spec_digest +
                " does not match this campaign's digest " + digest +
                " — the resumed run must use the same spec (and backend)");
        }
        if (prior.cells_total != grid.size()) {
            throw support::ConfigError("--resume: ledger records " +
                                       std::to_string(prior.cells_total) +
                                       " cells, campaign expands to " +
                                       std::to_string(grid.size()));
        }
#if !defined(_WIN32)
        // Orphans of the dead coordinator: best-effort SIGKILL by
        // recorded pid before reading their journals, so none can append
        // a record after we've drained it. A reused pid is possible but
        // the window is narrow (docs/ROBUSTNESS.md § Resume caveats).
        for (const LedgerSpawn& s : prior.spawns) {
            if (s.pid > 0) (void)::kill(static_cast<pid_t>(s.pid), SIGKILL);
        }
#endif
        const auto load_worker_journal = [&](const std::string& path) {
            std::ifstream file(path, std::ios::binary);
            if (!file) return;  // died before creating a journal
            const std::string text((std::istreambuf_iterator<char>(file)),
                                   std::istreambuf_iterator<char>());
            bool header_seen = false;
            std::size_t start = 0;
            while (start < text.size()) {
                const std::size_t nl = text.find('\n', start);
                if (nl == std::string::npos) break;  // torn tail: drop
                const std::string line = text.substr(start, nl - start);
                start = nl + 1;
                if (!header_seen) {
                    (void)validate_journal_header(line, spec, grid.size(), path);
                    header_seen = true;
                    continue;
                }
                CellResult record = parse_cell_record(line, grid, path);
                const std::size_t index = record.cell.index;
                table.complete(index);  // cross-journal duplicates stay loud
                summary.busy_s += record.wall_seconds;
                results[index] = std::move(record);
            }
        };
        for (const LedgerSpawn& s : prior.spawns) {
            load_worker_journal(journal_path(s.dir));
            next_incarnation = std::max(next_incarnation, s.incarnation + 1);
            if (s.slot >= 0 && static_cast<std::size_t>(s.slot) < workers.size()) {
                workers[static_cast<std::size_t>(s.slot)].generation =
                    std::max(workers[static_cast<std::size_t>(s.slot)].generation,
                             s.generation);
            }
        }
        for (const LedgerCrash& c : prior.crashes) {
            if (c.cell >= grid.size()) continue;
            (void)table.record_crash(c.cell, c.incarnation);
            crash_log[c.cell].push_back({c.slot, c.generation, c.pid, c.reason});
        }
        for (const std::size_t cell : prior.quarantines) {
            if (cell < grid.size() && !table.is_quarantined(cell)) {
                table.quarantine(cell);
            }
        }
        // Compacted ledger: fresh header + every prior event verbatim,
        // so a resume-of-a-resume still sees all journal directories.
        for (const std::string& raw : prior.raw_events) {
            ledger_prefix += raw;
            ledger_prefix += '\n';
        }
        if (options.log_progress) {
            std::printf("Fleet resume: %zu of %zu cells already journaled, "
                        "%zu quarantined\n",
                        table.done_count(), grid.size(), table.quarantined_count());
        }
    }

    CoordinatorLedger ledger;
    ledger.open(out_dir, ledger_prefix);

    if (options.log_progress) {
        std::printf("Fleet: %zu cells on %zu workers (%zu threads each), "
                    "cost-ordered leases\n",
                    grid.size(), n_workers, threads);
    }

    const auto start_time = Clock::now();
    for (std::size_t i = 0; i < n_workers; ++i) {
        workers[i].slot = static_cast<int>(i);
        // Spawn through the unified respawn path below, so even a
        // first-spawn failure (subprocess.spawn failpoint, EAGAIN) gets
        // the same backoff-and-retry treatment.
        workers[i].respawn_at = start_time;
    }

    std::size_t alive_count = 0;
    std::size_t since_merge = 0;

    const auto collect_results = [&] {
        std::vector<CellResult> collected;
        collected.reserve(table.done_count());
        for (const auto& r : results) {
            if (r) collected.push_back(*r);
        }
        return collected;
    };

    // Tails the worker's journal from the last consumed offset; every
    // complete new line is validated and folded into the result set.
    // Returns the number of records consumed. Throws loudly on digest
    // mismatches and on duplicates (LeaseTable::complete).
    const auto drain_journal = [&](WorkerState& w) -> std::size_t {
        const std::string path = journal_path(w.dir);
        std::ifstream file(path, std::ios::binary);
        if (!file) return 0;
        file.seekg(0, std::ios::end);
        const auto size = static_cast<std::size_t>(file.tellg());
        if (size <= w.journal_offset) return 0;
        file.seekg(static_cast<std::streamoff>(w.journal_offset));
        std::string chunk(size - w.journal_offset, '\0');
        file.read(chunk.data(), static_cast<std::streamsize>(chunk.size()));

        std::size_t consumed = 0;
        std::size_t records = 0;
        std::size_t start = 0;
        for (;;) {
            const std::size_t nl = chunk.find('\n', start);
            if (nl == std::string::npos) break;  // torn tail: wait for more
            const std::string line = chunk.substr(start, nl - start);
            start = nl + 1;
            consumed = start;
            if (!w.header_seen) {
                (void)validate_journal_header(line, spec, grid.size(), path);
                w.header_seen = true;
                continue;
            }
            CellResult record = parse_cell_record(line, grid, path);
            const std::size_t index = record.cell.index;
            table.complete(index);  // throws if any worker already did this cell
            summary.busy_s += record.wall_seconds;
            if (options.log_progress) {
                // sdlbench-lint: allow(printf-float): stdout progress line, never serialized into an artifact
                std::printf("  [%zu/%zu] %s best=%.2f (w%d, %.1fs)\n",
                            table.done_count(), grid.size(),
                            record.cell.config.experiment_id.c_str(),
                            record.outcome.best_score, w.slot, record.wall_seconds);
            }
            results[index] = std::move(record);
            ++records;
            ++since_merge;
        }
        w.journal_offset += consumed;
        return records;
    };

    const auto grant_to = [&](WorkerState& w) {
        const std::size_t size = table.suggested_lease(alive_count, options.max_lease);
        if (size == 0) return;
        const std::vector<std::size_t> lease = table.grant(w.slot, size);
        if (lease.empty()) return;
        if (support::failpoint::armed() &&
            support::failpoint::evaluate("fleet.lease_send").action !=
                support::failpoint::Action::None) {
            // Injected dead pipe: the cells stay leased to this worker
            // until the main loop's deferred-death pass revokes them —
            // the same path a real EPIPE takes.
            w.send_failed = true;
            return;
        }
        if (!support::write_line_fd(w.proc.stdin_fd(), format_lease(lease))) {
            w.send_failed = true;  // death handled by the main loop
        }
    };

    const auto schedule_respawn = [&](WorkerState& w) {
        if (table.all_done()) return;
        if (w.respawns_used >= options.max_respawns) {
            if (!w.retired) {
                w.retired = true;
                std::fprintf(stderr,
                             "fleet: worker slot w%d retired after %zu respawns\n",
                             w.slot, w.respawns_used);
            }
            return;
        }
        ++w.respawns_used;
        const double factor =
            w.crash_streak > 0 ? std::ldexp(1.0, static_cast<int>(w.crash_streak) - 1)
                               : 1.0;
        const double backoff = std::min(options.respawn_backoff_cap_s,
                                        options.respawn_backoff_s * factor);
        w.respawn_at = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                          std::chrono::duration<double>(backoff));
        // sdlbench-lint: allow(printf-float): stderr lifecycle line, never serialized into an artifact
        std::fprintf(stderr, "fleet: respawning worker w%d (generation %d) in %.2fs\n",
                     w.slot, w.generation + 1, backoff);
    };

    const auto spawn_slot = [&](WorkerState& w) {
        ++w.generation;
        w.incarnation = next_incarnation++;
        w.dir = out_dir + "/workers/w" + std::to_string(w.slot) +
                (w.generation > 0 ? "r" + std::to_string(w.generation) : "");
        std::filesystem::create_directories(w.dir);
        // A stale journal from a previous fleet run must not be tailed
        // before the fresh worker truncates it. (Respawns get fresh
        // per-generation dirs, so dead incarnations' journals survive
        // for salvage and inspection.)
        std::filesystem::remove(journal_path(w.dir));

        // Per-incarnation failpoint schedule: slot-numbered entries hit
        // generation 0 only (so respawns come up clean), '*' entries hit
        // every incarnation (crash loops). The variable is ALWAYS set,
        // so the coordinator's own environment never leaks failpoints
        // into workers.
        std::string fp;
        for (const FleetOptions::WorkerFailpoint& wf : worker_failpoints) {
            const bool applies =
                wf.slot < 0 || (wf.slot == w.slot && w.generation == 0);
            if (!applies) continue;
            if (!fp.empty()) fp += ',';
            fp += wf.spec;
        }

        std::vector<std::string> argv = {
            options.worker_exe, "--worker",
            "--campaign", spec_path,
            "--dir", w.dir,
            "--expect-digest", digest,
            "--heartbeat-interval", support::fmt_roundtrip(options.heartbeat_interval_s)};
        if (!options.backend.empty()) {
            argv.push_back("--backend");
            argv.push_back(options.backend);
        }

        w.journal_offset = 0;
        w.header_seen = false;
        w.hello_seen = false;
        w.send_failed = false;
        w.lines = support::LineBuffer{};
        w.respawn_at.reset();
        try {
            w.proc = support::spawn_child(
                argv, {"SDLBENCH_WORKERS=" + std::to_string(threads),
                       "SDLBENCH_FAILPOINTS=" + fp});
        } catch (const support::Error& e) {
            // A spawn failure (fork/pipe exhaustion) is an instant crash
            // of the fresh incarnation: back off and retry on the same
            // budget instead of giving the slot up.
            std::fprintf(stderr, "fleet: spawning worker w%d failed: %s\n", w.slot,
                         e.what());
            ++summary.workers_lost;
            ++w.crash_streak;
            schedule_respawn(w);
            return;
        }
        w.alive = true;
        w.last_heard = Clock::now();
        ++alive_count;
        if (w.generation > 0) {
            ++summary.workers_respawned;
            std::fprintf(stderr, "fleet: worker w%d respawned (generation %d, pid %ld)\n",
                         w.slot, w.generation, w.proc.pid());
        }
        // Write-ahead: the ledger knows every journal directory before
        // any result can land in it.
        json::Value event = json::Value::object();
        event.set("event", "spawn");
        event.set("slot", w.slot);
        event.set("generation", w.generation);
        event.set("incarnation", static_cast<std::int64_t>(w.incarnation));
        event.set("pid", static_cast<std::int64_t>(w.proc.pid()));
        event.set("dir", w.dir);
        ledger.append(event);
    };

    const auto handle_death = [&](WorkerState& w, const char* why) {
        if (!w.alive) return;
        // Kill unconditionally: a merely-hung worker that woke up later
        // could journal a cell the table has meanwhile re-leased.
        support::kill_hard(w.proc);
        (void)support::wait_exit(w.proc);
        // The journal tail is the dead worker's last word: everything
        // durably appended (acked or not) is salvaged, never recomputed.
        const std::size_t salvaged = drain_journal(w);
        w.proc.close_pipes();
        w.alive = false;
        --alive_count;
        const std::vector<std::size_t> revoked = table.revoke(w.slot);
        ++summary.workers_lost;
        summary.cells_salvaged += salvaged;
        summary.cells_releases += revoked.size();
        std::fprintf(stderr,
                     "fleet: worker w%d lost (%s): salvaged %zu journaled cell(s), "
                     "re-leasing %zu\n",
                     w.slot, why, salvaged, revoked.size());

        // Crash blame: workers run their lease FIFO in grant order, and
        // revoke() returns incomplete cells in schedule (= grant) order,
        // so the first revoked cell is the one the worker was most
        // likely executing. A heuristic — which is why conviction takes
        // `quarantine_after` DISTINCT incarnations, not one.
        if (!revoked.empty()) {
            const std::size_t suspect = revoked.front();
            crash_log[suspect].push_back(
                {w.slot, w.generation, w.proc.pid(), std::string(why)});
            json::Value event = json::Value::object();
            event.set("event", "crash");
            event.set("cell", static_cast<std::int64_t>(suspect));
            event.set("slot", w.slot);
            event.set("generation", w.generation);
            event.set("incarnation", static_cast<std::int64_t>(w.incarnation));
            event.set("pid", static_cast<std::int64_t>(w.proc.pid()));
            event.set("reason", std::string(why));
            ledger.append(event);
            const std::size_t burned = table.record_crash(suspect, w.incarnation);
            if (burned >= options.quarantine_after && burned > 0) {
                table.quarantine(suspect);
                json::Value conviction = json::Value::object();
                conviction.set("event", "quarantine");
                conviction.set("cell", static_cast<std::int64_t>(suspect));
                ledger.append(conviction);
                std::fprintf(stderr,
                             "fleet: cell %zu quarantined after crashing %zu distinct "
                             "worker(s) — reporting it failed, not re-leasing\n",
                             suspect, burned);
            }
        }
        ++w.crash_streak;
        schedule_respawn(w);
    };

    while (!table.all_done()) {
        // Due respawns first: the pool heals before anything else is
        // decided this pass.
        const auto respawn_now = Clock::now();
        for (WorkerState& w : workers) {
            if (!w.alive && w.respawn_at && *w.respawn_at <= respawn_now) {
                spawn_slot(w);
            }
        }

        if (alive_count == 0) {
            bool respawn_pending = false;
            for (const WorkerState& w : workers) {
                if (w.respawn_at) respawn_pending = true;
            }
            if (!respawn_pending) {
                throw support::Error(
                    "fleet",
                    "all " + std::to_string(n_workers) +
                        " worker slots are dead with their respawn budgets "
                        "exhausted and " +
                        std::to_string(grid.size() - table.done_count() -
                                       table.quarantined_count()) +
                        " cell(s) incomplete — worker journals remain under '" +
                        out_dir + "/workers/' for inspection");
            }
        }

        // Poll until the next heartbeat or respawn deadline (bounded so
        // revocation and timeout checks stay responsive).
        std::vector<int> fds(workers.size(), -1);
        int timeout_ms = 500;
        const auto now = Clock::now();
        for (const WorkerState& w : workers) {
            if (w.alive) {
                fds[static_cast<std::size_t>(w.slot)] = w.proc.stdout_fd();
                const double remaining =
                    options.heartbeat_timeout_s -
                    std::chrono::duration<double>(now - w.last_heard).count();
                timeout_ms = std::min(timeout_ms, static_cast<int>(remaining * 1000.0));
            } else if (w.respawn_at) {
                const double remaining =
                    std::chrono::duration<double>(*w.respawn_at - now).count();
                timeout_ms = std::min(timeout_ms, static_cast<int>(remaining * 1000.0));
            }
        }
        timeout_ms = std::max(timeout_ms, 20);
        const std::vector<bool> readable = support::poll_readable(fds, timeout_ms);

        for (WorkerState& w : workers) {
            if (!w.alive || !readable[static_cast<std::size_t>(w.slot)]) continue;
            const long n = support::read_some(w.proc.stdout_fd(), w.lines);
            bool protocol_error = false;
            while (auto line = w.lines.next_line()) {
                const auto msg = parse_worker_line(*line);
                if (!msg) {
                    std::fprintf(stderr, "fleet: worker w%d sent garbage '%s'\n", w.slot,
                                 line->c_str());
                    protocol_error = true;
                    break;
                }
                w.last_heard = Clock::now();
                switch (msg->kind) {
                    case WorkerMsgKind::Hello:
                        if (!w.hello_seen) {
                            w.hello_seen = true;
                            grant_to(w);
                        }
                        break;
                    case WorkerMsgKind::Beat:
                        break;
                    case WorkerMsgKind::Ack:
                        if (support::failpoint::armed() &&
                            support::failpoint::evaluate("fleet.ack_recv").action !=
                                support::failpoint::Action::None) {
                            // Injected corrupt ack: same outcome as a
                            // garbage line — the worker is dropped and
                            // its journal is the source of truth.
                            std::fprintf(stderr,
                                         "fleet: injected ack_recv failure on w%d\n",
                                         w.slot);
                            protocol_error = true;
                            break;
                        }
                        // The payload travels through the journal, not
                        // the pipe; the ack is the read barrier.
                        (void)drain_journal(w);
                        w.crash_streak = 0;  // healthy progress: reset backoff
                        support::failpoint::maybe_fail("coordinator.post_ack_kill",
                                                       "fleet");
                        // Pipelined refill: keep one cell queued behind
                        // the one running, sized down as the queue
                        // drains (this is the work-stealing).
                        if (table.outstanding(w.slot) <= 1) grant_to(w);
                        break;
                }
                if (protocol_error) break;
            }
            if (protocol_error || n <= 0) {
                handle_death(w, protocol_error ? "protocol error" : "pipe closed");
            }
        }

        // Deferred deaths (lease writes that hit a closed pipe).
        for (WorkerState& w : workers) {
            if (w.alive && w.send_failed) handle_death(w, "lease write failed");
        }
        // Hung workers: no hello/beat/ack inside the timeout window.
        const auto after = Clock::now();
        for (WorkerState& w : workers) {
            if (w.alive &&
                std::chrono::duration<double>(after - w.last_heard).count() >
                    options.heartbeat_timeout_s) {
                handle_death(w, "heartbeat timeout");
            }
        }
        // Revocation or an earlier empty queue can leave live workers
        // idle while cells are pending — top them up.
        for (WorkerState& w : workers) {
            if (w.alive && w.hello_seen && !w.send_failed &&
                table.outstanding(w.slot) == 0) {
                grant_to(w);
            }
        }

        // Live merge: aggregates stay current while the fleet runs. A
        // failed live merge (disk hiccup, injected atomic_io fault) is
        // retried next pass — only the FINAL write below must succeed.
        if (since_merge >= options.merge_every && !table.all_done()) {
            try {
                write_campaign_outputs(out_dir, spec, collect_results());
                since_merge = 0;
            } catch (const support::Error& e) {
                std::fprintf(stderr, "fleet: live merge failed (%s); retrying\n",
                             e.what());
            }
        }
    }

    // Final merge from index-sorted results — the exact bytes of a
    // single-process uninterrupted run — plus the fused whole-grid
    // journal, so the fleet directory is resumable/mergeable like any
    // other campaign directory. Quarantined cells are reported, not
    // silently missing.
    std::vector<CellResult> final_results;
    final_results.reserve(grid.size());
    for (auto& r : results) {
        if (r) final_results.push_back(std::move(*r));
    }
    std::vector<QuarantinedCell> quarantined_cells;
    for (const std::size_t cell : table.quarantined()) {
        quarantined_cells.push_back(QuarantinedCell{grid[cell], crash_log[cell]});
    }
    summary.cells_quarantined = quarantined_cells.size();
    write_campaign_outputs(out_dir, spec, final_results, quarantined_cells);
    std::string journal_text = journal_header(spec, grid.size(), Shard{}).dump() + "\n";
    for (const CellResult& result : final_results) {
        journal_text += cell_record_to_json(result).dump();
        journal_text += '\n';
    }
    support::atomic_write(journal_path(out_dir), journal_text);

    for (WorkerState& w : workers) {
        if (!w.alive) continue;
        (void)support::write_line_fd(w.proc.stdin_fd(), format_stop());
        w.proc.close_stdin();  // reader thread EOF: the worker exits cleanly
    }
    for (WorkerState& w : workers) {
        if (!w.alive) continue;
        (void)support::wait_exit(w.proc);
        w.proc.close_pipes();
        w.alive = false;
    }
    // Everything durable is written; the ledger's job is done. Its
    // absence is what marks this directory as cleanly completed.
    ledger.remove();

    summary.makespan_s = seconds_since(start_time);
    if (summary.makespan_s > 0.0 && summary.workers_started > 0) {
        summary.efficiency =
            summary.busy_s /
            (summary.makespan_s * static_cast<double>(summary.workers_started));
    }
    return FleetResult{summary, std::move(final_results), std::move(quarantined_cells)};
}

// ----------------------------------------------------------------- worker

int run_fleet_worker(const FleetWorkerOptions& options) {
    support::ignore_sigpipe();

    CampaignSpec spec = campaign_from_file(options.campaign_path);
    if (!options.backend.empty()) spec.base.linalg_backend = options.backend;
    const std::string digest = spec_digest(spec);
    if (!options.expect_digest.empty() && digest != options.expect_digest) {
        std::fprintf(stderr,
                     "fleet worker: spec digest mismatch (coordinator %s, local %s) — "
                     "coordinator and worker must see the same campaign file\n",
                     options.expect_digest.c_str(), digest.c_str());
        return 3;
    }
    const std::vector<CampaignCell> grid = expand_grid(spec);
    std::filesystem::create_directories(options.dir);
    // Whole-grid header: a worker may journal any subset of the grid, so
    // its journal is not a round-robin shard — Shard{} (1/1) makes every
    // cell index a member and load_journal/merge_journals validate it
    // like any other journal.
    CheckpointJournal journal(options.dir, spec, grid.size(), Shard{});

    // stdout carries the protocol; acks (main thread) and beats
    // (heartbeat thread) must not interleave mid-line.
    support::Mutex out_mutex;
    const auto send = [&out_mutex](const std::string& line) {
        support::MutexLock lock(out_mutex);
        return support::write_line_fd(1, line);
    };

    // The reader thread owns stdin; the channel hands lines to the main
    // loop. Shared ownership lets the thread be detached safely on the
    // rare early-exit paths where stdin never reaches EOF.
    auto inbox = std::make_shared<support::Channel<std::string>>();
    std::thread reader([inbox] {
        std::string line;
        while (std::getline(std::cin, line)) {
            if (!inbox->send(line)) return;
        }
        inbox->close();  // coordinator closed our stdin (stop or death)
    });
    reader.detach();

    // The stop flag is written under hb_mutex and the notify happens
    // after the locked store — storing it unlocked (the old atomic
    // version) left a lost-wake-up window between the heartbeat
    // thread's predicate check and its block, costing one extra
    // interval of shutdown latency.
    support::Mutex hb_mutex;
    support::CondVar hb_cv;
    bool hb_stop = false;  // guarded by hb_mutex
    std::thread heartbeat([&] {
        const auto interval = std::chrono::duration<double>(
            std::max(0.05, options.heartbeat_interval_s));
        support::MutexLock lock(hb_mutex);
        while (!hb_stop) {
            if (hb_cv.wait_for(hb_mutex, interval) == std::cv_status::timeout) {
                if (!send(format_beat())) return;  // coordinator gone
            }
        }
    });

    int exit_code = 0;
    std::deque<std::size_t> queue;
    bool stop = false;

#if !defined(_WIN32)
    (void)send(format_hello(static_cast<long>(::getpid())));
#else
    (void)send(format_hello(0));
#endif

    const auto handle = [&](const std::string& line) {
        const auto msg = parse_coordinator_line(line);
        if (!msg) {
            std::fprintf(stderr, "fleet worker: bad coordinator line '%s'\n",
                         line.c_str());
            stop = true;
            exit_code = 4;
            return;
        }
        if (msg->kind == CoordMsgKind::Stop) {
            stop = true;
            return;
        }
        for (const std::size_t cell : msg->cells) {
            if (cell >= grid.size()) {
                std::fprintf(stderr, "fleet worker: leased cell %zu out of range\n",
                             cell);
                stop = true;
                exit_code = 4;
                return;
            }
            queue.push_back(cell);
        }
    };

    while (!stop) {
        if (queue.empty()) {
            // Idle: block for the next lease (heartbeats keep flowing
            // from the side thread).
            const auto line = inbox->receive();
            if (!line) break;  // EOF: coordinator is gone
            handle(*line);
        }
        while (!stop) {
            const auto line = inbox->try_receive();
            if (!line) break;
            handle(*line);
        }
        if (stop || queue.empty()) continue;

        const std::size_t cell = queue.front();
        queue.pop_front();
        // Crash drills: `worker.cell_start=kill` dies before any work
        // (re-lease path), `worker.pre_ack_kill=kill` dies after the
        // durable append but before the ack (salvage path). SIGKILL is
        // uncatchable, so no destructor or flush can soften the crash.
        support::failpoint::maybe_fail("worker.cell_start", "fleet",
                                       static_cast<long>(cell));
        const auto started = Clock::now();
        CellResult result;
        result.cell = grid[cell];
        result.outcome = core::ColorPickerApp(result.cell.config).run();
        result.wall_seconds = seconds_since(started);
        journal.append(result);  // durable (fdatasync) before the ack
        support::failpoint::maybe_fail("worker.pre_ack_kill", "fleet");
        if (!send(format_ack(cell))) break;  // coordinator is gone
    }

    {
        support::MutexLock lock(hb_mutex);
        hb_stop = true;
    }
    hb_cv.notify_all();
    heartbeat.join();
    return exit_code;
}

}  // namespace sdl::campaign
