// Fleet execution: a work-stealing multi-process campaign orchestrator
// with live merge.
//
// One coordinator process expands the grid once, orders cells by the
// cost model (cost_model.hpp, longest-expected-first), and leases slices
// of that order to N worker processes over a line protocol on the
// workers' stdin/stdout pipes (support/subprocess.hpp):
//
//   worker -> coordinator:  "hello <pid>"   ready, lease me work
//                           "beat"          heartbeat (side thread)
//                           "ack <cell>"    cell journaled durably
//   coordinator -> worker:  "lease <cell> [<cell>...]"
//                           "stop"          drain and exit
//
// Every worker appends finished cells to its own digest-validated
// journal (campaign/checkpoint.hpp, whole-grid header) and sends "ack"
// only after the fdatasync'd append — so the ack means "this result
// survives my death". The coordinator tails worker journals as acks
// arrive (the journal, not the pipe, carries result payloads: one
// source of truth) and merges continuously — campaign.json/campaign.csv
// are rewritten atomically during the run, so aggregates are live.
//
// Dynamic balance instead of static shards: leases are dealt off the
// front of the remaining cost-ordered queue and shrink adaptively
// (LeaseTable::suggested_lease), so fast workers drain the queue while
// a straggler holds at most one running and one queued cell. A worker
// that goes quiet past the heartbeat timeout is SIGKILLed (it must not
// be allowed to journal a re-leased cell later); on EOF or kill the
// coordinator reads the dead worker's journal tail — acknowledged AND
// journaled-but-unacked cells are salvaged, never recomputed — and
// returns only the truly incomplete cells to the queue front.
//
// Determinism: a cell's outcome depends only on its resolved config,
// execution order is decoupled from result order, and the final report
// is written from index-sorted results — so campaign.json is
// byte-identical to a single-process uninterrupted run, including when
// workers are SIGKILLed mid-campaign. Duplicates stay loud end to end
// (LeaseTable::complete throws on a twice-completed cell).
//
// Self-healing (docs/ROBUSTNESS.md): dead workers are respawned into
// fresh per-incarnation directories with capped exponential backoff
// instead of shrinking the pool; a cell that kills `quarantine_after`
// distinct worker incarnations is quarantined (reported in
// campaign.json, never re-leased); and every spawn/crash/quarantine is
// written ahead to a fsync'd coordinator ledger (coordinator.jsonl) so
// `sdlbench_fleet --resume <dir>` can restart a killed coordinator from
// the ledger plus the worker journals — still byte-identical to an
// uninterrupted run. Fault injection for all of this rides on
// support/failpoint.hpp sites rather than bespoke chaos flags.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "campaign/runner.hpp"

namespace sdl::campaign {

// --------------------------------------------------------------- protocol

enum class WorkerMsgKind { Hello, Beat, Ack };
struct WorkerMessage {
    WorkerMsgKind kind = WorkerMsgKind::Beat;
    long pid = 0;          ///< Hello
    std::size_t cell = 0;  ///< Ack
};

enum class CoordMsgKind { Lease, Stop };
struct CoordMessage {
    CoordMsgKind kind = CoordMsgKind::Stop;
    std::vector<std::size_t> cells;  ///< Lease
};

/// Parse one protocol line; nullopt on anything malformed (the receiver
/// treats that as a protocol error and drops the peer loudly).
[[nodiscard]] std::optional<WorkerMessage> parse_worker_line(const std::string& line);
[[nodiscard]] std::optional<CoordMessage> parse_coordinator_line(const std::string& line);

[[nodiscard]] std::string format_hello(long pid);
[[nodiscard]] std::string format_beat();
[[nodiscard]] std::string format_ack(std::size_t cell);
[[nodiscard]] std::string format_lease(const std::vector<std::size_t>& cells);
[[nodiscard]] std::string format_stop();

// ------------------------------------------------------------ coordinator

struct FleetOptions {
    /// Worker processes (capped at the cell count).
    std::size_t workers = 3;
    /// SDLBENCH_WORKERS for each worker's in-process pool; 0 = divide
    /// the hardware evenly (max(1, hw / workers)) so workers get
    /// disjoint core budgets instead of each oversubscribing the host.
    std::size_t worker_threads = 0;
    /// A worker silent this long (no ack/beat/hello) is declared hung,
    /// SIGKILLed, and its incomplete cells are re-leased.
    double heartbeat_timeout_s = 30.0;
    /// Worker-side beat period.
    double heartbeat_interval_s = 0.25;
    /// Rewrite campaign.json/csv after this many completed cells
    /// (live merge); the final write always happens.
    std::size_t merge_every = 1;
    /// Hard cap on cells per lease; 0 = adaptive only.
    std::size_t max_lease = 0;
    /// linalg backend override (applied before digesting, both sides).
    std::string backend;
    /// Path to the sdlbench_fleet binary to exec as workers (argv[0]).
    std::string worker_exe;
    /// Print per-cell progress and worker lifecycle lines.
    bool log_progress = true;
    /// Fault injection for the crash-recovery tests: worker
    /// `chaos_kill_worker` raises SIGKILL on itself right after its
    /// `chaos_kill_after`-th journal append — after the record is
    /// durable, before the ack leaves. -1 disables. Sugar for a
    /// worker_failpoints entry `worker.pre_ack_kill=kill@N#1`.
    int chaos_kill_worker = -1;
    std::size_t chaos_kill_after = 0;
    /// Failpoint schedules injected into workers via SDLBENCH_FAILPOINTS
    /// (the coordinator always sets that variable for its children, so
    /// its own environment never leaks into them). slot >= 0 applies to
    /// generation 0 of that slot only — respawns come up clean, which is
    /// how the respawn path is tested; slot == -1 ("*") applies to every
    /// incarnation, which is how crash loops are provoked.
    struct WorkerFailpoint {
        int slot = -1;
        std::string spec;
    };
    std::vector<WorkerFailpoint> worker_failpoints;
    /// A cell that has crashed this many DISTINCT worker incarnations is
    /// quarantined: removed from the schedule and reported in
    /// campaign.json with its crash history.
    std::size_t quarantine_after = 3;
    /// Per-slot respawn budget; a slot that exhausts it is retired.
    std::size_t max_respawns = 8;
    /// Respawn backoff: min(cap, base * 2^consecutive_crashes). The
    /// streak resets on any successful ack from that slot.
    double respawn_backoff_s = 0.25;
    double respawn_backoff_cap_s = 5.0;
    /// Restart a killed coordinator from out_dir's coordinator.jsonl
    /// ledger + worker journals instead of demanding a clean directory.
    bool resume = false;
};

struct FleetSummary {
    std::size_t cells = 0;
    std::size_t workers_started = 0;
    std::size_t workers_lost = 0;     ///< died or declared hung
    std::size_t workers_respawned = 0;
    std::size_t cells_salvaged = 0;   ///< journaled by a dead worker, unacked
    std::size_t cells_releases = 0;   ///< re-leased after a worker loss
    std::size_t cells_quarantined = 0;
    double makespan_s = 0.0;          ///< coordinator wall time
    double busy_s = 0.0;              ///< sum of per-cell worker wall time
    /// busy_s / (makespan_s * workers_started) — 1.0 is a perfectly
    /// packed schedule.
    double efficiency = 0.0;
};

struct FleetResult {
    FleetSummary summary;
    /// All completed cells, index-sorted — the same vector a
    /// single-process run produces (minus any quarantined cells).
    std::vector<CellResult> results;
    /// Crash-loop-contained cells with their crash histories; empty on
    /// a healthy run.
    std::vector<QuarantinedCell> quarantined;
};

/// Runs the campaign at `spec_path` across worker processes, writing
/// campaign.json/campaign.csv (live + final) and a fused whole-grid
/// cells.jsonl to `out_dir`. Throws on an unrecoverable failure (spec
/// errors, all workers lost, duplicate cell execution).
FleetResult run_fleet(const std::string& spec_path, const std::string& out_dir,
                      const FleetOptions& options);

// ----------------------------------------------------------------- worker

struct FleetWorkerOptions {
    std::string campaign_path;
    std::string dir;            ///< this worker's journal directory
    std::string expect_digest;  ///< coordinator's spec digest (must match)
    std::string backend;
    double heartbeat_interval_s = 0.25;
};

/// The worker-mode main loop: leases in on stdin, acks out on stdout,
/// results into <dir>/cells.jsonl. Returns a process exit code (0 on a
/// clean stop/EOF drain).
int run_fleet_worker(const FleetWorkerOptions& options);

}  // namespace sdl::campaign
