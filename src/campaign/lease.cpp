#include "campaign/lease.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace sdl::campaign {

LeaseTable::LeaseTable(std::size_t cell_count, std::vector<std::size_t> order)
    : states_(cell_count, State::Pending), owner_(cell_count, -1),
      rank_(cell_count, 0), crashes_(cell_count) {
    support::check(order.size() == cell_count,
                   "lease table order must be a permutation of the cells");
    std::vector<bool> seen(cell_count, false);
    for (std::size_t pos = 0; pos < order.size(); ++pos) {
        const std::size_t cell = order[pos];
        support::check(cell < cell_count && !seen[cell],
                       "lease table order must be a permutation of the cells");
        seen[cell] = true;
        rank_[cell] = pos;
        pending_.push_back(cell);
    }
}

std::vector<std::size_t> LeaseTable::grant(int worker, std::size_t max_cells) {
    std::vector<std::size_t> leased;
    while (leased.size() < max_cells && !pending_.empty()) {
        const std::size_t cell = pending_.front();
        pending_.pop_front();
        // A revoked-then-completed cell can still sit in the queue in
        // Done state (see complete()); skip it rather than re-lease it.
        if (states_[cell] != State::Pending) continue;
        states_[cell] = State::Leased;
        owner_[cell] = worker;
        leased.push_back(cell);
    }
    return leased;
}

void LeaseTable::complete(std::size_t cell) {
    support::check(cell < states_.size(), "complete() cell out of range");
    if (states_[cell] == State::Done) {
        throw support::LogicError("cell " + std::to_string(cell) +
                                  " completed twice — a worker executed a cell it did "
                                  "not own (duplicate results would corrupt the merge)");
    }
    if (states_[cell] == State::Quarantined) {
        throw support::LogicError(
            "cell " + std::to_string(cell) +
            " completed after quarantine — a worker was still running a cell "
            "the coordinator had written off (quarantine must only happen "
            "after every suspect worker is confirmed dead)");
    }
    // Pending cells are NOT removed from the queue here (deque erase is
    // O(n)); grant() skips non-Pending entries instead.
    states_[cell] = State::Done;
    owner_[cell] = -1;
    ++done_;
}

std::vector<std::size_t> LeaseTable::revoke(int worker) {
    std::vector<std::size_t> revoked;
    for (std::size_t cell = 0; cell < states_.size(); ++cell) {
        if (states_[cell] == State::Leased && owner_[cell] == worker) {
            states_[cell] = State::Pending;
            owner_[cell] = -1;
            revoked.push_back(cell);
        }
    }
    std::sort(revoked.begin(), revoked.end(),
              [&](std::size_t a, std::size_t b) { return rank_[a] < rank_[b]; });
    // Front of the queue, preserving relative (schedule) order: these
    // were the longest remaining cells, restart them first.
    for (auto it = revoked.rbegin(); it != revoked.rend(); ++it) {
        pending_.push_front(*it);
    }
    return revoked;
}

std::size_t LeaseTable::record_crash(std::size_t cell, long incarnation) {
    support::check(cell < states_.size(), "record_crash() cell out of range");
    if (states_[cell] == State::Done || states_[cell] == State::Quarantined) {
        return 0;
    }
    std::vector<long>& burned = crashes_[cell];
    if (std::find(burned.begin(), burned.end(), incarnation) == burned.end()) {
        burned.push_back(incarnation);
    }
    return burned.size();
}

void LeaseTable::quarantine(std::size_t cell) {
    support::check(cell < states_.size(), "quarantine() cell out of range");
    if (states_[cell] == State::Done) {
        throw support::LogicError("cell " + std::to_string(cell) +
                                  " quarantined after completing — discarding a "
                                  "finished result is never correct");
    }
    if (states_[cell] == State::Quarantined) {
        throw support::LogicError("cell " + std::to_string(cell) +
                                  " quarantined twice — coordinator crash "
                                  "bookkeeping re-convicted a removed cell");
    }
    // grant() skips non-Pending queue entries, so no deque surgery needed.
    states_[cell] = State::Quarantined;
    owner_[cell] = -1;
    ++quarantined_;
}

std::size_t LeaseTable::crash_count(std::size_t cell) const noexcept {
    return cell < crashes_.size() ? crashes_[cell].size() : 0;
}

bool LeaseTable::is_quarantined(std::size_t cell) const noexcept {
    return cell < states_.size() && states_[cell] == State::Quarantined;
}

std::vector<std::size_t> LeaseTable::quarantined() const {
    std::vector<std::size_t> cells;
    for (std::size_t cell = 0; cell < states_.size(); ++cell) {
        if (states_[cell] == State::Quarantined) cells.push_back(cell);
    }
    return cells;
}

std::size_t LeaseTable::outstanding(int worker) const noexcept {
    std::size_t n = 0;
    for (std::size_t cell = 0; cell < states_.size(); ++cell) {
        if (states_[cell] == State::Leased && owner_[cell] == worker) ++n;
    }
    return n;
}

std::size_t LeaseTable::suggested_lease(std::size_t active_workers,
                                        std::size_t max_lease) const noexcept {
    // pending_ may hold stale Done entries (see complete()); count real ones.
    std::size_t pending = 0;
    for (const std::size_t cell : pending_) {
        if (states_[cell] == State::Pending) ++pending;
    }
    if (pending == 0) return 0;
    const std::size_t workers = std::max<std::size_t>(1, active_workers);
    std::size_t lease = (pending + 2 * workers - 1) / (2 * workers);  // ceil
    if (max_lease > 0) lease = std::min(lease, max_lease);
    return std::max<std::size_t>(1, lease);
}

}  // namespace sdl::campaign
