// Lease-table scheduler: dynamic work distribution with revocation.
//
// The fleet coordinator owns one LeaseTable over the expanded grid.
// Cells start Pending in cost-model schedule order (cost_model.hpp,
// longest-expected-first); workers pull small contiguous slices of that
// order ("leases"), complete cells out of order, and a dead worker's
// incomplete cells are revoked back to the FRONT of the queue — they
// were the longest remaining work, so the next free worker picks them
// up immediately. Work-stealing emerges from pull-based leasing: lease
// sizes shrink as the queue drains (suggested_lease), so toward the end
// every worker holds at most one running and one queued cell, and no
// straggler can sit on a pile another worker could have taken.
//
// The table never re-issues a completed cell, and complete() on an
// already-completed cell throws — that is the fleet's "no cell executed
// twice" duplicate guard staying loud (the same discipline as the
// journal loader's duplicate check).
//
// Crash-loop containment: record_crash() accumulates which distinct
// worker incarnations died while suspected of running a cell; once K
// distinct incarnations have been burned, the coordinator calls
// quarantine() and the cell leaves the schedule permanently — reported
// as a failed cell with its crash history instead of re-leased forever
// (docs/ROBUSTNESS.md § Poison-cell quarantine).
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "campaign/campaign.hpp"

namespace sdl::campaign {

class LeaseTable {
public:
    /// `order`: a permutation of [0, cell_count) — the claim order
    /// (schedule_order(cells)); leases are dealt off its front.
    LeaseTable(std::size_t cell_count, std::vector<std::size_t> order);

    /// Leases up to `max_cells` pending cells (in queue order) to
    /// `worker`. Returns the leased cell positions; empty when nothing
    /// is pending (everything is leased or done).
    [[nodiscard]] std::vector<std::size_t> grant(int worker, std::size_t max_cells);

    /// Marks `cell` complete (journal record observed). Throws
    /// LogicError when the cell was already complete — a duplicate
    /// execution, which must never be silent. The cell may be in any
    /// other state: normally Leased, but also Pending (a revoked cell
    /// whose journal record surfaced after the revoke).
    void complete(std::size_t cell);

    /// Returns `worker`'s incomplete leased cells to the front of the
    /// pending queue (in their original schedule order, which the
    /// returned vector also follows) and clears the worker's lease set.
    /// Call after the worker is confirmed dead
    /// (killed + reaped) and its journal has been drained — never
    /// while it might still run.
    std::vector<std::size_t> revoke(int worker);

    /// Records that worker `incarnation` (a unique id per spawned
    /// process, NOT the slot number — respawns get fresh ids) died while
    /// `cell` was the suspected culprit. Returns how many DISTINCT
    /// incarnations have now been burned by this cell; the coordinator
    /// quarantines at its K threshold. Duplicate (cell, incarnation)
    /// pairs don't double-count, and crashes recorded against a Done or
    /// Quarantined cell are ignored (returns 0) — the race where the
    /// journal record surfaced after the blame was assigned.
    std::size_t record_crash(std::size_t cell, long incarnation);

    /// Removes `cell` from the schedule permanently: it will never be
    /// granted again and counts toward all_done() without counting as
    /// done. Throws LogicError when the cell is already Done (it
    /// finished — quarantining it would discard a real result) or
    /// already Quarantined (double-quarantine means the coordinator's
    /// bookkeeping is broken).
    void quarantine(std::size_t cell);

    /// Distinct incarnations burned by `cell` so far (0 for most cells).
    [[nodiscard]] std::size_t crash_count(std::size_t cell) const noexcept;
    [[nodiscard]] bool is_quarantined(std::size_t cell) const noexcept;
    /// Quarantined cell indices, ascending.
    [[nodiscard]] std::vector<std::size_t> quarantined() const;

    /// True when every cell is resolved: Done or Quarantined.
    [[nodiscard]] bool all_done() const noexcept {
        return done_ + quarantined_ == states_.size();
    }
    [[nodiscard]] std::size_t done_count() const noexcept { return done_; }
    [[nodiscard]] std::size_t quarantined_count() const noexcept { return quarantined_; }
    [[nodiscard]] std::size_t cell_count() const noexcept { return states_.size(); }
    [[nodiscard]] std::size_t pending_count() const noexcept { return pending_.size(); }
    /// Cells currently leased to `worker` and not yet complete.
    [[nodiscard]] std::size_t outstanding(int worker) const noexcept;

    /// Adaptive lease size: splits the pending queue so `active_workers`
    /// all stay busy with headroom to rebalance — ceil(pending / (2 *
    /// workers)), at least 1 while work remains, capped at `max_lease`
    /// when nonzero. Small leases near the end are the work-stealing.
    [[nodiscard]] std::size_t suggested_lease(std::size_t active_workers,
                                              std::size_t max_lease) const noexcept;

private:
    enum class State : unsigned char { Pending, Leased, Done, Quarantined };

    std::vector<State> states_;
    std::vector<int> owner_;           // valid while Leased
    std::vector<std::size_t> rank_;    // cell -> position in schedule order
    std::deque<std::size_t> pending_;  // claim order, front = next
    // cell -> distinct incarnations that died blamed on it; sorted-vector
    // keyed map would be overkill for the handful of crashing cells.
    std::vector<std::vector<long>> crashes_;
    std::size_t done_ = 0;
    std::size_t quarantined_ = 0;
};

}  // namespace sdl::campaign
