#include "campaign/report.hpp"

#include <filesystem>

#include "core/config_io.hpp"
#include "core/scenario_gen.hpp"
#include "support/atomic_io.hpp"
#include "support/csv.hpp"

namespace sdl::campaign {

namespace json = support::json;

json::Value rgb_to_json(color::Rgb8 c) {
    json::Value v = json::Value::array();
    v.push_back(static_cast<std::int64_t>(c.r));
    v.push_back(static_cast<std::int64_t>(c.g));
    v.push_back(static_cast<std::int64_t>(c.b));
    return v;
}

namespace {

json::Value stats_to_json(const support::OnlineStats& s) {
    json::Value v = json::Value::object();
    v.set("mean", s.mean());
    v.set("stddev", s.stddev());
    v.set("min", s.min());
    v.set("max", s.max());
    return v;
}

}  // namespace

std::vector<CellAggregate> aggregate_results(std::span<const CellResult> results) {
    std::vector<CellAggregate> groups;
    for (const CellResult& result : results) {
        const CampaignCell& cell = result.cell;
        CellAggregate* group = nullptr;
        for (CellAggregate& g : groups) {
            if (g.workcell == cell.workcell && g.solver == cell.solver &&
                g.batch_size == cell.batch_size && g.objective == cell.objective &&
                g.target == cell.target) {
                group = &g;
                break;
            }
        }
        if (group == nullptr) {
            CellAggregate fresh;
            fresh.workcell = cell.workcell;
            fresh.solver = cell.solver;
            fresh.batch_size = cell.batch_size;
            fresh.objective = cell.objective;
            fresh.target = cell.target;
            groups.push_back(std::move(fresh));
            group = &groups.back();
        }
        ++group->replicates;
        group->best_score.add(result.outcome.best_score);
        group->total_minutes.add(result.outcome.metrics.total_time.to_minutes());
        group->time_per_color_minutes.add(
            result.outcome.metrics.time_per_color.to_minutes());
        group->batches_run.add(static_cast<double>(result.outcome.batches_run));
        group->commands_completed.add(
            static_cast<double>(result.outcome.metrics.commands_completed));
    }
    return groups;
}

json::Value experiment_result_to_json(const core::ColorPickerConfig& config,
                                      const core::ExperimentOutcome& outcome) {
    json::Value doc = json::Value::object();
    doc.set("schema", "sdlbench.experiment_result.v2");
    doc.set("experiment_id", outcome.experiment_id);
    doc.set("workcell", config.workcell.scenario);
    doc.set("solver", config.solver);
    doc.set("objective", core::objective_to_string(config.objective));
    doc.set("target", rgb_to_json(config.target));
    doc.set("batch_size", config.batch_size);
    doc.set("total_samples", config.total_samples);
    doc.set("seed", static_cast<std::int64_t>(config.seed));
    // Strict (the reference) stays implicit so reference-run reports are
    // byte-identical across releases; any other backend is recorded.
    if (config.linalg_backend != "strict") {
        doc.set("linalg_backend", config.linalg_backend);
    }
    json::Value plate = json::Value::object();
    plate.set("rows", config.plate_rows);
    plate.set("cols", config.plate_cols);
    doc.set("plate", std::move(plate));

    json::Value samples = json::Value::array();
    for (const core::SamplePoint& s : outcome.samples) {
        json::Value point = json::Value::object();
        point.set("index", s.index);
        point.set("elapsed_min", s.elapsed_minutes);
        point.set("score", s.score);
        point.set("best_so_far", s.best_so_far);
        point.set("measured", rgb_to_json(s.measured));
        samples.push_back(std::move(point));
    }
    doc.set("samples", std::move(samples));

    json::Value best = json::Value::object();
    best.set("score", outcome.best_score);
    best.set("color", rgb_to_json(outcome.best_color));
    json::Value ratios = json::Value::array();
    for (const double r : outcome.best_ratios) ratios.push_back(r);
    best.set("ratios", std::move(ratios));
    doc.set("best", std::move(best));
    doc.set("reached_threshold", outcome.reached_threshold);

    json::Value counts = json::Value::object();
    counts.set("plates_used", outcome.plates_used);
    counts.set("replenishes", outcome.replenishes);
    counts.set("batches_run", outcome.batches_run);
    counts.set("frame_retakes", outcome.frame_retakes);
    counts.set("wells_rescued", static_cast<std::int64_t>(outcome.wells_rescued_total));
    // Conditional key (like linalg_backend above): runs without the
    // clogged-tip fault chain keep their pre-existing bytes.
    if (outcome.reprimes > 0) counts.set("reprimes", outcome.reprimes);
    doc.set("counts", std::move(counts));

    const metrics::SdlMetrics& m = outcome.metrics;
    json::Value table1 = json::Value::object();
    table1.set("time_without_humans_min", m.time_without_humans.to_minutes());
    table1.set("commands_completed", static_cast<std::int64_t>(m.commands_completed));
    table1.set("synthesis_min", m.synthesis_time.to_minutes());
    table1.set("transfer_min", m.transfer_time.to_minutes());
    table1.set("total_min", m.total_time.to_minutes());
    table1.set("total_colors", m.total_colors);
    table1.set("time_per_color_min", m.time_per_color.to_minutes());
    table1.set("mean_upload_interval_min", m.mean_upload_interval.to_minutes());
    table1.set("interventions", m.interventions);
    doc.set("metrics", std::move(table1));
    return doc;
}

json::Value campaign_results_to_json(const CampaignSpec& spec,
                                     std::span<const CellResult> results,
                                     std::span<const QuarantinedCell> quarantined) {
    json::Value doc = json::Value::object();
    doc.set("schema", "sdlbench.campaign_result.v2");

    json::Value campaign = json::Value::object();
    campaign.set("name", spec.name);
    campaign.set("replicates", spec.replicates);
    campaign.set("base_seed", static_cast<std::int64_t>(spec.base_seed));
    campaign.set("seed_mode",
                 spec.seed_mode == SeedMode::PerCell ? "per_cell" : "per_replicate");
    campaign.set("cells", static_cast<std::int64_t>(results.size()));
    campaign.set("total_samples", spec.base.total_samples);
    json::Value workcells = json::Value::array();
    for (const std::string& w : normalize(spec).axes.workcells) workcells.push_back(w);
    campaign.set("workcells", std::move(workcells));
    doc.set("campaign", std::move(campaign));

    json::Value cells = json::Value::array();
    for (const CellResult& result : results) {
        json::Value entry = json::Value::object();
        json::Value cell = json::Value::object();
        cell.set("index", static_cast<std::int64_t>(result.cell.index));
        cell.set("workcell", result.cell.workcell);
        cell.set("solver", result.cell.solver);
        cell.set("batch_size", result.cell.batch_size);
        cell.set("objective", core::objective_to_string(result.cell.objective));
        cell.set("target", rgb_to_json(result.cell.target));
        cell.set("replicate", result.cell.replicate);
        cell.set("seed", static_cast<std::int64_t>(result.cell.config.seed));
        if (result.cell.generated_seed) {
            // Generated cells carry their scenario's difficulty score so a
            // sweep over the scenario space is self-describing. The keys
            // are conditional: hand-written-scenario campaigns keep their
            // pre-existing bytes.
            cell.set("generated_seed",
                     static_cast<std::int64_t>(*result.cell.generated_seed));
            cell.set("difficulty", core::generated_difficulty(*result.cell.generated_seed));
        }
        entry.set("cell", std::move(cell));
        entry.set("result", experiment_result_to_json(result.cell.config, result.outcome));
        cells.push_back(std::move(entry));
    }
    doc.set("cells", std::move(cells));

    json::Value aggregates = json::Value::array();
    for (const CellAggregate& g : aggregate_results(results)) {
        json::Value entry = json::Value::object();
        entry.set("workcell", g.workcell);
        entry.set("solver", g.solver);
        entry.set("batch_size", g.batch_size);
        entry.set("objective", core::objective_to_string(g.objective));
        entry.set("target", rgb_to_json(g.target));
        entry.set("replicates", static_cast<std::int64_t>(g.replicates));
        entry.set("best_score", stats_to_json(g.best_score));
        entry.set("total_min", stats_to_json(g.total_minutes));
        entry.set("time_per_color_min", stats_to_json(g.time_per_color_minutes));
        entry.set("batches_run", stats_to_json(g.batches_run));
        entry.set("commands_completed", stats_to_json(g.commands_completed));
        aggregates.push_back(std::move(entry));
    }
    doc.set("aggregates", std::move(aggregates));

    // Conditional key (same pattern as generated_seed / linalg_backend):
    // only crash-loop-contained fleet runs carry it, so every other
    // campaign document keeps its pre-existing bytes.
    if (!quarantined.empty()) {
        json::Value quarantine_list = json::Value::array();
        for (const QuarantinedCell& q : quarantined) {
            json::Value entry = json::Value::object();
            entry.set("index", static_cast<std::int64_t>(q.cell.index));
            entry.set("workcell", q.cell.workcell);
            entry.set("solver", q.cell.solver);
            entry.set("batch_size", q.cell.batch_size);
            entry.set("objective", core::objective_to_string(q.cell.objective));
            entry.set("target", rgb_to_json(q.cell.target));
            entry.set("replicate", q.cell.replicate);
            entry.set("seed", static_cast<std::int64_t>(q.cell.config.seed));
            json::Value crashes = json::Value::array();
            for (const CellCrash& crash : q.crashes) {
                json::Value c = json::Value::object();
                c.set("slot", crash.slot);
                c.set("generation", crash.generation);
                c.set("pid", static_cast<std::int64_t>(crash.pid));
                c.set("reason", crash.reason);
                crashes.push_back(std::move(c));
            }
            entry.set("crashes", std::move(crashes));
            quarantine_list.push_back(std::move(entry));
        }
        doc.set("quarantined", std::move(quarantine_list));
    }
    return doc;
}

std::string campaign_results_to_csv(std::span<const CellResult> results) {
    support::CsvWriter csv({"cell", "workcell", "solver", "batch_size", "objective",
                            "target_r", "target_g", "target_b", "replicate", "seed",
                            "samples", "best_score", "batches_run", "total_min",
                            "time_per_color_min", "commands_completed"});
    for (const CellResult& result : results) {
        const CampaignCell& cell = result.cell;
        const metrics::SdlMetrics& m = result.outcome.metrics;
        csv.add_row(std::vector<std::string>{
            std::to_string(cell.index), cell.workcell, cell.solver,
            std::to_string(cell.batch_size),
            core::objective_to_string(cell.objective), std::to_string(cell.target.r),
            std::to_string(cell.target.g), std::to_string(cell.target.b),
            std::to_string(cell.replicate), std::to_string(cell.config.seed),
            std::to_string(result.outcome.samples.size()),
            support::fmt_roundtrip(result.outcome.best_score),
            std::to_string(result.outcome.batches_run),
            support::fmt_roundtrip(m.total_time.to_minutes()),
            support::fmt_roundtrip(m.time_per_color.to_minutes()),
            std::to_string(m.commands_completed)});
    }
    return csv.str();
}

std::string write_campaign_outputs(const std::string& out_dir, const CampaignSpec& spec,
                                   std::span<const CellResult> results,
                                   std::span<const QuarantinedCell> quarantined) {
    std::filesystem::create_directories(out_dir);
    std::string doc_text = campaign_results_to_json(spec, results, quarantined).pretty();
    doc_text += "\n";
    support::atomic_write(out_dir + "/campaign.json", doc_text);
    support::atomic_write(out_dir + "/campaign.csv", campaign_results_to_csv(results));
    return doc_text;
}

}  // namespace sdl::campaign
