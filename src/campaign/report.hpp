// Campaign reporting: per-group aggregation plus JSON/CSV serialization.
//
// One result schema serves both single experiments (sdlbench_run --json)
// and campaign cells, so downstream tooling parses one shape:
// "sdlbench.experiment_result.v2" (v2 added the `workcell` scenario
// name). Campaign documents ("sdlbench.campaign_result.v2") wrap a list
// of cell results plus replicate-aggregated statistics. Everything
// serialized here is modeled (simulated) time — host wall time is
// deliberately kept out so the same spec yields byte-identical JSON on
// every run.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "campaign/runner.hpp"
#include "support/json.hpp"
#include "support/stats.hpp"

namespace sdl::campaign {

/// Statistics over the replicates of one grid point
/// (workcell, solver, batch_size, objective, target).
struct CellAggregate {
    std::string workcell;
    std::string solver;
    int batch_size = 1;
    core::Objective objective = core::Objective::RgbEuclidean;
    color::Rgb8 target;
    std::size_t replicates = 0;
    support::OnlineStats best_score;
    support::OnlineStats total_minutes;          ///< modeled experiment time
    support::OnlineStats time_per_color_minutes;
    support::OnlineStats batches_run;
    support::OnlineStats commands_completed;
};

/// Groups results by grid point (first-seen order) and accumulates the
/// replicate statistics.
[[nodiscard]] std::vector<CellAggregate> aggregate_results(
    std::span<const CellResult> results);

/// The one [r, g, b] JSON form every campaign document uses — shared by
/// the reports and the checkpoint journal so their encodings cannot
/// drift apart (the byte-identity contract depends on it).
[[nodiscard]] support::json::Value rgb_to_json(color::Rgb8 c);

/// The shared result schema ("sdlbench.experiment_result.v2"): experiment
/// id, resolved knobs incl. the workcell scenario, the Figure-4 sample
/// series, best match, counters, and the Table-1 metrics.
[[nodiscard]] support::json::Value experiment_result_to_json(
    const core::ColorPickerConfig& config, const core::ExperimentOutcome& outcome);

/// One worker death attributed to a quarantined cell.
struct CellCrash {
    int slot = -1;       ///< fleet worker slot
    int generation = 0;  ///< respawn generation of that slot (0 = original)
    long pid = -1;
    std::string reason;  ///< e.g. "signal 9", "heartbeat timeout"
};

/// A cell removed from the schedule by crash-loop containment: it killed
/// `crashes.size()` distinct worker incarnations and was written off
/// instead of re-leased forever. Reported, never silently dropped.
struct QuarantinedCell {
    CampaignCell cell;
    std::vector<CellCrash> crashes;
};

/// The campaign document ("sdlbench.campaign_result.v2"): spec echo,
/// per-cell results (each recording its workcell scenario), aggregates.
/// Deterministic for a given spec. `quarantined` cells (fleet crash-loop
/// containment) appear under a conditional top-level "quarantined" key —
/// campaigns without one keep their pre-existing bytes.
[[nodiscard]] support::json::Value campaign_results_to_json(
    const CampaignSpec& spec, std::span<const CellResult> results,
    std::span<const QuarantinedCell> quarantined = {});

/// One summary row per cell (no sample series) for spreadsheet use.
/// Numeric cells use shortest-round-trip formatting (support::
/// fmt_roundtrip), so scores and times in the CSV parse back to exactly
/// the doubles campaign.json carries.
[[nodiscard]] std::string campaign_results_to_csv(std::span<const CellResult> results);

/// Writes the campaign document set — campaign.json + campaign.csv — to
/// `out_dir` (created if needed), both through support::atomic_write so a
/// crash mid-write cannot leave a torn report that a resume would then
/// trust. Returns the campaign.json text (for `--json` duplication).
std::string write_campaign_outputs(const std::string& out_dir, const CampaignSpec& spec,
                                   std::span<const CellResult> results,
                                   std::span<const QuarantinedCell> quarantined = {});

}  // namespace sdl::campaign
