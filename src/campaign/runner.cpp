#include "campaign/runner.hpp"

#include <atomic>
#include <chrono>
#include <utility>

#include "core/colorpicker.hpp"
#include "support/log.hpp"

namespace sdl::campaign {

std::vector<CellResult> CampaignRunner::run(const CampaignSpec& spec) const {
    return run(spec, support::global_pool());
}

std::vector<CellResult> CampaignRunner::run(const CampaignSpec& spec,
                                            support::ThreadPool& pool) const {
    std::vector<CampaignCell> cells = expand_grid(spec);
    const std::size_t total = cells.size();
    if (options_.log_progress) {
        support::log_info("campaign", "'", spec.name, "': ", total, " cells on ",
                          pool.size(), " workers");
    }
    std::atomic<std::size_t> done{0};

    support::ParallelOptions parallel;
    parallel.max_workers = options_.max_workers;
    parallel.chunk = options_.chunk;
    return pool.parallel_map(
        total,
        [&](std::size_t i) {
            const auto started = std::chrono::steady_clock::now();
            CellResult result;
            result.cell = std::move(cells[i]);
            result.outcome = core::ColorPickerApp(result.cell.config).run();
            result.wall_seconds =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                    .count();
            const std::size_t finished = done.fetch_add(1) + 1;
            if (options_.log_progress) {
                support::log_info("campaign", "[", finished, "/", total, "] ",
                                  result.cell.config.experiment_id,
                                  " best=", result.outcome.best_score, " (",
                                  result.outcome.samples.size(), " samples)");
            }
            if (options_.on_cell_done) options_.on_cell_done(result, finished, total);
            return result;
        },
        parallel);
}

}  // namespace sdl::campaign
