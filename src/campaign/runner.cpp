#include "campaign/runner.hpp"

#include <chrono>
#include <utility>

#include "campaign/cost_model.hpp"
#include "core/colorpicker.hpp"
#include "support/log.hpp"
#include "support/mutex.hpp"

namespace sdl::campaign {

std::vector<CellResult> CampaignRunner::run(const CampaignSpec& spec) const {
    return run(spec, support::global_pool());
}

std::vector<CellResult> CampaignRunner::run(const CampaignSpec& spec,
                                            support::ThreadPool& pool) const {
    std::vector<CampaignCell> cells = expand_grid(spec);
    if (options_.log_progress) {
        support::log_info("campaign", "'", spec.name, "': ", cells.size(), " cells on ",
                          pool.size(), " workers");
    }
    return run_cells(std::move(cells), pool);
}

std::vector<CellResult> CampaignRunner::run_cells(std::vector<CampaignCell> cells) const {
    return run_cells(std::move(cells), support::global_pool());
}

std::vector<CellResult> CampaignRunner::run_cells(std::vector<CampaignCell> cells,
                                                  support::ThreadPool& pool) const {
    const std::size_t total = cells.size();
    // Workers claim cells longest-expected-first (LPT): starting the big
    // cells early keeps the makespan tail short when costs are skewed.
    // Claim order is a scheduling detail only — results scatter back to
    // input order below, so output bytes are identical to the unordered
    // run.
    const std::vector<std::size_t> order = schedule_order(cells);
    // Serializes completion handling: the progress log line and the
    // on_cell_done hook (see runner.hpp). Pool workers would otherwise
    // interleave a journaling callback's writes.
    support::Mutex done_mutex;
    std::size_t done = 0;

    support::ParallelOptions parallel;
    parallel.max_workers = options_.max_workers;
    parallel.chunk = options_.chunk;
    std::vector<CellResult> mapped = pool.parallel_map(
        total,
        [&](std::size_t k) {
            const std::size_t i = order[k];
            // sdlbench-lint: allow(steady-clock): wall_seconds is journal-only telemetry; campaign.json reports modeled time
            const auto started = std::chrono::steady_clock::now();
            CellResult result;
            result.cell = std::move(cells[i]);
            result.outcome = core::ColorPickerApp(result.cell.config).run();
            result.wall_seconds =
                // sdlbench-lint: allow(steady-clock): wall_seconds is journal-only telemetry; campaign.json reports modeled time
                std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                    .count();
            {
                support::MutexLock lock(done_mutex);
                const std::size_t finished = ++done;
                if (options_.log_progress) {
                    support::log_info("campaign", "[", finished, "/", total, "] ",
                                      result.cell.config.experiment_id,
                                      " best=", result.outcome.best_score, " (",
                                      result.outcome.samples.size(), " samples)");
                }
                if (options_.on_cell_done) {
                    options_.on_cell_done(result, finished, total);
                }
            }
            return result;
        },
        parallel);
    std::vector<CellResult> results(total);
    for (std::size_t k = 0; k < total; ++k) {
        results[order[k]] = std::move(mapped[k]);
    }
    return results;
}

}  // namespace sdl::campaign
