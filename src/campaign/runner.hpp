// CampaignRunner: executes an expanded campaign grid on the thread pool.
//
// Every cell is an independent simulated workcell (its own
// core::WorkcellRuntime), so cells parallelize perfectly; the runner fans
// them out with support::ThreadPool::parallel_map using the hinted
// overload, claims cells longest-expected-first (campaign/cost_model.hpp,
// LPT scheduling — shortens the makespan tail on cost-skewed grids),
// keeps results in grid order, and logs progress as cells complete.
// Determinism: a cell's outcome depends only on its resolved
// config (expand_grid's deterministic seeds), never on scheduling, so the
// same spec always produces identical results.
#pragma once

#include <functional>
#include <vector>

#include "campaign/campaign.hpp"
#include "support/thread_pool.hpp"

namespace sdl::campaign {

/// One executed cell. `wall_seconds` is host time (excluded from the
/// deterministic result JSON; bench_campaign reports it separately).
struct CellResult {
    CampaignCell cell;
    core::ExperimentOutcome outcome;
    double wall_seconds = 0.0;
};

struct CampaignRunnerOptions {
    /// Cap on cells in flight (0 = one per pool worker).
    std::size_t max_workers = 0;
    /// Cells claimed per worker grab (ThreadPool chunk hint).
    std::size_t chunk = 1;
    /// Log one line per finished cell (level info, channel "campaign").
    bool log_progress = true;
    /// Extra per-cell completion hook (e.g. CLI progress output or the
    /// checkpoint journal). Called in completion order. Guarantee: the
    /// runner serializes every invocation (and the progress log line)
    /// behind one mutex, so the hook never runs concurrently with itself
    /// — a journaling callback can append to a shared file without its
    /// own locking. Keep it fast; cells block on the mutex while it runs.
    std::function<void(const CellResult&, std::size_t done, std::size_t total)>
        on_cell_done;
};

class CampaignRunner {
public:
    explicit CampaignRunner(CampaignRunnerOptions options = {}) : options_(options) {}

    /// Expands `spec` and runs every cell on the process-wide pool.
    [[nodiscard]] std::vector<CellResult> run(const CampaignSpec& spec) const;

    /// Same, on an explicit pool.
    [[nodiscard]] std::vector<CellResult> run(const CampaignSpec& spec,
                                              support::ThreadPool& pool) const;

    /// Runs an explicit subset of expanded cells (a shard, or the cells a
    /// resumed run still owes) on the process-wide pool. Results keep the
    /// order of `cells`, which need not be contiguous in the grid.
    [[nodiscard]] std::vector<CellResult> run_cells(std::vector<CampaignCell> cells) const;

    /// Same, on an explicit pool.
    [[nodiscard]] std::vector<CellResult> run_cells(std::vector<CampaignCell> cells,
                                                    support::ThreadPool& pool) const;

private:
    CampaignRunnerOptions options_;
};

}  // namespace sdl::campaign
