#include "color/dye.hpp"

#include "support/common.hpp"

namespace sdl::color {

DyeLibrary::DyeLibrary(std::vector<Dye> dyes) : dyes_(std::move(dyes)) {
    support::check(!dyes_.empty(), "dye library must contain at least one dye");
}

DyeLibrary DyeLibrary::cmyk() {
    return DyeLibrary({
        // Cyan absorbs red strongly, green moderately.
        Dye{"cyan", {2.50, 0.50, 0.15}},
        // Magenta absorbs green strongly.
        Dye{"magenta", {0.40, 2.50, 0.30}},
        // Yellow absorbs blue strongly.
        Dye{"yellow", {0.05, 0.25, 2.20}},
        // Black absorbs all channels equally.
        Dye{"black", {4.00, 4.00, 4.00}},
    });
}

std::size_t DyeLibrary::index_of(std::string_view name) const {
    for (std::size_t i = 0; i < dyes_.size(); ++i) {
        if (dyes_[i].name == name) return i;
    }
    throw support::ConfigError("unknown dye '" + std::string(name) + "'");
}

}  // namespace sdl::color
