// Dye models for the simulated liquid-color chemistry.
//
// The physical lab mixes cyan, magenta, yellow and black food dyes. Each
// simulated dye is characterized by per-channel decadic-style absorptivity
// coefficients; mixtures attenuate backlight according to Beer–Lambert
// (see mixing.hpp). Coefficients are chosen so the paper's target color
// RGB(120,120,120) is exactly reachable by a valid ratio vector (verified
// by the invert_target test).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

namespace sdl::color {

struct Dye {
    std::string name;
    /// Absorptivity per RGB channel at unit concentration and unit path
    /// length (natural log basis): OD_ch = concentration * absorptivity_ch.
    std::array<double, 3> absorptivity{};
};

/// A fixed, ordered set of dyes (the workcell's reservoir layout).
class DyeLibrary {
public:
    explicit DyeLibrary(std::vector<Dye> dyes);

    /// The paper's four-dye setup: cyan, magenta, yellow, black ("cymk"
    /// order follows §2.1: "cyan, yellow, magenta, and black dyes" — we
    /// keep CMYK naming but preserve four channels).
    [[nodiscard]] static DyeLibrary cmyk();

    [[nodiscard]] std::size_t count() const noexcept { return dyes_.size(); }
    [[nodiscard]] const Dye& dye(std::size_t i) const { return dyes_.at(i); }
    [[nodiscard]] std::span<const Dye> dyes() const noexcept { return dyes_; }

    /// Index of the dye with the given name; throws ConfigError if absent.
    [[nodiscard]] std::size_t index_of(std::string_view name) const;

private:
    std::vector<Dye> dyes_;
};

}  // namespace sdl::color
