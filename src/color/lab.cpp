#include "color/lab.hpp"

#include <cmath>
#include <numbers>

namespace sdl::color {

namespace {
// D65 reference white (2° observer), normalized to Y = 1.
constexpr double kXn = 0.95047;
constexpr double kYn = 1.00000;
constexpr double kZn = 1.08883;

constexpr double kEpsilon = 216.0 / 24389.0;  // (6/29)^3
constexpr double kKappa = 24389.0 / 27.0;     // (29/3)^3

double lab_f(double t) noexcept {
    if (t > kEpsilon) return std::cbrt(t);
    return (kKappa * t + 16.0) / 116.0;
}

double lab_f_inv(double t) noexcept {
    const double t3 = t * t * t;
    if (t3 > kEpsilon) return t3;
    return (116.0 * t - 16.0) / kKappa;
}

constexpr double deg2rad(double d) noexcept { return d * std::numbers::pi / 180.0; }
}  // namespace

Xyz to_xyz(LinearRgb c) noexcept {
    // sRGB primaries, D65 white point (IEC 61966-2-1).
    return {0.4124564 * c.r + 0.3575761 * c.g + 0.1804375 * c.b,
            0.2126729 * c.r + 0.7151522 * c.g + 0.0721750 * c.b,
            0.0193339 * c.r + 0.1191920 * c.g + 0.9503041 * c.b};
}

LinearRgb xyz_to_linear(Xyz c) noexcept {
    return {3.2404542 * c.x - 1.5371385 * c.y - 0.4985314 * c.z,
            -0.9692660 * c.x + 1.8760108 * c.y + 0.0415560 * c.z,
            0.0556434 * c.x - 0.2040259 * c.y + 1.0572252 * c.z};
}

Lab xyz_to_lab(Xyz c) noexcept {
    const double fx = lab_f(c.x / kXn);
    const double fy = lab_f(c.y / kYn);
    const double fz = lab_f(c.z / kZn);
    return {116.0 * fy - 16.0, 500.0 * (fx - fy), 200.0 * (fy - fz)};
}

Xyz lab_to_xyz(Lab c) noexcept {
    const double fy = (c.l + 16.0) / 116.0;
    const double fx = fy + c.a / 500.0;
    const double fz = fy - c.b / 200.0;
    return {kXn * lab_f_inv(fx), kYn * lab_f_inv(fy), kZn * lab_f_inv(fz)};
}

Lab to_lab(Rgb8 c) noexcept { return xyz_to_lab(to_xyz(to_linear(c))); }

double delta_e76(const Lab& a, const Lab& b) noexcept {
    const double dl = a.l - b.l;
    const double da = a.a - b.a;
    const double db = a.b - b.b;
    return std::sqrt(dl * dl + da * da + db * db);
}

double delta_e94(const Lab& a, const Lab& b) noexcept {
    const double c1 = std::hypot(a.a, a.b);
    const double c2 = std::hypot(b.a, b.b);
    const double dl = a.l - b.l;
    const double dc = c1 - c2;
    const double da = a.a - b.a;
    const double db = a.b - b.b;
    const double dh2 = da * da + db * db - dc * dc;
    const double dh = dh2 > 0.0 ? std::sqrt(dh2) : 0.0;
    const double sc = 1.0 + 0.045 * c1;
    const double sh = 1.0 + 0.015 * c1;
    const double tc = dc / sc;
    const double th = dh / sh;
    return std::sqrt(dl * dl + tc * tc + th * th);
}

double delta_e2000(const Lab& lab1, const Lab& lab2) noexcept {
    // Sharma, Wu & Dalal, "The CIEDE2000 color-difference formula:
    // implementation notes" (2005). Variable names follow the paper.
    const double c1 = std::hypot(lab1.a, lab1.b);
    const double c2 = std::hypot(lab2.a, lab2.b);
    const double c_bar = 0.5 * (c1 + c2);
    const double c_bar7 = std::pow(c_bar, 7.0);
    const double g = 0.5 * (1.0 - std::sqrt(c_bar7 / (c_bar7 + std::pow(25.0, 7.0))));

    const double a1p = (1.0 + g) * lab1.a;
    const double a2p = (1.0 + g) * lab2.a;
    const double c1p = std::hypot(a1p, lab1.b);
    const double c2p = std::hypot(a2p, lab2.b);

    auto hue_deg = [](double a, double b) noexcept {
        if (a == 0.0 && b == 0.0) return 0.0;
        double h = std::atan2(b, a) * 180.0 / std::numbers::pi;
        if (h < 0.0) h += 360.0;
        return h;
    };
    const double h1p = hue_deg(a1p, lab1.b);
    const double h2p = hue_deg(a2p, lab2.b);

    const double dlp = lab2.l - lab1.l;
    const double dcp = c2p - c1p;

    double dhp_deg = 0.0;
    if (c1p * c2p != 0.0) {
        dhp_deg = h2p - h1p;
        if (dhp_deg > 180.0) dhp_deg -= 360.0;
        else if (dhp_deg < -180.0) dhp_deg += 360.0;
    }
    const double dhp = 2.0 * std::sqrt(c1p * c2p) * std::sin(deg2rad(dhp_deg) / 2.0);

    const double l_bar = 0.5 * (lab1.l + lab2.l);
    const double cp_bar = 0.5 * (c1p + c2p);

    double hp_bar;
    if (c1p * c2p == 0.0) {
        hp_bar = h1p + h2p;
    } else {
        const double sum = h1p + h2p;
        const double diff = std::fabs(h1p - h2p);
        if (diff <= 180.0) hp_bar = 0.5 * sum;
        else if (sum < 360.0) hp_bar = 0.5 * (sum + 360.0);
        else hp_bar = 0.5 * (sum - 360.0);
    }

    const double t = 1.0 - 0.17 * std::cos(deg2rad(hp_bar - 30.0)) +
                     0.24 * std::cos(deg2rad(2.0 * hp_bar)) +
                     0.32 * std::cos(deg2rad(3.0 * hp_bar + 6.0)) -
                     0.20 * std::cos(deg2rad(4.0 * hp_bar - 63.0));

    const double d_theta = 30.0 * std::exp(-((hp_bar - 275.0) / 25.0) * ((hp_bar - 275.0) / 25.0));
    const double cp_bar7 = std::pow(cp_bar, 7.0);
    const double rc = 2.0 * std::sqrt(cp_bar7 / (cp_bar7 + std::pow(25.0, 7.0)));
    const double l_term = (l_bar - 50.0) * (l_bar - 50.0);
    const double sl = 1.0 + 0.015 * l_term / std::sqrt(20.0 + l_term);
    const double sc = 1.0 + 0.045 * cp_bar;
    const double sh = 1.0 + 0.015 * cp_bar * t;
    const double rt = -std::sin(deg2rad(2.0 * d_theta)) * rc;

    const double tl = dlp / sl;
    const double tc = dcp / sc;
    const double th = dhp / sh;
    return std::sqrt(tl * tl + tc * tc + th * th + rt * tc * th);
}

}  // namespace sdl::color
