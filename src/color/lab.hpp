// CIE XYZ / L*a*b* conversions and the ΔE color-difference family.
//
// The paper's solver grades are "delta e distance" (§2.5) while Figure 4
// plots plain RGB Euclidean distance; sdlbench implements both so either
// can be selected as the experiment's objective. ΔE2000 follows the
// Sharma/Wu/Dalal reference formulation.
#pragma once

#include "color/rgb.hpp"

namespace sdl::color {

struct Xyz {
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;
};

struct Lab {
    double l = 0.0;
    double a = 0.0;
    double b = 0.0;
};

/// Linear sRGB (D65) -> CIE XYZ, Y in [0,1].
[[nodiscard]] Xyz to_xyz(LinearRgb c) noexcept;
/// CIE XYZ -> linear sRGB (may fall outside [0,1] for out-of-gamut colors).
[[nodiscard]] LinearRgb xyz_to_linear(Xyz c) noexcept;

/// XYZ -> L*a*b* with the D65 reference white.
[[nodiscard]] Lab xyz_to_lab(Xyz c) noexcept;
/// L*a*b* -> XYZ with the D65 reference white.
[[nodiscard]] Xyz lab_to_xyz(Lab c) noexcept;

/// Convenience: 8-bit sRGB -> Lab.
[[nodiscard]] Lab to_lab(Rgb8 c) noexcept;

/// CIE76: Euclidean distance in Lab.
[[nodiscard]] double delta_e76(const Lab& a, const Lab& b) noexcept;

/// CIE94 (graphic-arts weights kL=1, K1=0.045, K2=0.015).
[[nodiscard]] double delta_e94(const Lab& a, const Lab& b) noexcept;

/// CIEDE2000 with unit parametric factors.
[[nodiscard]] double delta_e2000(const Lab& a, const Lab& b) noexcept;

}  // namespace sdl::color
