#include "color/mixing.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "support/common.hpp"

namespace sdl::color {

BeerLambertMixer::BeerLambertMixer(DyeLibrary library, double path_length)
    : library_(std::move(library)), path_length_(path_length) {
    support::check(path_length > 0.0, "path length must be positive");
}

LinearRgb BeerLambertMixer::transmittance(std::span<const double> fractions) const {
    support::check(fractions.size() == library_.count(),
                   "fraction count must match dye count");
    double total = 0.0;
    for (const double f : fractions) {
        support::check(f >= 0.0, "negative dye fraction");
        total += f;
    }
    if (total <= 0.0) return {1.0, 1.0, 1.0};  // empty well -> clear

    std::array<double, 3> od{0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        const double c = fractions[i] / total;
        const auto& eps = library_.dye(i).absorptivity;
        od[0] += c * eps[0];
        od[1] += c * eps[1];
        od[2] += c * eps[2];
    }
    return {std::exp(-path_length_ * od[0]), std::exp(-path_length_ * od[1]),
            std::exp(-path_length_ * od[2])};
}

Rgb8 BeerLambertMixer::mix(std::span<const support::Volume> volumes) const {
    std::vector<double> fractions(volumes.size());
    for (std::size_t i = 0; i < volumes.size(); ++i) {
        fractions[i] = volumes[i].to_microliters();
    }
    return mix_ratios(fractions);
}

Rgb8 BeerLambertMixer::mix_ratios(std::span<const double> ratios) const {
    return to_srgb8(transmittance(ratios));
}

std::optional<std::vector<double>> BeerLambertMixer::invert_target(Rgb8 target) const {
    const std::size_t n = library_.count();
    if (n != 4) return std::nullopt;  // the closed form below is 4-dye

    // Required optical densities per channel.
    const LinearRgb lin = to_linear(target);
    if (lin.r <= 0.0 || lin.g <= 0.0 || lin.b <= 0.0) return std::nullopt;
    const std::array<double, 3> od{-std::log(lin.r) / path_length_,
                                   -std::log(lin.g) / path_length_,
                                   -std::log(lin.b) / path_length_};

    // Solve: Σ c_i ε_i,ch = od_ch (3 equations) and Σ c_i = 1.
    linalg::Matrix a(4, 4);
    linalg::Vec b(4);
    for (std::size_t ch = 0; ch < 3; ++ch) {
        for (std::size_t i = 0; i < 4; ++i) a(ch, i) = library_.dye(i).absorptivity[ch];
        b[ch] = od[ch];
    }
    for (std::size_t i = 0; i < 4; ++i) a(3, i) = 1.0;
    b[3] = 1.0;

    // The system is small and generally well conditioned; solve the
    // normal equations with jitter for robustness.
    const linalg::Matrix at = a.transposed();
    linalg::Matrix ata = at * a;
    const linalg::Vec atb = at * b;
    linalg::Vec c;
    try {
        c = linalg::cholesky_with_jitter(std::move(ata)).solve(atb);
    } catch (const support::Error&) {
        return std::nullopt;
    }

    // Validate: physical (non-negative) and actually achieving the target.
    for (double& ci : c) {
        if (ci < 0.0) {
            if (ci < -1e-6) return std::nullopt;  // genuinely infeasible
            ci = 0.0;
        }
    }
    const Rgb8 produced = mix_ratios(c);
    if (rgb_distance(produced, target) > 1.0) return std::nullopt;
    return c;
}

}  // namespace sdl::color
