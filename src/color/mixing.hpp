// Subtractive color mixing via Beer–Lambert attenuation.
//
// A well containing a dye mixture transmits backlight per channel:
//   T_ch = exp(-L * Σ_i c_i * ε_i,ch)
// where c_i is the volume fraction of dye i, ε its absorptivity, and L the
// optical path length. Because concentrations are volume *fractions*, the
// perceived color depends only on the mixing ratios — matching the paper,
// whose genetic algorithm mutates "ratios". The model is the simulated
// replacement for physical chemistry; the optimization landscape it
// induces (smooth, monotone darkening, channel-selective) is what the
// solvers actually see in the lab.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "color/dye.hpp"
#include "color/rgb.hpp"
#include "support/units.hpp"

namespace sdl::color {

class BeerLambertMixer {
public:
    /// `path_length` scales all optical densities (well depth, in
    /// dimensionless units; 1.0 matches the calibrated dye library).
    explicit BeerLambertMixer(DyeLibrary library, double path_length = 1.0);

    [[nodiscard]] const DyeLibrary& library() const noexcept { return library_; }
    [[nodiscard]] double path_length() const noexcept { return path_length_; }

    /// Transmittance for volume fractions `fractions` (must sum to <= 1+ε;
    /// they are renormalized internally so callers may pass raw ratios).
    /// An all-zero vector means an empty well: full transmission (white).
    [[nodiscard]] LinearRgb transmittance(std::span<const double> fractions) const;

    /// Mixes dye volumes and returns the true (noise-free) well color as
    /// seen over the white backlight.
    [[nodiscard]] Rgb8 mix(std::span<const support::Volume> volumes) const;

    /// Ratio-vector convenience overload.
    [[nodiscard]] Rgb8 mix_ratios(std::span<const double> ratios) const;

    /// Analytic inverse (§2.5 notes the problem "admits to an analytic
    /// solution"): returns mixing ratios (summing to 1) that exactly
    /// produce `target`, or nullopt when the target is outside the
    /// achievable gamut (requires a 4-dye library). Used by tests and by
    /// the oracle baseline solver.
    [[nodiscard]] std::optional<std::vector<double>> invert_target(Rgb8 target) const;

private:
    DyeLibrary library_;
    double path_length_;
};

}  // namespace sdl::color
