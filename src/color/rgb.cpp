#include "color/rgb.hpp"

#include <cmath>
#include <cstdio>

namespace sdl::color {

std::string Rgb8::str() const {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "rgb(%u,%u,%u)", r, g, b);
    return buf;
}

std::string Rgb8::hex() const {
    char buf[8];
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
    return buf;
}

double srgb_to_linear(double encoded) noexcept {
    if (encoded <= 0.04045) return encoded / 12.92;
    return std::pow((encoded + 0.055) / 1.055, 2.4);
}

double linear_to_srgb(double linear) noexcept {
    if (linear <= 0.0031308) return linear * 12.92;
    return 1.055 * std::pow(linear, 1.0 / 2.4) - 0.055;
}

LinearRgb to_linear(Rgb8 c) noexcept {
    return {srgb_to_linear(c.r / 255.0), srgb_to_linear(c.g / 255.0),
            srgb_to_linear(c.b / 255.0)};
}

Rgb8 to_srgb8(LinearRgb c) noexcept {
    const LinearRgb cl = c.clamped();
    auto quantize = [](double x) {
        const double v = linear_to_srgb(x) * 255.0;
        const long q = std::lround(v);
        return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
    };
    return {quantize(cl.r), quantize(cl.g), quantize(cl.b)};
}

double rgb_distance(Rgb8 a, Rgb8 b) noexcept {
    const double dr = static_cast<double>(a.r) - b.r;
    const double dg = static_cast<double>(a.g) - b.g;
    const double db = static_cast<double>(a.b) - b.b;
    return std::sqrt(dr * dr + dg * dg + db * db);
}

}  // namespace sdl::color
