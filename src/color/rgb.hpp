// RGB color types and the sRGB transfer function.
//
// Two representations are kept distinct on purpose:
//  * Rgb8      — gamma-encoded 8-bit sRGB, what the camera reports and what
//                the paper's Figure 4 measures distances in;
//  * LinearRgb — linear-light doubles in [0,1], what physics (Beer–Lambert
//                transmittance) and rendering math operate on.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace sdl::color {

struct Rgb8 {
    std::uint8_t r = 0;
    std::uint8_t g = 0;
    std::uint8_t b = 0;

    friend constexpr bool operator==(Rgb8 a, Rgb8 b) noexcept = default;

    /// "rgb(120,120,120)" — used in portal records and reports.
    [[nodiscard]] std::string str() const;
    /// "#787878"
    [[nodiscard]] std::string hex() const;
};

struct LinearRgb {
    double r = 0.0;
    double g = 0.0;
    double b = 0.0;

    friend constexpr LinearRgb operator*(LinearRgb c, double k) noexcept {
        return {c.r * k, c.g * k, c.b * k};
    }
    friend constexpr LinearRgb operator*(double k, LinearRgb c) noexcept { return c * k; }
    friend constexpr LinearRgb operator+(LinearRgb a, LinearRgb b) noexcept {
        return {a.r + b.r, a.g + b.g, a.b + b.b};
    }

    [[nodiscard]] constexpr LinearRgb clamped() const noexcept {
        auto cl = [](double x) { return x < 0.0 ? 0.0 : (x > 1.0 ? 1.0 : x); };
        return {cl(r), cl(g), cl(b)};
    }
};

/// sRGB electro-optical transfer function for one channel in [0,1].
[[nodiscard]] double srgb_to_linear(double encoded) noexcept;
/// Inverse transfer function for one channel in [0,1].
[[nodiscard]] double linear_to_srgb(double linear) noexcept;

[[nodiscard]] LinearRgb to_linear(Rgb8 c) noexcept;
[[nodiscard]] Rgb8 to_srgb8(LinearRgb c) noexcept;

/// Euclidean distance in 8-bit sRGB space — the paper's Figure-4 score
/// ("Euclidean distance in three-dimensional color space").
[[nodiscard]] double rgb_distance(Rgb8 a, Rgb8 b) noexcept;

}  // namespace sdl::color
