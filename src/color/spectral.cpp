#include "color/spectral.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::color {

namespace {
constexpr double kLambdaMin = 400.0;
constexpr double kLambdaMax = 700.0;

/// Piecewise-Gaussian basis of the Wyman/Sloan/Shirley CMF fits.
double wss_gaussian(double x, double alpha, double mu, double sigma1,
                    double sigma2) noexcept {
    const double sigma = x < mu ? sigma1 : sigma2;
    const double t = (x - mu) / sigma;
    return alpha * std::exp(-0.5 * t * t);
}

double x_bar_fit(double lambda) noexcept {
    return wss_gaussian(lambda, 1.056, 599.8, 37.9, 31.0) +
           wss_gaussian(lambda, 0.362, 442.0, 16.0, 26.7) +
           wss_gaussian(lambda, -0.065, 501.1, 20.4, 26.2);
}
double y_bar_fit(double lambda) noexcept {
    return wss_gaussian(lambda, 0.821, 568.8, 46.9, 40.5) +
           wss_gaussian(lambda, 0.286, 530.9, 16.3, 31.1);
}
double z_bar_fit(double lambda) noexcept {
    return wss_gaussian(lambda, 1.217, 437.0, 11.8, 36.0) +
           wss_gaussian(lambda, 0.681, 459.0, 26.0, 13.8);
}
}  // namespace

double band_wavelength(std::size_t i) noexcept {
    return kLambdaMin + (kLambdaMax - kLambdaMin) * static_cast<double>(i) /
                            static_cast<double>(kSpectralBands - 1);
}

Spectrum& Spectrum::operator+=(const Spectrum& other) noexcept {
    for (std::size_t i = 0; i < kSpectralBands; ++i) values_[i] += other.values_[i];
    return *this;
}

Spectrum& Spectrum::operator*=(double k) noexcept {
    for (double& v : values_) v *= k;
    return *this;
}

Spectrum Spectrum::gaussian_band(double center_nm, double width_nm, double amplitude) {
    Spectrum s;
    for (std::size_t i = 0; i < kSpectralBands; ++i) {
        const double t = (band_wavelength(i) - center_nm) / width_nm;
        s[i] = amplitude * std::exp(-0.5 * t * t);
    }
    return s;
}

const Spectrum& cie_x_bar() noexcept {
    static const Spectrum s = [] {
        Spectrum out;
        for (std::size_t i = 0; i < kSpectralBands; ++i) out[i] = x_bar_fit(band_wavelength(i));
        return out;
    }();
    return s;
}

const Spectrum& cie_y_bar() noexcept {
    static const Spectrum s = [] {
        Spectrum out;
        for (std::size_t i = 0; i < kSpectralBands; ++i) out[i] = y_bar_fit(band_wavelength(i));
        return out;
    }();
    return s;
}

const Spectrum& cie_z_bar() noexcept {
    static const Spectrum s = [] {
        Spectrum out;
        for (std::size_t i = 0; i < kSpectralBands; ++i) out[i] = z_bar_fit(band_wavelength(i));
        return out;
    }();
    return s;
}

Xyz spectrum_to_xyz(const Spectrum& radiance) {
    Xyz xyz;
    for (std::size_t i = 0; i < kSpectralBands; ++i) {
        xyz.x += radiance[i] * cie_x_bar()[i];
        xyz.y += radiance[i] * cie_y_bar()[i];
        xyz.z += radiance[i] * cie_z_bar()[i];
    }
    return xyz;
}

SpectralMixer::SpectralMixer(std::vector<SpectralDye> dyes, Spectrum illuminant)
    : dyes_(std::move(dyes)), illuminant_(illuminant) {
    support::check(!dyes_.empty(), "spectral mixer needs at least one dye");
    // Normalize so the bare backlight has luminance Y = 1 (paper-white).
    const Xyz white = spectrum_to_xyz(illuminant_);
    support::check(white.y > 0.0, "illuminant must have positive luminance");
    y_normalization_ = 1.0 / white.y;
}

SpectralMixer SpectralMixer::cmyk_flat() {
    std::vector<SpectralDye> dyes;
    // Cyan absorbs long wavelengths (red), magenta mid (green), yellow
    // short (blue); black absorbs flatly. Amplitudes roughly matched to
    // the RGB library's optical densities.
    SpectralDye cyan{"cyan", Spectrum::gaussian_band(640.0, 55.0, 2.8)};
    SpectralDye magenta{"magenta", Spectrum::gaussian_band(540.0, 45.0, 2.7)};
    SpectralDye yellow{"yellow", Spectrum::gaussian_band(445.0, 45.0, 2.5)};
    SpectralDye black{"black", Spectrum(4.0)};
    dyes.push_back(std::move(cyan));
    dyes.push_back(std::move(magenta));
    dyes.push_back(std::move(yellow));
    dyes.push_back(std::move(black));
    return SpectralMixer(std::move(dyes), Spectrum(1.0));
}

Spectrum SpectralMixer::transmitted(std::span<const double> fractions) const {
    support::check(fractions.size() == dyes_.size(),
                   "fraction count must match dye count");
    double total = 0.0;
    for (const double f : fractions) {
        support::check(f >= 0.0, "negative dye fraction");
        total += f;
    }
    Spectrum out = illuminant_;
    if (total <= 0.0) return out;
    for (std::size_t band = 0; band < kSpectralBands; ++band) {
        double od = 0.0;
        for (std::size_t i = 0; i < dyes_.size(); ++i) {
            od += (fractions[i] / total) * dyes_[i].absorbance[band];
        }
        out[band] *= std::exp(-od);
    }
    return out;
}

Rgb8 SpectralMixer::mix_ratios(std::span<const double> ratios) const {
    Xyz xyz = spectrum_to_xyz(transmitted(ratios));
    xyz.x *= y_normalization_;
    xyz.y *= y_normalization_;
    xyz.z *= y_normalization_;
    return to_srgb8(xyz_to_linear(xyz));
}

}  // namespace sdl::color
