// Spectral color model: n-band spectra, CIE 1931 color matching, and a
// spectral Beer–Lambert mixer.
//
// The paper's future work points at Baird & Sparks' closed-loop
// spectroscopy lab, where samples are characterized by spectra rather
// than camera RGB. This module upgrades the chemistry from 3-channel
// absorptivities to banded absorbance spectra: mixtures attenuate a
// backlight per wavelength band, and the perceived color comes from
// integrating against the CIE 1931 color matching functions (Wyman,
// Sloan & Shirley's multi-Gaussian fits). The RGB mixer remains the
// default workcell chemistry; the spectral mixer is a drop-in
// high-fidelity alternative that also exhibits metamerism.
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "color/lab.hpp"
#include "color/rgb.hpp"

namespace sdl::color {

/// Number of wavelength bands (400–700 nm inclusive).
inline constexpr std::size_t kSpectralBands = 16;

/// Center wavelength (nm) of band `i`.
[[nodiscard]] double band_wavelength(std::size_t i) noexcept;

/// A sampled spectrum (power or absorbance per band).
class Spectrum {
public:
    Spectrum() = default;
    explicit Spectrum(double fill) { values_.fill(fill); }

    [[nodiscard]] double& operator[](std::size_t i) noexcept { return values_[i]; }
    [[nodiscard]] double operator[](std::size_t i) const noexcept { return values_[i]; }
    [[nodiscard]] static constexpr std::size_t size() noexcept { return kSpectralBands; }

    Spectrum& operator+=(const Spectrum& other) noexcept;
    Spectrum& operator*=(double k) noexcept;

    /// A Gaussian bump: amplitude * exp(-(λ-center)²/(2 width²)).
    [[nodiscard]] static Spectrum gaussian_band(double center_nm, double width_nm,
                                                double amplitude);

private:
    std::array<double, kSpectralBands> values_{};
};

/// CIE 1931 2° standard-observer color matching functions sampled at the
/// band centers (Wyman/Sloan/Shirley analytic fits).
[[nodiscard]] const Spectrum& cie_x_bar() noexcept;
[[nodiscard]] const Spectrum& cie_y_bar() noexcept;
[[nodiscard]] const Spectrum& cie_z_bar() noexcept;

/// Integrates a radiance spectrum to XYZ (normalized so the reference
/// illuminant maps to Y = 1).
[[nodiscard]] Xyz spectrum_to_xyz(const Spectrum& radiance);

/// A dye characterized by its absorbance spectrum.
struct SpectralDye {
    std::string name;
    Spectrum absorbance;  ///< OD per unit concentration per band
};

class SpectralMixer {
public:
    /// `illuminant` is the backlight's emission spectrum.
    SpectralMixer(std::vector<SpectralDye> dyes, Spectrum illuminant);

    /// The four-dye setup matching the RGB mixer's CMYK library: Gaussian
    /// absorption bands for cyan (red-absorbing), magenta (green),
    /// yellow (blue) and a flat-spectrum black, under a flat (equal
    /// energy) backlight.
    [[nodiscard]] static SpectralMixer cmyk_flat();

    [[nodiscard]] std::size_t dye_count() const noexcept { return dyes_.size(); }
    [[nodiscard]] const SpectralDye& dye(std::size_t i) const { return dyes_.at(i); }

    /// Transmitted spectrum for volume fractions (renormalized like the
    /// RGB mixer; an all-zero vector transmits the full backlight).
    [[nodiscard]] Spectrum transmitted(std::span<const double> fractions) const;

    /// Perceived color of the mixture over the backlight.
    [[nodiscard]] Rgb8 mix_ratios(std::span<const double> ratios) const;

private:
    std::vector<SpectralDye> dyes_;
    Spectrum illuminant_;
    double y_normalization_;
};

}  // namespace sdl::color
