#include "core/colorpicker.hpp"

#include <algorithm>
#include <cmath>

#include "color/lab.hpp"
#include "core/workflows.hpp"
#include "imaging/well_reader.hpp"
#include "solver/factory.hpp"
#include "support/common.hpp"
#include "support/log.hpp"

namespace sdl::core {

namespace json = support::json;
using support::Duration;
using support::TimePoint;
using support::Volume;

namespace {
/// Retake attempts before an unusable camera frame aborts the run.
constexpr int kMaxRetakes = 3;
}  // namespace

double evaluate_objective(Objective objective, color::Rgb8 measured, color::Rgb8 target) {
    switch (objective) {
        case Objective::RgbEuclidean: return color::rgb_distance(measured, target);
        case Objective::DeltaE76:
            return color::delta_e76(color::to_lab(measured), color::to_lab(target));
        case Objective::DeltaE2000:
            return color::delta_e2000(color::to_lab(measured), color::to_lab(target));
    }
    return 0.0;
}

namespace {

ColorPickerConfig prepare(ColorPickerConfig config) {
    support::check(config.total_samples > 0, "total_samples must be positive");
    support::check(config.batch_size > 0, "batch_size must be positive");
    support::check(config.batch_size <= config.plate_rows * config.plate_cols,
                   "batch cannot exceed plate capacity");
    config.sciclops.plate_rows = config.plate_rows;
    config.sciclops.plate_cols = config.plate_cols;
    // Derive device noise streams from the experiment seed so a seed fully
    // determines the run.
    config.ot2.noise_seed = config.seed * 0x9E3779B9ULL + 0x07B2;
    config.camera.noise_seed = config.seed * 0x85EBCA6BULL + 0xCA3E;
    config.faults.seed = config.seed * 0xC2B2AE35ULL + 0xFA11;
    config.flow.seed = config.seed * 0x27D4EB2FULL + 0x910B;
    if (config.experiment_id.empty()) {
        config.experiment_id = "color_picker_" + config.date + "_B" +
                               std::to_string(config.batch_size) + "_s" +
                               std::to_string(config.seed);
    }
    return config;
}

}  // namespace

ColorPickerApp::ColorPickerApp(ColorPickerConfig config)
    : config_(prepare(std::move(config))),
      faults_(config_.faults),
      transport_(sim_, registry_, &faults_),
      log_(),
      engine_(transport_, registry_, log_, config_.retry),
      flow_(sim_, portal_, config_.flow) {
    locations_.add_location(wei::locations::kExchange);
    locations_.add_location(wei::locations::kCamera);
    locations_.add_location(wei::locations::kOt2Deck);
    locations_.add_location(wei::locations::kTrash);

    sciclops_ = std::make_shared<devices::SciclopsSim>(config_.sciclops, plates_, locations_);
    pf400_ = std::make_shared<devices::Pf400Sim>(config_.pf400, locations_);
    ot2_ = std::make_shared<devices::Ot2Sim>(config_.ot2, plates_, locations_);
    barty_ = std::make_shared<devices::BartySim>(config_.barty, ot2_->reservoirs());
    camera_ = std::make_shared<devices::CameraSim>(config_.camera, plates_, locations_);
    registry_.add(sciclops_);
    registry_.add(pf400_);
    registry_.add(ot2_);
    registry_.add(barty_);
    registry_.add(camera_);

    solver::SolverOptions solver_options;
    solver_options.dims = 4;
    solver_options.seed = config_.seed;
    solver_options.mixer = &ot2_->mixer();
    solver_options.target = config_.target;
    solver_ = solver::make_solver(config_.solver, solver_options);
}

void ColorPickerApp::ensure_plate_with_room(int batch) {
    if (current_plate_.has_value()) {
        const wei::Plate& plate = plates_.get(*current_plate_);
        const int free = plate.capacity() - plate.filled_count();
        if (free >= batch) return;
        // Plate full (for this batch): Figure 2's "Check: Plate Full" path.
        (void)engine_.run(wf_trashplate());
        current_plate_.reset();
    }
    const wei::WorkflowRunStats stats = engine_.run(wf_newplate());
    current_plate_ = stats.results.at(0).data.at("plate_id").as_int();
    ++outcome_.plates_used;
}

void ColorPickerApp::ensure_reservoirs(std::span<const devices::DispenseOrder> orders) {
    if (ot2_->can_cover(orders)) return;
    // Figure 2's "Check: Refill Color" path.
    (void)engine_.run(wf_replenish());
    ++outcome_.replenishes;
}

ColorPickerApp::BatchReadout ColorPickerApp::mix_and_measure(
    const std::vector<std::vector<double>>& proposals, const std::vector<int>& wells) {
    // Translate ratio proposals into dispense orders.
    std::vector<devices::DispenseOrder> orders;
    orders.reserve(proposals.size());
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        devices::DispenseOrder order;
        order.well = wells[i];
        double sum = 0.0;
        for (const double r : proposals[i]) sum += r;
        for (std::size_t dye = 0; dye < 4; ++dye) {
            // Normalize so each well holds exactly well_volume of liquid.
            order.volumes[dye] = config_.well_volume * (proposals[i][dye] / sum);
        }
        orders.push_back(order);
    }
    ensure_reservoirs(orders);

    const wei::Workflow mix =
        wf_mixcolor().with_step_args(kMixStepName, devices::Ot2Sim::make_protocol_args(orders));
    const wei::WorkflowRunStats stats = engine_.run(mix);
    std::int64_t frame_id = stats.results.back().data.at("frame_id").as_int();

    // §2.4 vision pipeline on the captured frame. An unusable frame
    // (occluded fiducial, reflection) is recovered by retaking the photo
    // — the plate is already sitting on the camera nest.
    imaging::WellReadParams read_params;
    read_params.geometry = camera_->scene().geometry;
    read_params.geometry.rows = config_.plate_rows;
    read_params.geometry.cols = config_.plate_cols;
    imaging::WellReadout readout = imaging::read_plate(camera_->frame(frame_id), read_params);
    int retakes = 0;
    while (!readout.ok && retakes < kMaxRetakes) {
        ++retakes;
        support::log_warn("colorpicker", "unusable frame (", readout.error,
                          "); retaking photo (attempt ", retakes, ")");
        const wei::WorkflowRunStats retake = engine_.run(wf_retake());
        frame_id = retake.results.back().data.at("frame_id").as_int();
        readout = imaging::read_plate(camera_->frame(frame_id), read_params);
    }
    if (!readout.ok) {
        throw wei::WorkflowError("vision pipeline failed after " +
                                 std::to_string(retakes) +
                                 " retakes: " + readout.error);
    }
    outcome_.frame_retakes += retakes;

    BatchReadout result;
    result.frame_id = frame_id;
    result.wells_rescued = readout.wells_rescued;
    result.grid_residual_px = readout.grid_residual_px;
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        solver::Observation obs;
        obs.ratios = proposals[i];
        obs.measured = readout.colors.at(static_cast<std::size_t>(wells[i]));
        obs.score = evaluate_objective(config_.objective, obs.measured, config_.target);
        result.observations.push_back(std::move(obs));
    }
    return result;
}

void ColorPickerApp::publish_experiment_header() {
    data::ExperimentRecord record;
    record.experiment_id = config_.experiment_id;
    record.date = config_.date;
    record.solver = solver_->name();
    record.target = config_.target;
    record.batch_size = config_.batch_size;
    record.total_samples = samples_done_;
    record.run_count = outcome_.batches_run;
    flow_.publish(record.to_json());
}

void ColorPickerApp::publish_run(int run_number,
                                 std::span<const solver::Observation> observations,
                                 const std::vector<int>& wells, TimePoint started,
                                 std::int64_t frame_id) {
    data::RunRecord record;
    record.experiment_id = config_.experiment_id;
    record.run_number = run_number;
    record.started = started;
    record.ended = transport_.now();
    record.image_ref = "plate_frame_" + std::to_string(frame_id) + ".ppm";
    record.best_score = outcome_.best_score;
    for (std::size_t i = 0; i < observations.size(); ++i) {
        data::SampleRecord sample;
        sample.sample_index = samples_done_ - static_cast<int>(observations.size()) +
                              static_cast<int>(i) + 1;
        sample.well = wells[i];
        sample.ratios = observations[i].ratios;
        double sum = 0.0;
        for (const double r : observations[i].ratios) sum += r;
        for (const double r : observations[i].ratios) {
            sample.volumes_ul.push_back(config_.well_volume.to_microliters() * r / sum);
        }
        sample.measured = observations[i].measured;
        sample.score = observations[i].score;
        sample.best_score_so_far =
            outcome_.samples[static_cast<std::size_t>(sample.sample_index - 1)].best_so_far;
        sample.measured_at = record.ended;
        record.samples.push_back(std::move(sample));
    }
    flow_.publish(record.to_json());
}

ExperimentOutcome ColorPickerApp::run() {
    support::check(!ran_, "ColorPickerApp::run() may only be called once");
    ran_ = true;
    outcome_.experiment_id = config_.experiment_id;
    outcome_.best_score = 1e300;

    double residual_sum = 0.0;
    std::size_t residual_count = 0;

    while (samples_done_ < config_.total_samples) {
        if (config_.stop_threshold > 0.0 && outcome_.best_score <= config_.stop_threshold) {
            outcome_.reached_threshold = true;
            break;
        }
        const int batch =
            std::min(config_.batch_size, config_.total_samples - samples_done_);
        ensure_plate_with_room(batch);

        // Assign the batch to the next free wells on the current plate.
        wei::Plate& plate = plates_.get(*current_plate_);
        std::vector<int> wells;
        int well_cursor = plate.next_free_well().value_or(0);
        for (int i = 0; i < batch; ++i) {
            while (plate.is_filled(well_cursor)) ++well_cursor;
            wells.push_back(well_cursor);
            ++well_cursor;
        }

        const TimePoint batch_start = transport_.now();
        const auto proposals = solver_->ask(static_cast<std::size_t>(batch));
        BatchReadout readout = mix_and_measure(proposals, wells);

        // Score bookkeeping + Figure-4 series.
        for (const solver::Observation& obs : readout.observations) {
            ++samples_done_;
            if (obs.score < outcome_.best_score) {
                outcome_.best_score = obs.score;
                outcome_.best_ratios = obs.ratios;
                outcome_.best_color = obs.measured;
            }
            SamplePoint point;
            point.index = samples_done_;
            point.elapsed_minutes = transport_.now().to_minutes();
            point.score = obs.score;
            point.best_so_far = outcome_.best_score;
            point.ratios = obs.ratios;
            point.measured = obs.measured;
            outcome_.samples.push_back(std::move(point));
        }
        outcome_.wells_rescued_total += readout.wells_rescued;
        residual_sum += readout.grid_residual_px;
        ++residual_count;
        ++outcome_.batches_run;

        // Publish asynchronously (the Globus flow runs while the robots
        // keep working) and feed the solver. The experiment header goes up
        // once at the start; the per-batch run records are the "distinct
        // data upload steps" the paper counts.
        if (config_.publish) {
            if (outcome_.batches_run == 1) publish_experiment_header();
            publish_run(outcome_.batches_run, readout.observations, wells, batch_start,
                        readout.frame_id);
        }
        solver_->tell(readout.observations);
        support::log_info("colorpicker", "batch ", outcome_.batches_run, " done: best=",
                          outcome_.best_score, " after ", samples_done_, " samples");
    }

    // The experiment ends at the last measurement; metrics snapshot now,
    // before teardown housekeeping.
    outcome_.metrics = metrics::compute_metrics(log_, samples_done_,
                                                flow_.completion_times(), config_.metrics);
    outcome_.mean_grid_residual_px =
        residual_count > 0 ? residual_sum / static_cast<double>(residual_count) : 0.0;

    // Figure 2: terminal cp_wf_trashplate once termination criteria hold.
    if (current_plate_.has_value()) {
        (void)engine_.run(wf_trashplate());
        current_plate_.reset();
    }
    // Final experiment header carries the completed totals; let in-flight
    // publications land so the portal is complete.
    if (config_.publish && outcome_.batches_run > 0) publish_experiment_header();
    sim_.run_all();

    return outcome_;
}

}  // namespace sdl::core
