#include "core/colorpicker.hpp"

#include <algorithm>
#include <cmath>

#include "core/workflows.hpp"
#include "imaging/plate_render.hpp"
#include "imaging/well_reader.hpp"
#include "solver/factory.hpp"
#include "support/common.hpp"
#include "support/log.hpp"

namespace sdl::core {

namespace json = support::json;
using support::Duration;
using support::TimePoint;
using support::Volume;

namespace {
/// Retake attempts before an unusable camera frame aborts the run.
constexpr int kMaxRetakes = 3;
}  // namespace

ColorPickerApp::ColorPickerApp(ColorPickerConfig config)
    : owned_runtime_(std::make_unique<WorkcellRuntime>(std::move(config))),
      runtime_(owned_runtime_.get()) {
    runtime_->claim();
    init_solver();
}

ColorPickerApp::ColorPickerApp(WorkcellRuntime& runtime) : runtime_(&runtime) {
    runtime_->claim();
    init_solver();
}

void ColorPickerApp::init_solver() {
    const ColorPickerConfig& config = runtime_->config();
    solver::SolverOptions solver_options;
    solver_options.dims = 4;
    solver_options.seed = config.seed;
    solver_options.mixer = &runtime_->ot2().mixer();
    solver_options.target = config.target;
    solver_options.linalg_backend = config.linalg_backend;
    solver_ = solver::make_solver(config.solver, solver_options);
}

void ColorPickerApp::ensure_plate_with_room(int batch) {
    if (current_plate_.has_value()) {
        const wei::Plate& plate = runtime_->plates().get(*current_plate_);
        const int free = plate.capacity() - plate.filled_count();
        if (free >= batch) return;
        // Plate full (for this batch): Figure 2's "Check: Plate Full" path.
        (void)runtime_->engine().run(wf_trashplate());
        current_plate_.reset();
    }
    const wei::WorkflowRunStats stats = runtime_->engine().run(wf_newplate());
    current_plate_ = stats.results.at(0).data.at("plate_id").as_int();
    ++outcome_.plates_used;
}

void ColorPickerApp::ensure_reservoirs(std::span<const devices::DispenseOrder> orders) {
    if (runtime_->ot2().can_cover(orders)) return;
    // Figure 2's "Check: Refill Color" path.
    (void)runtime_->engine().run(wf_replenish());
    ++outcome_.replenishes;
}

void ColorPickerApp::ensure_primed() {
    if (!runtime_->ot2().needs_prime()) return;
    // Clogged-tip chain: the previous protocol left a tip clogged, and the
    // next one would hard-fail. Barty (or the human stand-in) back-flushes
    // the tips first.
    (void)runtime_->engine().run(wf_reprime());
    ++outcome_.reprimes;
}

ColorPickerApp::BatchReadout ColorPickerApp::mix_and_measure(
    const std::vector<std::vector<double>>& proposals, const std::vector<int>& wells) {
    const ColorPickerConfig& config = runtime_->config();
    // Translate ratio proposals into dispense orders.
    std::vector<devices::DispenseOrder> orders;
    orders.reserve(proposals.size());
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        devices::DispenseOrder order;
        order.well = wells[i];
        double sum = 0.0;
        for (const double r : proposals[i]) sum += r;
        for (std::size_t dye = 0; dye < 4; ++dye) {
            // Normalize so each well holds exactly well_volume of liquid.
            order.volumes[dye] = config.well_volume * (proposals[i][dye] / sum);
        }
        orders.push_back(order);
    }
    ensure_reservoirs(orders);
    ensure_primed();

    const wei::Workflow mix =
        wf_mixcolor().with_step_args(kMixStepName, devices::Ot2Sim::make_protocol_args(orders));
    const wei::WorkflowRunStats stats = runtime_->engine().run(mix);
    std::int64_t frame_id = stats.results.back().data.at("frame_id").as_int();

    // §2.4 vision pipeline on the captured frame. An unusable frame
    // (occluded fiducial, reflection) is recovered by retaking the photo
    // — the plate is already sitting on the camera nest.
    imaging::WellReadParams read_params;
    read_params.geometry =
        imaging::scene_for_plate(runtime_->camera().scene(), config.plate_rows,
                                 config.plate_cols)
            .geometry;
    const auto read_frame = [&](std::int64_t id) {
        if (!config.vision_roi_fast_path) {
            return imaging::read_plate(runtime_->camera().frame(id), read_params);
        }
        if (!reader_.has_value()) reader_.emplace(read_params);
        return reader_->read(runtime_->camera().frame(id));
    };
    imaging::WellReadout readout = read_frame(frame_id);
    int retakes = 0;
    while (!readout.ok && retakes < kMaxRetakes) {
        ++retakes;
        support::log_warn("colorpicker", "unusable frame (", readout.error,
                          "); retaking photo (attempt ", retakes, ")");
        const wei::WorkflowRunStats retake = runtime_->engine().run(wf_retake());
        frame_id = retake.results.back().data.at("frame_id").as_int();
        readout = read_frame(frame_id);
    }
    if (!readout.ok) {
        throw wei::WorkflowError("vision pipeline failed after " +
                                 std::to_string(retakes) +
                                 " retakes: " + readout.error);
    }
    outcome_.frame_retakes += retakes;

    BatchReadout result;
    result.frame_id = frame_id;
    result.wells_rescued = readout.wells_rescued;
    result.grid_residual_px = readout.grid_residual_px;
    for (std::size_t i = 0; i < proposals.size(); ++i) {
        solver::Observation obs;
        obs.ratios = proposals[i];
        obs.measured = readout.colors.at(static_cast<std::size_t>(wells[i]));
        obs.score = evaluate_objective(config.objective, obs.measured, config.target);
        result.observations.push_back(std::move(obs));
    }
    return result;
}

void ColorPickerApp::publish_experiment_header() {
    const ColorPickerConfig& config = runtime_->config();
    data::ExperimentRecord record;
    record.experiment_id = config.experiment_id;
    record.date = config.date;
    record.solver = solver_->name();
    record.target = config.target;
    record.batch_size = config.batch_size;
    record.total_samples = samples_done_;
    record.run_count = outcome_.batches_run;
    runtime_->flow().publish(record.to_json());
}

void ColorPickerApp::publish_run(int run_number,
                                 std::span<const solver::Observation> observations,
                                 const std::vector<int>& wells, TimePoint started,
                                 std::int64_t frame_id) {
    const ColorPickerConfig& config = runtime_->config();
    data::RunRecord record;
    record.experiment_id = config.experiment_id;
    record.run_number = run_number;
    record.started = started;
    record.ended = runtime_->transport().now();
    record.image_ref = "plate_frame_" + std::to_string(frame_id) + ".ppm";
    record.best_score = outcome_.best_score;
    for (std::size_t i = 0; i < observations.size(); ++i) {
        data::SampleRecord sample;
        sample.sample_index = samples_done_ - static_cast<int>(observations.size()) +
                              static_cast<int>(i) + 1;
        sample.well = wells[i];
        sample.ratios = observations[i].ratios;
        double sum = 0.0;
        for (const double r : observations[i].ratios) sum += r;
        for (const double r : observations[i].ratios) {
            sample.volumes_ul.push_back(config.well_volume.to_microliters() * r / sum);
        }
        sample.measured = observations[i].measured;
        sample.score = observations[i].score;
        sample.best_score_so_far =
            outcome_.samples[static_cast<std::size_t>(sample.sample_index - 1)].best_so_far;
        sample.measured_at = record.ended;
        record.samples.push_back(std::move(sample));
    }
    runtime_->flow().publish(record.to_json());
}

ExperimentOutcome ColorPickerApp::run() {
    support::check(!ran_, "ColorPickerApp::run() may only be called once");
    ran_ = true;
    const ColorPickerConfig& config = runtime_->config();
    outcome_.experiment_id = config.experiment_id;
    outcome_.best_score = 1e300;

    double residual_sum = 0.0;
    std::size_t residual_count = 0;

    while (samples_done_ < config.total_samples) {
        if (config.stop_threshold > 0.0 && outcome_.best_score <= config.stop_threshold) {
            outcome_.reached_threshold = true;
            break;
        }
        const int batch =
            std::min(config.batch_size, config.total_samples - samples_done_);
        ensure_plate_with_room(batch);

        // Assign the batch to the next free wells on the current plate.
        wei::Plate& plate = runtime_->plates().get(*current_plate_);
        std::vector<int> wells;
        int well_cursor = plate.next_free_well().value_or(0);
        for (int i = 0; i < batch; ++i) {
            while (plate.is_filled(well_cursor)) ++well_cursor;
            wells.push_back(well_cursor);
            ++well_cursor;
        }

        const TimePoint batch_start = runtime_->transport().now();
        const auto proposals = solver_->ask(static_cast<std::size_t>(batch));
        BatchReadout readout = mix_and_measure(proposals, wells);

        // Score bookkeeping + Figure-4 series.
        for (const solver::Observation& obs : readout.observations) {
            ++samples_done_;
            if (obs.score < outcome_.best_score) {
                outcome_.best_score = obs.score;
                outcome_.best_ratios = obs.ratios;
                outcome_.best_color = obs.measured;
            }
            SamplePoint point;
            point.index = samples_done_;
            point.elapsed_minutes = runtime_->transport().now().to_minutes();
            point.score = obs.score;
            point.best_so_far = outcome_.best_score;
            point.ratios = obs.ratios;
            point.measured = obs.measured;
            outcome_.samples.push_back(std::move(point));
        }
        outcome_.wells_rescued_total += readout.wells_rescued;
        residual_sum += readout.grid_residual_px;
        ++residual_count;
        ++outcome_.batches_run;

        // Publish asynchronously (the Globus flow runs while the robots
        // keep working) and feed the solver. The experiment header goes up
        // once at the start; the per-batch run records are the "distinct
        // data upload steps" the paper counts.
        if (config.publish) {
            if (outcome_.batches_run == 1) publish_experiment_header();
            publish_run(outcome_.batches_run, readout.observations, wells, batch_start,
                        readout.frame_id);
        }
        solver_->tell(readout.observations);
        support::log_info("colorpicker", "batch ", outcome_.batches_run, " done: best=",
                          outcome_.best_score, " after ", samples_done_, " samples");
    }

    // The experiment ends at the last measurement; metrics snapshot now,
    // before teardown housekeeping.
    outcome_.metrics =
        metrics::compute_metrics(runtime_->event_log(), samples_done_,
                                 runtime_->flow().completion_times(), config.metrics);
    outcome_.mean_grid_residual_px =
        residual_count > 0 ? residual_sum / static_cast<double>(residual_count) : 0.0;

    // Figure 2: terminal cp_wf_trashplate once termination criteria hold.
    if (current_plate_.has_value()) {
        (void)runtime_->engine().run(wf_trashplate());
        current_plate_.reset();
    }
    // Final experiment header carries the completed totals; let in-flight
    // publications land so the portal is complete.
    if (config.publish && outcome_.batches_run > 0) publish_experiment_header();
    runtime_->sim().run_all();

    return outcome_;
}

}  // namespace sdl::core
