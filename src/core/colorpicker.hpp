// The color-picker application: the paper's primary contribution.
//
// Implements the closed loop of Figure 2 on the simulated RPL workcell:
//   1. cp_wf_newplate when a fresh plate is needed;
//   2. solver proposes a batch of dye-volume recipes;
//   3. cp_wf_mixcolor mixes the batch and photographs the plate;
//   4. the §2.4 vision pipeline reads the new well colors;
//   5. results are published through the (simulated) Globus flow to the
//      data portal while the loop continues;
//   6. the solver is told the scored observations; repeat until the
//      sample budget is exhausted or the target is matched;
//   7. cp_wf_trashplate / cp_wf_replenish handle plate and reservoir
//      housekeeping along the way.
//
// The workcell itself — devices, transport, engine, event log, data
// plane — lives in WorkcellRuntime; this class only drives the loop.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/experiment_config.hpp"
#include "core/workcell_runtime.hpp"
#include "imaging/well_reader.hpp"
#include "solver/solver.hpp"

namespace sdl::core {

/// Runs one experiment to completion on a workcell runtime. Construct,
/// call run() once, then inspect the outcome, the portal, or the event
/// log.
class ColorPickerApp {
public:
    /// Convenience: builds and owns a WorkcellRuntime for `config`.
    explicit ColorPickerApp(ColorPickerConfig config);

    /// Borrows an externally owned runtime (which carries the config);
    /// the runtime must outlive the app. A runtime drives at most one
    /// experiment: borrowing an already claimed one throws LogicError.
    explicit ColorPickerApp(WorkcellRuntime& runtime);

    /// Executes the experiment to completion.
    [[nodiscard]] ExperimentOutcome run();

    // Post-run inspection.
    [[nodiscard]] const WorkcellRuntime& runtime() const noexcept { return *runtime_; }
    [[nodiscard]] const data::DataPortal& portal() const noexcept {
        return runtime_->portal();
    }
    [[nodiscard]] const wei::EventLog& event_log() const noexcept {
        return runtime_->event_log();
    }
    [[nodiscard]] const devices::CameraSim& camera() const noexcept {
        return runtime_->camera();
    }
    [[nodiscard]] const ColorPickerConfig& config() const noexcept {
        return runtime_->config();
    }

private:
    struct BatchReadout {
        std::vector<solver::Observation> observations;
        std::int64_t frame_id = 0;
        std::size_t wells_rescued = 0;
        double grid_residual_px = 0.0;
    };

    void init_solver();
    void ensure_plate_with_room(int batch);
    void ensure_reservoirs(std::span<const devices::DispenseOrder> orders);
    void ensure_primed();
    [[nodiscard]] BatchReadout mix_and_measure(
        const std::vector<std::vector<double>>& proposals,
        const std::vector<int>& wells);
    void publish_run(int run_number, std::span<const solver::Observation> observations,
                     const std::vector<int>& wells, support::TimePoint started,
                     std::int64_t frame_id);
    void publish_experiment_header();

    std::unique_ptr<WorkcellRuntime> owned_runtime_;  ///< null when borrowing
    WorkcellRuntime* runtime_ = nullptr;
    std::unique_ptr<solver::Solver> solver_;
    /// Session vision reader: reuses the frame scratch pool and tracks
    /// the marker ROI across batches (bitwise identical to per-frame
    /// read_plate; see ColorPickerConfig::vision_roi_fast_path).
    std::optional<imaging::PlateReader> reader_;

    ExperimentOutcome outcome_;
    std::optional<wei::PlateId> current_plate_;
    int samples_done_ = 0;
    bool ran_ = false;
};

}  // namespace sdl::core
