// The color-picker application: the paper's primary contribution.
//
// Implements the closed loop of Figure 2 on the simulated RPL workcell:
//   1. cp_wf_newplate when a fresh plate is needed;
//   2. solver proposes a batch of dye-volume recipes;
//   3. cp_wf_mixcolor mixes the batch and photographs the plate;
//   4. the §2.4 vision pipeline reads the new well colors;
//   5. results are published through the (simulated) Globus flow to the
//      data portal while the loop continues;
//   6. the solver is told the scored observations; repeat until the
//      sample budget is exhausted or the target is matched;
//   7. cp_wf_trashplate / cp_wf_replenish handle plate and reservoir
//      housekeeping along the way.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "color/rgb.hpp"
#include "data/flow.hpp"
#include "data/portal.hpp"
#include "des/simulation.hpp"
#include "devices/barty.hpp"
#include "devices/camera.hpp"
#include "devices/ot2.hpp"
#include "devices/pf400.hpp"
#include "devices/sciclops.hpp"
#include "metrics/metrics.hpp"
#include "solver/solver.hpp"
#include "support/units.hpp"
#include "wei/engine.hpp"
#include "wei/faults.hpp"
#include "wei/sim_transport.hpp"

namespace sdl::core {

/// Objective used to grade samples against the target.
enum class Objective { RgbEuclidean, DeltaE76, DeltaE2000 };

[[nodiscard]] double evaluate_objective(Objective objective, color::Rgb8 measured,
                                        color::Rgb8 target);

struct ColorPickerConfig {
    // --- experiment design (the paper's §3 knobs)
    color::Rgb8 target{120, 120, 120};
    int total_samples = 128;  ///< N
    int batch_size = 1;       ///< B
    std::string solver = "genetic";
    Objective objective = Objective::RgbEuclidean;
    /// Stop early once the best score drops to this value (0 = never).
    double stop_threshold = 0.0;
    std::uint64_t seed = 1;

    // --- consumables & hardware
    int plate_rows = 8;
    int plate_cols = 12;
    /// Total dye volume dispensed per well; ratios scale within this.
    support::Volume well_volume = support::Volume::microliters(80.0);
    devices::SciclopsConfig sciclops;
    devices::Pf400Config pf400;
    devices::Ot2Config ot2;
    devices::BartyConfig barty;
    devices::CameraConfig camera;

    // --- control plane
    wei::FaultConfig faults;      ///< default: fault-free
    wei::RetryPolicy retry;
    data::FlowConfig flow;
    metrics::MetricsConfig metrics;

    // --- publication
    bool publish = true;
    std::string experiment_id;  ///< auto-derived when empty
    std::string date = "2023-08-16";
};

/// One measured sample in experiment order — the dots of Figure 4.
struct SamplePoint {
    int index = 0;                     ///< 1-based sample sequence number
    double elapsed_minutes = 0.0;      ///< x-axis of Figure 4
    double score = 0.0;
    double best_so_far = 0.0;          ///< y-axis of Figure 4
    std::vector<double> ratios;
    color::Rgb8 measured;
};

struct ExperimentOutcome {
    std::string experiment_id;
    std::vector<SamplePoint> samples;
    double best_score = 0.0;
    std::vector<double> best_ratios;
    color::Rgb8 best_color;
    bool reached_threshold = false;

    metrics::SdlMetrics metrics;   ///< snapshot at the final measurement
    int plates_used = 0;
    int replenishes = 0;
    int batches_run = 0;           ///< = published runs
    int frame_retakes = 0;         ///< unusable frames recovered by retaking

    // Vision diagnostics aggregated over all camera reads.
    std::size_t wells_rescued_total = 0;
    double mean_grid_residual_px = 0.0;
};

/// Owns the whole simulated workcell, control plane and data plane for
/// one experiment. Construct, call run() once, then inspect the outcome,
/// the portal, or the event log.
class ColorPickerApp {
public:
    explicit ColorPickerApp(ColorPickerConfig config);

    /// Executes the experiment to completion.
    [[nodiscard]] ExperimentOutcome run();

    // Post-run inspection.
    [[nodiscard]] const data::DataPortal& portal() const noexcept { return portal_; }
    [[nodiscard]] const wei::EventLog& event_log() const noexcept { return log_; }
    [[nodiscard]] const devices::CameraSim& camera() const noexcept { return *camera_; }
    [[nodiscard]] const ColorPickerConfig& config() const noexcept { return config_; }

private:
    struct BatchReadout {
        std::vector<solver::Observation> observations;
        std::int64_t frame_id = 0;
        std::size_t wells_rescued = 0;
        double grid_residual_px = 0.0;
    };

    void ensure_plate_with_room(int batch);
    void ensure_reservoirs(std::span<const devices::DispenseOrder> orders);
    [[nodiscard]] BatchReadout mix_and_measure(
        const std::vector<std::vector<double>>& proposals,
        const std::vector<int>& wells);
    void publish_run(int run_number, std::span<const solver::Observation> observations,
                     const std::vector<int>& wells, support::TimePoint started,
                     std::int64_t frame_id);
    void publish_experiment_header();

    ColorPickerConfig config_;
    des::Simulation sim_;
    wei::PlateRegistry plates_;
    wei::LocationMap locations_;
    wei::ModuleRegistry registry_;
    std::shared_ptr<devices::SciclopsSim> sciclops_;
    std::shared_ptr<devices::Pf400Sim> pf400_;
    std::shared_ptr<devices::Ot2Sim> ot2_;
    std::shared_ptr<devices::BartySim> barty_;
    std::shared_ptr<devices::CameraSim> camera_;
    wei::FaultInjector faults_;
    wei::SimTransport transport_;
    wei::EventLog log_;
    wei::WorkflowEngine engine_;
    data::DataPortal portal_;
    data::GlobusFlowSim flow_;
    std::unique_ptr<solver::Solver> solver_;

    ExperimentOutcome outcome_;
    std::optional<wei::PlateId> current_plate_;
    int samples_done_ = 0;
    bool ran_ = false;
};

}  // namespace sdl::core
