#include "core/config_io.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/scenarios.hpp"
#include "core/workcell_spec.hpp"
#include "support/common.hpp"
#include "support/yaml.hpp"

namespace sdl::core {

namespace json = support::json;

void reject_unknown_keys(const json::Value& node, std::initializer_list<const char*> known,
                         const std::string& where) {
    if (!node.is_object()) return;
    for (const auto& [key, value] : node.as_object()) {
        bool ok = false;
        for (const char* k : known) {
            if (key == k) {
                ok = true;
                break;
            }
        }
        if (!ok) {
            throw support::ConfigError("unknown key '" + key + "' in " + where);
        }
    }
}

Objective objective_from_string(const std::string& name) {
    if (name == "rgb") return Objective::RgbEuclidean;
    if (name == "de76") return Objective::DeltaE76;
    if (name == "de2000") return Objective::DeltaE2000;
    throw support::ConfigError("unknown objective '" + name +
                               "' (expected rgb | de76 | de2000)");
}

const char* objective_to_string(Objective objective) {
    switch (objective) {
        case Objective::RgbEuclidean: return "rgb";
        case Objective::DeltaE76: return "de76";
        case Objective::DeltaE2000: return "de2000";
    }
    return "rgb";
}

color::Rgb8 rgb_from_doc(const json::Value& value, const std::string& where) {
    if (!value.is_array() || value.as_array().size() != 3) {
        throw support::ConfigError(where + " must be a [r, g, b] triple");
    }
    const auto channel = [&](std::size_t i) {
        const std::int64_t v = value.as_array()[i].as_int();
        if (v < 0 || v > 255) {
            throw support::ConfigError(where + " channels must be 0..255");
        }
        return static_cast<std::uint8_t>(v);
    };
    return {channel(0), channel(1), channel(2)};
}

ColorPickerConfig config_from_doc(const json::Value& doc) {
    if (!doc.is_object()) {
        throw support::ConfigError("experiment file must be a YAML mapping");
    }
    reject_unknown_keys(doc,
                        {"experiment", "workcell", "plate", "well_volume_ul", "faults",
                         "retry", "linalg_backend"},
                        "experiment file");

    ColorPickerConfig config;
    // The workcell section resolves first: a scenario sets the hardware
    // baseline, explicit topology keys refine it, and the plain sections
    // below (plate:, faults:, ...) override whatever the scenario chose.
    if (const json::Value* workcell = doc.find("workcell")) {
        reject_unknown_keys(*workcell,
                            {"scenario", "ot2_count", "sciclops", "pf400", "barty",
                             "manual_handling_s"},
                            "workcell");
        if (const json::Value* scenario = workcell->find("scenario")) {
            config = apply_workcell_spec(std::move(config),
                                         resolve_scenario(scenario->as_string()));
        }
        config.workcell.ot2_count = static_cast<int>(
            workcell->get_or("ot2_count", std::int64_t{config.workcell.ot2_count}));
        config.workcell.has_sciclops =
            workcell->get_or("sciclops", config.workcell.has_sciclops);
        config.workcell.has_pf400 = workcell->get_or("pf400", config.workcell.has_pf400);
        config.workcell.has_barty = workcell->get_or("barty", config.workcell.has_barty);
        config.workcell.manual_handling = support::Duration::seconds(workcell->get_or(
            "manual_handling_s", config.workcell.manual_handling.to_seconds()));
    }
    if (const json::Value* exp = doc.find("experiment")) {
        reject_unknown_keys(*exp,
                            {"target", "total_samples", "batch_size", "solver", "objective",
                             "seed", "stop_threshold", "id", "date", "publish"},
                            "experiment");
        if (const json::Value* target = exp->find("target")) {
            config.target = rgb_from_doc(*target, "experiment.target");
        }
        config.total_samples = static_cast<int>(
            exp->get_or("total_samples", std::int64_t{config.total_samples}));
        config.batch_size =
            static_cast<int>(exp->get_or("batch_size", std::int64_t{config.batch_size}));
        config.solver = exp->get_or("solver", config.solver);
        if (const json::Value* objective = exp->find("objective")) {
            config.objective = objective_from_string(objective->as_string());
        }
        config.seed =
            static_cast<std::uint64_t>(exp->get_or("seed", std::int64_t{1}));
        config.stop_threshold = exp->get_or("stop_threshold", config.stop_threshold);
        config.experiment_id = exp->get_or("id", config.experiment_id);
        config.date = exp->get_or("date", config.date);
        config.publish = exp->get_or("publish", config.publish);
    }
    if (const json::Value* plate = doc.find("plate")) {
        reject_unknown_keys(*plate, {"rows", "cols"}, "plate");
        config.plate_rows =
            static_cast<int>(plate->get_or("rows", std::int64_t{config.plate_rows}));
        config.plate_cols =
            static_cast<int>(plate->get_or("cols", std::int64_t{config.plate_cols}));
    }
    if (const json::Value* volume = doc.find("well_volume_ul")) {
        config.well_volume = support::Volume::microliters(volume->as_double());
    }
    if (const json::Value* faults = doc.find("faults")) {
        reject_unknown_keys(*faults, {"command_rejection_prob"}, "faults");
        config.faults.command_rejection_prob =
            faults->get_or("command_rejection_prob", 0.0);
    }
    if (const json::Value* retry = doc.find("retry")) {
        reject_unknown_keys(*retry, {"max_attempts", "human_rescue"}, "retry");
        config.retry.max_attempts = static_cast<int>(
            retry->get_or("max_attempts", std::int64_t{config.retry.max_attempts}));
        config.retry.human_rescue = retry->get_or("human_rescue", config.retry.human_rescue);
    }
    if (const json::Value* backend = doc.find("linalg_backend")) {
        config.linalg_backend = backend->as_string();
        // Resolve at parse time so a typo fails here, naming the valid
        // set, instead of deep inside the first GP fit.
        (void)linalg::backend_by_name(config.linalg_backend);
    }
    return config;
}

ColorPickerConfig config_from_yaml(std::string_view text) {
    return config_from_doc(support::yaml::parse(text));
}

ColorPickerConfig config_from_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw support::Error("io", "cannot open experiment file '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    json::Value doc = support::yaml::parse(buffer.str());
    // A workcell.scenario spec-file path is written relative to the
    // experiment file, not to wherever the process happens to run.
    if (doc.is_object()) {
        if (json::Value* workcell = doc.as_object().find("workcell")) {
            if (const json::Value* scenario = workcell->find("scenario")) {
                const std::string base_dir =
                    std::filesystem::path(path).parent_path().string();
                workcell->set("scenario",
                              rebase_scenario_ref(scenario->as_string(), base_dir));
            }
        }
    }
    return config_from_doc(doc);
}

json::Value config_to_doc(const ColorPickerConfig& config) {
    json::Value doc = json::Value::object();
    json::Value exp = json::Value::object();
    json::Value target = json::Value::array();
    target.push_back(static_cast<std::int64_t>(config.target.r));
    target.push_back(static_cast<std::int64_t>(config.target.g));
    target.push_back(static_cast<std::int64_t>(config.target.b));
    exp.set("target", std::move(target));
    exp.set("total_samples", config.total_samples);
    exp.set("batch_size", config.batch_size);
    exp.set("solver", config.solver);
    exp.set("objective", objective_to_string(config.objective));
    exp.set("seed", static_cast<std::int64_t>(config.seed));
    exp.set("stop_threshold", config.stop_threshold);
    if (!config.experiment_id.empty()) exp.set("id", config.experiment_id);
    exp.set("date", config.date);
    exp.set("publish", config.publish);
    doc.set("experiment", std::move(exp));

    json::Value workcell = json::Value::object();
    // A registry scenario name round-trips (config_from_doc re-applies
    // it); a custom spec's name would not resolve, so only the explicit
    // topology fields are written for it.
    if (is_scenario_name(config.workcell.scenario)) {
        workcell.set("scenario", config.workcell.scenario);
    }
    workcell.set("ot2_count", config.workcell.ot2_count);
    workcell.set("sciclops", config.workcell.has_sciclops);
    workcell.set("pf400", config.workcell.has_pf400);
    workcell.set("barty", config.workcell.has_barty);
    workcell.set("manual_handling_s", config.workcell.manual_handling.to_seconds());
    doc.set("workcell", std::move(workcell));

    json::Value plate = json::Value::object();
    plate.set("rows", config.plate_rows);
    plate.set("cols", config.plate_cols);
    doc.set("plate", std::move(plate));
    doc.set("well_volume_ul", config.well_volume.to_microliters());

    json::Value faults = json::Value::object();
    faults.set("command_rejection_prob", config.faults.command_rejection_prob);
    doc.set("faults", std::move(faults));

    json::Value retry = json::Value::object();
    retry.set("max_attempts", config.retry.max_attempts);
    retry.set("human_rescue", config.retry.human_rescue);
    doc.set("retry", std::move(retry));

    // The strict (reference) backend is implicit — existing specs and
    // their digests stay stable; only a non-default backend is recorded.
    if (config.linalg_backend != "strict") {
        doc.set("linalg_backend", config.linalg_backend);
    }
    return doc;
}

std::string config_to_yaml(const ColorPickerConfig& config) {
    return support::yaml::dump(config_to_doc(config));
}

}  // namespace sdl::core
