// Experiment configuration I/O: declare a whole color-picker experiment
// in YAML (the same notation as workcells and workflows) and load it into
// a ColorPickerConfig — the entry point for the sdlbench_run CLI.
#pragma once

#include <string>

#include "core/colorpicker.hpp"

namespace sdl::core {

/// Parses an experiment document:
///
///   experiment:
///     target: [120, 120, 120]
///     total_samples: 128
///     batch_size: 1
///     solver: genetic            # any solver::solver_names() entry
///     objective: rgb             # rgb | de76 | de2000
///     seed: 7
///     stop_threshold: 0.0
///     id: my_experiment          # optional
///     date: 2023-08-16           # optional
///   plate:
///     rows: 8
///     cols: 12
///   well_volume_ul: 80.0
///   faults:
///     command_rejection_prob: 0.0
///   retry:
///     max_attempts: 5
///     human_rescue: true
///
/// Unknown keys raise ConfigError so typos fail loudly.
[[nodiscard]] ColorPickerConfig config_from_yaml(std::string_view text);

/// Loads a config from a file path.
[[nodiscard]] ColorPickerConfig config_from_file(const std::string& path);

/// Serializes the experiment-level knobs back to YAML (inverse of
/// config_from_yaml for the documented subset).
[[nodiscard]] std::string config_to_yaml(const ColorPickerConfig& config);

}  // namespace sdl::core
