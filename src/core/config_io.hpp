// Experiment configuration I/O: declare a whole color-picker experiment
// in YAML (the same notation as workcells and workflows) and load it into
// a ColorPickerConfig — the entry point for the sdlbench_run CLI and the
// base-config section of campaign files (campaign/campaign_io).
#pragma once

#include <string>

#include "core/experiment_config.hpp"
#include "support/json.hpp"

namespace sdl::core {

/// Parses an experiment document:
///
///   experiment:
///     target: [120, 120, 120]
///     total_samples: 128
///     batch_size: 1
///     solver: genetic            # any solver::solver_names() entry
///     objective: rgb             # rgb | de76 | de2000
///     seed: 7
///     stop_threshold: 0.0
///     id: my_experiment          # optional
///     date: 2023-08-16           # optional
///   workcell:
///     scenario: degraded         # applies a named scenario (scenarios.hpp)
///                                # or a workcell spec file path first ...
///     ot2_count: 2               # ... then explicit topology overrides
///     sciclops: true             # presence flags; false = manual stand-in
///     pf400: true
///     barty: true
///     manual_handling_s: 20.0
///   plate:
///     rows: 8
///     cols: 12
///   well_volume_ul: 80.0
///   faults:
///     command_rejection_prob: 0.0
///   retry:
///     max_attempts: 5
///     human_rescue: true
///   linalg_backend: strict       # strict | fast (linalg/backend.hpp);
///                                # omitted on dump when strict
///
/// The `workcell:` section is resolved before the other sections, so an
/// explicit `plate:` or `faults:` section overrides what the scenario
/// set. Unknown keys raise ConfigError so typos fail loudly.
[[nodiscard]] ColorPickerConfig config_from_yaml(std::string_view text);

/// Loads a config from a file path.
[[nodiscard]] ColorPickerConfig config_from_file(const std::string& path);

/// Loads a config from an already parsed experiment document (the
/// json::Value the YAML parser produces). Campaign files embed the same
/// document as their per-cell base configuration.
[[nodiscard]] ColorPickerConfig config_from_doc(const support::json::Value& doc);

/// Serializes the experiment-level knobs back to YAML (inverse of
/// config_from_yaml for the documented subset).
[[nodiscard]] std::string config_to_yaml(const ColorPickerConfig& config);

/// Document form of config_to_yaml (config_to_yaml = yaml::dump of this).
[[nodiscard]] support::json::Value config_to_doc(const ColorPickerConfig& config);

/// Objective <-> config-file spelling ("rgb" | "de76" | "de2000").
/// objective_from_string throws ConfigError on unknown names.
[[nodiscard]] Objective objective_from_string(const std::string& name);
[[nodiscard]] const char* objective_to_string(Objective objective);

/// Parses a [r, g, b] triple (channels 0..255); `where` names the field
/// in error messages.
[[nodiscard]] color::Rgb8 rgb_from_doc(const support::json::Value& value,
                                       const std::string& where);

/// Throws ConfigError when `node` (an object) has a key outside `known`;
/// `where` names the section in the message. The schema validators here
/// and in campaign/campaign_io share it so typos fail loudly everywhere.
void reject_unknown_keys(const support::json::Value& node,
                         std::initializer_list<const char*> known,
                         const std::string& where);

}  // namespace sdl::core
