#include "core/experiment_config.hpp"

#include "color/lab.hpp"
#include "support/common.hpp"

namespace sdl::core {

double evaluate_objective(Objective objective, color::Rgb8 measured, color::Rgb8 target) {
    switch (objective) {
        case Objective::RgbEuclidean: return color::rgb_distance(measured, target);
        case Objective::DeltaE76:
            return color::delta_e76(color::to_lab(measured), color::to_lab(target));
        case Objective::DeltaE2000:
            return color::delta_e2000(color::to_lab(measured), color::to_lab(target));
    }
    return 0.0;
}

ColorPickerConfig finalize_config(ColorPickerConfig config) {
    support::check(config.total_samples > 0, "total_samples must be positive");
    support::check(config.batch_size > 0, "batch_size must be positive");
    support::check(config.batch_size <= config.plate_rows * config.plate_cols,
                   "batch cannot exceed plate capacity");
    support::check(config.workcell.ot2_count >= 1, "workcell needs at least one OT2");
    support::check(config.workcell.ot2_count <= 16,
                   "workcell.ot2_count is capped at 16 liquid handlers");
    support::check(config.workcell.manual_handling.to_seconds() >= 0.0,
                   "manual_handling cannot be negative");
    // Resolve the backend name now so an unknown one fails at config
    // time (ConfigError listing the valid set), not mid-campaign.
    (void)linalg::backend_by_name(config.linalg_backend);
    config.sciclops.plate_rows = config.plate_rows;
    config.sciclops.plate_cols = config.plate_cols;
    // Derive device noise streams from the experiment seed so a seed fully
    // determines the run.
    config.ot2.noise_seed = config.seed * 0x9E3779B9ULL + 0x07B2;
    config.camera.noise_seed = config.seed * 0x85EBCA6BULL + 0xCA3E;
    config.faults.seed = config.seed * 0xC2B2AE35ULL + 0xFA11;
    config.flow.seed = config.seed * 0x27D4EB2FULL + 0x910B;
    if (config.experiment_id.empty()) {
        config.experiment_id = "color_picker_" + config.date + "_B" +
                               std::to_string(config.batch_size) + "_s" +
                               std::to_string(config.seed);
    }
    return config;
}

}  // namespace sdl::core
