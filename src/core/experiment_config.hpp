// Experiment-level configuration and outcome types shared by the
// workcell runtime, the color-picker application, and the campaign layer.
//
// Split out of colorpicker.hpp so code that only needs the declarative
// experiment description (config I/O, campaign grids) does not pull in
// the application loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "color/rgb.hpp"
#include "data/flow.hpp"
#include "linalg/backend.hpp"
#include "devices/barty.hpp"
#include "devices/camera.hpp"
#include "devices/ot2.hpp"
#include "devices/pf400.hpp"
#include "devices/sciclops.hpp"
#include "metrics/metrics.hpp"
#include "support/units.hpp"
#include "wei/engine.hpp"
#include "wei/faults.hpp"

namespace sdl::core {

/// Objective used to grade samples against the target.
enum class Objective { RgbEuclidean, DeltaE76, DeltaE2000 };

[[nodiscard]] double evaluate_objective(Objective objective, color::Rgb8 measured,
                                        color::Rgb8 target);

/// The resolved shape of the workcell an experiment runs on. Usually
/// produced by applying a declarative WorkcellSpec (workcell_spec.hpp) or
/// a named scenario (scenarios.hpp); the camera and at least one OT2 are
/// always present. A handling device marked absent is replaced by a
/// manual (human-operated) stand-in registered under the same module
/// name, so the Figure-2 workflows run unchanged — its commands take
/// `manual_handling` time and do not count toward CCWH.
struct WorkcellTopology {
    /// Scenario name recorded in result documents ("baseline" when the
    /// workcell was not built from a spec).
    std::string scenario = "baseline";
    /// Liquid handlers mounted: "ot2", then "ot2_2", "ot2_3", ... each
    /// with its own deck location and derived noise stream.
    int ot2_count = 1;
    bool has_sciclops = true;
    bool has_pf400 = true;
    bool has_barty = true;
    /// Duration of one manual stand-in action (plate fetch, carry, pour).
    support::Duration manual_handling = support::Duration::seconds(20.0);
};

struct ColorPickerConfig {
    // --- experiment design (the paper's §3 knobs)
    color::Rgb8 target{120, 120, 120};
    int total_samples = 128;  ///< N
    int batch_size = 1;       ///< B
    std::string solver = "genetic";
    Objective objective = Objective::RgbEuclidean;
    /// Linalg backend for GP-based solvers (linalg/backend.hpp).
    /// "strict" — the default absent an SDLBENCH_LINALG_BACKEND
    /// environment override — is the bitwise reference; reports record
    /// the backend only when it differs from strict, so reference runs
    /// stay byte-identical across releases.
    std::string linalg_backend = linalg::default_backend_name();
    /// Stop early once the best score drops to this value (0 = never).
    double stop_threshold = 0.0;
    std::uint64_t seed = 1;

    // --- consumables & hardware
    int plate_rows = 8;
    int plate_cols = 12;
    /// Total dye volume dispensed per well; ratios scale within this.
    support::Volume well_volume = support::Volume::microliters(80.0);
    devices::SciclopsConfig sciclops;
    devices::Pf400Config pf400;
    devices::Ot2Config ot2;  ///< shared by every mounted OT2 instance
    devices::BartyConfig barty;
    devices::CameraConfig camera;
    WorkcellTopology workcell;

    // --- control plane
    wei::FaultConfig faults;      ///< default: fault-free
    wei::RetryPolicy retry;
    data::FlowConfig flow;
    metrics::MetricsConfig metrics;
    /// Vision hot path: track the fiducial across batches and rescan only
    /// its neighborhood (imaging::PlateReader). Readouts are bitwise
    /// identical with the flag on or off — it exists for identity tests
    /// and perf comparisons, and is deliberately not part of the YAML
    /// schema.
    bool vision_roi_fast_path = true;

    // --- publication
    bool publish = true;
    std::string experiment_id;  ///< auto-derived when empty
    std::string date = "2023-08-16";
};

/// Validates the experiment knobs, derives the device noise streams from
/// the experiment seed (so a seed fully determines the run), and fills in
/// a default experiment id. WorkcellRuntime applies this on construction;
/// callers that need the resolved id (campaigns, reports) can call it
/// directly. Throws support::LogicError on invalid configs.
[[nodiscard]] ColorPickerConfig finalize_config(ColorPickerConfig config);

/// One measured sample in experiment order — the dots of Figure 4.
struct SamplePoint {
    int index = 0;                     ///< 1-based sample sequence number
    double elapsed_minutes = 0.0;      ///< x-axis of Figure 4
    double score = 0.0;
    double best_so_far = 0.0;          ///< y-axis of Figure 4
    std::vector<double> ratios;
    color::Rgb8 measured;
};

struct ExperimentOutcome {
    std::string experiment_id;
    std::vector<SamplePoint> samples;
    double best_score = 0.0;
    std::vector<double> best_ratios;
    color::Rgb8 best_color;
    bool reached_threshold = false;

    metrics::SdlMetrics metrics;   ///< snapshot at the final measurement
    int plates_used = 0;
    int replenishes = 0;
    int batches_run = 0;           ///< = published runs
    int frame_retakes = 0;         ///< unusable frames recovered by retaking
    int reprimes = 0;              ///< clogged-tip chains cleared by prime_tips

    // Vision diagnostics aggregated over all camera reads.
    std::size_t wells_rescued_total = 0;
    double mean_grid_residual_px = 0.0;
};

}  // namespace sdl::core
