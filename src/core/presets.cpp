#include "core/presets.hpp"

namespace sdl::core {

ColorPickerConfig preset_table1(std::uint64_t seed) {
    ColorPickerConfig config;
    config.target = {120, 120, 120};
    config.total_samples = 128;
    config.batch_size = 1;
    config.solver = "genetic";
    config.seed = seed;
    config.plate_rows = 8;
    config.plate_cols = 16;  // 128-well plate: the whole run on one plate
    config.date = "2023-08-16";
    return config;
}

ColorPickerConfig preset_table1_96well(std::uint64_t seed) {
    ColorPickerConfig config = preset_table1(seed);
    config.plate_cols = 12;  // standard 96-well SBS plate
    return config;
}

ColorPickerConfig preset_fig4(int batch_size, std::uint64_t seed) {
    ColorPickerConfig config;
    config.target = {120, 120, 120};
    config.total_samples = 128;
    config.batch_size = batch_size;
    config.solver = "genetic";
    config.seed = seed;
    config.plate_rows = 8;
    config.plate_cols = 12;
    config.experiment_id = "fig4_B" + std::to_string(batch_size) + "_s" +
                           std::to_string(seed);
    return config;
}

ColorPickerConfig preset_fig3_portal(std::uint64_t seed) {
    ColorPickerConfig config;
    config.target = {120, 120, 120};
    config.total_samples = 180;  // 12 runs x 15 samples
    config.batch_size = 15;
    config.solver = "genetic";
    config.seed = seed;
    config.plate_rows = 8;
    config.plate_cols = 12;
    config.experiment_id = "color_picker_2023-08-16";
    config.date = "2023-08-16";
    return config;
}

ColorPickerConfig preset_quickstart(std::uint64_t seed) {
    ColorPickerConfig config;
    config.target = {120, 120, 120};
    config.total_samples = 24;
    config.batch_size = 8;
    config.solver = "genetic";
    config.seed = seed;
    return config;
}

}  // namespace sdl::core
