// Paper-calibrated experiment presets: the exact configurations behind
// each reproduced table and figure.
#pragma once

#include "core/colorpicker.hpp"

namespace sdl::core {

/// Table 1 / §4 metrics run: B=1, N=128, genetic solver. Uses a 128-well
/// plate (8x16) so the whole experiment fits one plate — the decomposition
/// under which the paper's 387-command count is exactly reproducible
/// (3 setup commands + 128 iterations x 3 robotic commands; the camera is
/// a sensor and the terminal trashplate happens after the experiment
/// ends). See EXPERIMENTS.md for the accounting discussion.
[[nodiscard]] ColorPickerConfig preset_table1(std::uint64_t seed = 1);

/// Same run on standard 96-well plates (two plates, mid-run plate swap) —
/// the variant bench_table1 reports alongside the single-plate one.
[[nodiscard]] ColorPickerConfig preset_table1_96well(std::uint64_t seed = 1);

/// Figure 4: one of the seven batch-size experiments. N=128 samples,
/// target RGB(120,120,120), first batch random (the GA's uniform-grid
/// initialization), later batches from the solver.
[[nodiscard]] ColorPickerConfig preset_fig4(int batch_size, std::uint64_t seed = 1);

/// Figure 3: the portal snapshot of 2023-08-16 — "12 runs each with 15
/// samples, for a total of 180 experiments".
[[nodiscard]] ColorPickerConfig preset_fig3_portal(std::uint64_t seed = 1);

/// Quickstart-sized run for examples and smoke tests (fast, small).
[[nodiscard]] ColorPickerConfig preset_quickstart(std::uint64_t seed = 1);

}  // namespace sdl::core
