#include "core/scenario_gen.hpp"

#include <charconv>
#include <cmath>
#include <map>
#include <utility>

#include "core/colorpicker.hpp"
#include "support/common.hpp"
#include "support/mutex.hpp"
#include "support/random.hpp"

namespace sdl::core {

namespace json = support::json;

namespace {

constexpr std::string_view kSeedKey = "seed=";
/// Widest K..M range a single axis entry may expand to.
constexpr std::uint64_t kMaxRangeSpan = 4096;

[[noreturn]] void bad_ref(const std::string& ref, const std::string& why) {
    throw support::ConfigError("bad generated scenario ref '" + ref + "': " + why +
                               " (expected generated:seed=<K>, or "
                               "generated:seed=<K>..<M> on a campaign workcells axis)");
}

/// Strict non-negative integer parse; the whole token must be digits.
std::uint64_t parse_seed_token(const std::string& ref, std::string_view token) {
    std::uint64_t value = 0;
    const char* end = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(token.data(), end, value);
    if (token.empty() || ec != std::errc{} || ptr != end) {
        bad_ref(ref, "seed '" + std::string(token) + "' is not a non-negative integer");
    }
    return value;
}

/// The "seed=..." payload after the prefix, validated to exist.
std::string_view ref_payload(const std::string& ref) {
    std::string_view body(ref);
    body.remove_prefix(kGeneratedRefPrefix.size());
    if (body.substr(0, kSeedKey.size()) != kSeedKey) {
        bad_ref(ref, "missing 'seed=' after 'generated:'");
    }
    return body.substr(kSeedKey.size());
}

// --- distribution helpers -------------------------------------------------

double round_to(double value, int digits) {
    const double scale = std::pow(10.0, digits);
    return std::round(value * scale) / scale;
}

/// Multiplicative jitter around a paper-calibrated default duration.
double jitter(support::Rng& rng, double nominal) {
    return round_to(nominal * rng.uniform(0.7, 1.4), 2);
}

/// Draw in [0, hi) but snap the low tail to exactly zero, so the family
/// mixes clean instruments with faulty ones instead of being uniformly
/// slightly broken.
double prob_or_zero(support::Rng& rng, double hi, double floor, int digits) {
    const double p = round_to(rng.uniform(0.0, hi), digits);
    return p < floor ? 0.0 : p;
}

// --- difficulty probe -----------------------------------------------------

constexpr int kProbeSamples = 16;
constexpr int kProbeBatch = 8;
constexpr std::uint64_t kProbeSeed = 0x5D1FF5EEDULL;

double probe_difficulty(std::uint64_t seed) {
    ColorPickerConfig config;
    config.target = color::Rgb8{201, 101, 51};
    config.total_samples = kProbeSamples;
    config.batch_size = kProbeBatch;
    config.solver = "anneal";
    config.objective = Objective::RgbEuclidean;
    // Pin the bitwise-reference backend: difficulty is part of
    // campaign.json, which must not move under SDLBENCH_LINALG_BACKEND.
    config.linalg_backend = "strict";
    config.seed = kProbeSeed;
    config.publish = false;
    config = apply_workcell_spec(std::move(config), generate_scenario(seed));
    try {
        ColorPickerApp app(std::move(config));
        return app.run().best_score;
    } catch (const support::Error&) {
        return kUnrunnableDifficulty;
    }
}

}  // namespace

bool is_generated_ref(const std::string& ref) {
    return std::string_view(ref).substr(0, kGeneratedRefPrefix.size()) ==
           kGeneratedRefPrefix;
}

std::uint64_t parse_generated_ref(const std::string& ref) {
    if (!is_generated_ref(ref)) {
        bad_ref(ref, "missing 'generated:' prefix");
    }
    const std::string_view payload = ref_payload(ref);
    if (payload.find("..") != std::string_view::npos) {
        bad_ref(ref, "seed ranges are only valid on a campaign's workcells axis");
    }
    return parse_seed_token(ref, payload);
}

std::vector<std::string> expand_generated_refs(const std::string& ref) {
    if (!is_generated_ref(ref)) {
        return {ref};
    }
    const std::string_view payload = ref_payload(ref);
    const std::size_t dots = payload.find("..");
    if (dots == std::string_view::npos) {
        (void)parse_seed_token(ref, payload);
        return {ref};
    }
    const std::uint64_t lo = parse_seed_token(ref, payload.substr(0, dots));
    const std::uint64_t hi = parse_seed_token(ref, payload.substr(dots + 2));
    if (lo > hi) {
        bad_ref(ref, "empty seed range (" + std::to_string(lo) + " > " +
                         std::to_string(hi) + ")");
    }
    if (hi - lo + 1 > kMaxRangeSpan) {
        bad_ref(ref, "range spans " + std::to_string(hi - lo + 1) +
                         " scenarios (limit " + std::to_string(kMaxRangeSpan) + ")");
    }
    std::vector<std::string> refs;
    refs.reserve(static_cast<std::size_t>(hi - lo + 1));
    for (std::uint64_t k = lo; k <= hi; ++k) {
        refs.push_back(std::string(kGeneratedRefPrefix) + std::string(kSeedKey) +
                       std::to_string(k));
    }
    return refs;
}

WorkcellSpec generate_scenario(std::uint64_t seed) {
    // Mixed so neighboring seeds land on decorrelated streams; the draw
    // *order* below is part of the reproducibility contract — appending
    // new draws at the end keeps old seeds' earlier fields stable,
    // reordering does not.
    support::Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0x5EEDC0DEULL);

    WorkcellSpec spec;
    spec.name = "gen_" + std::to_string(seed);
    spec.description =
        "procedurally generated workcell (generated:seed=" + std::to_string(seed) + ")";

    // Plate format: mostly the paper's 96-well deck, with denser 384- and
    // 1536-well formats to stress the vision pipeline's scale handling.
    const double format = rng.uniform();
    int rows = 8;
    int cols = 12;
    if (format >= 0.90) {
        rows = 32;
        cols = 48;
    } else if (format >= 0.65) {
        rows = 16;
        cols = 24;
    }
    spec.plate_rows = rows;
    spec.plate_cols = cols;

    // Global pace: 0.4 models next-generation hardware, 1.8 a slow cell.
    spec.timing_scale = round_to(rng.uniform(0.4, 1.8), 3);
    spec.manual_handling = support::Duration::seconds(round_to(rng.uniform(8.0, 40.0), 2));

    // Roster: camera + >=1 ot2 are mandatory; each handling device is
    // independently present or replaced by a manual stand-in.
    const int ot2_count = static_cast<int>(rng.uniform_int(1, 3));
    const bool has_sciclops = rng.bernoulli(0.80);
    const bool has_pf400 = rng.bernoulli(0.85);
    const bool has_barty = rng.bernoulli(0.75);

    if (has_sciclops) {
        DeviceSpec d;
        d.kind = DeviceKind::Sciclops;
        d.name = "sciclops";
        d.options.set("towers", static_cast<std::int64_t>(rng.uniform_int(2, 4)));
        d.options.set("plates_per_tower",
                      static_cast<std::int64_t>(rng.uniform_int(10, 20)));
        d.options.set("get_plate_s", jitter(rng, 20.0));
        spec.devices.push_back(std::move(d));
    }
    if (has_pf400) {
        DeviceSpec d;
        d.kind = DeviceKind::Pf400;
        d.name = "pf400";
        d.options.set("transfer_s", jitter(rng, 42.65));
        spec.devices.push_back(std::move(d));
    }
    {
        DeviceSpec d;
        d.kind = DeviceKind::Ot2;
        d.name = "ot2";
        d.count = ot2_count;
        d.options.set("protocol_overhead_s", jitter(rng, 110.3));
        d.options.set("per_well_s", jitter(rng, 35.0));
        d.options.set("dispense_cv", round_to(rng.uniform(0.005, 0.05), 4));
        const double clog = prob_or_zero(rng, 0.12, 0.02, 3);
        if (clog > 0.0) {
            d.options.set("clog_prob", clog);
        }
        const double dye_drift = round_to(rng.uniform(0.0, 8e-4), 6);
        if (dye_drift >= 1e-4) {
            d.options.set("dye_drift_per_well", dye_drift);
        }
        spec.devices.push_back(std::move(d));
    }
    if (has_barty) {
        DeviceSpec d;
        d.kind = DeviceKind::Barty;
        d.name = "barty";
        d.options.set("fill_s", jitter(rng, 45.0));
        d.options.set("refill_s", jitter(rng, 65.0));
        d.options.set("prime_s", jitter(rng, 30.0));
        spec.devices.push_back(std::move(d));
    }
    {
        DeviceSpec d;
        d.kind = DeviceKind::Camera;
        d.name = "camera";
        d.options.set("capture_s", jitter(rng, 1.5));
        const double glitch = prob_or_zero(rng, 0.08, 0.01, 3);
        if (glitch > 0.0) {
            d.options.set("glitch_prob", glitch);
        }
        const double sensor_drift = round_to(rng.uniform(0.0, 2e-3), 6);
        if (sensor_drift >= 2e-4) {
            d.options.set("drift_per_frame", sensor_drift);
        }
        // Dense formats render much larger frames (the vision pipeline
        // keeps 96-well pixel pitch); cap the ring buffer to bound memory.
        const auto frames = static_cast<std::int64_t>(rng.uniform_int(6, 12));
        d.options.set("max_frames", rows > 8 ? std::int64_t{4} : frames);
        spec.devices.push_back(std::move(d));
    }

    wei::FaultConfig faults;
    faults.command_rejection_prob = prob_or_zero(rng, 0.05, 0.005, 3);
    faults.rejection_latency = support::Duration::seconds(round_to(rng.uniform(2.0, 10.0), 2));
    if (rng.bernoulli(0.4)) {
        faults.per_module["ot2"] = round_to(rng.uniform(0.02, 0.10), 3);
    }
    spec.faults = std::move(faults);

    // A generator bug should fail at the draw, not when a campaign cell
    // eventually tries to mount the workcell.
    validate_workcell_spec(spec);
    return spec;
}

double generated_difficulty(std::uint64_t seed) {
    static support::Mutex mutex;
    static std::map<std::uint64_t, double> cache;
    {
        const support::MutexLock lock(mutex);
        const auto it = cache.find(seed);
        if (it != cache.end()) {
            return it->second;
        }
    }
    // Probe outside the lock: concurrent report writers for distinct
    // seeds should not serialize on one mutex. A duplicate probe of the
    // same seed is deterministic, so last-write-wins is harmless.
    const double score = probe_difficulty(seed);
    const support::MutexLock lock(mutex);
    return cache.emplace(seed, score).first->second;
}

}  // namespace sdl::core
