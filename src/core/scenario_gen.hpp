// Seeded procedural scenario generation: the scenario *space*.
//
// PR 3's registry ships five hand-written workcells — a pack, not a
// space. The paper's framing (the workcell as the benchmark) wants an
// unbounded, sweepable family: this module deterministically draws a
// full WorkcellSpec from distributions over the roster (device presence,
// OT2 fan-out), per-kind timing jitter, the fault profile (command
// rejections, camera glitches, and the clogged-tip → re-prime fault
// chain), plate format (96/384/1536), and slow drift-over-campaign
// nuisances (dye aging in the OT2, ring-light warm-up in the camera).
//
// Generated scenarios are addressed by reference, anywhere a scenario
// name or spec path is accepted:
//
//   generated:seed=K        one scenario (spec name "gen_K")
//   generated:seed=K..M     campaign `grid: workcells:` axis only —
//                           expands to the inclusive seed range
//
// The same seed always yields the same spec, and specs survive a YAML
// round trip bitwise, so `workcell.yaml` written next to a run's results
// reproduces it exactly. A scenario's *difficulty* is scored as the
// regret of the anneal baseline solver under a small fixed probe budget
// on that workcell (0 = probe matched the target exactly); campaign
// reports record it per generated cell.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/workcell_spec.hpp"

namespace sdl::core {

/// Prefix shared by every generated scenario reference.
inline constexpr std::string_view kGeneratedRefPrefix = "generated:";

/// True when `ref` is a generated scenario reference (starts with
/// "generated:"). Says nothing about well-formedness.
[[nodiscard]] bool is_generated_ref(const std::string& ref);

/// Parses a single-seed reference "generated:seed=K" -> K. Throws
/// ConfigError naming the offending token on malformed refs, including
/// range refs ("generated:seed=K..M"), which are only meaningful on a
/// campaign's workcells axis.
[[nodiscard]] std::uint64_t parse_generated_ref(const std::string& ref);

/// Campaign-axis expansion: "generated:seed=K..M" -> the M-K+1 single
/// refs of the inclusive range. A single generated ref is validated and
/// returned as-is; a non-generated ref passes through untouched. Throws
/// ConfigError (naming the token) on malformed refs, empty ranges
/// (K > M), and ranges wider than 4096 seeds.
[[nodiscard]] std::vector<std::string> expand_generated_refs(const std::string& ref);

/// Deterministically draws the workcell spec for one seed. The result is
/// named "gen_<seed>", passes validate_workcell_spec, and round-trips
/// through workcell_spec_to_yaml / workcell_spec_from_yaml bitwise.
[[nodiscard]] WorkcellSpec generate_scenario(std::uint64_t seed);

/// Difficulty score of a generated scenario: the best objective score
/// (RGB-euclidean regret; exact match = 0) reached by the "anneal"
/// baseline solver on that workcell under a fixed 16-sample probe budget
/// and probe seed. A workcell so hostile the probe cannot finish at all
/// scores kUnrunnableDifficulty. Deterministic per seed; memoized per
/// process (campaign reports may be regenerated many times mid-run).
[[nodiscard]] double generated_difficulty(std::uint64_t seed);

/// Sentinel difficulty for scenarios where the probe run itself fails.
inline constexpr double kUnrunnableDifficulty = 999.0;

}  // namespace sdl::core
