#include "core/scenarios.hpp"

#include <filesystem>

#include "core/scenario_gen.hpp"
#include "support/common.hpp"

namespace sdl::core {

namespace {

DeviceSpec device(DeviceKind kind, int count = 1) {
    DeviceSpec spec;
    spec.kind = kind;
    spec.name = device_kind_to_string(kind);
    spec.count = count;
    return spec;
}

std::vector<DeviceSpec> full_roster() {
    return {device(DeviceKind::Sciclops), device(DeviceKind::Pf400),
            device(DeviceKind::Ot2), device(DeviceKind::Barty),
            device(DeviceKind::Camera)};
}

WorkcellSpec make_baseline() {
    WorkcellSpec spec;
    spec.name = "baseline";
    spec.description =
        "the paper's Figure-2 RPL workcell: sciclops, pf400, ot2, barty, camera "
        "with Table-1-calibrated timings";
    spec.devices = full_roster();
    return spec;
}

WorkcellSpec make_multi_ot2() {
    WorkcellSpec spec;
    spec.name = "multi_ot2";
    spec.description =
        "three liquid handlers behind one arm and one camera — the paper's §4 "
        "'integrating additional OT2s' future experiment";
    spec.devices = full_roster();
    for (DeviceSpec& d : spec.devices) {
        if (d.kind == DeviceKind::Ot2) d.count = 3;
    }
    return spec;
}

WorkcellSpec make_degraded() {
    WorkcellSpec spec;
    spec.name = "degraded";
    spec.description =
        "a flaky workcell: 3% command rejections everywhere, 8% on the ot2, 5% "
        "unusable camera frames — exercises the retry/rescue control plane";
    spec.devices = full_roster();
    for (DeviceSpec& d : spec.devices) {
        if (d.kind == DeviceKind::Camera) d.options.set("glitch_prob", 0.05);
    }
    wei::FaultConfig faults;
    faults.command_rejection_prob = 0.03;
    faults.per_module["ot2"] = 0.08;
    spec.faults = std::move(faults);
    return spec;
}

WorkcellSpec make_fast_lane() {
    WorkcellSpec spec;
    spec.name = "fast_lane";
    spec.description =
        "optimistic next-generation hardware: every device duration scaled to "
        "a quarter of the Table-1 calibration";
    spec.timing_scale = 0.25;
    spec.devices = full_roster();
    return spec;
}

WorkcellSpec make_minimal() {
    WorkcellSpec spec;
    spec.name = "minimal";
    spec.description =
        "bench-top workcell: camera + OT2 only; a human stands in for plate "
        "staging, transfer and reservoir refills (20 s per action, not counted "
        "toward CCWH)";
    spec.devices = {device(DeviceKind::Ot2), device(DeviceKind::Camera)};
    spec.manual_handling = support::Duration::seconds(20.0);
    return spec;
}

}  // namespace

const std::vector<std::string>& scenario_names() {
    static const std::vector<std::string> names{"baseline", "multi_ot2", "degraded",
                                               "fast_lane", "minimal"};
    return names;
}

bool is_scenario_name(const std::string& name) {
    for (const std::string& n : scenario_names()) {
        if (n == name) return true;
    }
    return false;
}

WorkcellSpec scenario_by_name(const std::string& name) {
    if (name == "baseline") return make_baseline();
    if (name == "multi_ot2") return make_multi_ot2();
    if (name == "degraded") return make_degraded();
    if (name == "fast_lane") return make_fast_lane();
    if (name == "minimal") return make_minimal();
    std::string known;
    for (const std::string& n : scenario_names()) {
        if (!known.empty()) known += " | ";
        known += n;
    }
    throw support::ConfigError("unknown workcell scenario '" + name + "' (expected " +
                               known + ", a generated:seed=<K> reference, or a path "
                               "to a workcell spec file)");
}

bool scenario_ref_is_path(const std::string& ref) {
    return ref.find('/') != std::string::npos || ref.ends_with(".yaml") ||
           ref.ends_with(".yml");
}

std::string rebase_scenario_ref(std::string ref, const std::string& base_dir) {
    if (!scenario_ref_is_path(ref) || base_dir.empty()) return ref;
    const std::filesystem::path path(ref);
    if (path.is_absolute()) return ref;
    return (std::filesystem::path(base_dir) / path).lexically_normal().string();
}

WorkcellSpec resolve_scenario(const std::string& ref) {
    // "generated:..." first: the prefix can never be a registry name, and
    // treating it as one would bury the ref grammar's error messages.
    if (is_generated_ref(ref)) return generate_scenario(parse_generated_ref(ref));
    if (scenario_ref_is_path(ref)) return workcell_spec_from_file(ref);
    return scenario_by_name(ref);
}

}  // namespace sdl::core
