// ScenarioRegistry: the shipped pack of named workcell scenarios.
//
// The paper argues the color-matching benchmark is interesting because
// the *workcell* can vary underneath an unchanged application; this
// registry makes those variations one-word names. Five scenarios ship:
//
//   baseline   — the paper's Figure-2 RPL workcell, Table-1 timings
//   multi_ot2  — three liquid handlers (the §4 "additional OT2s" study)
//   degraded   — elevated command-rejection and camera-glitch rates
//   fast_lane  — optimistic timings (every device 4x faster)
//   minimal    — camera + OT2 only; a human does the plate handling
//
// Reachable from campaign files (`grid: workcells: [...]`), experiment
// files (`workcell: scenario: ...`), and the CLI (`--scenario`,
// `--list-scenarios`). The same specs are shipped as YAML under
// examples/scenarios/ for reference and as seeds for custom scenarios
// (see docs/SCENARIOS.md).
#pragma once

#include <string>
#include <vector>

#include "core/workcell_spec.hpp"

namespace sdl::core {

/// The registry's scenario names, in presentation order.
[[nodiscard]] const std::vector<std::string>& scenario_names();

[[nodiscard]] bool is_scenario_name(const std::string& name);

/// Looks a scenario up by name; throws ConfigError listing the valid
/// names on a miss.
[[nodiscard]] WorkcellSpec scenario_by_name(const std::string& name);

/// True when `ref` names a workcell spec file (contains '/' or ends in
/// .yaml/.yml) rather than a registry scenario.
[[nodiscard]] bool scenario_ref_is_path(const std::string& ref);

/// If `ref` is a *relative* spec-file path, resolves it against
/// `base_dir` (the directory of the campaign/experiment file that wrote
/// it), so file references work no matter where the process runs from.
/// Registry names and absolute paths pass through unchanged.
[[nodiscard]] std::string rebase_scenario_ref(std::string ref,
                                              const std::string& base_dir);

/// Resolves a scenario reference: a registry name, or — when `ref` looks
/// like a path (see scenario_ref_is_path) — a workcell spec file. This
/// is what the CLI's --scenario flag and the campaign `workcells:` axis
/// accept.
[[nodiscard]] WorkcellSpec resolve_scenario(const std::string& ref);

}  // namespace sdl::core
