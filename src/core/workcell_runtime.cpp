#include "core/workcell_runtime.hpp"

#include "devices/manual.hpp"
#include "support/common.hpp"

namespace sdl::core {

void WorkcellRuntime::claim() {
    support::check(!claimed_,
                   "WorkcellRuntime already drives an experiment; construct a fresh "
                   "runtime per experiment");
    claimed_ = true;
}

devices::SciclopsSim& WorkcellRuntime::sciclops() {
    support::check(sciclops_ != nullptr,
                   "scenario '" + config_.workcell.scenario +
                       "' has no sciclops (a manual stand-in handles its actions)");
    return *sciclops_;
}

devices::Pf400Sim& WorkcellRuntime::pf400() {
    support::check(pf400_ != nullptr,
                   "scenario '" + config_.workcell.scenario +
                       "' has no pf400 (a manual stand-in handles its actions)");
    return *pf400_;
}

devices::BartySim& WorkcellRuntime::barty() {
    support::check(barty_ != nullptr,
                   "scenario '" + config_.workcell.scenario +
                       "' has no barty (a manual stand-in handles its actions)");
    return *barty_;
}

WorkcellRuntime::WorkcellRuntime(ColorPickerConfig config)
    : config_(finalize_config(std::move(config))),
      faults_(config_.faults),
      transport_(sim_, registry_, &faults_),
      log_(),
      engine_(transport_, registry_, log_, config_.retry),
      flow_(sim_, portal_, config_.flow) {
    const WorkcellTopology& topology = config_.workcell;

    locations_.add_location(wei::locations::kExchange);
    locations_.add_location(wei::locations::kCamera);
    locations_.add_location(wei::locations::kTrash);

    // Liquid handlers: the primary "ot2" on the canonical deck, extras
    // ("ot2_2", ...) on their own decks with derived noise streams.
    for (int i = 0; i < topology.ot2_count; ++i) {
        devices::Ot2Config ot2_config = config_.ot2;
        if (i > 0) {
            ot2_config.name = "ot2_" + std::to_string(i + 1);
            ot2_config.deck_location = ot2_config.name + ".deck";
            ot2_config.noise_seed = config_.ot2.noise_seed +
                                    0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(i);
        }
        locations_.add_location(ot2_config.deck_location);
        ot2s_.push_back(
            std::make_shared<devices::Ot2Sim>(ot2_config, plates_, locations_));
        registry_.add(ot2s_.back());
    }
    camera_ = std::make_shared<devices::CameraSim>(config_.camera, plates_, locations_);
    registry_.add(camera_);

    // Handling devices: real instruments, or manual human stand-ins
    // registered under the same module names so the Figure-2 workflows
    // resolve their steps unchanged.
    const auto add_manual = [&](const char* stand_in_for,
                                std::array<des::Store, 4>* reservoirs) {
        devices::ManualConfig manual;
        manual.stand_in_for = stand_in_for;
        manual.handling = topology.manual_handling;
        manual.plate_rows = config_.plate_rows;
        manual.plate_cols = config_.plate_cols;
        auto sim = std::make_shared<devices::ManualOperatorSim>(manual, plates_,
                                                                locations_, reservoirs);
        registry_.add(sim);
        return sim;
    };
    // prime_tips (real barty or the human stand-in) clears the clogged-tip
    // latch on every mounted liquid handler.
    const auto prime_all_ot2s = [this] {
        for (const auto& ot2 : ot2s_) ot2->prime_tips();
    };
    if (topology.has_sciclops) {
        sciclops_ =
            std::make_shared<devices::SciclopsSim>(config_.sciclops, plates_, locations_);
        registry_.add(sciclops_);
    } else {
        add_manual("sciclops", nullptr);
    }
    if (topology.has_pf400) {
        pf400_ = std::make_shared<devices::Pf400Sim>(config_.pf400, locations_);
        registry_.add(pf400_);
    } else {
        add_manual("pf400", nullptr);
    }
    if (topology.has_barty) {
        barty_ = std::make_shared<devices::BartySim>(config_.barty, ot2s_.front()->reservoirs());
        barty_->set_prime_hook(prime_all_ot2s);
        registry_.add(barty_);
    } else {
        add_manual("barty", &ot2s_.front()->reservoirs())->set_prime_hook(prime_all_ot2s);
    }
}

}  // namespace sdl::core
