#include "core/workcell_runtime.hpp"

#include "support/common.hpp"

namespace sdl::core {

void WorkcellRuntime::claim() {
    support::check(!claimed_,
                   "WorkcellRuntime already drives an experiment; construct a fresh "
                   "runtime per experiment");
    claimed_ = true;
}

WorkcellRuntime::WorkcellRuntime(ColorPickerConfig config)
    : config_(finalize_config(std::move(config))),
      faults_(config_.faults),
      transport_(sim_, registry_, &faults_),
      log_(),
      engine_(transport_, registry_, log_, config_.retry),
      flow_(sim_, portal_, config_.flow) {
    locations_.add_location(wei::locations::kExchange);
    locations_.add_location(wei::locations::kCamera);
    locations_.add_location(wei::locations::kOt2Deck);
    locations_.add_location(wei::locations::kTrash);

    sciclops_ = std::make_shared<devices::SciclopsSim>(config_.sciclops, plates_, locations_);
    pf400_ = std::make_shared<devices::Pf400Sim>(config_.pf400, locations_);
    ot2_ = std::make_shared<devices::Ot2Sim>(config_.ot2, plates_, locations_);
    barty_ = std::make_shared<devices::BartySim>(config_.barty, ot2_->reservoirs());
    camera_ = std::make_shared<devices::CameraSim>(config_.camera, plates_, locations_);
    registry_.add(sciclops_);
    registry_.add(pf400_);
    registry_.add(ot2_);
    registry_.add(barty_);
    registry_.add(camera_);
}

}  // namespace sdl::core
