// The simulated RPL workcell as a reusable runtime.
//
// WorkcellRuntime owns everything below the application loop: the DES
// clock, plate/location registries, the instrument simulators, fault
// injection, the transport, the workflow engine with its event log, and
// the data plane (portal + Globus flow). ColorPickerApp borrows a runtime
// and runs the Figure-2 loop on it; other applications (campaign cells,
// custom drivers) can construct their own runtime and drive the engine
// directly.
//
// The workcell's *shape* is data: config.workcell (a WorkcellTopology,
// normally produced by applying a WorkcellSpec / named scenario) decides
// how many OT2s are mounted and which handling devices are real
// instruments versus manual human stand-ins. The Figure-2 workflows run
// unchanged on every shape because stand-ins register under the absent
// device's module name.
#pragma once

#include <memory>
#include <vector>

#include "core/experiment_config.hpp"
#include "data/flow.hpp"
#include "data/portal.hpp"
#include "des/simulation.hpp"
#include "wei/engine.hpp"
#include "wei/event_log.hpp"
#include "wei/faults.hpp"
#include "wei/sim_transport.hpp"

namespace sdl::core {

class WorkcellRuntime {
public:
    /// Builds the full workcell for one experiment. The config is passed
    /// through finalize_config(), so validation errors throw here.
    explicit WorkcellRuntime(ColorPickerConfig config);

    WorkcellRuntime(const WorkcellRuntime&) = delete;
    WorkcellRuntime& operator=(const WorkcellRuntime&) = delete;

    /// The finalized configuration this workcell was built for.
    [[nodiscard]] const ColorPickerConfig& config() const noexcept { return config_; }

    /// Marks the runtime as driven by one experiment application. The
    /// workcell's state (DES clock, plates, reservoirs, event log,
    /// portal) is cumulative, so a second experiment on the same runtime
    /// would silently corrupt its metrics — claiming twice throws
    /// LogicError instead.
    void claim();
    [[nodiscard]] bool claimed() const noexcept { return claimed_; }

    // --- simulation & control plane
    [[nodiscard]] des::Simulation& sim() noexcept { return sim_; }
    [[nodiscard]] wei::PlateRegistry& plates() noexcept { return plates_; }
    [[nodiscard]] wei::LocationMap& locations() noexcept { return locations_; }
    [[nodiscard]] wei::ModuleRegistry& registry() noexcept { return registry_; }
    [[nodiscard]] wei::FaultInjector& faults() noexcept { return faults_; }
    [[nodiscard]] wei::SimTransport& transport() noexcept { return transport_; }
    [[nodiscard]] wei::WorkflowEngine& engine() noexcept { return engine_; }
    [[nodiscard]] const wei::EventLog& event_log() const noexcept { return log_; }

    // --- instruments
    // sciclops()/pf400()/barty() throw LogicError when the scenario
    // replaced the device with a manual stand-in — check has_*() first
    // (the stand-in is reachable via registry() under the same name).
    [[nodiscard]] bool has_sciclops() const noexcept { return sciclops_ != nullptr; }
    [[nodiscard]] bool has_pf400() const noexcept { return pf400_ != nullptr; }
    [[nodiscard]] bool has_barty() const noexcept { return barty_ != nullptr; }
    [[nodiscard]] devices::SciclopsSim& sciclops();
    [[nodiscard]] devices::Pf400Sim& pf400();
    [[nodiscard]] devices::BartySim& barty();
    /// The primary liquid handler ("ot2"); always present.
    [[nodiscard]] devices::Ot2Sim& ot2() noexcept { return *ot2s_.front(); }
    /// Every mounted liquid handler, primary first ("ot2", "ot2_2", ...).
    [[nodiscard]] const std::vector<std::shared_ptr<devices::Ot2Sim>>& ot2s() const noexcept {
        return ot2s_;
    }
    [[nodiscard]] devices::CameraSim& camera() noexcept { return *camera_; }
    [[nodiscard]] const devices::CameraSim& camera() const noexcept { return *camera_; }

    // --- data plane
    [[nodiscard]] data::DataPortal& portal() noexcept { return portal_; }
    [[nodiscard]] const data::DataPortal& portal() const noexcept { return portal_; }
    [[nodiscard]] data::GlobusFlowSim& flow() noexcept { return flow_; }

private:
    ColorPickerConfig config_;
    des::Simulation sim_;
    wei::PlateRegistry plates_;
    wei::LocationMap locations_;
    wei::ModuleRegistry registry_;
    std::shared_ptr<devices::SciclopsSim> sciclops_;  ///< null when manual
    std::shared_ptr<devices::Pf400Sim> pf400_;        ///< null when manual
    std::vector<std::shared_ptr<devices::Ot2Sim>> ot2s_;
    std::shared_ptr<devices::BartySim> barty_;        ///< null when manual
    std::shared_ptr<devices::CameraSim> camera_;
    wei::FaultInjector faults_;
    wei::SimTransport transport_;
    wei::EventLog log_;
    wei::WorkflowEngine engine_;
    data::DataPortal portal_;
    data::GlobusFlowSim flow_;
    bool claimed_ = false;
};

}  // namespace sdl::core
