#include "core/workcell_spec.hpp"

#include <fstream>
#include <set>
#include <sstream>

#include "core/config_io.hpp"
#include "support/common.hpp"
#include "support/yaml.hpp"

namespace sdl::core {

namespace json = support::json;
using support::Duration;
using support::Volume;

DeviceKind device_kind_from_string(const std::string& name) {
    if (name == "sciclops") return DeviceKind::Sciclops;
    if (name == "pf400") return DeviceKind::Pf400;
    if (name == "ot2") return DeviceKind::Ot2;
    if (name == "barty") return DeviceKind::Barty;
    if (name == "camera") return DeviceKind::Camera;
    throw support::ConfigError("unknown device kind '" + name +
                               "' (expected sciclops | pf400 | ot2 | barty | camera)");
}

const char* device_kind_to_string(DeviceKind kind) {
    switch (kind) {
        case DeviceKind::Sciclops: return "sciclops";
        case DeviceKind::Pf400: return "pf400";
        case DeviceKind::Ot2: return "ot2";
        case DeviceKind::Barty: return "barty";
        case DeviceKind::Camera: return "camera";
    }
    return "ot2";
}

namespace {

const std::vector<const char*>& option_keys(DeviceKind kind) {
    static const std::vector<const char*> sciclops{"towers", "plates_per_tower",
                                                   "get_plate_s", "status_s"};
    static const std::vector<const char*> pf400{"transfer_s"};
    static const std::vector<const char*> ot2{"protocol_overhead_s", "per_well_s",
                                              "dispense_cv", "dispense_sigma_ul",
                                              "reservoir_capacity_ml", "clog_prob",
                                              "dye_drift_per_well"};
    static const std::vector<const char*> barty{"fill_s", "drain_s", "refill_s",
                                                "prime_s", "bulk_capacity_ml"};
    static const std::vector<const char*> camera{"capture_s", "glitch_prob",
                                                 "max_frames", "drift_per_frame"};
    switch (kind) {
        case DeviceKind::Sciclops: return sciclops;
        case DeviceKind::Pf400: return pf400;
        case DeviceKind::Ot2: return ot2;
        case DeviceKind::Barty: return barty;
        case DeviceKind::Camera: return camera;
    }
    return ot2;
}

bool is_option_key(DeviceKind kind, const std::string& key) {
    for (const char* k : option_keys(kind)) {
        if (key == k) return true;
    }
    return false;
}

void check_probability(double p, const std::string& where) {
    if (p < 0.0 || p > 1.0) {
        throw support::ConfigError(where + " must be a probability in [0, 1]");
    }
}

/// Range-checks one device option so bad values fail at parse time with
/// the key's name, not deep inside the simulator.
void check_option_value(const std::string& key, const json::Value& value) {
    const std::string where = "device option '" + key + "'";
    if (key == "dispense_cv" || key == "glitch_prob" || key == "clog_prob") {
        check_probability(value.as_double(), where);
        return;
    }
    if (key == "towers" || key == "plates_per_tower" || key == "max_frames") {
        if (value.as_int() < 1) {
            throw support::ConfigError(where + " must be >= 1");
        }
        return;
    }
    if (key.ends_with("_ml")) {
        if (value.as_double() <= 0.0) {
            throw support::ConfigError(where + " must be a positive capacity");
        }
        return;
    }
    // Durations (*_s) and the absolute pipetting error floor.
    if (value.as_double() < 0.0) {
        throw support::ConfigError(where + " cannot be negative");
    }
}

std::string instance_name(const DeviceSpec& device, int index) {
    return index == 0 ? device.name : device.name + "_" + std::to_string(index + 1);
}

}  // namespace

void validate_workcell_spec(const WorkcellSpec& spec) {
    if (spec.name.empty()) throw support::ConfigError("workcell spec needs a name");
    if (spec.timing_scale <= 0.0) {
        throw support::ConfigError("workcell timing_scale must be positive");
    }
    if (spec.manual_handling < Duration::zero()) {
        throw support::ConfigError("workcell manual_handling_s cannot be negative");
    }
    if ((spec.plate_rows && *spec.plate_rows < 1) ||
        (spec.plate_cols && *spec.plate_cols < 1)) {
        throw support::ConfigError("workcell plate rows/cols must be >= 1");
    }

    std::set<std::string> names;
    int ot2_count = 0;
    bool has_camera = false;
    for (const DeviceSpec& device : spec.devices) {
        if (device.name != device_kind_to_string(device.kind)) {
            // The Figure-2 workflows address modules by their kind names,
            // so a renamed instance would never receive a command.
            throw support::ConfigError(
                "device '" + device.name + "': custom instance names are not "
                "supported (modules register under their kind name; ot2 fan-out "
                "uses count:)");
        }
        if (device.count < 1) {
            throw support::ConfigError("device '" + device.name + "' count must be >= 1");
        }
        if (device.count > 1 && device.kind != DeviceKind::Ot2) {
            throw support::ConfigError(
                "device '" + device.name +
                "': only ot2 may have count > 1 (one arm, one camera, one stacker)");
        }
        for (int i = 0; i < device.count; ++i) {
            if (!names.insert(instance_name(device, i)).second) {
                throw support::ConfigError("duplicate device name '" +
                                           instance_name(device, i) +
                                           "' in workcell spec '" + spec.name + "'");
            }
        }
        if (device.options.is_object()) {
            for (const auto& [key, value] : device.options.as_object()) {
                if (!is_option_key(device.kind, key)) {
                    throw support::ConfigError(
                        "unknown option '" + key + "' for device kind '" +
                        device_kind_to_string(device.kind) + "'");
                }
                check_option_value(key, value);
            }
        }
        if (device.kind == DeviceKind::Ot2) ot2_count += device.count;
        if (device.kind == DeviceKind::Camera) has_camera = true;
    }
    if (ot2_count < 1) {
        throw support::ConfigError("workcell spec '" + spec.name +
                                   "' must mount at least one ot2");
    }
    if (!has_camera) {
        throw support::ConfigError("workcell spec '" + spec.name +
                                   "' must mount a camera (the loop's only sensor)");
    }
    if (spec.faults) {
        check_probability(spec.faults->command_rejection_prob,
                          "faults.command_rejection_prob");
        for (const auto& [module, prob] : spec.faults->per_module) {
            check_probability(prob, "faults.per_module." + module);
        }
        if (spec.faults->rejection_latency < Duration::zero()) {
            throw support::ConfigError("faults.rejection_latency_s cannot be negative");
        }
    }
}

WorkcellSpec workcell_spec_from_doc(const json::Value& doc) {
    if (!doc.is_object()) {
        throw support::ConfigError("workcell spec file must be a YAML mapping");
    }
    reject_unknown_keys(doc, {"workcell", "plate", "devices", "faults"},
                        "workcell spec file");
    const json::Value* header = doc.find("workcell");
    if (header == nullptr) {
        throw support::ConfigError(
            "workcell spec file must have a 'workcell' section (experiment and "
            "campaign files are loaded by sdlbench_run / --campaign instead)");
    }

    WorkcellSpec spec;
    reject_unknown_keys(*header,
                        {"name", "description", "timing_scale", "manual_handling_s"},
                        "workcell");
    if (header->find("name") == nullptr) {
        // Without this, a nameless file would inherit the struct default
        // "baseline" and masquerade as the registry scenario in reports.
        throw support::ConfigError("workcell spec files need an explicit name");
    }
    spec.name = header->get_or("name", spec.name);
    spec.description = header->get_or("description", spec.description);
    spec.timing_scale = header->get_or("timing_scale", spec.timing_scale);
    spec.manual_handling = Duration::seconds(
        header->get_or("manual_handling_s", spec.manual_handling.to_seconds()));

    if (const json::Value* plate = doc.find("plate")) {
        reject_unknown_keys(*plate, {"rows", "cols"}, "plate");
        if (const json::Value* rows = plate->find("rows")) {
            spec.plate_rows = static_cast<int>(rows->as_int());
        }
        if (const json::Value* cols = plate->find("cols")) {
            spec.plate_cols = static_cast<int>(cols->as_int());
        }
    }

    const json::Value* devices = doc.find("devices");
    if (devices == nullptr || !devices->is_array()) {
        throw support::ConfigError(
            "workcell spec needs a 'devices' list (the instrument roster)");
    }
    for (const json::Value& entry : devices->as_array()) {
        if (!entry.is_object() || !entry.contains("kind")) {
            throw support::ConfigError("each devices entry needs a 'kind'");
        }
        DeviceSpec device;
        device.kind = device_kind_from_string(entry.at("kind").as_string());
        device.name = entry.get_or("name", std::string(device_kind_to_string(device.kind)));
        device.count = static_cast<int>(entry.get_or("count", std::int64_t{1}));
        for (const auto& [key, value] : entry.as_object()) {
            if (key == "kind" || key == "name" || key == "count") continue;
            if (!is_option_key(device.kind, key)) {
                throw support::ConfigError("unknown option '" + key +
                                           "' for device kind '" +
                                           device_kind_to_string(device.kind) + "'");
            }
            device.options.set(key, value);
        }
        spec.devices.push_back(std::move(device));
    }

    if (const json::Value* faults = doc.find("faults")) {
        reject_unknown_keys(
            *faults, {"command_rejection_prob", "rejection_latency_s", "per_module"},
            "faults");
        wei::FaultConfig fc;
        fc.command_rejection_prob = faults->get_or("command_rejection_prob", 0.0);
        fc.rejection_latency = Duration::seconds(
            faults->get_or("rejection_latency_s", fc.rejection_latency.to_seconds()));
        if (const json::Value* per_module = faults->find("per_module")) {
            for (const auto& [module, prob] : per_module->as_object()) {
                fc.per_module[module] = prob.as_double();
            }
        }
        spec.faults = std::move(fc);
    }

    validate_workcell_spec(spec);
    return spec;
}

WorkcellSpec workcell_spec_from_yaml(std::string_view text) {
    return workcell_spec_from_doc(support::yaml::parse(text));
}

WorkcellSpec workcell_spec_from_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw support::Error("io", "cannot open workcell spec '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return workcell_spec_from_yaml(buffer.str());
}

json::Value workcell_spec_to_doc(const WorkcellSpec& spec) {
    json::Value doc = json::Value::object();
    json::Value header = json::Value::object();
    header.set("name", spec.name);
    if (!spec.description.empty()) header.set("description", spec.description);
    header.set("timing_scale", spec.timing_scale);
    header.set("manual_handling_s", spec.manual_handling.to_seconds());
    doc.set("workcell", std::move(header));

    if (spec.plate_rows || spec.plate_cols) {
        json::Value plate = json::Value::object();
        if (spec.plate_rows) plate.set("rows", *spec.plate_rows);
        if (spec.plate_cols) plate.set("cols", *spec.plate_cols);
        doc.set("plate", std::move(plate));
    }

    json::Value devices = json::Value::array();
    for (const DeviceSpec& device : spec.devices) {
        json::Value entry = json::Value::object();
        entry.set("kind", device_kind_to_string(device.kind));
        if (device.name != device_kind_to_string(device.kind)) {
            entry.set("name", device.name);
        }
        if (device.count != 1) entry.set("count", device.count);
        if (device.options.is_object()) {
            for (const auto& [key, value] : device.options.as_object()) {
                entry.set(key, value);
            }
        }
        devices.push_back(std::move(entry));
    }
    doc.set("devices", std::move(devices));

    if (spec.faults) {
        json::Value faults = json::Value::object();
        faults.set("command_rejection_prob", spec.faults->command_rejection_prob);
        faults.set("rejection_latency_s", spec.faults->rejection_latency.to_seconds());
        if (!spec.faults->per_module.empty()) {
            json::Value per_module = json::Value::object();
            for (const auto& [module, prob] : spec.faults->per_module) {
                per_module.set(module, prob);
            }
            faults.set("per_module", std::move(per_module));
        }
        doc.set("faults", std::move(faults));
    }
    return doc;
}

std::string workcell_spec_to_yaml(const WorkcellSpec& spec) {
    return support::yaml::dump(workcell_spec_to_doc(spec));
}

namespace {

double opt_double(const json::Value& options, const char* key, double fallback) {
    return options.is_object() ? options.get_or(key, fallback) : fallback;
}

std::int64_t opt_int(const json::Value& options, const char* key, std::int64_t fallback) {
    return options.is_object() ? options.get_or(key, fallback) : fallback;
}

Duration opt_duration(const json::Value& options, const char* key, Duration fallback) {
    return Duration::seconds(opt_double(options, key, fallback.to_seconds()));
}

}  // namespace

ColorPickerConfig apply_workcell_spec(ColorPickerConfig config, const WorkcellSpec& spec) {
    validate_workcell_spec(spec);

    // The spec fully determines the hardware: start every device from its
    // paper-calibrated defaults so applying a spec is idempotent (noise
    // seeds are re-derived from the experiment seed by finalize_config).
    config.sciclops = devices::SciclopsConfig{};
    config.pf400 = devices::Pf400Config{};
    config.ot2 = devices::Ot2Config{};
    config.barty = devices::BartyConfig{};
    config.camera = devices::CameraConfig{};

    WorkcellTopology topology;
    topology.scenario = spec.name;
    topology.ot2_count = 0;
    topology.has_sciclops = false;
    topology.has_pf400 = false;
    topology.has_barty = false;
    topology.manual_handling = spec.manual_handling * spec.timing_scale;

    for (const DeviceSpec& device : spec.devices) {
        const json::Value& o = device.options;
        switch (device.kind) {
            case DeviceKind::Sciclops: {
                topology.has_sciclops = true;
                devices::SciclopsConfig& c = config.sciclops;
                c.towers = static_cast<int>(opt_int(o, "towers", c.towers));
                c.plates_per_tower =
                    static_cast<int>(opt_int(o, "plates_per_tower", c.plates_per_tower));
                c.timing.get_plate = opt_duration(o, "get_plate_s", c.timing.get_plate);
                c.timing.status = opt_duration(o, "status_s", c.timing.status);
                break;
            }
            case DeviceKind::Pf400: {
                topology.has_pf400 = true;
                config.pf400.timing.transfer =
                    opt_duration(o, "transfer_s", config.pf400.timing.transfer);
                break;
            }
            case DeviceKind::Ot2: {
                topology.ot2_count += device.count;
                devices::Ot2Config& c = config.ot2;
                c.timing.protocol_overhead =
                    opt_duration(o, "protocol_overhead_s", c.timing.protocol_overhead);
                c.timing.per_well = opt_duration(o, "per_well_s", c.timing.per_well);
                c.dispense_cv = opt_double(o, "dispense_cv", c.dispense_cv);
                c.dispense_sigma_ul = opt_double(o, "dispense_sigma_ul", c.dispense_sigma_ul);
                c.reservoir_capacity = Volume::milliliters(opt_double(
                    o, "reservoir_capacity_ml", c.reservoir_capacity.to_milliliters()));
                c.clog_prob = opt_double(o, "clog_prob", c.clog_prob);
                c.dye_drift_per_well =
                    opt_double(o, "dye_drift_per_well", c.dye_drift_per_well);
                break;
            }
            case DeviceKind::Barty: {
                topology.has_barty = true;
                devices::BartyConfig& c = config.barty;
                c.timing.fill = opt_duration(o, "fill_s", c.timing.fill);
                c.timing.drain = opt_duration(o, "drain_s", c.timing.drain);
                c.timing.refill = opt_duration(o, "refill_s", c.timing.refill);
                c.timing.prime = opt_duration(o, "prime_s", c.timing.prime);
                c.bulk_capacity = Volume::milliliters(
                    opt_double(o, "bulk_capacity_ml", c.bulk_capacity.to_milliliters()));
                break;
            }
            case DeviceKind::Camera: {
                devices::CameraConfig& c = config.camera;
                c.timing.capture = opt_duration(o, "capture_s", c.timing.capture);
                c.glitch_prob = opt_double(o, "glitch_prob", c.glitch_prob);
                c.drift_per_frame = opt_double(o, "drift_per_frame", c.drift_per_frame);
                c.max_frames = static_cast<std::size_t>(
                    opt_int(o, "max_frames", static_cast<std::int64_t>(c.max_frames)));
                break;
            }
        }
    }

    const double k = spec.timing_scale;
    config.sciclops.timing.get_plate *= k;
    config.sciclops.timing.status *= k;
    config.pf400.timing.transfer *= k;
    config.ot2.timing.protocol_overhead *= k;
    config.ot2.timing.per_well *= k;
    config.barty.timing.fill *= k;
    config.barty.timing.drain *= k;
    config.barty.timing.refill *= k;
    config.barty.timing.prime *= k;
    config.camera.timing.capture *= k;

    config.workcell = topology;
    if (spec.plate_rows) config.plate_rows = *spec.plate_rows;
    if (spec.plate_cols) config.plate_cols = *spec.plate_cols;
    if (spec.faults) {
        // Keep the derived seed; the spec sets rates and latency only.
        const std::uint64_t seed = config.faults.seed;
        config.faults = *spec.faults;
        config.faults.seed = seed;
    }
    return config;
}

}  // namespace sdl::core
