// WorkcellSpec: a declarative description of one simulated workcell.
//
// The paper's benchmark value comes from varying the *workcell*, not just
// the solver: device timings, transport topology, and fault rates are the
// knobs that make color matching a self-driving-lab benchmark. A
// WorkcellSpec captures those knobs as data — a device roster with counts
// and timing overrides, a fault-injection profile, the deck's plate
// format — in the same YAML notation as experiment and campaign files:
//
//   workcell:                    # presence of this section + a `devices`
//     name: degraded             # list marks a workcell spec file
//     description: elevated fault rates on every instrument
//     timing_scale: 1.0          # optional; multiplies every duration
//     manual_handling_s: 20.0    # optional; time per human stand-in action
//   plate:                       # optional; the plate format the deck is
//     rows: 8                    # stocked with (overrides the experiment)
//     cols: 12
//   devices:                     # the roster; omitted handling devices
//     - kind: sciclops           # (sciclops/pf400/barty) are replaced by
//     - kind: pf400              # manual human stand-ins; camera and at
//       transfer_s: 42.65        # least one ot2 are mandatory
//     - kind: ot2
//       count: 2                 # mounts ot2, ot2_2, ... (only ot2 may
//       per_well_s: 35.0         # fan out)
//     - kind: barty
//     - kind: camera
//       glitch_prob: 0.02
//   faults:                      # optional; omitted = keep the
//     command_rejection_prob: 0.03           # experiment's fault profile
//     rejection_latency_s: 5.0
//     per_module: {ot2: 0.08}
//
// Unknown keys, unknown device kinds, and duplicate instance names raise
// ConfigError so typos fail loudly. `apply_workcell_spec` resolves a spec
// against a ColorPickerConfig, after which WorkcellRuntime builds the
// described workcell; scenarios.hpp ships a pack of named specs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment_config.hpp"
#include "support/json.hpp"
#include "wei/faults.hpp"

namespace sdl::core {

/// Instrument kinds a roster can mount (the five Figure-1 instruments).
enum class DeviceKind { Sciclops, Pf400, Ot2, Barty, Camera };

/// Kind <-> spec-file spelling ("sciclops" | "pf400" | "ot2" | "barty" |
/// "camera"). device_kind_from_string throws ConfigError on unknown kinds.
[[nodiscard]] DeviceKind device_kind_from_string(const std::string& name);
[[nodiscard]] const char* device_kind_to_string(DeviceKind kind);

/// One roster entry. `options` holds the kind-specific overrides exactly
/// as written in the file (validated keys only); fields not mentioned
/// keep the paper-calibrated defaults. Valid option keys per kind:
///   sciclops — towers, plates_per_tower, get_plate_s, status_s
///   pf400    — transfer_s
///   ot2      — protocol_overhead_s, per_well_s, dispense_cv,
///              dispense_sigma_ul, reservoir_capacity_ml, clog_prob,
///              dye_drift_per_well
///   barty    — fill_s, drain_s, refill_s, prime_s, bulk_capacity_ml
///   camera   — capture_s, glitch_prob, max_frames, drift_per_frame
struct DeviceSpec {
    DeviceKind kind = DeviceKind::Ot2;
    /// Instance name. Must equal the kind spelling (validated): the
    /// Figure-2 workflows address modules by kind name, so renames would
    /// strand the instance; ot2 fan-out derives "ot2_2", ... from count.
    std::string name;
    int count = 1;  ///< >1 only for ot2 (mounts name, name_2, ...)
    support::json::Value options = support::json::Value::object();
};

struct WorkcellSpec {
    std::string name = "baseline";
    std::string description;
    /// Multiplies every device duration (and manual_handling): 0.25 models
    /// optimistic next-generation hardware, 2.0 a slow workcell.
    double timing_scale = 1.0;
    /// Duration of one manual stand-in action for absent handling devices.
    support::Duration manual_handling = support::Duration::seconds(20.0);
    /// Plate format the deck is stocked with; unset = keep the experiment's.
    std::optional<int> plate_rows;
    std::optional<int> plate_cols;
    std::vector<DeviceSpec> devices;
    /// Fault profile; unset = keep the experiment's own `faults:` section.
    std::optional<wei::FaultConfig> faults;
};

/// Structural validation: camera + at least one ot2 present, instance
/// names unique, counts sane, probabilities in range. Called by the
/// parsers and by apply_workcell_spec; throws ConfigError.
void validate_workcell_spec(const WorkcellSpec& spec);

/// Parses a workcell spec document / file / already parsed document.
[[nodiscard]] WorkcellSpec workcell_spec_from_yaml(std::string_view text);
[[nodiscard]] WorkcellSpec workcell_spec_from_file(const std::string& path);
[[nodiscard]] WorkcellSpec workcell_spec_from_doc(const support::json::Value& doc);

/// Serializes back to YAML / document form (inverse of the parsers).
[[nodiscard]] std::string workcell_spec_to_yaml(const WorkcellSpec& spec);
[[nodiscard]] support::json::Value workcell_spec_to_doc(const WorkcellSpec& spec);

/// Resolves `spec` against an experiment config: fills in the topology
/// (scenario name, OT2 count, device presence, manual handling time),
/// applies device option overrides and the timing scale to the device
/// configs, and overrides the plate format / fault profile when the spec
/// declares them. Everything else (solver, seed, samples, ...) is left
/// untouched, so the same spec composes with any experiment.
[[nodiscard]] ColorPickerConfig apply_workcell_spec(ColorPickerConfig config,
                                                    const WorkcellSpec& spec);

}  // namespace sdl::core
