#include "core/workflows.hpp"

namespace sdl::core {

const wei::Workflow& wf_newplate() {
    static const wei::Workflow wf = wei::Workflow::from_yaml(R"(name: cp_wf_newplate
steps:
  - name: get plate
    module: sciclops
    action: get_plate
  - name: stage plate
    module: pf400
    action: transfer
    args: {source: sciclops.exchange, target: camera.nest}
  - name: fill reservoirs
    module: barty
    action: fill_colors
)");
    return wf;
}

const wei::Workflow& wf_mixcolor() {
    static const wei::Workflow wf = wei::Workflow::from_yaml(R"(name: cp_wf_mixcolor
steps:
  - name: plate to ot2
    module: pf400
    action: transfer
    args: {source: camera.nest, target: ot2.deck}
  - name: mix colors
    module: ot2
    action: run_protocol
    args: {protocol: mix_colors}
  - name: plate to camera
    module: pf400
    action: transfer
    args: {source: ot2.deck, target: camera.nest}
  - name: photograph
    module: camera
    action: take_picture
)");
    return wf;
}

const wei::Workflow& wf_trashplate() {
    static const wei::Workflow wf = wei::Workflow::from_yaml(R"(name: cp_wf_trashplate
steps:
  - name: plate to trash
    module: pf400
    action: transfer
    args: {source: camera.nest, target: trash}
  - name: drain reservoirs
    module: barty
    action: drain_colors
)");
    return wf;
}

const wei::Workflow& wf_replenish() {
    static const wei::Workflow wf = wei::Workflow::from_yaml(R"(name: cp_wf_replenish
steps:
  - name: refill reservoirs
    module: barty
    action: refill_colors
)");
    return wf;
}

const wei::Workflow& wf_reprime() {
    static const wei::Workflow wf = wei::Workflow::from_yaml(R"(name: cp_wf_reprime
steps:
  - name: prime tips
    module: barty
    action: prime_tips
)");
    return wf;
}

const wei::Workflow& wf_retake() {
    static const wei::Workflow wf = wei::Workflow::from_yaml(R"(name: cp_wf_retake
steps:
  - name: photograph
    module: camera
    action: take_picture
)");
    return wf;
}

std::vector<const wei::Workflow*> all_workflows() {
    return {&wf_newplate(), &wf_mixcolor(), &wf_trashplate(), &wf_replenish()};
}

}  // namespace sdl::core
