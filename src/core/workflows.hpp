// The four WEI workflows of the color-picker application (Figure 2):
// cp_wf_newplate, cp_wf_mixcolor, cp_wf_trashplate, cp_wf_replenish.
// Defined here in the same YAML notation a user would write on disk
// (configs/ ships the identical files).
#pragma once

#include "wei/workflow.hpp"

namespace sdl::core {

/// sciclops stages a fresh plate, pf400 moves it to the camera nest,
/// barty fills the ot2 reservoirs.
[[nodiscard]] const wei::Workflow& wf_newplate();

/// pf400 moves the plate to the ot2, ot2 mixes the batch, pf400 returns
/// the plate, camera photographs it. The ot2 step is parameterized with
/// the batch's dispense orders via Workflow::with_step_args.
[[nodiscard]] const wei::Workflow& wf_mixcolor();

/// pf400 drops the plate in the trash, barty drains the reservoirs.
[[nodiscard]] const wei::Workflow& wf_trashplate();

/// barty drains and refills the reservoirs with fresh dye.
[[nodiscard]] const wei::Workflow& wf_replenish();

/// barty (or its manual stand-in) back-flushes the OT2 pipette tips —
/// recovery for the clogged-tip fault chain (devices::Ot2Config::clog_prob).
[[nodiscard]] const wei::Workflow& wf_reprime();

/// camera retakes a photograph (recovery when a frame is unusable —
/// occluded fiducial, reflection — which the vision pipeline detects).
[[nodiscard]] const wei::Workflow& wf_retake();

/// Step name of the parameterizable ot2 step inside wf_mixcolor().
inline constexpr const char* kMixStepName = "mix colors";

/// All four workflows (for tooling: Figure-2 graph dumps etc.).
[[nodiscard]] std::vector<const wei::Workflow*> all_workflows();

}  // namespace sdl::core
