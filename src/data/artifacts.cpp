#include "data/artifacts.hpp"

#include <filesystem>

#include "support/atomic_io.hpp"
#include "support/common.hpp"

namespace sdl::data {

namespace json = support::json;

std::size_t write_run_artifacts(const wei::EventLog& log, const std::string& directory) {
    std::error_code ec;
    std::filesystem::create_directories(directory, ec);
    if (ec) {
        throw support::Error("io", "cannot create artifact directory '" + directory +
                                       "': " + ec.message());
    }

    std::size_t written = 0;
    const json::Value doc = log.to_json();
    for (const json::Value& run : doc.at("workflow_runs").as_array()) {
        const std::string name = run.at("name").as_string();
        const std::string path =
            directory + "/" + std::to_string(written) + "_" + name + ".json";
        support::atomic_write(path, run.pretty() + "\n");
        ++written;
    }
    return written;
}

}  // namespace sdl::data
