// Local run artifacts: "For each workflow that is run, a file is created
// that details the step names run, their start time, end time and total
// duration. These files are saved locally to the machine running the
// workflow manager" (§2.3).
#pragma once

#include <string>

#include "wei/event_log.hpp"

namespace sdl::data {

/// Writes one JSON file per workflow run under `directory` (created if
/// absent), named "<index>_<workflow>.json". Returns the number of files
/// written. Throws Error("io") when the directory cannot be used.
std::size_t write_run_artifacts(const wei::EventLog& log, const std::string& directory);

}  // namespace sdl::data
