#include "data/flow.hpp"

#include <memory>

namespace sdl::data {

GlobusFlowSim::GlobusFlowSim(des::Simulation& sim, DataPortal& portal, FlowConfig config)
    : sim_(sim), portal_(portal), config_(config), rng_(config.seed) {}

support::Duration GlobusFlowSim::jittered(support::Duration base) {
    const double factor = rng_.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
    return base * factor;
}

void GlobusFlowSim::publish(support::json::Value document) {
    ++in_flight_;
    // Draw all stage durations up front so the flow is deterministic
    // regardless of what else interleaves on the simulation.
    const support::Duration transfer = jittered(config_.transfer_latency);
    const support::Duration ingest = jittered(config_.ingest_latency);
    const support::Duration index = jittered(config_.index_latency);

    auto doc = std::make_shared<support::json::Value>(std::move(document));
    sim_.schedule_in(transfer, [this, doc, ingest, index] {
        // transfer done -> ingest
        sim_.schedule_in(ingest, [this, doc, index] {
            // ingest done -> index
            sim_.schedule_in(index, [this, doc] {
                portal_.ingest(std::move(*doc));
                --in_flight_;
                ++completed_;
                completion_times_.push_back(sim_.now());
            });
        });
    });
}

support::Duration GlobusFlowSim::mean_upload_interval() const noexcept {
    if (completion_times_.size() < 2) return support::Duration::zero();
    const support::Duration span = completion_times_.back() - completion_times_.front();
    return span / static_cast<double>(completion_times_.size() - 1);
}

}  // namespace sdl::data
