// Simulated Globus flow: the asynchronous publication pipeline.
//
// "The publication step engages a Globus flow to publish data to the ALCF
// Community Data Co-Op (ACDC) data portal" (§2.3). A flow is a staged
// pipeline — here transfer -> ingest -> index — whose stages take time
// and run concurrently with the robots: publications scheduled on the
// shared DES complete while the workcell executes its next commands,
// without blocking the experiment loop.
#pragma once

#include <functional>
#include <vector>

#include "data/portal.hpp"
#include "des/simulation.hpp"
#include "support/random.hpp"
#include "support/units.hpp"

namespace sdl::data {

struct FlowConfig {
    support::Duration transfer_latency = support::Duration::seconds(4.0);
    support::Duration ingest_latency = support::Duration::seconds(2.5);
    support::Duration index_latency = support::Duration::seconds(1.5);
    /// Multiplicative jitter on each stage, uniform in [1-j, 1+j].
    double jitter = 0.3;
    std::uint64_t seed = 0x910B05;
};

class GlobusFlowSim {
public:
    /// Borrows the simulation and the destination portal.
    GlobusFlowSim(des::Simulation& sim, DataPortal& portal, FlowConfig config = {});

    /// Schedules the three-stage publication of `document`; returns
    /// immediately. The document lands in the portal when the index stage
    /// completes.
    void publish(support::json::Value document);

    /// Flows started but not yet indexed.
    [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_; }
    [[nodiscard]] std::size_t completed() const noexcept { return completed_; }

    /// Completion timestamps of every publication, in submission order of
    /// completion — the series behind the paper's "data uploads occurred
    /// on average every 3 minutes and 48 seconds".
    [[nodiscard]] const std::vector<support::TimePoint>& completion_times() const noexcept {
        return completion_times_;
    }

    /// Mean spacing between consecutive completions (zero with < 2).
    [[nodiscard]] support::Duration mean_upload_interval() const noexcept;

private:
    [[nodiscard]] support::Duration jittered(support::Duration base);

    des::Simulation& sim_;
    DataPortal& portal_;
    FlowConfig config_;
    support::Rng rng_;
    std::size_t in_flight_ = 0;
    std::size_t completed_ = 0;
    std::vector<support::TimePoint> completion_times_;
};

}  // namespace sdl::data
