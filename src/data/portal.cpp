#include "data/portal.hpp"

#include <cstdio>

#include "support/common.hpp"
#include "support/table.hpp"

namespace sdl::data {

namespace json = support::json;

void DataPortal::ingest(json::Value document) {
    const std::string type = document.get_or("type", std::string(""));
    if (type == "experiment") {
        ExperimentRecord record = ExperimentRecord::from_json(document);
        experiments_[record.experiment_id] = std::move(record);
    } else if (type == "run") {
        RunRecord record = RunRecord::from_json(document);
        runs_[{record.experiment_id, record.run_number}] = std::move(record);
    } else {
        throw support::Error("portal", "document has unknown type '" + type + "'");
    }
}

std::size_t DataPortal::experiment_count() const noexcept { return experiments_.size(); }
std::size_t DataPortal::run_count() const noexcept { return runs_.size(); }

std::vector<std::string> DataPortal::experiment_ids() const {
    std::vector<std::string> ids;
    ids.reserve(experiments_.size());
    for (const auto& [id, record] : experiments_) ids.push_back(id);
    return ids;
}

std::optional<ExperimentRecord> DataPortal::find_experiment(
    const std::string& experiment_id) const {
    const auto it = experiments_.find(experiment_id);
    if (it == experiments_.end()) return std::nullopt;
    return it->second;
}

std::vector<RunRecord> DataPortal::runs_of(const std::string& experiment_id) const {
    std::vector<RunRecord> out;
    for (const auto& [key, record] : runs_) {
        if (key.first == experiment_id) out.push_back(record);
    }
    return out;
}

std::optional<RunRecord> DataPortal::find_run(const std::string& experiment_id,
                                              int run_number) const {
    const auto it = runs_.find({experiment_id, run_number});
    if (it == runs_.end()) return std::nullopt;
    return it->second;
}

std::vector<RunRecord> DataPortal::search_runs(
    const std::function<bool(const RunRecord&)>& predicate) const {
    std::vector<RunRecord> out;
    for (const auto& [key, record] : runs_) {
        if (predicate(record)) out.push_back(record);
    }
    return out;
}

std::string DataPortal::render_experiment_summary(const std::string& experiment_id) const {
    const auto experiment = find_experiment(experiment_id);
    if (!experiment.has_value()) {
        return "experiment '" + experiment_id + "' not found\n";
    }
    const std::vector<RunRecord> runs = runs_of(experiment_id);
    std::size_t total_samples = 0;
    for (const RunRecord& run : runs) total_samples += run.samples.size();

    std::string out;
    out += "=== " + experiment->experiment_id + " ===\n";
    out += "Date: " + experiment->date + " | Solver: " + experiment->solver +
           " | Target: " + experiment->target.str() +
           " | Batch size: " + std::to_string(experiment->batch_size) + "\n";
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%zu runs each with ~%zu samples, for a total of %zu experiments\n",
                  runs.size(), runs.empty() ? 0 : total_samples / runs.size(),
                  total_samples);
    out += line;

    support::TextTable table({"Run", "Samples", "Best score", "Duration", "Image"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Left});
    for (const RunRecord& run : runs) {
        table.add_row({"#" + std::to_string(run.run_number),
                       std::to_string(run.samples.size()),
                       support::fmt_double(run.best_score, 2),
                       (run.ended - run.started).pretty(), run.image_ref});
    }
    out += table.str();
    return out;
}

std::string DataPortal::render_run_detail(const std::string& experiment_id,
                                          int run_number) const {
    const auto run = find_run(experiment_id, run_number);
    if (!run.has_value()) {
        return "run #" + std::to_string(run_number) + " of '" + experiment_id +
               "' not found\n";
    }
    std::string out;
    out += "=== Detailed data from run #" + std::to_string(run->run_number) + " (" +
           experiment_id + ") ===\n";
    out += "Window: " + support::fmt_double(run->started.to_minutes(), 1) + " min -> " +
           support::fmt_double(run->ended.to_minutes(), 1) +
           " min | Best score: " + support::fmt_double(run->best_score, 2) +
           " | Image: " + run->image_ref + "\n";

    support::TextTable table(
        {"Sample", "Well", "Ratios (c,m,y,k)", "Measured", "Score", "Best so far"});
    table.set_alignment({support::TextTable::Align::Right, support::TextTable::Align::Right,
                         support::TextTable::Align::Left, support::TextTable::Align::Left,
                         support::TextTable::Align::Right,
                         support::TextTable::Align::Right});
    for (const SampleRecord& s : run->samples) {
        std::string ratios;
        for (std::size_t i = 0; i < s.ratios.size(); ++i) {
            if (i > 0) ratios += ",";
            ratios += support::fmt_double(s.ratios[i], 2);
        }
        table.add_row({std::to_string(s.sample_index), std::to_string(s.well), ratios,
                       s.measured.str(), support::fmt_double(s.score, 2),
                       support::fmt_double(s.best_score_so_far, 2)});
    }
    out += table.str();
    return out;
}

json::Value DataPortal::to_json() const {
    json::Value doc = json::Value::object();
    json::Value experiments = json::Value::array();
    for (const auto& [id, record] : experiments_) experiments.push_back(record.to_json());
    doc.set("experiments", std::move(experiments));
    json::Value runs = json::Value::array();
    for (const auto& [key, record] : runs_) runs.push_back(record.to_json());
    doc.set("runs", std::move(runs));
    return doc;
}

DataPortal DataPortal::from_json(const json::Value& v) {
    DataPortal portal;
    for (const json::Value& e : v.at("experiments").as_array()) portal.ingest(e);
    for (const json::Value& r : v.at("runs").as_array()) portal.ingest(r);
    return portal;
}

}  // namespace sdl::data
