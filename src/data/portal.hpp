// The data portal: a searchable index over published experiment records,
// standing in for the Globus Search portal at the ALCF Community Data
// Co-Op (ACDC) where the paper publishes its results (Figure 3).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "data/record.hpp"
#include "support/json.hpp"

namespace sdl::data {

class DataPortal {
public:
    /// Ingests one document; documents must carry "type" ("experiment" or
    /// "run") and the matching identity fields. Re-ingesting the same
    /// identity overwrites (idempotent publishing).
    void ingest(support::json::Value document);

    [[nodiscard]] std::size_t experiment_count() const noexcept;
    [[nodiscard]] std::size_t run_count() const noexcept;

    [[nodiscard]] std::vector<std::string> experiment_ids() const;
    [[nodiscard]] std::optional<ExperimentRecord> find_experiment(
        const std::string& experiment_id) const;
    [[nodiscard]] std::vector<RunRecord> runs_of(const std::string& experiment_id) const;
    [[nodiscard]] std::optional<RunRecord> find_run(const std::string& experiment_id,
                                                    int run_number) const;

    /// Full-index search: returns run records whose samples satisfy the
    /// predicate (e.g. score below a threshold).
    [[nodiscard]] std::vector<RunRecord> search_runs(
        const std::function<bool(const RunRecord&)>& predicate) const;

    /// Figure 3, left: the experiment summary view.
    [[nodiscard]] std::string render_experiment_summary(
        const std::string& experiment_id) const;

    /// Figure 3, right: detailed data from one run.
    [[nodiscard]] std::string render_run_detail(const std::string& experiment_id,
                                                int run_number) const;

    /// Whole-portal persistence.
    [[nodiscard]] support::json::Value to_json() const;
    [[nodiscard]] static DataPortal from_json(const support::json::Value& v);

private:
    // Keyed by experiment_id and (experiment_id, run_number).
    std::map<std::string, ExperimentRecord> experiments_;
    std::map<std::pair<std::string, int>, RunRecord> runs_;
};

}  // namespace sdl::data
