#include "data/record.hpp"

#include "support/common.hpp"

namespace sdl::data {

namespace json = support::json;

namespace {

json::Value color_to_json(color::Rgb8 c) {
    json::Value v = json::Value::object();
    v.set("r", static_cast<std::int64_t>(c.r));
    v.set("g", static_cast<std::int64_t>(c.g));
    v.set("b", static_cast<std::int64_t>(c.b));
    return v;
}

color::Rgb8 color_from_json(const json::Value& v) {
    return {static_cast<std::uint8_t>(v.at("r").as_int()),
            static_cast<std::uint8_t>(v.at("g").as_int()),
            static_cast<std::uint8_t>(v.at("b").as_int())};
}

json::Value doubles_to_json(const std::vector<double>& xs) {
    json::Value arr = json::Value::array();
    for (const double x : xs) arr.push_back(x);
    return arr;
}

std::vector<double> doubles_from_json(const json::Value& v) {
    std::vector<double> out;
    for (const json::Value& x : v.as_array()) out.push_back(x.as_double());
    return out;
}

}  // namespace

json::Value SampleRecord::to_json() const {
    json::Value v = json::Value::object();
    v.set("type", "sample");
    v.set("sample_index", sample_index);
    v.set("well", well);
    v.set("ratios", doubles_to_json(ratios));
    v.set("volumes_ul", doubles_to_json(volumes_ul));
    v.set("measured", color_to_json(measured));
    v.set("score", score);
    v.set("best_score_so_far", best_score_so_far);
    v.set("measured_at_s", measured_at.to_seconds());
    return v;
}

SampleRecord SampleRecord::from_json(const json::Value& v) {
    SampleRecord r;
    r.sample_index = static_cast<int>(v.at("sample_index").as_int());
    r.well = static_cast<int>(v.at("well").as_int());
    r.ratios = doubles_from_json(v.at("ratios"));
    r.volumes_ul = doubles_from_json(v.at("volumes_ul"));
    r.measured = color_from_json(v.at("measured"));
    r.score = v.at("score").as_double();
    r.best_score_so_far = v.at("best_score_so_far").as_double();
    r.measured_at = support::TimePoint::from_seconds(v.at("measured_at_s").as_double());
    return r;
}

json::Value RunRecord::to_json() const {
    json::Value v = json::Value::object();
    v.set("type", "run");
    v.set("experiment_id", experiment_id);
    v.set("run_number", run_number);
    v.set("started_s", started.to_seconds());
    v.set("ended_s", ended.to_seconds());
    v.set("image_ref", image_ref);
    v.set("best_score", best_score);
    json::Value samples_json = json::Value::array();
    for (const SampleRecord& s : samples) samples_json.push_back(s.to_json());
    v.set("samples", std::move(samples_json));
    return v;
}

RunRecord RunRecord::from_json(const json::Value& v) {
    RunRecord r;
    r.experiment_id = v.at("experiment_id").as_string();
    r.run_number = static_cast<int>(v.at("run_number").as_int());
    r.started = support::TimePoint::from_seconds(v.at("started_s").as_double());
    r.ended = support::TimePoint::from_seconds(v.at("ended_s").as_double());
    r.image_ref = v.at("image_ref").as_string();
    r.best_score = v.at("best_score").as_double();
    for (const json::Value& s : v.at("samples").as_array()) {
        r.samples.push_back(SampleRecord::from_json(s));
    }
    return r;
}

json::Value ExperimentRecord::to_json() const {
    json::Value v = json::Value::object();
    v.set("type", "experiment");
    v.set("experiment_id", experiment_id);
    v.set("date", date);
    v.set("solver", solver);
    v.set("target", color_to_json(target));
    v.set("batch_size", batch_size);
    v.set("total_samples", total_samples);
    v.set("run_count", run_count);
    return v;
}

ExperimentRecord ExperimentRecord::from_json(const json::Value& v) {
    ExperimentRecord r;
    r.experiment_id = v.at("experiment_id").as_string();
    r.date = v.at("date").as_string();
    r.solver = v.at("solver").as_string();
    r.target = color_from_json(v.at("target"));
    r.batch_size = static_cast<int>(v.at("batch_size").as_int());
    r.total_samples = static_cast<int>(v.at("total_samples").as_int());
    r.run_count = static_cast<int>(v.at("run_count").as_int());
    return r;
}

}  // namespace sdl::data
