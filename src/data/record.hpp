// Record schemas for published experiment data.
//
// Figure 3 shows the ACDC portal's two views of color-picker data: an
// experiment summary ("12 runs each with 15 samples, for a total of 180
// experiments") and per-run detail ("Detailed data from run #12"). These
// structs are the documents behind those views: "the data created
// includes the colors produced, the timing of each step, the scoring
// results from the solver, and the raw plate images for quality control".
#pragma once

#include <string>
#include <vector>

#include "color/rgb.hpp"
#include "support/json.hpp"
#include "support/units.hpp"

namespace sdl::data {

struct SampleRecord {
    int sample_index = 0;  ///< global sequence number within the experiment
    int well = 0;          ///< well index on its plate
    std::vector<double> ratios;        ///< solver proposal
    std::vector<double> volumes_ul;    ///< volumes actually requested
    color::Rgb8 measured;              ///< camera readout
    double score = 0.0;                ///< objective value
    double best_score_so_far = 0.0;
    support::TimePoint measured_at;

    [[nodiscard]] support::json::Value to_json() const;
    [[nodiscard]] static SampleRecord from_json(const support::json::Value& v);
};

struct RunRecord {
    std::string experiment_id;
    int run_number = 0;  ///< 1-based, as in "run #12"
    std::vector<SampleRecord> samples;
    support::TimePoint started;
    support::TimePoint ended;
    std::string image_ref;  ///< archived plate photo (quality control)
    double best_score = 0.0;

    [[nodiscard]] support::json::Value to_json() const;
    [[nodiscard]] static RunRecord from_json(const support::json::Value& v);
};

struct ExperimentRecord {
    std::string experiment_id;
    std::string date;  ///< e.g. "2023-08-16"
    std::string solver;
    color::Rgb8 target;
    int batch_size = 0;
    int total_samples = 0;
    int run_count = 0;

    [[nodiscard]] support::json::Value to_json() const;
    [[nodiscard]] static ExperimentRecord from_json(const support::json::Value& v);
};

}  // namespace sdl::data
