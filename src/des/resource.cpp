#include "des/resource.hpp"

#include "support/common.hpp"

namespace sdl::des {

Resource::Resource(Simulation& sim, std::size_t capacity, std::string name)
    : sim_(sim), capacity_(capacity), name_(std::move(name)) {
    support::check(capacity > 0, "resource capacity must be positive");
}

void Resource::acquire(std::function<void()> on_grant) {
    support::check(static_cast<bool>(on_grant), "empty resource continuation");
    if (in_use_ < capacity_) {
        ++in_use_;
        // Defer through the event queue so grant ordering is always
        // deterministic relative to other same-time events.
        sim_.schedule_in(support::Duration::zero(), std::move(on_grant));
    } else {
        waiters_.push_back(std::move(on_grant));
    }
}

void Resource::release() {
    support::check(in_use_ > 0, "release without matching acquire");
    if (!waiters_.empty()) {
        auto next = std::move(waiters_.front());
        waiters_.pop_front();
        sim_.schedule_in(support::Duration::zero(), std::move(next));
    } else {
        --in_use_;
    }
}

Store::Store(support::Volume capacity, support::Volume initial, std::string name)
    : capacity_(capacity), level_(initial), name_(std::move(name)) {
    support::check(capacity >= support::Volume::zero(), "negative store capacity");
    support::check(initial >= support::Volume::zero() && initial <= capacity,
                   "initial level outside [0, capacity]");
}

bool Store::try_withdraw(support::Volume amount) noexcept {
    if (amount > level_) return false;
    level_ -= amount;
    return true;
}

support::Volume Store::deposit(support::Volume amount) noexcept {
    const support::Volume space = capacity_ - level_;
    const support::Volume accepted = amount < space ? amount : space;
    level_ += accepted;
    return accepted;
}

void Store::drain() noexcept { level_ = support::Volume::zero(); }

double Store::fill_fraction() const noexcept {
    if (capacity_ <= support::Volume::zero()) return 0.0;
    return level_ / capacity_;
}

}  // namespace sdl::des
