// Simulated resources: counted resource (FIFO grant queue) and a
// continuous store (liquid level), both in virtual time.
//
// The workcell uses these to model exclusivity (one pf400 arm, one or more
// ot2 decks) and the dye reservoirs that barty keeps topped up.
#pragma once

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "des/simulation.hpp"
#include "support/units.hpp"

namespace sdl::des {

/// A capacity-limited resource granted in FIFO order. acquire() invokes
/// the continuation as soon as a slot is free (immediately via a
/// zero-delay event when uncontended).
class Resource {
public:
    Resource(Simulation& sim, std::size_t capacity, std::string name = "resource");

    /// Requests one slot; `on_grant` runs when the slot is assigned.
    void acquire(std::function<void()> on_grant);

    /// Releases one held slot; grants the next waiter if any.
    void release();

    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    [[nodiscard]] std::size_t in_use() const noexcept { return in_use_; }
    [[nodiscard]] std::size_t waiting() const noexcept { return waiters_.size(); }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    Simulation& sim_;
    std::size_t capacity_;
    std::size_t in_use_ = 0;
    std::deque<std::function<void()>> waiters_;
    std::string name_;
};

/// A continuous-quantity store (e.g. a dye reservoir in µL) with a
/// capacity, supporting withdrawal, deposit and level queries. Withdrawal
/// below zero is refused so callers can trigger a replenish workflow —
/// exactly the check that drives the paper's cp_wf_replenish.
class Store {
public:
    Store(support::Volume capacity, support::Volume initial, std::string name = "store");

    /// Removes `amount` if available; returns false (and removes nothing)
    /// when the level is insufficient.
    [[nodiscard]] bool try_withdraw(support::Volume amount) noexcept;

    /// Adds `amount`, clamped at capacity; returns the amount accepted.
    support::Volume deposit(support::Volume amount) noexcept;

    /// Empties the store completely (barty's drain action).
    void drain() noexcept;

    [[nodiscard]] support::Volume level() const noexcept { return level_; }
    [[nodiscard]] support::Volume capacity() const noexcept { return capacity_; }
    [[nodiscard]] double fill_fraction() const noexcept;
    [[nodiscard]] const std::string& name() const noexcept { return name_; }

private:
    support::Volume capacity_;
    support::Volume level_;
    std::string name_;
};

}  // namespace sdl::des
