#include "des/simulation.hpp"

#include "support/common.hpp"

namespace sdl::des {

void Simulation::schedule_at(TimePoint t, Callback fn) {
    support::check(static_cast<bool>(fn), "cannot schedule an empty callback");
    support::check(t >= now_, "cannot schedule an event in the past");
    queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulation::schedule_in(Duration delay, Callback fn) {
    support::check(delay >= Duration::zero(), "negative scheduling delay");
    schedule_at(now_ + delay, std::move(fn));
}

bool Simulation::step() {
    if (queue_.empty()) return false;
    // priority_queue::top returns const&; moving the callback out requires
    // a copy of the handle anyway, which is cheap relative to event work.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
    return true;
}

void Simulation::run_all() {
    while (step()) {
    }
}

void Simulation::run_until_time(TimePoint t) {
    support::check(t >= now_, "cannot run the clock backwards");
    while (!queue_.empty() && queue_.top().time <= t) {
        step();
    }
    now_ = t;
}

bool Simulation::run_until(const std::function<bool()>& pred, TimePoint deadline) {
    if (pred()) return true;
    while (!queue_.empty() && queue_.top().time <= deadline) {
        step();
        if (pred()) return true;
    }
    return false;
}

}  // namespace sdl::des
