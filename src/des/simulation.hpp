// Discrete-event simulation kernel.
//
// This is the virtual-time substrate under the simulated workcell: device
// actions that take minutes of robot time complete in microseconds of CPU
// time while the reported clocks match the lab. The kernel is a classic
// event-queue design: a min-heap of (time, sequence) ordered events, a
// monotone clock, and helpers to advance until a predicate holds.
//
// Determinism: events at equal times run in scheduling order (sequence
// numbers break ties), so a seeded experiment replays identically —
// a property the test suite checks.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "support/units.hpp"

namespace sdl::des {

using support::Duration;
using support::TimePoint;

class Simulation {
public:
    using Callback = std::function<void()>;

    Simulation() = default;
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Current virtual time.
    [[nodiscard]] TimePoint now() const noexcept { return now_; }

    /// Schedules `fn` at absolute time `t` (>= now, else throws LogicError).
    void schedule_at(TimePoint t, Callback fn);

    /// Schedules `fn` after a non-negative delay.
    void schedule_in(Duration delay, Callback fn);

    /// Processes the earliest pending event; false when the queue is empty.
    bool step();

    /// Runs until no events remain.
    void run_all();

    /// Runs all events with time <= t, then sets the clock to exactly t.
    void run_until_time(TimePoint t);

    /// Runs events until `pred()` becomes true (checked after each event).
    /// Returns false if the queue drained or `deadline` passed first.
    bool run_until(const std::function<bool()>& pred,
                   TimePoint deadline = TimePoint::from_seconds(1e18));

    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
    [[nodiscard]] std::uint64_t processed() const noexcept { return processed_; }

private:
    struct Event {
        TimePoint time;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.time != b.time) return b.time < a.time;
            return b.seq < a.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    TimePoint now_{};
    std::uint64_t next_seq_ = 0;
    std::uint64_t processed_ = 0;
};

}  // namespace sdl::des
