#include "devices/barty.hpp"

#include "support/common.hpp"

namespace sdl::devices {

namespace json = support::json;
using support::Volume;

BartySim::BartySim(BartyConfig config, std::array<des::Store, 4>& reservoirs)
    : config_(config), reservoirs_(reservoirs) {
    bulk_remaining_.fill(config_.bulk_capacity);
    info_ = wei::ModuleInfo{
        "barty",
        "RPL Barty",
        "peristaltic-pump liquid replenisher",
        {"fill_colors", "drain_colors", "refill_colors", "prime_tips"},
        /*robotic=*/true,
    };
}

support::Duration BartySim::estimate(const wei::ActionRequest& request) const {
    if (request.action == "fill_colors") return config_.timing.fill;
    if (request.action == "drain_colors") return config_.timing.drain;
    if (request.action == "prime_tips") return config_.timing.prime;
    return config_.timing.refill;
}

wei::ActionResult BartySim::fill() {
    json::Value pumped = json::Value::object();
    for (std::size_t dye = 0; dye < 4; ++dye) {
        des::Store& reservoir = reservoirs_[dye];
        const Volume space = reservoir.capacity() - reservoir.level();
        if (space > bulk_remaining_[dye]) {
            return wei::ActionResult::failure("barty: bulk vessel for '" +
                                              reservoir.name() + "' is exhausted");
        }
        reservoir.deposit(space);
        bulk_remaining_[dye] -= space;
        pumped.set(reservoir.name(), space.to_microliters());
    }
    json::Value data = json::Value::object();
    data.set("pumped_ul", std::move(pumped));
    return wei::ActionResult::success(std::move(data));
}

wei::ActionResult BartySim::drain() {
    for (des::Store& reservoir : reservoirs_) reservoir.drain();
    return wei::ActionResult::success();
}

wei::ActionResult BartySim::execute(const wei::ActionRequest& request) {
    if (request.action == "fill_colors") return fill();
    if (request.action == "drain_colors") return drain();
    if (request.action == "refill_colors") {
        const wei::ActionResult drained = drain();
        if (!drained.ok()) return drained;
        return fill();
    }
    if (request.action == "prime_tips") {
        if (on_prime_) on_prime_();
        return wei::ActionResult::success();
    }
    return wei::ActionResult::failure("barty: unknown action '" + request.action + "'");
}

}  // namespace sdl::devices
