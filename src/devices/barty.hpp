// barty — "a robot developed in RPL with four peristaltic pumps that
// transfer liquid from large storage vessels to the reservoirs of the
// ot2. Our application instructs barty to refill the ot2 reservoirs
// periodically so that experiments can run for extended periods" (§2.2).
#pragma once

#include <array>
#include <functional>

#include "des/resource.hpp"
#include "devices/timing.hpp"
#include "wei/module.hpp"

namespace sdl::devices {

struct BartyConfig {
    /// Bulk storage per dye (the "large storage vessels").
    support::Volume bulk_capacity = support::Volume::milliliters(500.0);
    BartyTiming timing;
};

/// Actions:
///   fill_colors    — pump every ot2 reservoir to capacity
///   drain_colors   — empty every ot2 reservoir
///   refill_colors  — drain then fill (fresh dye, no cross-contamination)
///   prime_tips     — back-flush the OT2 pipette tips (clears a clog)
class BartySim final : public wei::Module {
public:
    /// `reservoirs` are the target ot2's stores; barty borrows them.
    BartySim(BartyConfig config, std::array<des::Store, 4>& reservoirs);

    /// Wired by WorkcellRuntime: prime_tips calls this to clear the clog
    /// latch on every mounted OT2 (barty only knows pumps, not pipettes).
    void set_prime_hook(std::function<void()> hook) { on_prime_ = std::move(hook); }

    [[nodiscard]] const wei::ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] support::Duration estimate(const wei::ActionRequest& request) const override;
    [[nodiscard]] wei::ActionResult execute(const wei::ActionRequest& request) override;

    [[nodiscard]] support::Volume bulk_remaining(std::size_t dye) const {
        return bulk_remaining_.at(dye);
    }

private:
    wei::ActionResult fill();
    wei::ActionResult drain();

    BartyConfig config_;
    std::array<des::Store, 4>& reservoirs_;
    std::array<support::Volume, 4> bulk_remaining_;
    std::function<void()> on_prime_;
    wei::ModuleInfo info_;
};

}  // namespace sdl::devices
