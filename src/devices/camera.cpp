#include "devices/camera.hpp"

#include "support/common.hpp"

namespace sdl::devices {

namespace json = support::json;

CameraSim::CameraSim(CameraConfig config, wei::PlateRegistry& plates,
                     wei::LocationMap& locations)
    : config_(std::move(config)),
      plates_(plates),
      locations_(locations),
      rng_(config_.noise_seed) {
    info_ = wei::ModuleInfo{
        "camera",
        "Logitech webcam + ring light",
        "plate imaging station",
        {"take_picture"},
        /*robotic=*/false,  // a sensor: its reads are not robotic commands
    };
}

support::Duration CameraSim::estimate(const wei::ActionRequest& request) const {
    (void)request;
    return config_.timing.capture;
}

wei::ActionResult CameraSim::execute(const wei::ActionRequest& request) {
    if (request.action != "take_picture") {
        return wei::ActionResult::failure("camera: unknown action '" + request.action + "'");
    }
    const auto plate_id = locations_.peek(config_.nest_location);
    if (!plate_id.has_value()) {
        return wei::ActionResult::failure("camera: no plate on the nest");
    }
    const wei::Plate& plate = plates_.get(*plate_id);

    // Scene geometry follows the plate dimensions (dense 384/1536 formats
    // shrink the pitch and upscale the frame); everything else (marker
    // pose, noise, lighting) comes from the configured scene.
    imaging::PlateScene scene =
        imaging::scene_for_plate(config_.scene, plate.rows(), plate.cols());

    // Ring-light warm-up: the shading gradient drifts a little with every
    // frame captured so far.
    const bool drifted = config_.drift_per_frame != 0.0;
    if (drifted) {
        scene.illum_gradient.x +=
            config_.drift_per_frame * static_cast<double>(next_frame_id_ - 1);
    }

    // Glitched frame: the fiducial is occluded (moved far out of frame),
    // making the image undecodable downstream.
    const bool glitched = rng_.bernoulli(config_.glitch_prob);
    if (glitched) {
        scene.marker_center = {-10000.0, -10000.0};
    }

    std::vector<color::Rgb8> colors(static_cast<std::size_t>(plate.capacity()),
                                    color::Rgb8{0, 0, 0});
    std::vector<bool> filled(static_cast<std::size_t>(plate.capacity()), false);
    for (int well = 0; well < plate.capacity(); ++well) {
        if (plate.is_filled(well)) {
            const auto idx = static_cast<std::size_t>(well);
            colors[idx] = plate.content(well).true_color;
            filled[idx] = true;
        }
    }

    const std::int64_t frame_id = next_frame_id_++;
    // Glitched scenes (marker moved) would evict the base cache twice per
    // glitch, and drifted scenes change every frame, so the cache could
    // never hit; render both one-shot. Either path produces
    // bitwise-identical frames.
    if (config_.cache_base_raster && !glitched && !drifted) {
        frames_.emplace(frame_id, renderer_.render(scene, colors, rng_, &filled));
    } else {
        frames_.emplace(frame_id, imaging::render_plate(scene, colors, rng_, &filled));
    }
    while (frames_.size() > config_.max_frames) {
        frames_.erase(frames_.begin());  // evict the oldest frame
    }

    json::Value data = json::Value::object();
    data.set("frame_id", frame_id);
    data.set("plate_id", *plate_id);
    data.set("wells_filled", plate.filled_count());
    data.set("glitched", glitched);  // ground truth for tests; the real
                                     // pipeline must detect this itself
    return wei::ActionResult::success(std::move(data));
}

const imaging::Image& CameraSim::frame(std::int64_t frame_id) const {
    const auto it = frames_.find(frame_id);
    if (it == frames_.end()) {
        throw support::Error("device", "camera frame " + std::to_string(frame_id) +
                                           " not available (evicted or never captured)");
    }
    return it->second;
}

}  // namespace sdl::devices
