// camera — "a Logitech webcam mounted with a ring light that is used to
// capture images of the microplate. This module incorporates a microplate
// mount designed to allow the pf400 to place the microplate in the same
// location each time" (§2.2).
//
// The simulated camera renders the plate currently sitting on its nest
// with the synthetic scene renderer (sensor noise, vignetting, lighting
// gradient) and archives the frame; the application retrieves frames by
// id and runs the §2.4 vision pipeline on them — the full code path a
// real webcam would feed.
#pragma once

#include <map>

#include "devices/timing.hpp"
#include "imaging/plate_render.hpp"
#include "support/random.hpp"
#include "wei/module.hpp"
#include "wei/plate.hpp"

namespace sdl::devices {

struct CameraConfig {
    imaging::PlateScene scene;  ///< geometry + nuisances; rows/cols follow the plate
    std::uint64_t noise_seed = 0xCA3E7A;
    CameraTiming timing;
    /// Nest location photographed by this camera.
    std::string nest_location = wei::locations::kCamera;
    /// Frames retained in the ring buffer (raw images are big).
    std::size_t max_frames = 16;
    /// Probability that a frame is unusable (fiducial occluded — e.g. the
    /// arm's shadow or a reflection). The capture *succeeds* at the
    /// device level; the vision pipeline discovers the problem and the
    /// application retakes the photo.
    double glitch_prob = 0.0;
    /// Per-frame growth of the horizontal illumination gradient: the ring
    /// light warms up over a campaign, slowly tilting the shading the
    /// vision pipeline has to read colors through. Frame 1 is undrifted.
    double drift_per_frame = 0.0;
    /// Reuse the deterministic background+plate raster across captures of
    /// an unchanged scene (imaging::PlateRenderer). Frames are bitwise
    /// identical either way; the flag exists for identity tests and
    /// benchmarks.
    bool cache_base_raster = true;
};

/// Actions:
///   take_picture — renders the plate on the nest; returns {frame_id,
///                  plate_id} in the result data.
class CameraSim final : public wei::Module {
public:
    CameraSim(CameraConfig config, wei::PlateRegistry& plates,
              wei::LocationMap& locations);

    [[nodiscard]] const wei::ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] support::Duration estimate(const wei::ActionRequest& request) const override;
    [[nodiscard]] wei::ActionResult execute(const wei::ActionRequest& request) override;

    /// Retrieves an archived frame; throws Error("device") for evicted or
    /// unknown ids.
    [[nodiscard]] const imaging::Image& frame(std::int64_t frame_id) const;

    [[nodiscard]] const imaging::PlateScene& scene() const noexcept { return config_.scene; }
    [[nodiscard]] std::int64_t frames_captured() const noexcept { return next_frame_id_ - 1; }

private:
    CameraConfig config_;
    wei::PlateRegistry& plates_;
    wei::LocationMap& locations_;
    wei::ModuleInfo info_;
    support::Rng rng_;
    imaging::PlateRenderer renderer_;  ///< base-raster cache across captures
    std::map<std::int64_t, imaging::Image> frames_;
    std::int64_t next_frame_id_ = 1;
};

}  // namespace sdl::devices
