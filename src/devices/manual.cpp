#include "devices/manual.hpp"

#include "support/common.hpp"

namespace sdl::devices {

namespace json = support::json;
using support::Volume;

ManualOperatorSim::ManualOperatorSim(ManualConfig config, wei::PlateRegistry& plates,
                                     wei::LocationMap& locations,
                                     std::array<des::Store, 4>* reservoirs)
    : config_(std::move(config)),
      plates_(plates),
      locations_(locations),
      reservoirs_(reservoirs) {
    std::vector<std::string> actions;
    if (config_.stand_in_for == "sciclops") {
        actions = {"get_plate", "status"};
    } else if (config_.stand_in_for == "pf400") {
        actions = {"transfer"};
    } else if (config_.stand_in_for == "barty") {
        support::check(reservoirs_ != nullptr,
                       "manual barty stand-in needs the ot2 reservoirs");
        actions = {"fill_colors", "drain_colors", "refill_colors", "prime_tips"};
    } else {
        throw support::ConfigError("manual operator can stand in for sciclops, pf400 "
                                   "or barty, not '" + config_.stand_in_for + "'");
    }
    info_ = wei::ModuleInfo{
        config_.stand_in_for,
        "Human operator",
        "manual stand-in for the absent " + config_.stand_in_for,
        std::move(actions),
        /*robotic=*/false,  // CCWH counts commands completed *without* humans
    };
}

support::Duration ManualOperatorSim::estimate(const wei::ActionRequest& request) const {
    // A status check is a glance, not a fetch — but it still scales with
    // the operator's pace so a spec's timing_scale covers every action.
    if (request.action == "status") return config_.handling * 0.025;
    return config_.handling;
}

wei::ActionResult ManualOperatorSim::get_plate() {
    if (locations_.peek(wei::locations::kExchange).has_value()) {
        return wei::ActionResult::failure("manual: exchange nest is occupied");
    }
    const wei::PlateId id = plates_.create(config_.plate_rows, config_.plate_cols);
    locations_.place(wei::locations::kExchange, id);
    json::Value data = json::Value::object();
    data.set("plate_id", id);
    return wei::ActionResult::success(std::move(data));
}

wei::ActionResult ManualOperatorSim::transfer(const wei::ActionRequest& request) {
    const std::string source = request.args.get_or("source", std::string(""));
    const std::string target = request.args.get_or("target", std::string(""));
    if (source.empty() || target.empty()) {
        return wei::ActionResult::failure("manual: transfer needs 'source' and 'target'");
    }
    try {
        if (!locations_.peek(source).has_value()) {
            return wei::ActionResult::failure("manual: no plate at '" + source + "'");
        }
        if (target != wei::locations::kTrash && locations_.peek(target).has_value()) {
            return wei::ActionResult::failure("manual: target '" + target +
                                              "' is occupied");
        }
        const wei::PlateId id = locations_.take(source);
        locations_.place(target, id);
        json::Value data = json::Value::object();
        data.set("plate_id", id);
        data.set("source", source);
        data.set("target", target);
        return wei::ActionResult::success(std::move(data));
    } catch (const support::Error& e) {
        return wei::ActionResult::failure(std::string("manual: ") + e.what());
    }
}

wei::ActionResult ManualOperatorSim::fill() {
    // Dye is poured from bench-side bottles; unlike barty's bulk vessels
    // they never run out (the human fetches more).
    json::Value poured = json::Value::object();
    for (des::Store& reservoir : *reservoirs_) {
        const Volume space = reservoir.capacity() - reservoir.level();
        reservoir.deposit(space);
        poured.set(reservoir.name(), space.to_microliters());
    }
    json::Value data = json::Value::object();
    data.set("poured_ul", std::move(poured));
    return wei::ActionResult::success(std::move(data));
}

wei::ActionResult ManualOperatorSim::execute(const wei::ActionRequest& request) {
    ++actions_performed_;
    if (request.action == "status") {
        return wei::ActionResult::success();
    }
    if (request.action == "get_plate") return get_plate();
    if (request.action == "transfer") return transfer(request);
    if (request.action == "prime_tips") {
        if (on_prime_) on_prime_();
        return wei::ActionResult::success();
    }
    const bool fluid_action = request.action == "fill_colors" ||
                              request.action == "drain_colors" ||
                              request.action == "refill_colors";
    if (fluid_action && reservoirs_ == nullptr) {
        return wei::ActionResult::failure("manual (" + config_.stand_in_for +
                                          "): no reservoirs to pour into");
    }
    if (request.action == "fill_colors") return fill();
    if (request.action == "drain_colors") {
        for (des::Store& reservoir : *reservoirs_) reservoir.drain();
        return wei::ActionResult::success();
    }
    if (request.action == "refill_colors") {
        for (des::Store& reservoir : *reservoirs_) reservoir.drain();
        return fill();
    }
    return wei::ActionResult::failure("manual (" + config_.stand_in_for +
                                      "): unknown action '" + request.action + "'");
}

}  // namespace sdl::devices
