// manual — a human operator standing in for an absent handling device.
//
// Minimal workcells (see core/scenarios.hpp: the `minimal` scenario is
// camera + OT2 only) still run the unchanged Figure-2 workflows: a
// ManualOperatorSim is registered under the missing device's module name
// ("sciclops", "pf400" or "barty") and answers its actions — fetching a
// plate from storage, carrying it between nests, pouring dye into the
// reservoirs. Every action takes the configured handling time and is
// *not* robotic: the paper's CCWH metric counts instrument commands
// completed without human input, so manual steps are excluded from it by
// the ModuleInfo::robotic flag, and minimal workcells naturally report a
// lower CCWH for the same experiment.
#pragma once

#include <array>
#include <functional>

#include "des/resource.hpp"
#include "devices/timing.hpp"
#include "wei/module.hpp"
#include "wei/plate.hpp"

namespace sdl::devices {

struct ManualConfig {
    /// Module name this operator answers for: sciclops | pf400 | barty.
    std::string stand_in_for = "pf400";
    /// Time per handling action (fetch, carry, pour).
    support::Duration handling = support::Duration::seconds(20.0);
    /// Plate format fetched by get_plate (the sciclops role).
    int plate_rows = 8;
    int plate_cols = 12;
};

/// Actions (the union of the replaced devices' surfaces; advertised per
/// role):
///   get_plate / status            — sciclops role; plates are fetched
///                                   from an unlimited bench-side stack
///   transfer                      — pf400 role, same args/semantics
///   fill_colors / drain_colors / refill_colors — barty role; dye is
///                                   poured from bottles, never exhausted
///   prime_tips                    — barty role; the human back-flushes
///                                   the OT2 tips by hand (non-robotic,
///                                   so it is excluded from CCWH)
class ManualOperatorSim final : public wei::Module {
public:
    /// `reservoirs` may be null unless the role is barty.
    ManualOperatorSim(ManualConfig config, wei::PlateRegistry& plates,
                      wei::LocationMap& locations,
                      std::array<des::Store, 4>* reservoirs);

    [[nodiscard]] const wei::ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] support::Duration estimate(const wei::ActionRequest& request) const override;
    [[nodiscard]] wei::ActionResult execute(const wei::ActionRequest& request) override;

    [[nodiscard]] std::uint64_t actions_performed() const noexcept {
        return actions_performed_;
    }

    /// Wired by WorkcellRuntime for the barty role: prime_tips calls this
    /// to clear the clog latch on every mounted OT2.
    void set_prime_hook(std::function<void()> hook) { on_prime_ = std::move(hook); }

private:
    [[nodiscard]] wei::ActionResult get_plate();
    [[nodiscard]] wei::ActionResult transfer(const wei::ActionRequest& request);
    [[nodiscard]] wei::ActionResult fill();

    ManualConfig config_;
    wei::PlateRegistry& plates_;
    wei::LocationMap& locations_;
    std::array<des::Store, 4>* reservoirs_;
    std::function<void()> on_prime_;
    wei::ModuleInfo info_;
    std::uint64_t actions_performed_ = 0;
};

}  // namespace sdl::devices
