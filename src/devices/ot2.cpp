#include "devices/ot2.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::devices {

namespace json = support::json;
using support::Volume;

Ot2Sim::Ot2Sim(Ot2Config config, wei::PlateRegistry& plates, wei::LocationMap& locations)
    : config_(config),
      plates_(plates),
      locations_(locations),
      mixer_(color::DyeLibrary::cmyk()),
      reservoirs_{des::Store(config.reservoir_capacity, config.reservoir_initial, "cyan"),
                  des::Store(config.reservoir_capacity, config.reservoir_initial, "magenta"),
                  des::Store(config.reservoir_capacity, config.reservoir_initial, "yellow"),
                  des::Store(config.reservoir_capacity, config.reservoir_initial, "black")},
      rng_(config.noise_seed),
      clog_rng_(config.noise_seed ^ 0xC106C106C106ULL) {
    info_ = wei::ModuleInfo{
        config_.name,
        "Opentrons OT-2",
        "automatic pipetting device with four dye reservoirs",
        {"run_protocol"},
        /*robotic=*/true,
    };
}

support::Duration Ot2Sim::estimate(const wei::ActionRequest& request) const {
    std::size_t n_wells = 0;
    if (const json::Value* d = request.args.find("dispenses")) {
        if (d->is_array()) n_wells = d->as_array().size();
    }
    return config_.timing.protocol_overhead +
           config_.timing.per_well * static_cast<double>(n_wells);
}

bool Ot2Sim::can_cover(std::span<const DispenseOrder> orders) const noexcept {
    std::array<double, 4> needed_ul{0, 0, 0, 0};
    for (const DispenseOrder& order : orders) {
        for (std::size_t dye = 0; dye < 4; ++dye) {
            needed_ul[dye] += order.volumes[dye].to_microliters();
        }
    }
    for (std::size_t dye = 0; dye < 4; ++dye) {
        // Head-room factor covers pipetting-noise overshoot.
        if (Volume::microliters(needed_ul[dye] * 1.1) > reservoirs_[dye].level()) {
            return false;
        }
    }
    return true;
}

json::Value Ot2Sim::make_protocol_args(std::span<const DispenseOrder> orders) {
    json::Value args = json::Value::object();
    args.set("protocol", "mix_colors");
    json::Value dispenses = json::Value::array();
    for (const DispenseOrder& order : orders) {
        json::Value node = json::Value::object();
        node.set("well", order.well);
        json::Value volumes = json::Value::array();
        for (const Volume v : order.volumes) volumes.push_back(v.to_microliters());
        node.set("volumes_ul", std::move(volumes));
        dispenses.push_back(std::move(node));
    }
    args.set("dispenses", std::move(dispenses));
    return args;
}

std::vector<DispenseOrder> Ot2Sim::parse_protocol_args(const json::Value& args) {
    std::vector<DispenseOrder> orders;
    const json::Value* dispenses = args.find("dispenses");
    if (dispenses == nullptr || !dispenses->is_array()) {
        throw support::Error("device", "ot2 protocol args need a 'dispenses' array");
    }
    for (const json::Value& node : dispenses->as_array()) {
        DispenseOrder order;
        order.well = static_cast<int>(node.at("well").as_int());
        const json::Array& volumes = node.at("volumes_ul").as_array();
        if (volumes.size() != 4) {
            throw support::Error("device", "ot2 dispense needs exactly 4 volumes");
        }
        for (std::size_t dye = 0; dye < 4; ++dye) {
            order.volumes[dye] = Volume::microliters(volumes[dye].as_double());
        }
        orders.push_back(order);
    }
    return orders;
}

wei::ActionResult Ot2Sim::execute(const wei::ActionRequest& request) {
    if (request.action != "run_protocol") {
        return wei::ActionResult::failure(config_.name + ": unknown action '" +
                                          request.action + "'");
    }
    const std::string protocol = request.args.get_or("protocol", std::string(""));
    if (protocol != "mix_colors") {
        return wei::ActionResult::failure(config_.name + ": unknown protocol '" + protocol +
                                          "'");
    }

    if (needs_prime_) {
        return wei::ActionResult::failure(config_.name +
                                          ": pipette tip clogged — run prime_tips "
                                          "before the next protocol");
    }

    const auto plate_id = locations_.peek(config_.deck_location);
    if (!plate_id.has_value()) {
        return wei::ActionResult::failure(config_.name + ": no plate on the deck");
    }
    wei::Plate& plate = plates_.get(*plate_id);

    std::vector<DispenseOrder> orders;
    try {
        orders = parse_protocol_args(request.args);
    } catch (const support::Error& e) {
        return wei::ActionResult::failure(e.what());
    }

    // Validate everything before touching state so a failed protocol
    // leaves the plate and the reservoirs unchanged.
    for (const DispenseOrder& order : orders) {
        if (order.well < 0 || order.well >= plate.capacity()) {
            return wei::ActionResult::failure(config_.name + ": well index out of range");
        }
        if (plate.is_filled(order.well)) {
            return wei::ActionResult::failure(config_.name + ": well " +
                                              std::to_string(order.well) +
                                              " already contains a sample");
        }
    }
    if (!can_cover(orders)) {
        return wei::ActionResult::failure(config_.name +
                                          ": insufficient reservoir volume (needs refill)");
    }

    json::Value mixed = json::Value::array();
    for (const DispenseOrder& order : orders) {
        wei::WellContent content;
        for (std::size_t dye = 0; dye < 4; ++dye) {
            const double requested = order.volumes[dye].to_microliters();
            double actual = 0.0;
            if (requested > 0.0) {
                // Proportional CV plus absolute floor, truncated at zero.
                actual = requested * (1.0 + rng_.normal(0.0, config_.dispense_cv)) +
                         rng_.normal(0.0, config_.dispense_sigma_ul);
                actual = std::max(actual, 0.0);
            }
            if (!reservoirs_[dye].try_withdraw(Volume::microliters(actual))) {
                return wei::ActionResult::failure(config_.name + ": reservoir '" +
                                                  reservoirs_[dye].name() +
                                                  "' ran dry mid-protocol");
            }
            content.volumes[dye] = Volume::microliters(actual);
        }
        if (config_.dye_drift_per_well > 0.0) {
            // Evaporation concentrates the dyes: the optical path grows a
            // little with every well mixed so far. The solver keeps the
            // undrifted model — that mismatch is the point.
            const double path =
                1.0 + config_.dye_drift_per_well * static_cast<double>(wells_mixed_);
            content.true_color =
                color::BeerLambertMixer(mixer_.library(), path).mix(content.volumes);
        } else {
            content.true_color = mixer_.mix(content.volumes);
        }
        plate.fill(order.well, content);
        ++wells_mixed_;

        json::Value entry = json::Value::object();
        entry.set("well", order.well);
        entry.set("color", content.true_color.str());
        mixed.push_back(std::move(entry));
    }

    // Roll the clog chain only when enabled, after a *successful*
    // protocol (a clog is left behind by real pipetting work).
    if (config_.clog_prob > 0.0 && clog_rng_.bernoulli(config_.clog_prob)) {
        needs_prime_ = true;
    }

    json::Value data = json::Value::object();
    data.set("plate_id", *plate_id);
    data.set("wells_mixed", static_cast<std::int64_t>(orders.size()));
    data.set("mixed", std::move(mixed));
    return wei::ActionResult::success(std::move(data));
}

}  // namespace sdl::devices
