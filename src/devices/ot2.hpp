// ot2 — "an automatic pipetting device that contains four separate color
// reservoirs and a set of pipette tips. Once the pf400 has delivered a
// plate to the ot2 deck, it mixes liquids in the proportions set by the
// optimization algorithm to generate new sample colors" (§2.2).
//
// The simulated chemistry: requested volumes are perturbed by pipetting
// noise (proportional CV plus an absolute floor), withdrawn from the
// reservoirs, and the resulting ground-truth color computed with the
// Beer–Lambert mixer. Reservoir underflow is a hard device failure, which
// the application resolves by scheduling barty's replenish workflow.
#pragma once

#include <array>

#include "color/mixing.hpp"
#include "des/resource.hpp"
#include "devices/timing.hpp"
#include "support/random.hpp"
#include "wei/module.hpp"
#include "wei/plate.hpp"

namespace sdl::devices {

struct Ot2Config {
    /// Reservoir capacity per dye.
    support::Volume reservoir_capacity = support::Volume::milliliters(25.0);
    /// Initial level (the workcell starts drained; barty fills on newplate).
    support::Volume reservoir_initial = support::Volume::zero();
    /// Proportional pipetting error (coefficient of variation).
    double dispense_cv = 0.02;
    /// Absolute pipetting error floor in µL.
    double dispense_sigma_ul = 0.4;
    /// Probability that a completed protocol leaves a pipette tip clogged.
    /// A clogged OT2 rejects every further run_protocol until barty (or
    /// the manual stand-in) runs prime_tips — the fault *chain* generated
    /// scenarios exercise. Rolled on its own rng stream so enabling it
    /// never perturbs the dispense-noise draws.
    double clog_prob = 0.0;
    /// Per-well growth of the Beer–Lambert optical path length: dyes
    /// concentrate as solvent evaporates over a campaign, so late wells
    /// read slightly darker than the solver's model predicts.
    double dye_drift_per_well = 0.0;
    std::uint64_t noise_seed = 0x07B2;
    Ot2Timing timing;
    /// Module instance name (so workcells can mount several OT2s, the
    /// paper's §4 "integrating additional OT2s" extension).
    std::string name = "ot2";
    /// Deck location this instance loads plates from.
    std::string deck_location = wei::locations::kOt2Deck;
};

/// One dispense order: well index plus the four dye volumes in µL.
struct DispenseOrder {
    int well = 0;
    std::array<support::Volume, 4> volumes{};
};

/// Actions:
///   run_protocol — args {protocol: "mix_colors",
///                        dispenses: [{well, volumes_ul: [c, m, y, k]}]}
///                  mixes every listed well on the plate at the deck.
class Ot2Sim final : public wei::Module {
public:
    Ot2Sim(Ot2Config config, wei::PlateRegistry& plates, wei::LocationMap& locations);

    [[nodiscard]] const wei::ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] support::Duration estimate(const wei::ActionRequest& request) const override;
    [[nodiscard]] wei::ActionResult execute(const wei::ActionRequest& request) override;

    /// Reservoirs are exposed so barty (and tests) can pump them.
    [[nodiscard]] std::array<des::Store, 4>& reservoirs() noexcept { return reservoirs_; }
    [[nodiscard]] const std::array<des::Store, 4>& reservoirs() const noexcept {
        return reservoirs_;
    }

    /// True when every reservoir can cover `volumes` for all orders.
    [[nodiscard]] bool can_cover(std::span<const DispenseOrder> orders) const noexcept;

    [[nodiscard]] const color::BeerLambertMixer& mixer() const noexcept { return mixer_; }
    [[nodiscard]] std::uint64_t wells_mixed() const noexcept { return wells_mixed_; }

    /// True when a clogged tip blocks the next protocol (see clog_prob).
    [[nodiscard]] bool needs_prime() const noexcept { return needs_prime_; }
    /// Clears a clog; invoked by barty's / the manual stand-in's prime_tips.
    void prime_tips() noexcept { needs_prime_ = false; }

    /// Builds the run_protocol args payload for a batch of orders.
    [[nodiscard]] static support::json::Value make_protocol_args(
        std::span<const DispenseOrder> orders);

    /// Parses the args payload back into orders (throws on malformed input).
    [[nodiscard]] static std::vector<DispenseOrder> parse_protocol_args(
        const support::json::Value& args);

private:
    Ot2Config config_;
    wei::PlateRegistry& plates_;
    wei::LocationMap& locations_;
    wei::ModuleInfo info_;
    color::BeerLambertMixer mixer_;
    std::array<des::Store, 4> reservoirs_;
    support::Rng rng_;
    support::Rng clog_rng_;  ///< clog chain stream, decoupled from noise
    std::uint64_t wells_mixed_ = 0;
    bool needs_prime_ = false;
};

}  // namespace sdl::devices
