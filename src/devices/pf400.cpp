#include "devices/pf400.hpp"

#include "support/common.hpp"

namespace sdl::devices {

Pf400Sim::Pf400Sim(Pf400Config config, wei::LocationMap& locations)
    : config_(config), locations_(locations) {
    info_ = wei::ModuleInfo{
        "pf400",
        "Precise Automation PF400",
        "rail-mounted plate manipulator arm",
        {"transfer"},
        /*robotic=*/true,
    };
}

support::Duration Pf400Sim::estimate(const wei::ActionRequest& request) const {
    (void)request;
    return config_.timing.transfer;
}

wei::ActionResult Pf400Sim::execute(const wei::ActionRequest& request) {
    if (request.action != "transfer") {
        return wei::ActionResult::failure("pf400: unknown action '" + request.action + "'");
    }
    const std::string source = request.args.get_or("source", std::string(""));
    const std::string target = request.args.get_or("target", std::string(""));
    if (source.empty() || target.empty()) {
        return wei::ActionResult::failure("pf400: transfer needs 'source' and 'target'");
    }
    try {
        if (!locations_.peek(source).has_value()) {
            return wei::ActionResult::failure("pf400: no plate at '" + source + "'");
        }
        if (target != wei::locations::kTrash && locations_.peek(target).has_value()) {
            return wei::ActionResult::failure("pf400: target '" + target + "' is occupied");
        }
        const wei::PlateId id = locations_.take(source);
        locations_.place(target, id);
        ++transfers_completed_;

        support::json::Value data = support::json::Value::object();
        data.set("plate_id", id);
        data.set("source", source);
        data.set("target", target);
        return wei::ActionResult::success(std::move(data));
    } catch (const support::Error& e) {
        return wei::ActionResult::failure(std::string("pf400: ") + e.what());
    }
}

}  // namespace sdl::devices
