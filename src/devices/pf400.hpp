// pf400 — "the workcell's manipulator, a robotic arm used to transfer
// microplates between different plate stations. Operating on a rail
// mechanism, this robot acts as the central transportation unit within
// the workcell" (§2.2).
#pragma once

#include "devices/timing.hpp"
#include "wei/module.hpp"
#include "wei/plate.hpp"

namespace sdl::devices {

struct Pf400Config {
    Pf400Timing timing;
};

/// Actions:
///   transfer — args {source: <location>, target: <location>}; picks the
///              plate at `source` and places it at `target`. Placing on
///              "trash" disposes of the plate.
class Pf400Sim final : public wei::Module {
public:
    Pf400Sim(Pf400Config config, wei::LocationMap& locations);

    [[nodiscard]] const wei::ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] support::Duration estimate(const wei::ActionRequest& request) const override;
    [[nodiscard]] wei::ActionResult execute(const wei::ActionRequest& request) override;

    [[nodiscard]] std::uint64_t transfers_completed() const noexcept {
        return transfers_completed_;
    }

private:
    Pf400Config config_;
    wei::LocationMap& locations_;
    wei::ModuleInfo info_;
    std::uint64_t transfers_completed_ = 0;
};

}  // namespace sdl::devices
