#include "devices/sciclops.hpp"

#include "support/common.hpp"

namespace sdl::devices {

SciclopsSim::SciclopsSim(SciclopsConfig config, wei::PlateRegistry& plates,
                         wei::LocationMap& locations)
    : config_(config), plates_(plates), locations_(locations) {
    support::check(config.towers > 0 && config.plates_per_tower > 0,
                   "sciclops needs at least one stocked tower");
    plates_remaining_ = config.towers * config.plates_per_tower;
    info_ = wei::ModuleInfo{
        "sciclops",
        "Hudson SciClops",
        "microplate storage and staging system",
        {"get_plate", "status"},
        /*robotic=*/true,
    };
}

support::Duration SciclopsSim::estimate(const wei::ActionRequest& request) const {
    if (request.action == "get_plate") return config_.timing.get_plate;
    return config_.timing.status;
}

wei::ActionResult SciclopsSim::execute(const wei::ActionRequest& request) {
    if (request.action == "status") {
        support::json::Value data = support::json::Value::object();
        data.set("plates_remaining", plates_remaining_);
        return wei::ActionResult::success(std::move(data));
    }
    if (request.action != "get_plate") {
        return wei::ActionResult::failure("sciclops: unknown action '" + request.action + "'");
    }
    if (plates_remaining_ <= 0) {
        return wei::ActionResult::failure("sciclops: storage towers are empty");
    }
    if (locations_.peek(wei::locations::kExchange).has_value()) {
        return wei::ActionResult::failure("sciclops: exchange nest is occupied");
    }
    const wei::PlateId id = plates_.create(config_.plate_rows, config_.plate_cols);
    locations_.place(wei::locations::kExchange, id);
    --plates_remaining_;

    support::json::Value data = support::json::Value::object();
    data.set("plate_id", id);
    data.set("plates_remaining", plates_remaining_);
    return wei::ActionResult::success(std::move(data));
}

}  // namespace sdl::devices
