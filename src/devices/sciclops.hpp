// sciclops — "the Hudson SciClops Microplate Handler, a microplate
// storage and staging system that can access multiple storage towers,
// facilitating the housing of plates" (§2.2).
//
// Simulated behaviour: dispenses fresh plates from its towers onto the
// exchange nest, where the pf400 picks them up.
#pragma once

#include "devices/timing.hpp"
#include "wei/module.hpp"
#include "wei/plate.hpp"

namespace sdl::devices {

struct SciclopsConfig {
    int towers = 4;
    int plates_per_tower = 20;
    int plate_rows = 8;
    int plate_cols = 12;
    SciclopsTiming timing;
};

/// Actions:
///   get_plate  — take a plate from a tower, place it on sciclops.exchange
///   status     — report remaining plate inventory
class SciclopsSim final : public wei::Module {
public:
    SciclopsSim(SciclopsConfig config, wei::PlateRegistry& plates,
                wei::LocationMap& locations);

    [[nodiscard]] const wei::ModuleInfo& info() const noexcept override { return info_; }
    [[nodiscard]] support::Duration estimate(const wei::ActionRequest& request) const override;
    [[nodiscard]] wei::ActionResult execute(const wei::ActionRequest& request) override;

    [[nodiscard]] int plates_remaining() const noexcept { return plates_remaining_; }

private:
    SciclopsConfig config_;
    wei::PlateRegistry& plates_;
    wei::LocationMap& locations_;
    wei::ModuleInfo info_;
    int plates_remaining_;
};

}  // namespace sdl::devices
