// Device timing models, calibrated against the paper's Table 1.
//
// For B=1, N=128 the paper reports: total 8 h 12 m, synthesis 5 h 10 m,
// transfer 3 h 2 m, uploads every ~3 m 48 s. Working backwards:
//   * transfer/iteration = 10,920 s / 128  = 85.3 s  -> 42.65 s per pf400 move
//     (two moves per mix iteration: camera -> ot2 -> camera);
//   * synthesis/iteration = 18,600 s / 128 = 145.3 s -> 110.3 s protocol
//     overhead (deck homing, tip handling) + 35.0 s per well (4 dyes x
//     ~8.75 s aspirate/dispense each).
// Every constant is configurable so alternative workcells can be modeled.
#pragma once

#include "support/units.hpp"

namespace sdl::devices {

using support::Duration;

struct SciclopsTiming {
    Duration get_plate = Duration::seconds(20.0);  ///< tower pick + stage
    Duration status = Duration::seconds(0.5);
};

struct Pf400Timing {
    Duration transfer = Duration::seconds(42.65);  ///< one plate move
};

struct Ot2Timing {
    /// Fixed protocol cost: deck calibration, tip pickup/drop.
    Duration protocol_overhead = Duration::seconds(110.3);
    /// Marginal cost per well mixed (4 aspirate/dispense cycles).
    Duration per_well = Duration::seconds(35.0);
};

struct BartyTiming {
    Duration fill = Duration::seconds(45.0);    ///< pump reservoirs full
    Duration drain = Duration::seconds(25.0);   ///< empty reservoirs
    Duration refill = Duration::seconds(65.0);  ///< drain + fill cycle
    Duration prime = Duration::seconds(30.0);   ///< back-flush clogged tips
};

struct CameraTiming {
    Duration capture = Duration::seconds(1.5);  ///< focus + exposure + grab
};

}  // namespace sdl::devices
