#include "imaging/components.hpp"

#include <limits>
#include <utility>

namespace sdl::imaging {

Labeling label_components(const BinaryImage& mask, std::size_t min_area) {
    LabelScratch scratch;
    label_components(mask, min_area, scratch);
    return std::move(scratch.labeling);
}

void label_components(const BinaryImage& mask, std::size_t min_area,
                      LabelScratch& scratch) {
    const int width = mask.width();
    const int height = mask.height();
    Labeling& out = scratch.labeling;
    out.width = width;
    out.height = height;
    out.labels.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), -1);
    out.blobs.clear();

    auto label_ref = [&](int x, int y) -> std::int32_t& {
        return out.labels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                          static_cast<std::size_t>(x)];
    };

    std::vector<std::pair<int, int>>& stack = scratch.stack;
    for (int sy = 0; sy < height; ++sy) {
        for (int sx = 0; sx < width; ++sx) {
            if (!mask.at(sx, sy) || label_ref(sx, sy) != -1) continue;

            const auto current = static_cast<std::int32_t>(out.blobs.size());
            Blob blob;
            blob.label = current;
            blob.bbox = {sx, sy, sx + 1, sy + 1};
            double cx = 0.0, cy = 0.0;

            stack.clear();
            stack.emplace_back(sx, sy);
            label_ref(sx, sy) = current;
            while (!stack.empty()) {
                const auto [x, y] = stack.back();
                stack.pop_back();
                ++blob.area;
                cx += x;
                cy += y;
                blob.bbox.x0 = std::min(blob.bbox.x0, x);
                blob.bbox.y0 = std::min(blob.bbox.y0, y);
                blob.bbox.x1 = std::max(blob.bbox.x1, x + 1);
                blob.bbox.y1 = std::max(blob.bbox.y1, y + 1);
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        if (dx == 0 && dy == 0) continue;
                        const int nx = x + dx;
                        const int ny = y + dy;
                        if (nx < 0 || nx >= width || ny < 0 || ny >= height) continue;
                        if (!mask.at(nx, ny) || label_ref(nx, ny) != -1) continue;
                        label_ref(nx, ny) = current;
                        stack.emplace_back(nx, ny);
                    }
                }
            }

            if (blob.area < min_area) {
                // Erase the undersized component from the label plane.
                for (int y = blob.bbox.y0; y < blob.bbox.y1; ++y) {
                    for (int x = blob.bbox.x0; x < blob.bbox.x1; ++x) {
                        if (label_ref(x, y) == current) label_ref(x, y) = -1;
                    }
                }
                continue;
            }
            blob.centroid = {cx / static_cast<double>(blob.area),
                             cy / static_cast<double>(blob.area)};
            out.blobs.push_back(blob);
        }
    }

    // Component indices may have gaps after dropping small blobs; remap to
    // dense indices so labels match positions in `blobs`.
    std::vector<std::int32_t>& remap = scratch.remap;
    remap.assign(out.blobs.empty() ? 0 : static_cast<std::size_t>(out.blobs.back().label) + 1,
                 -1);
    for (std::size_t i = 0; i < out.blobs.size(); ++i) {
        remap[static_cast<std::size_t>(out.blobs[i].label)] = static_cast<std::int32_t>(i);
        out.blobs[i].label = static_cast<std::int32_t>(i);
    }
    for (auto& l : out.labels) {
        if (l >= 0) l = l < static_cast<std::int32_t>(remap.size()) ? remap[static_cast<std::size_t>(l)] : -1;
    }
}

std::vector<Vec2> boundary_pixels(const Labeling& labeling, std::int32_t blob_index) {
    std::vector<Vec2> boundary;
    boundary_pixels(labeling, blob_index, boundary);
    return boundary;
}

void boundary_pixels(const Labeling& labeling, std::int32_t blob_index,
                     std::vector<Vec2>& out) {
    out.clear();
    const Blob& blob = labeling.blobs.at(static_cast<std::size_t>(blob_index));
    for (int y = blob.bbox.y0; y < blob.bbox.y1; ++y) {
        for (int x = blob.bbox.x0; x < blob.bbox.x1; ++x) {
            if (labeling.label_at(x, y) != blob_index) continue;
            bool edge = false;
            for (int dy = -1; dy <= 1 && !edge; ++dy) {
                for (int dx = -1; dx <= 1 && !edge; ++dx) {
                    const int nx = x + dx;
                    const int ny = y + dy;
                    if (nx < 0 || nx >= labeling.width || ny < 0 || ny >= labeling.height ||
                        labeling.label_at(nx, ny) != blob_index) {
                        edge = true;
                    }
                }
            }
            if (edge) out.push_back({static_cast<double>(x), static_cast<double>(y)});
        }
    }
}

}  // namespace sdl::imaging
