// Connected-component labeling and blob statistics (marker candidates).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "imaging/geometry.hpp"
#include "imaging/image.hpp"

namespace sdl::imaging {

struct Blob {
    std::int32_t label = 0;
    std::size_t area = 0;
    Rect bbox;
    Vec2 centroid;
};

struct Labeling {
    /// -1 for background, otherwise index into `blobs`.
    std::vector<std::int32_t> labels;
    int width = 0;
    int height = 0;
    std::vector<Blob> blobs;

    [[nodiscard]] std::int32_t label_at(int x, int y) const noexcept {
        return labels[static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
                      static_cast<std::size_t>(x)];
    }
};

/// 8-connected component labeling via iterative flood fill (no recursion,
/// so arbitrarily large blobs are safe). Components smaller than
/// `min_area` are dropped (merged into background).
[[nodiscard]] Labeling label_components(const BinaryImage& mask, std::size_t min_area = 1);

/// Reusable labeling workspace: the label plane, blob list, and the
/// flood-fill stack all persist across frames.
struct LabelScratch {
    Labeling labeling;
    std::vector<std::pair<int, int>> stack;
    std::vector<std::int32_t> remap;
};

/// label_components into a persistent workspace; the result lives in
/// `scratch.labeling` (valid until the next call on the same scratch).
void label_components(const BinaryImage& mask, std::size_t min_area,
                      LabelScratch& scratch);

/// Pixels of `blob` that touch the background (its boundary), used for
/// corner extraction.
[[nodiscard]] std::vector<Vec2> boundary_pixels(const Labeling& labeling,
                                                std::int32_t blob_index);

/// boundary_pixels into a reusable vector (cleared, then filled).
void boundary_pixels(const Labeling& labeling, std::int32_t blob_index,
                     std::vector<Vec2>& out);

}  // namespace sdl::imaging
