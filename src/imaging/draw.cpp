#include "imaging/draw.hpp"

#include <algorithm>
#include <cmath>

namespace sdl::imaging {

namespace {

color::Rgb8 blend(color::Rgb8 under, color::Rgb8 over, double alpha) noexcept {
    auto mix = [alpha](std::uint8_t u, std::uint8_t o) {
        const double v = u * (1.0 - alpha) + o * alpha;
        return static_cast<std::uint8_t>(std::lround(v));
    };
    return {mix(under.r, over.r), mix(under.g, over.g), mix(under.b, over.b)};
}

/// Fraction of the 2x2 subsample grid of pixel (x, y) inside the disk.
double disk_coverage(int x, int y, Vec2 c, double r) noexcept {
    static constexpr double offsets[2] = {0.25, 0.75};
    int inside = 0;
    for (const double oy : offsets) {
        for (const double ox : offsets) {
            const double dx = x + ox - c.x;
            const double dy = y + oy - c.y;
            if (dx * dx + dy * dy <= r * r) ++inside;
        }
    }
    return inside / 4.0;
}

}  // namespace

void fill_rect(Image& img, Rect rect, color::Rgb8 c) {
    const Rect r = rect.clipped(img.width(), img.height());
    for (int y = r.y0; y < r.y1; ++y) {
        for (int x = r.x0; x < r.x1; ++x) {
            img.set_pixel(x, y, c);
        }
    }
}

void fill_circle(Image& img, Vec2 center, double radius, color::Rgb8 c) {
    const Rect box = Rect{static_cast<int>(std::floor(center.x - radius)) - 1,
                          static_cast<int>(std::floor(center.y - radius)) - 1,
                          static_cast<int>(std::ceil(center.x + radius)) + 2,
                          static_cast<int>(std::ceil(center.y + radius)) + 2}
                         .clipped(img.width(), img.height());
    for (int y = box.y0; y < box.y1; ++y) {
        for (int x = box.x0; x < box.x1; ++x) {
            const double cov = disk_coverage(x, y, center, radius);
            if (cov <= 0.0) continue;
            img.set_pixel(x, y, cov >= 1.0 ? c : blend(img.pixel(x, y), c, cov));
        }
    }
}

void fill_ring(Image& img, Vec2 center, double r_outer, double r_inner, color::Rgb8 c) {
    const Rect box = Rect{static_cast<int>(std::floor(center.x - r_outer)) - 1,
                          static_cast<int>(std::floor(center.y - r_outer)) - 1,
                          static_cast<int>(std::ceil(center.x + r_outer)) + 2,
                          static_cast<int>(std::ceil(center.y + r_outer)) + 2}
                         .clipped(img.width(), img.height());
    for (int y = box.y0; y < box.y1; ++y) {
        for (int x = box.x0; x < box.x1; ++x) {
            const double cov =
                disk_coverage(x, y, center, r_outer) - disk_coverage(x, y, center, r_inner);
            if (cov <= 0.0) continue;
            img.set_pixel(x, y, cov >= 1.0 ? c : blend(img.pixel(x, y), c, cov));
        }
    }
}

void fill_quad(Image& img, const Vec2 (&corners)[4], color::Rgb8 c) {
    double min_x = corners[0].x, max_x = corners[0].x;
    double min_y = corners[0].y, max_y = corners[0].y;
    for (const Vec2& p : corners) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    const Rect box = Rect{static_cast<int>(std::floor(min_x)), static_cast<int>(std::floor(min_y)),
                          static_cast<int>(std::ceil(max_x)) + 1,
                          static_cast<int>(std::ceil(max_y)) + 1}
                         .clipped(img.width(), img.height());

    // Determine consistent winding from the polygon's signed area.
    double area = 0.0;
    for (int i = 0; i < 4; ++i) {
        area += corners[i].cross(corners[(i + 1) % 4]);
    }
    const double sign = area >= 0.0 ? 1.0 : -1.0;

    for (int y = box.y0; y < box.y1; ++y) {
        for (int x = box.x0; x < box.x1; ++x) {
            const Vec2 p{x + 0.5, y + 0.5};
            bool inside = true;
            for (int i = 0; i < 4; ++i) {
                const Vec2 a = corners[i];
                const Vec2 b = corners[(i + 1) % 4];
                if (sign * (b - a).cross(p - a) < 0.0) {
                    inside = false;
                    break;
                }
            }
            if (inside) img.set_pixel(x, y, c);
        }
    }
}

void draw_line(Image& img, Vec2 a, Vec2 b, color::Rgb8 c) {
    int x0 = static_cast<int>(std::lround(a.x));
    int y0 = static_cast<int>(std::lround(a.y));
    const int x1 = static_cast<int>(std::lround(b.x));
    const int y1 = static_cast<int>(std::lround(b.y));
    const int dx = std::abs(x1 - x0);
    const int dy = -std::abs(y1 - y0);
    const int sx = x0 < x1 ? 1 : -1;
    const int sy = y0 < y1 ? 1 : -1;
    int err = dx + dy;
    for (;;) {
        if (img.in_bounds(x0, y0)) img.set_pixel(x0, y0, c);
        if (x0 == x1 && y0 == y1) break;
        const int e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

void draw_circle(Image& img, Vec2 center, double radius, color::Rgb8 c) {
    const int steps = std::max(16, static_cast<int>(radius * 8));
    for (int i = 0; i < steps; ++i) {
        const double t = 2.0 * 3.14159265358979323846 * i / steps;
        const int x = static_cast<int>(std::lround(center.x + radius * std::cos(t)));
        const int y = static_cast<int>(std::lround(center.y + radius * std::sin(t)));
        if (img.in_bounds(x, y)) img.set_pixel(x, y, c);
    }
}

}  // namespace sdl::imaging
