// Rasterization primitives used by the synthetic plate renderer.
#pragma once

#include "imaging/geometry.hpp"
#include "imaging/image.hpp"

namespace sdl::imaging {

/// Fills an axis-aligned rectangle (clipped to the image).
void fill_rect(Image& img, Rect rect, color::Rgb8 c);

/// Fills a disk with 2x2 supersampled edge coverage (soft antialiasing so
/// Hough sees realistic gradients rather than staircase edges).
void fill_circle(Image& img, Vec2 center, double radius, color::Rgb8 c);

/// Fills an annulus (well wall rings on the microplate).
void fill_ring(Image& img, Vec2 center, double r_outer, double r_inner, color::Rgb8 c);

/// Fills a convex quadrilateral given corners in order.
void fill_quad(Image& img, const Vec2 (&corners)[4], color::Rgb8 c);

/// 1-px Bresenham line (debug overlays).
void draw_line(Image& img, Vec2 a, Vec2 b, color::Rgb8 c);

/// 1-px circle outline (debug overlays for detected wells).
void draw_circle(Image& img, Vec2 center, double radius, color::Rgb8 c);

}  // namespace sdl::imaging
