#include "imaging/fiducial.hpp"

#include <bit>
#include <cmath>

#include "imaging/components.hpp"
#include "imaging/draw.hpp"
#include "imaging/filters.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

std::uint16_t rotate_code_cw(std::uint16_t code) noexcept {
    // Bit (r, c) of the source lands at (c, kGridBits-1-r) after a
    // clockwise quarter turn.
    std::uint16_t out = 0;
    for (int r = 0; r < kGridBits; ++r) {
        for (int c = 0; c < kGridBits; ++c) {
            if ((code >> (r * kGridBits + c)) & 1U) {
                const int nr = c;
                const int nc = kGridBits - 1 - r;
                out = static_cast<std::uint16_t>(out | (1U << (nr * kGridBits + nc)));
            }
        }
    }
    return out;
}

int hamming(std::uint16_t a, std::uint16_t b) noexcept {
    return std::popcount(static_cast<unsigned>(a ^ b));
}

MarkerDictionary MarkerDictionary::generate(std::size_t count, int min_distance,
                                            std::uint64_t seed) {
    support::check(count > 0 && count <= 256, "dictionary size out of range");
    support::Rng rng(seed);
    std::vector<std::uint16_t> codes;
    codes.reserve(count);

    auto rotations = [](std::uint16_t c) {
        std::array<std::uint16_t, 4> rots{c, 0, 0, 0};
        for (int i = 1; i < 4; ++i) rots[static_cast<std::size_t>(i)] =
            rotate_code_cw(rots[static_cast<std::size_t>(i - 1)]);
        return rots;
    };

    std::size_t attempts = 0;
    while (codes.size() < count) {
        if (++attempts > 2'000'000) {
            throw support::LogicError("marker dictionary generation did not converge");
        }
        const auto candidate = static_cast<std::uint16_t>(rng.next() & 0xFFFFU);
        const int bits = std::popcount(static_cast<unsigned>(candidate));
        if (bits < 5 || bits > 11) continue;  // avoid near-uniform patterns

        const auto cand_rots = rotations(candidate);
        // Rotation self-distance: all non-identity rotations must differ,
        // otherwise orientation is ambiguous.
        bool ok = true;
        for (int k = 1; k < 4 && ok; ++k) {
            if (hamming(candidate, cand_rots[static_cast<std::size_t>(k)]) < 4) ok = false;
        }
        for (const std::uint16_t existing : codes) {
            if (!ok) break;
            for (const std::uint16_t rot : cand_rots) {
                if (hamming(existing, rot) < min_distance) {
                    ok = false;
                    break;
                }
            }
        }
        if (ok) codes.push_back(candidate);
    }
    return MarkerDictionary(std::move(codes));
}

const MarkerDictionary& MarkerDictionary::standard() {
    static const MarkerDictionary dict = generate(16);
    return dict;
}

std::optional<MarkerDictionary::Match> MarkerDictionary::match(
    std::uint16_t observed, int max_correctable) const noexcept {
    std::optional<Match> best;
    for (std::size_t id = 0; id < codes_.size(); ++id) {
        std::uint16_t rotated = codes_[id];
        for (int k = 0; k < 4; ++k) {
            const int d = hamming(observed, rotated);
            if (d <= max_correctable && (!best || d < best->distance)) {
                best = Match{id, k, d};
            }
            rotated = rotate_code_cw(rotated);
        }
    }
    return best;
}

void render_marker(Image& img, const MarkerDictionary& dict, std::size_t id, Vec2 center,
                   double side_px, double angle_rad) {
    const std::uint16_t code = dict.code(id);
    const double cell = side_px / kMarkerCells;

    // Marker-local frame: origin at the black square's top-left corner,
    // axes rotated by angle_rad.
    const Vec2 ux = Vec2{1, 0}.rotated(angle_rad);
    const Vec2 uy = Vec2{0, 1}.rotated(angle_rad);
    const Vec2 top_left = center - ux * (side_px / 2) - uy * (side_px / 2);

    auto cell_quad = [&](double c0, double r0, double c1, double r1) {
        const Vec2 corners[4] = {
            top_left + ux * (c0 * cell) + uy * (r0 * cell),
            top_left + ux * (c1 * cell) + uy * (r0 * cell),
            top_left + ux * (c1 * cell) + uy * (r1 * cell),
            top_left + ux * (c0 * cell) + uy * (r1 * cell),
        };
        return std::array<Vec2, 4>{corners[0], corners[1], corners[2], corners[3]};
    };
    auto fill_cells = [&](double c0, double r0, double c1, double r1, color::Rgb8 col) {
        const auto q = cell_quad(c0, r0, c1, r1);
        const Vec2 corners[4] = {q[0], q[1], q[2], q[3]};
        fill_quad(img, corners, col);
    };

    // White card backing extends one cell beyond the black square.
    constexpr color::Rgb8 kWhite{245, 245, 245};
    constexpr color::Rgb8 kBlack{15, 15, 15};
    fill_cells(-1, -1, kMarkerCells + 1, kMarkerCells + 1, kWhite);
    // Black square (border + payload area all black first).
    fill_cells(0, 0, kMarkerCells, kMarkerCells, kBlack);
    // White payload cells.
    for (int r = 0; r < kGridBits; ++r) {
        for (int c = 0; c < kGridBits; ++c) {
            if ((code >> (r * kGridBits + c)) & 1U) {
                fill_cells(c + 1, r + 1, c + 2, r + 2, kWhite);
            }
        }
    }
}

namespace {

/// Samples the marker payload through the homography and thresholds cells
/// against the midpoint of observed extremes. Returns nullopt if the
/// border is not uniformly dark. `gray` may be a region crop whose
/// top-left frame coordinate is (ox, oy); the homography maps into frame
/// coordinates, and subtracting the integer offsets is exact in floating
/// point, so region sampling carries the same bits as full-frame
/// sampling wherever the crop values match.
std::optional<std::uint16_t> sample_payload(const GrayImage& gray, const Homography& h,
                                            int ox, int oy) {
    std::array<std::array<float, kMarkerCells>, kMarkerCells> cells{};
    float lo = 1.0F, hi = 0.0F;
    for (int r = 0; r < kMarkerCells; ++r) {
        for (int c = 0; c < kMarkerCells; ++c) {
            // Average a 3x3 probe inside each cell for noise robustness.
            float acc = 0.0F;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    const double u = (c + 0.5 + dx * 0.2) / kMarkerCells;
                    const double v = (r + 0.5 + dy * 0.2) / kMarkerCells;
                    const Vec2 p = h.apply({u, v});
                    acc += sample_bilinear(gray, p.x - ox, p.y - oy);
                }
            }
            const float val = acc / 9.0F;
            cells[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = val;
            lo = std::min(lo, val);
            hi = std::max(hi, val);
        }
    }
    if (hi - lo < 0.15F) return std::nullopt;  // no contrast: not a marker
    const float mid = 0.5F * (lo + hi);

    // Border cells must all read dark.
    for (int i = 0; i < kMarkerCells; ++i) {
        if (cells[0][static_cast<std::size_t>(i)] > mid ||
            cells[kMarkerCells - 1][static_cast<std::size_t>(i)] > mid ||
            cells[static_cast<std::size_t>(i)][0] > mid ||
            cells[static_cast<std::size_t>(i)][kMarkerCells - 1] > mid) {
            return std::nullopt;
        }
    }
    std::uint16_t code = 0;
    for (int r = 0; r < kGridBits; ++r) {
        for (int c = 0; c < kGridBits; ++c) {
            if (cells[static_cast<std::size_t>(r + 1)][static_cast<std::size_t>(c + 1)] > mid) {
                code = static_cast<std::uint16_t>(code | (1U << (r * kGridBits + c)));
            }
        }
    }
    return code;
}

}  // namespace

int marker_region_margin(const MarkerDetectParams& params) {
    // The threshold mask at a pixel reads the blurred plane across the
    // adaptive half window, the blurred plane reads the gray plane across
    // the kernel radius, and labeling/boundary extraction look one more
    // pixel out; +1 slack rounds the reach up.
    const int blur_radius =
        params.blur_sigma > 0.0 ? static_cast<int>(std::ceil(3.0 * params.blur_sigma)) : 0;
    return params.adaptive_window / 2 + blur_radius + 2;
}

namespace {

/// Shared pipeline for full-frame and region-restricted detection.
/// Returns false when a plausibly marker-sized blob touched the
/// contaminated band along an interior region edge (see header).
bool detect_impl(const Image& img, const MarkerDictionary& dict,
                 const MarkerDetectParams& params, Rect region, MarkerScratch& scratch,
                 std::vector<MarkerDetection>& out) {
    out.clear();
    if (img.width() < 8 || img.height() < 8) return true;
    const Rect r = region.clipped(img.width(), img.height());
    if (r.width() < 8 || r.height() < 8) return false;

    to_gray_roi(img, r, scratch.gray);
    gaussian_blur(scratch.gray, params.blur_sigma, scratch.smooth, scratch.blur);
    adaptive_threshold(scratch.smooth, params.adaptive_window, params.adaptive_offset,
                       scratch.dark, scratch.integral);
    const auto min_area =
        static_cast<std::size_t>(params.min_side_px * params.min_side_px * 0.3);
    label_components(scratch.dark, min_area, scratch.labels);
    const Labeling& labeling = scratch.labels.labeling;

    // Filter outputs near an interior crop edge differ from a full-frame
    // run (the filters clamp at the crop instead of seeing the real
    // neighborhood); a frame edge behaves identically in both runs.
    const int margin = marker_region_margin(params);
    const bool guard_left = r.x0 > 0;
    const bool guard_top = r.y0 > 0;
    const bool guard_right = r.x1 < img.width();
    const bool guard_bottom = r.y1 < img.height();

    bool clean = true;
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(labeling.blobs.size()); ++i) {
        const Blob& blob = labeling.blobs[static_cast<std::size_t>(i)];
        const double bbox_side = std::max(blob.bbox.width(), blob.bbox.height());
        const bool plausible =
            bbox_side >= params.min_side_px && bbox_side <= params.max_side_px * 1.5;
        const bool contaminated = (guard_left && blob.bbox.x0 < margin) ||
                                  (guard_top && blob.bbox.y0 < margin) ||
                                  (guard_right && blob.bbox.x1 > r.width() - margin) ||
                                  (guard_bottom && blob.bbox.y1 > r.height() - margin);
        if (contaminated) {
            if (plausible) clean = false;
            continue;
        }
        if (!plausible) continue;

        boundary_pixels(labeling, i, scratch.boundary);
        if (r.x0 != 0 || r.y0 != 0) {
            // Integer translation of integer-valued coordinates is exact:
            // from here on all geometry runs in frame coordinates, bit for
            // bit as the full-frame pipeline computes it.
            for (Vec2& p : scratch.boundary) {
                p.x += r.x0;
                p.y += r.y0;
            }
        }
        const auto quad = extract_quad(scratch.boundary);
        if (!quad) continue;
        if (squareness(*quad) < params.min_squareness) continue;
        const double side = mean_side(*quad);
        if (side < params.min_side_px || side > params.max_side_px) continue;

        // The marker's black area is the border plus unset payload bits;
        // it must cover a plausible fraction of the quad.
        const double quad_area = side * side;
        const double fill = static_cast<double>(blob.area) / quad_area;
        if (fill < 0.35 || fill > 1.05) continue;

        Homography h;
        try {
            h = Homography::unit_square_to(*quad);
        } catch (const support::Error&) {
            continue;
        }
        const auto payload = sample_payload(scratch.smooth, h, r.x0, r.y0);
        if (!payload) continue;
        const auto match = dict.match(*payload, params.max_correctable_bits);
        if (!match) continue;

        MarkerDetection det;
        det.id = match->id;
        det.corners = *quad;
        det.center = (det.corners[0] + det.corners[1] + det.corners[2] + det.corners[3]) * 0.25;
        det.side = side;
        det.bit_errors = match->distance;
        // Orientation: observed payload = rot_cw^k(canonical) means the
        // canonical pattern appears turned k quarter-turns clockwise in
        // the quad frame, so canonical corner 0 (payload top-left) sits at
        // detected corner k. The canonical x-axis is the edge 0 -> 1.
        const std::size_t j0 = static_cast<std::size_t>(match->rotation % 4);
        const std::size_t j1 = (j0 + 1) % 4;
        const Vec2 xaxis = det.corners[j1] - det.corners[j0];
        det.angle = std::atan2(xaxis.y, xaxis.x);
        out.push_back(det);
    }
    return clean;
}

}  // namespace

std::vector<MarkerDetection> detect_markers(const Image& img, const MarkerDictionary& dict,
                                            const MarkerDetectParams& params) {
    MarkerScratch scratch;
    std::vector<MarkerDetection> detections;
    detect_markers(img, dict, params, scratch, detections);
    return detections;
}

void detect_markers(const Image& img, const MarkerDictionary& dict,
                    const MarkerDetectParams& params, MarkerScratch& scratch,
                    std::vector<MarkerDetection>& out) {
    (void)detect_impl(img, dict, params, {0, 0, img.width(), img.height()}, scratch, out);
}

bool detect_markers_in_region(const Image& img, const MarkerDictionary& dict,
                              const MarkerDetectParams& params, Rect region,
                              MarkerScratch& scratch,
                              std::vector<MarkerDetection>& out) {
    return detect_impl(img, dict, params, region, scratch, out);
}

}  // namespace sdl::imaging
