// Square fiducial markers (a compact ArUco equivalent).
//
// The lab stations the microplate at a known offset from an ArUco marker
// and derives the plate's approximate pixel boundaries from the marker's
// detected size and position (§2.4). This module implements the same
// mechanism from scratch: a 4x4-bit payload surrounded by a one-cell
// black border, a dictionary with guaranteed rotational ambiguity-free
// codes, an encoder that rasterizes markers into camera frames, and a
// detector that recovers id, corners, scale and orientation.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "imaging/components.hpp"
#include "imaging/filters.hpp"
#include "imaging/image.hpp"
#include "imaging/quad.hpp"
#include "support/random.hpp"

namespace sdl::imaging {

/// Payload grid dimension (bits are kGridBits x kGridBits).
inline constexpr int kGridBits = 4;
/// Full marker dimension in cells, including the black border.
inline constexpr int kMarkerCells = kGridBits + 2;

/// Rotates a 4x4 bit pattern 90° clockwise.
[[nodiscard]] std::uint16_t rotate_code_cw(std::uint16_t code) noexcept;

/// Hamming distance between two 16-bit codes.
[[nodiscard]] int hamming(std::uint16_t a, std::uint16_t b) noexcept;

/// A dictionary of marker codes with pairwise (rotation-inclusive)
/// Hamming distance >= `min_distance` and self-rotation distance >= 4,
/// so every observation decodes to a unique (id, rotation).
class MarkerDictionary {
public:
    /// Deterministically generates `count` codes (same seed -> same dictionary).
    [[nodiscard]] static MarkerDictionary generate(std::size_t count, int min_distance = 6,
                                                   std::uint64_t seed = 0xA5C0DE);

    /// The default 16-marker dictionary used across sdlbench.
    [[nodiscard]] static const MarkerDictionary& standard();

    [[nodiscard]] std::size_t size() const noexcept { return codes_.size(); }
    [[nodiscard]] std::uint16_t code(std::size_t id) const { return codes_.at(id); }

    /// Looks up an observed payload; returns (id, rotation) where
    /// rotation is the number of clockwise 90° turns that map the
    /// canonical code onto the observation. Tolerates up to
    /// `max_correctable` bit errors.
    struct Match {
        std::size_t id;
        int rotation;
        int distance;
    };
    [[nodiscard]] std::optional<Match> match(std::uint16_t observed,
                                             int max_correctable = 1) const noexcept;

private:
    explicit MarkerDictionary(std::vector<std::uint16_t> codes) : codes_(std::move(codes)) {}
    std::vector<std::uint16_t> codes_;
};

/// Draws marker `id` onto `img`: a white card backing plus the black
/// border and payload cells, centered at `center` with black-square side
/// `side_px`, rotated by `angle_rad` (clockwise on screen, y-down).
void render_marker(Image& img, const MarkerDictionary& dict, std::size_t id, Vec2 center,
                   double side_px, double angle_rad);

struct MarkerDetection {
    std::size_t id = 0;
    Quad corners;      ///< detected black-square corners, clockwise
    Vec2 center;       ///< corner centroid
    double side = 0;   ///< mean side length in pixels
    double angle = 0;  ///< marker x-axis direction in image coords (rad)
    int bit_errors = 0;
};

struct MarkerDetectParams {
    double min_side_px = 12.0;       ///< reject tiny candidates
    double max_side_px = 400.0;      ///< reject huge candidates
    double min_squareness = 0.6;     ///< side-ratio gate for quads
    float adaptive_offset = 0.08F;   ///< threshold margin below local mean
    int adaptive_window = 31;        ///< local-mean window (odd)
    double blur_sigma = 0.8;         ///< denoise before thresholding
    int max_correctable_bits = 1;    ///< dictionary error correction
};

/// Finds all dictionary markers in the frame.
[[nodiscard]] std::vector<MarkerDetection> detect_markers(
    const Image& img, const MarkerDictionary& dict, const MarkerDetectParams& params = {});

/// Reusable detection workspace: the gray/blurred/thresholded planes,
/// the summed-area table, the labeling, and the boundary buffer all
/// persist across frames (no allocation once warm). One per camera or
/// reader session; never shared across threads.
struct MarkerScratch {
    GrayImage gray;
    GrayImage smooth;
    BlurScratch blur;
    BinaryImage dark;
    std::vector<double> integral;
    LabelScratch labels;
    std::vector<Vec2> boundary;
};

/// detect_markers with a persistent workspace; fills `out` (cleared
/// first). Results are bitwise identical to detect_markers.
void detect_markers(const Image& img, const MarkerDictionary& dict,
                    const MarkerDetectParams& params, MarkerScratch& scratch,
                    std::vector<MarkerDetection>& out);

/// Pixel margin a blob must keep from any interior (non-frame) edge of a
/// detection region for the region-restricted pipeline to reproduce the
/// full-frame filter outputs over that blob exactly: the adaptive
/// threshold's half window, plus the blur kernel radius, plus the
/// labeling/boundary pixel neighborhood.
[[nodiscard]] int marker_region_margin(const MarkerDetectParams& params);

/// Region-restricted detection — the ROI fast path. Runs the same
/// pipeline over `region` (clipped to the frame) only, producing
/// detections in frame coordinates. Every detection returned comes from
/// a blob that kept marker_region_margin() pixels clear of interior
/// region edges, and is therefore bitwise identical to the detection a
/// full-frame detect_markers would produce for the same blob; blobs
/// inside the contaminated band are skipped, never decoded differently.
/// The return value reports completeness: true when no plausibly
/// marker-sized blob was skipped (the region scan saw everything a full
/// scan would see inside `region`), false when one was. A region scan
/// cannot see markers outside `region` either way; callers that need
/// every marker in the frame — not just one tracked marker with a
/// full-frame fallback — must scan the full frame.
bool detect_markers_in_region(const Image& img, const MarkerDictionary& dict,
                              const MarkerDetectParams& params, Rect region,
                              MarkerScratch& scratch,
                              std::vector<MarkerDetection>& out);

}  // namespace sdl::imaging
