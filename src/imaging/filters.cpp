#include "imaging/filters.hpp"

#include <cmath>
#include <vector>

#include "support/common.hpp"

namespace sdl::imaging {

GrayImage gaussian_blur(const GrayImage& img, double sigma) {
    if (sigma <= 0.0 || img.width() == 0 || img.height() == 0) return img;
    const int radius = static_cast<int>(std::ceil(3.0 * sigma));
    std::vector<float> kernel(static_cast<std::size_t>(2 * radius + 1));
    float sum = 0.0F;
    for (int i = -radius; i <= radius; ++i) {
        const auto w = static_cast<float>(std::exp(-0.5 * (i * i) / (sigma * sigma)));
        kernel[static_cast<std::size_t>(i + radius)] = w;
        sum += w;
    }
    for (float& w : kernel) w /= sum;

    const int width = img.width();
    const int height = img.height();
    GrayImage tmp(width, height);
    GrayImage out(width, height);

    // Horizontal pass with clamped borders.
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float acc = 0.0F;
            for (int k = -radius; k <= radius; ++k) {
                const int xx = support::clamp(x + k, 0, width - 1);
                acc += kernel[static_cast<std::size_t>(k + radius)] * img.at(xx, y);
            }
            tmp.at(x, y) = acc;
        }
    }
    // Vertical pass.
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float acc = 0.0F;
            for (int k = -radius; k <= radius; ++k) {
                const int yy = support::clamp(y + k, 0, height - 1);
                acc += kernel[static_cast<std::size_t>(k + radius)] * tmp.at(x, yy);
            }
            out.at(x, y) = acc;
        }
    }
    return out;
}

Gradients sobel(const GrayImage& img) {
    const int width = img.width();
    const int height = img.height();
    Gradients g{GrayImage(width, height), GrayImage(width, height)};
    if (width < 3 || height < 3) return g;
    for (int y = 1; y < height - 1; ++y) {
        for (int x = 1; x < width - 1; ++x) {
            const float p00 = img.at(x - 1, y - 1), p10 = img.at(x, y - 1),
                        p20 = img.at(x + 1, y - 1);
            const float p01 = img.at(x - 1, y), p21 = img.at(x + 1, y);
            const float p02 = img.at(x - 1, y + 1), p12 = img.at(x, y + 1),
                        p22 = img.at(x + 1, y + 1);
            g.gx.at(x, y) = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
            g.gy.at(x, y) = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
        }
    }
    return g;
}

BinaryImage threshold_below(const GrayImage& img, float t) {
    BinaryImage mask(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            mask.set(x, y, img.at(x, y) < t);
        }
    }
    return mask;
}

namespace {

/// Summed-area table with an extra zero row/column.
std::vector<double> integral_image(const GrayImage& img) {
    const int width = img.width();
    const int height = img.height();
    std::vector<double> integral(static_cast<std::size_t>(width + 1) *
                                 static_cast<std::size_t>(height + 1));
    const auto at = [&](int x, int y) -> double& {
        return integral[static_cast<std::size_t>(y) * static_cast<std::size_t>(width + 1) +
                        static_cast<std::size_t>(x)];
    };
    for (int y = 1; y <= height; ++y) {
        double row_sum = 0.0;
        for (int x = 1; x <= width; ++x) {
            row_sum += img.at(x - 1, y - 1);
            at(x, y) = at(x, y - 1) + row_sum;
        }
    }
    return integral;
}

double boxed_sum(const std::vector<double>& integral, int width, Rect r) {
    const auto at = [&](int x, int y) {
        return integral[static_cast<std::size_t>(y) * static_cast<std::size_t>(width + 1) +
                        static_cast<std::size_t>(x)];
    };
    return at(r.x1, r.y1) - at(r.x0, r.y1) - at(r.x1, r.y0) + at(r.x0, r.y0);
}

}  // namespace

BinaryImage adaptive_threshold(const GrayImage& img, int window, float offset) {
    support::check(window >= 3 && window % 2 == 1, "window must be odd and >= 3");
    const int width = img.width();
    const int height = img.height();
    BinaryImage mask(width, height);
    if (width == 0 || height == 0) return mask;
    const std::vector<double> integral = integral_image(img);
    const int half = window / 2;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const Rect r = Rect{x - half, y - half, x + half + 1, y + half + 1}.clipped(
                width, height);
            const double n = static_cast<double>(r.width()) * r.height();
            const double mean = boxed_sum(integral, width, r) / n;
            mask.set(x, y, img.at(x, y) < mean - offset);
        }
    }
    return mask;
}

float region_mean(const GrayImage& img, Rect rect) {
    const Rect r = rect.clipped(img.width(), img.height());
    if (r.width() == 0 || r.height() == 0) return 0.0F;
    double sum = 0.0;
    for (int y = r.y0; y < r.y1; ++y) {
        for (int x = r.x0; x < r.x1; ++x) sum += img.at(x, y);
    }
    return static_cast<float>(sum / (static_cast<double>(r.width()) * r.height()));
}

}  // namespace sdl::imaging
