#include "imaging/filters.hpp"

#include <cmath>
#include <vector>

#include "support/common.hpp"

namespace sdl::imaging {

GrayImage gaussian_blur(const GrayImage& img, double sigma) {
    GrayImage out;
    BlurScratch scratch;
    gaussian_blur(img, sigma, out, scratch);
    return out;
}

void gaussian_blur(const GrayImage& img, double sigma, GrayImage& out,
                   BlurScratch& scratch) {
    if (sigma <= 0.0 || img.width() == 0 || img.height() == 0) {
        out = img;
        return;
    }
    const int radius = static_cast<int>(std::ceil(3.0 * sigma));
    std::vector<float>& kernel = scratch.kernel;
    kernel.resize(static_cast<std::size_t>(2 * radius + 1));
    float sum = 0.0F;
    for (int i = -radius; i <= radius; ++i) {
        const auto w = static_cast<float>(std::exp(-0.5 * (i * i) / (sigma * sigma)));
        kernel[static_cast<std::size_t>(i + radius)] = w;
        sum += w;
    }
    for (float& w : kernel) w /= sum;

    const int width = img.width();
    const int height = img.height();
    scratch.tmp.reset(width, height);
    out.reset(width, height);
    GrayImage& tmp = scratch.tmp;

    // Horizontal pass: clamped taps only where a tap actually leaves the
    // row; interior pixels run a straight pointer walk. Tap order (k
    // ascending) matches the naive loop, so every pixel carries the same
    // bits.
    const int x_interior_end = width - radius;  // may be <= radius: loop skipped
    for (int y = 0; y < height; ++y) {
        const float* src = img.values().data() +
                           static_cast<std::size_t>(y) * static_cast<std::size_t>(width);
        float* dst = tmp.values().data() +
                     static_cast<std::size_t>(y) * static_cast<std::size_t>(width);
        int x = 0;
        for (; x < width && x < radius; ++x) {
            float acc = 0.0F;
            for (int k = -radius; k <= radius; ++k) {
                const int xx = support::clamp(x + k, 0, width - 1);
                acc += kernel[static_cast<std::size_t>(k + radius)] * src[xx];
            }
            dst[x] = acc;
        }
        for (; x < x_interior_end; ++x) {
            float acc = 0.0F;
            const float* in = src + x - radius;
            for (int k = 0; k <= 2 * radius; ++k) {
                acc += kernel[static_cast<std::size_t>(k)] * in[k];
            }
            dst[x] = acc;
        }
        for (; x < width; ++x) {
            float acc = 0.0F;
            for (int k = -radius; k <= radius; ++k) {
                const int xx = support::clamp(x + k, 0, width - 1);
                acc += kernel[static_cast<std::size_t>(k + radius)] * src[xx];
            }
            dst[x] = acc;
        }
    }
    // Vertical pass, restructured as one weighted row-accumulate per tap:
    // for each output pixel the taps still add in ascending-k order
    // (starting from 0), so the result is bitwise identical to the naive
    // column loop while the inner loops stay contiguous.
    for (int y = 0; y < height; ++y) {
        float* dst = out.values().data() +
                     static_cast<std::size_t>(y) * static_cast<std::size_t>(width);
        for (int x = 0; x < width; ++x) dst[x] = 0.0F;
        for (int k = -radius; k <= radius; ++k) {
            const int yy = support::clamp(y + k, 0, height - 1);
            const float w = kernel[static_cast<std::size_t>(k + radius)];
            const float* src = tmp.values().data() +
                               static_cast<std::size_t>(yy) * static_cast<std::size_t>(width);
            for (int x = 0; x < width; ++x) dst[x] += w * src[x];
        }
    }
}

Gradients sobel(const GrayImage& img) {
    Gradients g;
    sobel(img, g);
    return g;
}

void sobel(const GrayImage& img, Gradients& out) {
    const int width = img.width();
    const int height = img.height();
    out.gx.reset(width, height);
    out.gy.reset(width, height);
    // The naive version zero-initializes whole planes and fills the
    // interior; reused planes only need their one-pixel border cleared.
    for (int x = 0; x < width; ++x) {
        if (height > 0) {
            out.gx.at(x, 0) = 0.0F;
            out.gy.at(x, 0) = 0.0F;
            out.gx.at(x, height - 1) = 0.0F;
            out.gy.at(x, height - 1) = 0.0F;
        }
    }
    for (int y = 0; y < height; ++y) {
        if (width > 0) {
            out.gx.at(0, y) = 0.0F;
            out.gy.at(0, y) = 0.0F;
            out.gx.at(width - 1, y) = 0.0F;
            out.gy.at(width - 1, y) = 0.0F;
        }
    }
    if (width < 3 || height < 3) {
        for (float& v : out.gx.values()) v = 0.0F;
        for (float& v : out.gy.values()) v = 0.0F;
        return;
    }
    for (int y = 1; y < height - 1; ++y) {
        const std::size_t stride = static_cast<std::size_t>(width);
        const float* r0 = img.values().data() + static_cast<std::size_t>(y - 1) * stride;
        const float* r1 = r0 + stride;
        const float* r2 = r1 + stride;
        float* gx = out.gx.values().data() + static_cast<std::size_t>(y) * stride;
        float* gy = out.gy.values().data() + static_cast<std::size_t>(y) * stride;
        for (int x = 1; x < width - 1; ++x) {
            const float p00 = r0[x - 1], p10 = r0[x], p20 = r0[x + 1];
            const float p01 = r1[x - 1], p21 = r1[x + 1];
            const float p02 = r2[x - 1], p12 = r2[x], p22 = r2[x + 1];
            gx[x] = (p20 + 2 * p21 + p22) - (p00 + 2 * p01 + p02);
            gy[x] = (p02 + 2 * p12 + p22) - (p00 + 2 * p10 + p20);
        }
    }
}

BinaryImage threshold_below(const GrayImage& img, float t) {
    BinaryImage mask(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            mask.set(x, y, img.at(x, y) < t);
        }
    }
    return mask;
}

namespace {

double boxed_sum(const std::vector<double>& integral, int width, Rect r) {
    const auto at = [&](int x, int y) {
        return integral[static_cast<std::size_t>(y) * static_cast<std::size_t>(width + 1) +
                        static_cast<std::size_t>(x)];
    };
    return at(r.x1, r.y1) - at(r.x0, r.y1) - at(r.x1, r.y0) + at(r.x0, r.y0);
}

}  // namespace

BinaryImage adaptive_threshold(const GrayImage& img, int window, float offset) {
    BinaryImage mask;
    std::vector<double> integral;
    adaptive_threshold(img, window, offset, mask, integral);
    return mask;
}

void adaptive_threshold(const GrayImage& img, int window, float offset,
                        BinaryImage& mask, std::vector<double>& integral) {
    support::check(window >= 3 && window % 2 == 1, "window must be odd and >= 3");
    const int width = img.width();
    const int height = img.height();
    mask.reset(width, height);
    if (width == 0 || height == 0) return;
    // Summed-area table with an extra zero row/column, built into the
    // caller-owned buffer.
    integral.resize(static_cast<std::size_t>(width + 1) *
                    static_cast<std::size_t>(height + 1));
    const std::size_t stride = static_cast<std::size_t>(width + 1);
    for (std::size_t x = 0; x < stride; ++x) integral[x] = 0.0;
    for (int y = 1; y <= height; ++y) {
        integral[static_cast<std::size_t>(y) * stride] = 0.0;
        const float* src = img.values().data() +
                           static_cast<std::size_t>(y - 1) * static_cast<std::size_t>(width);
        const double* above = integral.data() + static_cast<std::size_t>(y - 1) * stride;
        double* row = integral.data() + static_cast<std::size_t>(y) * stride;
        double row_sum = 0.0;
        for (int x = 1; x <= width; ++x) {
            row_sum += src[x - 1];
            row[x] = above[x] + row_sum;
        }
    }
    const int half = window / 2;
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const Rect r = Rect{x - half, y - half, x + half + 1, y + half + 1}.clipped(
                width, height);
            const double n = static_cast<double>(r.width()) * r.height();
            const double mean = boxed_sum(integral, width, r) / n;
            mask.set(x, y, img.at(x, y) < mean - offset);
        }
    }
}

float region_mean(const GrayImage& img, Rect rect) {
    const Rect r = rect.clipped(img.width(), img.height());
    if (r.width() == 0 || r.height() == 0) return 0.0F;
    double sum = 0.0;
    for (int y = r.y0; y < r.y1; ++y) {
        for (int x = r.x0; x < r.x1; ++x) sum += img.at(x, y);
    }
    return static_cast<float>(sum / (static_cast<double>(r.width()) * r.height()));
}

}  // namespace sdl::imaging
