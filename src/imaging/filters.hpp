// Image filters: separable Gaussian blur, Sobel gradients, fixed and
// adaptive thresholding — the preprocessing stages of §2.4's pipeline.
#pragma once

#include "imaging/geometry.hpp"
#include "imaging/image.hpp"

namespace sdl::imaging {

/// Separable Gaussian blur; kernel radius = ceil(3*sigma). sigma <= 0
/// returns the input unchanged.
[[nodiscard]] GrayImage gaussian_blur(const GrayImage& img, double sigma);

/// Horizontal and vertical Sobel derivative planes.
struct Gradients {
    GrayImage gx;
    GrayImage gy;
};
[[nodiscard]] Gradients sobel(const GrayImage& img);

/// mask(x,y) = img(x,y) < t  (dark-object segmentation; the fiducial
/// marker is black on a white card).
[[nodiscard]] BinaryImage threshold_below(const GrayImage& img, float t);

/// Adaptive mean threshold: mask = img < local_mean(window) - offset,
/// computed with an integral image (O(1) per pixel).
[[nodiscard]] BinaryImage adaptive_threshold(const GrayImage& img, int window,
                                             float offset);

/// Mean of a rectangular region (clipped); exposed for tests.
[[nodiscard]] float region_mean(const GrayImage& img, Rect rect);

}  // namespace sdl::imaging
