// Image filters: separable Gaussian blur, Sobel gradients, fixed and
// adaptive thresholding — the preprocessing stages of §2.4's pipeline.
#pragma once

#include "imaging/geometry.hpp"
#include "imaging/image.hpp"

namespace sdl::imaging {

/// Reusable separable-blur workspace: the kernel coefficients and the
/// horizontal-pass intermediate plane persist across frames instead of
/// being reallocated per call.
struct BlurScratch {
    std::vector<float> kernel;
    GrayImage tmp;
};

/// Separable Gaussian blur; kernel radius = ceil(3*sigma). sigma <= 0
/// returns the input unchanged.
[[nodiscard]] GrayImage gaussian_blur(const GrayImage& img, double sigma);

/// Blur into a reusable output plane with a persistent workspace — the
/// zero-allocation hot path (same bits as gaussian_blur: identical
/// taps in identical order, with clamping only where a border needs
/// it). `out` must not alias `img`.
void gaussian_blur(const GrayImage& img, double sigma, GrayImage& out,
                   BlurScratch& scratch);

/// Horizontal and vertical Sobel derivative planes.
struct Gradients {
    GrayImage gx;
    GrayImage gy;
};
[[nodiscard]] Gradients sobel(const GrayImage& img);

/// Sobel into reusable planes (no allocation once warm).
void sobel(const GrayImage& img, Gradients& out);

/// mask(x,y) = img(x,y) < t  (dark-object segmentation; the fiducial
/// marker is black on a white card).
[[nodiscard]] BinaryImage threshold_below(const GrayImage& img, float t);

/// Adaptive mean threshold: mask = img < local_mean(window) - offset,
/// computed with an integral image (O(1) per pixel).
[[nodiscard]] BinaryImage adaptive_threshold(const GrayImage& img, int window,
                                             float offset);

/// Adaptive threshold into a reusable mask, with the summed-area table
/// kept in a caller-owned buffer (no allocation once warm).
void adaptive_threshold(const GrayImage& img, int window, float offset,
                        BinaryImage& mask, std::vector<double>& integral);

/// Mean of a rectangular region (clipped); exposed for tests.
[[nodiscard]] float region_mean(const GrayImage& img, Rect rect);

}  // namespace sdl::imaging
