// 2-D geometry primitives shared across the vision pipeline.
#pragma once

#include <cmath>

namespace sdl::imaging {

struct Vec2 {
    double x = 0.0;
    double y = 0.0;

    /// Exact component equality (cache keys, tests) — not a tolerance.
    friend constexpr bool operator==(Vec2 a, Vec2 b) noexcept = default;

    friend constexpr Vec2 operator+(Vec2 a, Vec2 b) noexcept { return {a.x + b.x, a.y + b.y}; }
    friend constexpr Vec2 operator-(Vec2 a, Vec2 b) noexcept { return {a.x - b.x, a.y - b.y}; }
    friend constexpr Vec2 operator*(Vec2 a, double k) noexcept { return {a.x * k, a.y * k}; }
    friend constexpr Vec2 operator*(double k, Vec2 a) noexcept { return a * k; }

    [[nodiscard]] double norm() const noexcept { return std::hypot(x, y); }
    [[nodiscard]] constexpr double dot(Vec2 other) const noexcept {
        return x * other.x + y * other.y;
    }
    /// z-component of the 3-D cross product (signed parallelogram area).
    [[nodiscard]] constexpr double cross(Vec2 other) const noexcept {
        return x * other.y - y * other.x;
    }
    /// Counter-clockwise rotation by `radians` (y-down image coordinates
    /// make this appear clockwise on screen).
    [[nodiscard]] Vec2 rotated(double radians) const noexcept {
        const double c = std::cos(radians);
        const double s = std::sin(radians);
        return {x * c - y * s, x * s + y * c};
    }
};

[[nodiscard]] inline double distance(Vec2 a, Vec2 b) noexcept { return (a - b).norm(); }

/// Axis-aligned rectangle [x0,x1) x [y0,y1) in pixel coordinates.
struct Rect {
    int x0 = 0;
    int y0 = 0;
    int x1 = 0;
    int y1 = 0;

    [[nodiscard]] constexpr int width() const noexcept { return x1 - x0; }
    [[nodiscard]] constexpr int height() const noexcept { return y1 - y0; }
    [[nodiscard]] constexpr bool contains(int x, int y) const noexcept {
        return x >= x0 && x < x1 && y >= y0 && y < y1;
    }
    [[nodiscard]] Rect clipped(int w, int h) const noexcept {
        Rect r = *this;
        if (r.x0 < 0) r.x0 = 0;
        if (r.y0 < 0) r.y0 = 0;
        if (r.x1 > w) r.x1 = w;
        if (r.y1 > h) r.y1 = h;
        if (r.x1 < r.x0) r.x1 = r.x0;
        if (r.y1 < r.y0) r.y1 = r.y0;
        return r;
    }
};

}  // namespace sdl::imaging
