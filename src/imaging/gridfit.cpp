#include "imaging/gridfit.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lstsq.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

Vec2 GridModel::to_grid(Vec2 p) const {
    const double det = row_axis.cross(col_axis);
    if (std::fabs(det) < 1e-9) {
        throw support::Error("vision", "degenerate grid axes");
    }
    const Vec2 d = p - origin;
    // Solve [row_axis col_axis] * (r, c)^T = d by Cramer's rule.
    const double r = d.cross(col_axis) / det;
    const double c = row_axis.cross(d) / det;
    return {r, c};
}

GridFit fit_grid(std::span<const Vec2> points, const GridModel& initial, int rows, int cols,
                 double inlier_radius, int iterations, std::size_t min_inliers) {
    support::check(rows > 0 && cols > 0, "grid dimensions must be positive");
    support::check(inlier_radius > 0.0, "inlier radius must be positive");

    GridFit fit;
    fit.model = initial;

    for (int iter = 0; iter < iterations; ++iter) {
        // Assign each point to its nearest lattice node under the current
        // model; keep those within the inlier radius.
        struct Assignment {
            Vec2 point;
            int row;
            int col;
        };
        std::vector<Assignment> assigned;
        assigned.reserve(points.size());
        for (const Vec2& p : points) {
            Vec2 rc;
            try {
                rc = fit.model.to_grid(p);
            } catch (const support::Error&) {
                return fit;
            }
            const int r = static_cast<int>(std::lround(rc.x));
            const int c = static_cast<int>(std::lround(rc.y));
            if (r < 0 || r >= rows || c < 0 || c >= cols) continue;
            if (distance(fit.model.center(r, c), p) > inlier_radius) continue;
            assigned.push_back({p, r, c});
        }
        // The affine refit is well-posed only when assignments span at
        // least two distinct rows AND two distinct columns; a single
        // filled row (common on a fresh plate) must not drag the model.
        bool spans_grid = false;
        if (!assigned.empty()) {
            int min_r = assigned.front().row, max_r = min_r;
            int min_c = assigned.front().col, max_c = min_c;
            for (const auto& a : assigned) {
                min_r = std::min(min_r, a.row);
                max_r = std::max(max_r, a.row);
                min_c = std::min(min_c, a.col);
                max_c = std::max(max_c, a.col);
            }
            spans_grid = (max_r > min_r) && (max_c > min_c);
        }
        if (assigned.size() < min_inliers || !spans_grid) {
            // Not enough support to refine: report the assignment stats of
            // the incoming model and stop.
            fit.inliers = assigned.size();
            double sum = 0.0;
            for (const auto& a : assigned) {
                sum += distance(fit.model.center(a.row, a.col), a.point);
            }
            fit.mean_residual = assigned.empty() ? 0.0 : sum / static_cast<double>(assigned.size());
            return fit;
        }

        // Solve x and y channels independently: coord = o + r*a + c*b.
        const std::size_t n = assigned.size();
        linalg::Matrix a(n, 3);
        linalg::Vec bx(n), by(n);
        for (std::size_t i = 0; i < n; ++i) {
            a(i, 0) = 1.0;
            a(i, 1) = assigned[i].row;
            a(i, 2) = assigned[i].col;
            bx[i] = assigned[i].point.x;
            by[i] = assigned[i].point.y;
        }
        const linalg::Vec sx = linalg::robust_lstsq(a, bx, 1.5, 3);
        const linalg::Vec sy = linalg::robust_lstsq(a, by, 1.5, 3);
        fit.model.origin = {sx[0], sy[0]};
        fit.model.row_axis = {sx[1], sy[1]};
        fit.model.col_axis = {sx[2], sy[2]};

        fit.inliers = n;
        double sum = 0.0;
        for (const auto& asg : assigned) {
            sum += distance(fit.model.center(asg.row, asg.col), asg.point);
        }
        fit.mean_residual = sum / static_cast<double>(n);
    }
    return fit;
}

}  // namespace sdl::imaging
