// Lattice fitting: align a rows x cols grid to detected well circles.
//
// HoughCircles misses wells (low-contrast samples) and occasionally fires
// on reflections; the paper's rescue (§2.4) aligns a grid to "all
// well-sized circles within the approximate plate position" and predicts
// every well center from the grid. The model is affine in (row, col):
//   center(r, c) = origin + r * row_axis + c * col_axis
// fit by Huber-robust least squares from circle-to-node assignments.
#pragma once

#include <span>
#include <vector>

#include "imaging/geometry.hpp"

namespace sdl::imaging {

struct GridModel {
    Vec2 origin;    ///< center of well (0, 0)
    Vec2 row_axis;  ///< displacement per row step
    Vec2 col_axis;  ///< displacement per column step

    [[nodiscard]] Vec2 center(double row, double col) const noexcept {
        return origin + row_axis * row + col_axis * col;
    }

    /// Continuous (row, col) coordinates of an image point (inverse of
    /// center()); throws Error("vision") if the axes are degenerate.
    [[nodiscard]] Vec2 to_grid(Vec2 p) const;
};

struct GridFit {
    GridModel model;
    std::size_t inliers = 0;       ///< points assigned to a lattice node
    double mean_residual = 0.0;    ///< mean inlier distance to its node, px
};

/// Refines `initial` so the lattice passes through `points`. Points
/// farther than `inlier_radius` from their nearest node are excluded from
/// the fit (false-positive circles). Returns the initial model unchanged
/// when fewer than `min_inliers` points can be assigned.
[[nodiscard]] GridFit fit_grid(std::span<const Vec2> points, const GridModel& initial,
                               int rows, int cols, double inlier_radius,
                               int iterations = 3, std::size_t min_inliers = 6);

}  // namespace sdl::imaging
