#include "imaging/hough.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/filters.hpp"
#include "linalg/fastmath.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

// The vote accumulator issues hundreds of thousands of roundings per
// frame and std::lround was its single largest cost; see fastmath.hpp
// for round_half_away's (documented, tolerated) boundary behavior.
using linalg::round_half_away;

std::vector<CircleDetection> hough_circles(const GrayImage& gray, const HoughParams& params) {
    HoughScratch scratch;
    return hough_circles(gray, params, scratch);
}

std::vector<CircleDetection> hough_circles(const GrayImage& gray, const HoughParams& params,
                                           HoughScratch& scratch) {
    support::check(params.r_min > 0 && params.r_max >= params.r_min, "invalid radius range");
    std::vector<CircleDetection> circles;

    Rect roi = params.roi;
    if (roi.width() <= 0 || roi.height() <= 0) {
        roi = {0, 0, gray.width(), gray.height()};
    }
    roi = roi.clipped(gray.width(), gray.height());
    const int rw = roi.width();
    const int rh = roi.height();
    if (rw < 3 || rh < 3) return circles;

    // Work on a cropped view so smoothing and gradients cost O(ROI), not
    // O(frame) — the plate region is typically a fraction of the image. A
    // ROI spanning the whole input (the reader's pre-cropped fast path)
    // needs no copy at all.
    const bool whole = roi.x0 == 0 && roi.y0 == 0 && rw == gray.width() &&
                       rh == gray.height();
    if (!whole) {
        scratch.cropped.reset(rw, rh);
        for (int y = 0; y < rh; ++y) {
            const float* src = gray.values().data() +
                               static_cast<std::size_t>(y + roi.y0) *
                                   static_cast<std::size_t>(gray.width()) +
                               static_cast<std::size_t>(roi.x0);
            float* dst = scratch.cropped.values().data() +
                         static_cast<std::size_t>(y) * static_cast<std::size_t>(rw);
            for (int x = 0; x < rw; ++x) dst[x] = src[x];
        }
    }
    const GrayImage& cropped = whole ? gray : scratch.cropped;
    gaussian_blur(cropped, params.blur_sigma, scratch.smooth, scratch.blur);
    const GrayImage& smooth = scratch.smooth;
    sobel(smooth, scratch.grad);
    const Gradients& grad = scratch.grad;

    // Edge pixels (local ROI coordinates). The magnitude is
    // sqrt(gx^2 + gy^2) rather than hypot(): the operands are tame
    // (|g| < 8), so overflow care buys nothing, and sqrt keeps this loop
    // out of a libm slow path that used to dominate edge collection.
    using Edge = HoughScratch::Edge;
    std::vector<Edge>& edges = scratch.edges;
    edges.clear();
    for (int y = 0; y < rh; ++y) {
        const float* grow = grad.gx.values().data() +
                            static_cast<std::size_t>(y) * static_cast<std::size_t>(rw);
        const float* grow_y = grad.gy.values().data() +
                              static_cast<std::size_t>(y) * static_cast<std::size_t>(rw);
        for (int x = 0; x < rw; ++x) {
            const double gx = grow[x];
            const double gy = grow_y[x];
            const double mag = std::sqrt(gx * gx + gy * gy);
            if (mag < params.grad_threshold) continue;
            edges.push_back({static_cast<float>(x), static_cast<float>(y),
                             static_cast<float>(gx / mag), static_cast<float>(gy / mag)});
        }
    }
    if (edges.empty()) return circles;

    // Stage 1: center accumulator.
    std::vector<float>& acc = scratch.acc;
    acc.assign(static_cast<std::size_t>(rw) * static_cast<std::size_t>(rh), 0.0F);
    const int ir_min = static_cast<int>(std::floor(params.r_min));
    const int ir_max = static_cast<int>(std::ceil(params.r_max));
    for (const Edge& e : edges) {
        for (int r = ir_min; r <= ir_max; ++r) {
            for (const int sign : {-1, 1}) {
                const int cx = round_half_away(e.x + sign * r * e.dx);
                const int cy = round_half_away(e.y + sign * r * e.dy);
                if (cx < 0 || cx >= rw || cy < 0 || cy >= rh) continue;
                acc[static_cast<std::size_t>(cy) * static_cast<std::size_t>(rw) +
                    static_cast<std::size_t>(cx)] += 1.0F;
            }
        }
    }

    // Light 3x3 smoothing concentrates votes split between adjacent bins.
    // Separable (vertical then horizontal): every accumulator value is an
    // integer-valued float well below 2^24, so the box sums are exact and
    // identical to the direct 9-tap sum regardless of addition order.
    std::vector<float>& vsum = scratch.acc_vsum;
    vsum.assign(acc.size(), 0.0F);
    for (int y = 1; y < rh - 1; ++y) {
        const float* above = acc.data() + static_cast<std::size_t>(y - 1) * static_cast<std::size_t>(rw);
        const float* here = above + static_cast<std::size_t>(rw);
        const float* below = here + static_cast<std::size_t>(rw);
        float* out = vsum.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(rw);
        for (int x = 0; x < rw; ++x) out[x] = above[x] + here[x] + below[x];
    }
    std::vector<float>& smooth_acc = scratch.smooth_acc;
    smooth_acc.assign(acc.size(), 0.0F);
    for (int y = 1; y < rh - 1; ++y) {
        const float* src = vsum.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(rw);
        float* out = smooth_acc.data() + static_cast<std::size_t>(y) * static_cast<std::size_t>(rw);
        for (int x = 1; x < rw - 1; ++x) {
            out[x] = (src[x - 1] + src[x] + src[x + 1]) / 9.0F;
        }
    }

    // Collect local maxima.
    using Peak = HoughScratch::Peak;
    std::vector<Peak>& peaks = scratch.peaks;
    peaks.clear();
    float strongest = 0.0F;
    for (int y = 1; y < rh - 1; ++y) {
        for (int x = 1; x < rw - 1; ++x) {
            const float v = smooth_acc[static_cast<std::size_t>(y) * static_cast<std::size_t>(rw) +
                                       static_cast<std::size_t>(x)];
            if (v < params.min_votes) continue;
            bool is_max = true;
            for (int dy = -1; dy <= 1 && is_max; ++dy) {
                for (int dx = -1; dx <= 1 && is_max; ++dx) {
                    if (dx == 0 && dy == 0) continue;
                    const float n =
                        smooth_acc[static_cast<std::size_t>(y + dy) * static_cast<std::size_t>(rw) +
                                   static_cast<std::size_t>(x + dx)];
                    if (n > v) is_max = false;
                }
            }
            if (is_max) {
                peaks.push_back({x, y, v});
                strongest = std::max(strongest, v);
            }
        }
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak& a, const Peak& b) { return a.votes > b.votes; });

    // Non-maximum suppression + radius estimation.
    const double vote_floor = std::max(params.min_votes,
                                       params.vote_fraction * static_cast<double>(strongest));
    const double min_dist2 = params.min_center_dist * params.min_center_dist;
    const float reach = static_cast<float>(ir_max + 1);
    std::vector<int>& radius_hist = scratch.radius_hist;
    radius_hist.assign(static_cast<std::size_t>(ir_max) + 2, 0);

    // Spatial grid over the edges (CSR buckets) so each peak's radius
    // scan touches only nearby edges instead of the whole list. Cells are
    // wider than the gating reach by a safe margin, so every edge inside
    // the distance gate lives in the peak's 3x3 cell neighborhood and the
    // (integer) histogram is identical to a full scan.
    const int cell = static_cast<int>(reach) + 2;
    const int grid_w = (rw + cell - 1) / cell;
    const int grid_h = (rh + cell - 1) / cell;
    std::vector<std::int32_t>& bucket_start = scratch.bucket_start;
    std::vector<std::int32_t>& bucket_fill = scratch.bucket_fill;
    std::vector<std::int32_t>& bucket_items = scratch.bucket_items;
    const auto cell_of = [&](const Edge& e) {
        return (static_cast<int>(e.y) / cell) * grid_w + static_cast<int>(e.x) / cell;
    };
    bucket_start.assign(static_cast<std::size_t>(grid_w) * grid_h + 1, 0);
    for (const Edge& e : edges) ++bucket_start[static_cast<std::size_t>(cell_of(e)) + 1];
    for (std::size_t i = 1; i < bucket_start.size(); ++i) {
        bucket_start[i] += bucket_start[i - 1];
    }
    bucket_fill.assign(bucket_start.begin(), bucket_start.end() - 1);
    bucket_items.resize(edges.size());
    for (std::size_t i = 0; i < edges.size(); ++i) {
        bucket_items[static_cast<std::size_t>(
            bucket_fill[static_cast<std::size_t>(cell_of(edges[i]))]++)] =
            static_cast<std::int32_t>(i);
    }

    for (const Peak& p : peaks) {
        if (p.votes < vote_floor) break;
        bool suppressed = false;
        for (const CircleDetection& c : circles) {
            const double ddx = c.center.x - (p.x + roi.x0);
            const double ddy = c.center.y - (p.y + roi.y0);
            if (ddx * ddx + ddy * ddy < min_dist2) {
                suppressed = true;
                break;
            }
        }
        if (suppressed) continue;

        // Stage 2: radius = mode of supporting edge distances whose
        // gradient points through the center. Squared-distance gating
        // keeps the scan cheap: most edges belong to other wells.
        std::fill(radius_hist.begin(), radius_hist.end(), 0);
        const float r2_max = reach * reach;
        const float r2_min = static_cast<float>((ir_min - 1) * (ir_min - 1));
        const int pcx = p.x / cell;
        const int pcy = p.y / cell;
        for (int by = std::max(0, pcy - 1); by <= std::min(grid_h - 1, pcy + 1); ++by) {
            for (int bx = std::max(0, pcx - 1); bx <= std::min(grid_w - 1, pcx + 1);
                 ++bx) {
                const std::size_t bucket = static_cast<std::size_t>(by) * grid_w + bx;
                for (std::int32_t k = bucket_start[bucket];
                     k < bucket_start[bucket + 1]; ++k) {
                    const Edge& e = edges[static_cast<std::size_t>(
                        bucket_items[static_cast<std::size_t>(k)])];
                    const float dx = e.x - static_cast<float>(p.x);
                    const float dy = e.y - static_cast<float>(p.y);
                    const float d2 = dx * dx + dy * dy;
                    if (d2 > r2_max || d2 < r2_min || d2 < 1e-6F) continue;
                    const float d = std::sqrt(d2);
                    // The gradient must be near-radial for this edge to
                    // support the circle.
                    const float align = std::fabs((dx * e.dx + dy * e.dy) / d);
                    if (align < 0.85F) continue;
                    const auto bin = static_cast<std::size_t>(round_half_away(d));
                    if (bin < radius_hist.size()) ++radius_hist[bin];
                }
            }
        }
        std::size_t best_bin = static_cast<std::size_t>(ir_min);
        for (std::size_t r = static_cast<std::size_t>(ir_min); r < radius_hist.size(); ++r) {
            if (radius_hist[r] > radius_hist[best_bin]) best_bin = r;
        }
        if (radius_hist[best_bin] <= 2) continue;  // no radial support: noise peak

        circles.push_back({{static_cast<double>(p.x + roi.x0),
                            static_cast<double>(p.y + roi.y0)},
                           static_cast<double>(best_bin),
                           static_cast<double>(p.votes)});
        if (circles.size() >= params.max_circles) break;
    }
    return circles;
}

}  // namespace sdl::imaging
