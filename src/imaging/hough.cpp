#include "imaging/hough.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/filters.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

std::vector<CircleDetection> hough_circles(const GrayImage& gray, const HoughParams& params) {
    support::check(params.r_min > 0 && params.r_max >= params.r_min, "invalid radius range");
    std::vector<CircleDetection> circles;

    Rect roi = params.roi;
    if (roi.width() <= 0 || roi.height() <= 0) {
        roi = {0, 0, gray.width(), gray.height()};
    }
    roi = roi.clipped(gray.width(), gray.height());
    const int rw = roi.width();
    const int rh = roi.height();
    if (rw < 3 || rh < 3) return circles;

    // Work on a cropped copy so smoothing and gradients cost O(ROI), not
    // O(frame) — the plate region is typically a fraction of the image.
    GrayImage cropped(rw, rh);
    for (int y = 0; y < rh; ++y) {
        for (int x = 0; x < rw; ++x) {
            cropped.at(x, y) = gray.at(x + roi.x0, y + roi.y0);
        }
    }
    const GrayImage smooth = gaussian_blur(cropped, params.blur_sigma);
    const Gradients grad = sobel(smooth);

    // Edge pixels (local ROI coordinates).
    struct Edge {
        float x;
        float y;
        float dx;
        float dy;
    };
    std::vector<Edge> edges;
    for (int y = 0; y < rh; ++y) {
        for (int x = 0; x < rw; ++x) {
            const double gx = grad.gx.at(x, y);
            const double gy = grad.gy.at(x, y);
            const double mag = std::hypot(gx, gy);
            if (mag < params.grad_threshold) continue;
            edges.push_back({static_cast<float>(x), static_cast<float>(y),
                             static_cast<float>(gx / mag), static_cast<float>(gy / mag)});
        }
    }
    if (edges.empty()) return circles;

    // Stage 1: center accumulator.
    std::vector<float> acc(static_cast<std::size_t>(rw) * static_cast<std::size_t>(rh), 0.0F);
    const int ir_min = static_cast<int>(std::floor(params.r_min));
    const int ir_max = static_cast<int>(std::ceil(params.r_max));
    for (const Edge& e : edges) {
        for (int r = ir_min; r <= ir_max; ++r) {
            for (const int sign : {-1, 1}) {
                const int cx = static_cast<int>(std::lround(e.x + sign * r * e.dx));
                const int cy = static_cast<int>(std::lround(e.y + sign * r * e.dy));
                if (cx < 0 || cx >= rw || cy < 0 || cy >= rh) continue;
                acc[static_cast<std::size_t>(cy) * static_cast<std::size_t>(rw) +
                    static_cast<std::size_t>(cx)] += 1.0F;
            }
        }
    }

    // Light 3x3 smoothing concentrates votes split between adjacent bins.
    std::vector<float> smooth_acc(acc.size(), 0.0F);
    for (int y = 1; y < rh - 1; ++y) {
        for (int x = 1; x < rw - 1; ++x) {
            float s = 0.0F;
            for (int dy = -1; dy <= 1; ++dy) {
                for (int dx = -1; dx <= 1; ++dx) {
                    s += acc[static_cast<std::size_t>(y + dy) * static_cast<std::size_t>(rw) +
                             static_cast<std::size_t>(x + dx)];
                }
            }
            smooth_acc[static_cast<std::size_t>(y) * static_cast<std::size_t>(rw) +
                       static_cast<std::size_t>(x)] = s / 9.0F;
        }
    }

    // Collect local maxima.
    struct Peak {
        int x;
        int y;
        float votes;
    };
    std::vector<Peak> peaks;
    float strongest = 0.0F;
    for (int y = 1; y < rh - 1; ++y) {
        for (int x = 1; x < rw - 1; ++x) {
            const float v = smooth_acc[static_cast<std::size_t>(y) * static_cast<std::size_t>(rw) +
                                       static_cast<std::size_t>(x)];
            if (v < params.min_votes) continue;
            bool is_max = true;
            for (int dy = -1; dy <= 1 && is_max; ++dy) {
                for (int dx = -1; dx <= 1 && is_max; ++dx) {
                    if (dx == 0 && dy == 0) continue;
                    const float n =
                        smooth_acc[static_cast<std::size_t>(y + dy) * static_cast<std::size_t>(rw) +
                                   static_cast<std::size_t>(x + dx)];
                    if (n > v) is_max = false;
                }
            }
            if (is_max) {
                peaks.push_back({x, y, v});
                strongest = std::max(strongest, v);
            }
        }
    }
    std::sort(peaks.begin(), peaks.end(),
              [](const Peak& a, const Peak& b) { return a.votes > b.votes; });

    // Non-maximum suppression + radius estimation.
    const double vote_floor = std::max(params.min_votes,
                                       params.vote_fraction * static_cast<double>(strongest));
    const double min_dist2 = params.min_center_dist * params.min_center_dist;
    const float reach = static_cast<float>(ir_max + 1);
    std::vector<int> radius_hist(static_cast<std::size_t>(ir_max) + 2, 0);
    for (const Peak& p : peaks) {
        if (p.votes < vote_floor) break;
        bool suppressed = false;
        for (const CircleDetection& c : circles) {
            const double ddx = c.center.x - (p.x + roi.x0);
            const double ddy = c.center.y - (p.y + roi.y0);
            if (ddx * ddx + ddy * ddy < min_dist2) {
                suppressed = true;
                break;
            }
        }
        if (suppressed) continue;

        // Stage 2: radius = mode of supporting edge distances whose
        // gradient points through the center. Squared-distance gating
        // keeps the scan cheap: most edges belong to other wells.
        std::fill(radius_hist.begin(), radius_hist.end(), 0);
        const float r2_max = reach * reach;
        const float r2_min = static_cast<float>((ir_min - 1) * (ir_min - 1));
        for (const Edge& e : edges) {
            const float dx = e.x - static_cast<float>(p.x);
            const float dy = e.y - static_cast<float>(p.y);
            const float d2 = dx * dx + dy * dy;
            if (d2 > r2_max || d2 < r2_min || d2 < 1e-6F) continue;
            const float d = std::sqrt(d2);
            // The gradient must be near-radial for this edge to support
            // the circle.
            const float align = std::fabs((dx * e.dx + dy * e.dy) / d);
            if (align < 0.85F) continue;
            const auto bin = static_cast<std::size_t>(std::lround(d));
            if (bin < radius_hist.size()) ++radius_hist[bin];
        }
        std::size_t best_bin = static_cast<std::size_t>(ir_min);
        for (std::size_t r = static_cast<std::size_t>(ir_min); r < radius_hist.size(); ++r) {
            if (radius_hist[r] > radius_hist[best_bin]) best_bin = r;
        }
        if (radius_hist[best_bin] <= 2) continue;  // no radial support: noise peak

        circles.push_back({{static_cast<double>(p.x + roi.x0),
                            static_cast<double>(p.y + roi.y0)},
                           static_cast<double>(best_bin),
                           static_cast<double>(p.votes)});
        if (circles.size() >= params.max_circles) break;
    }
    return circles;
}

}  // namespace sdl::imaging
