// Hough circle transform (gradient-directed two-stage variant).
//
// Stage 1 accumulates center votes by marching along the gradient
// direction of every strong edge pixel for each candidate radius; local
// maxima after non-maximum suppression become circle centers. Stage 2
// estimates each circle's radius from the mode of supporting edge-pixel
// distances. This mirrors OpenCV's HOUGH_GRADIENT method, the algorithm
// the paper uses to find microplate wells (§2.4).
#pragma once

#include <cstdint>
#include <vector>

#include "imaging/filters.hpp"
#include "imaging/geometry.hpp"
#include "imaging/image.hpp"

namespace sdl::imaging {

struct CircleDetection {
    Vec2 center;
    double radius = 0.0;
    double votes = 0.0;  ///< accumulator support at the center
};

struct HoughParams {
    double r_min = 5.0;
    double r_max = 20.0;
    float grad_threshold = 0.06F;     ///< minimum Sobel magnitude for edges
    double min_center_dist = 10.0;    ///< non-max suppression distance
    double vote_fraction = 0.25;      ///< accept peaks >= fraction of the
                                      ///< strongest peak's votes
    double min_votes = 8.0;           ///< absolute vote floor
    std::size_t max_circles = 256;
    Rect roi;                         ///< zero-size = whole image
    double blur_sigma = 1.0;          ///< pre-smoothing
};

/// Detects circles in a grayscale frame. Results are sorted by votes,
/// strongest first.
[[nodiscard]] std::vector<CircleDetection> hough_circles(const GrayImage& gray,
                                                         const HoughParams& params);

/// Reusable transform workspace: crop/smooth planes, gradient planes,
/// edge list, accumulators, and the radius histogram persist across
/// frames. One per reader session; never shared across threads.
struct HoughScratch {
    struct Edge {
        float x;
        float y;
        float dx;
        float dy;
    };
    struct Peak {
        int x;
        int y;
        float votes;
    };
    GrayImage cropped;
    GrayImage smooth;
    BlurScratch blur;
    Gradients grad;
    std::vector<Edge> edges;
    std::vector<Peak> peaks;
    std::vector<float> acc;
    std::vector<float> acc_vsum;  ///< vertical pass of the vote smoothing
    std::vector<float> smooth_acc;
    std::vector<int> radius_hist;
    /// Uniform spatial grid over the edge list (CSR layout) so radius
    /// estimation scans only edges near a peak instead of all of them.
    std::vector<std::int32_t> bucket_start;
    std::vector<std::int32_t> bucket_fill;
    std::vector<std::int32_t> bucket_items;
};

/// hough_circles with a persistent workspace (no allocation once warm,
/// aside from the returned vector); bitwise identical results. A ROI
/// that already spans the whole input skips the crop copy entirely.
[[nodiscard]] std::vector<CircleDetection> hough_circles(const GrayImage& gray,
                                                         const HoughParams& params,
                                                         HoughScratch& scratch);

}  // namespace sdl::imaging
