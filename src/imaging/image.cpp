#include "imaging/image.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::imaging {

Image::Image(int width, int height, color::Rgb8 fill) : width_(width), height_(height) {
    support::check(width >= 0 && height >= 0, "negative image dimensions");
    data_.resize(3 * static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
    for (std::size_t i = 0; i + 2 < data_.size(); i += 3) {
        data_[i] = fill.r;
        data_[i + 1] = fill.g;
        data_[i + 2] = fill.b;
    }
}

GrayImage::GrayImage(int width, int height, float fill) : width_(width), height_(height) {
    support::check(width >= 0 && height >= 0, "negative image dimensions");
    data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), fill);
}

void GrayImage::reset(int width, int height) {
    support::check(width >= 0 && height >= 0, "negative image dimensions");
    width_ = width;
    height_ = height;
    data_.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
}

BinaryImage::BinaryImage(int width, int height, bool fill)
    : width_(width), height_(height) {
    support::check(width >= 0 && height >= 0, "negative image dimensions");
    data_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height),
                 fill ? 1 : 0);
}

void BinaryImage::reset(int width, int height) {
    support::check(width >= 0 && height >= 0, "negative image dimensions");
    width_ = width;
    height_ = height;
    data_.resize(static_cast<std::size_t>(width) * static_cast<std::size_t>(height));
}

std::size_t BinaryImage::count() const noexcept {
    std::size_t n = 0;
    for (const auto v : data_) n += v;
    return n;
}

GrayImage to_gray(const Image& rgb) {
    GrayImage out;
    to_gray(rgb, out);
    return out;
}

void to_gray(const Image& rgb, GrayImage& out) {
    to_gray_roi(rgb, {0, 0, rgb.width(), rgb.height()}, out);
}

void to_gray_roi(const Image& rgb, Rect roi, GrayImage& out) {
    const Rect r = roi.clipped(rgb.width(), rgb.height());
    out.reset(r.width(), r.height());
    const std::span<const std::uint8_t> bytes = rgb.bytes();
    for (int y = 0; y < r.height(); ++y) {
        const std::uint8_t* src =
            bytes.data() + 3 * (static_cast<std::size_t>(y + r.y0) *
                                    static_cast<std::size_t>(rgb.width()) +
                                static_cast<std::size_t>(r.x0));
        float* dst = out.values().data() +
                     static_cast<std::size_t>(y) * static_cast<std::size_t>(r.width());
        for (int x = 0; x < r.width(); ++x) {
            dst[x] = static_cast<float>(
                (0.299 * src[0] + 0.587 * src[1] + 0.114 * src[2]) / 255.0);
            src += 3;
        }
    }
}

float sample_bilinear(const GrayImage& img, double x, double y) noexcept {
    if (img.width() == 0 || img.height() == 0) return 0.0F;
    const double cx = support::clamp(x, 0.0, static_cast<double>(img.width() - 1));
    const double cy = support::clamp(y, 0.0, static_cast<double>(img.height() - 1));
    const int x0 = static_cast<int>(cx);
    const int y0 = static_cast<int>(cy);
    const int x1 = x0 + 1 < img.width() ? x0 + 1 : x0;
    const int y1 = y0 + 1 < img.height() ? y0 + 1 : y0;
    const double fx = cx - x0;
    const double fy = cy - y0;
    const double top = img.at(x0, y0) * (1 - fx) + img.at(x1, y0) * fx;
    const double bot = img.at(x0, y1) * (1 - fx) + img.at(x1, y1) * fx;
    return static_cast<float>(top * (1 - fy) + bot * fy);
}

color::Rgb8 mean_color_in_disk(const Image& img, double cx, double cy, double r) noexcept {
    const int x0 = static_cast<int>(std::floor(cx - r));
    const int x1 = static_cast<int>(std::ceil(cx + r));
    const int y0 = static_cast<int>(std::floor(cy - r));
    const int y1 = static_cast<int>(std::ceil(cy + r));
    double sr = 0.0, sg = 0.0, sb = 0.0;
    std::size_t n = 0;
    for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
            if (!img.in_bounds(x, y)) continue;
            const double dx = x - cx;
            const double dy = y - cy;
            if (dx * dx + dy * dy > r * r) continue;
            const color::Rgb8 c = img.pixel(x, y);
            sr += c.r;
            sg += c.g;
            sb += c.b;
            ++n;
        }
    }
    if (n == 0) return {0, 0, 0};
    auto avg = [n](double s) {
        const long v = std::lround(s / static_cast<double>(n));
        return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
    };
    return {avg(sr), avg(sg), avg(sb)};
}

}  // namespace sdl::imaging
