// Image buffers: 8-bit RGB (camera frames) and float grayscale
// (intermediate pipeline planes). Row-major, y-down, origin top-left.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "color/rgb.hpp"
#include "imaging/geometry.hpp"

namespace sdl::imaging {

class Image {
public:
    Image() = default;
    Image(int width, int height, color::Rgb8 fill = {0, 0, 0});

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }
    [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    [[nodiscard]] color::Rgb8 pixel(int x, int y) const noexcept {
        const std::size_t i = index(x, y);
        return {data_[i], data_[i + 1], data_[i + 2]};
    }
    void set_pixel(int x, int y, color::Rgb8 c) noexcept {
        const std::size_t i = index(x, y);
        data_[i] = c.r;
        data_[i + 1] = c.g;
        data_[i + 2] = c.b;
    }

    /// Raw interleaved RGB bytes (size = 3 * width * height).
    [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept { return data_; }
    [[nodiscard]] std::span<std::uint8_t> bytes() noexcept { return data_; }

private:
    [[nodiscard]] std::size_t index(int x, int y) const noexcept {
        return 3 * (static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                    static_cast<std::size_t>(x));
    }

    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> data_;
};

/// Single-channel float plane, values nominally in [0, 1].
class GrayImage {
public:
    GrayImage() = default;
    GrayImage(int width, int height, float fill = 0.0F);

    /// Resizes without initializing contents (kept allocation is reused
    /// when capacity suffices) — for scratch planes that are fully
    /// overwritten each frame.
    void reset(int width, int height);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }
    [[nodiscard]] bool in_bounds(int x, int y) const noexcept {
        return x >= 0 && x < width_ && y >= 0 && y < height_;
    }

    [[nodiscard]] float at(int x, int y) const noexcept {
        return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                     static_cast<std::size_t>(x)];
    }
    [[nodiscard]] float& at(int x, int y) noexcept {
        return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                     static_cast<std::size_t>(x)];
    }

    [[nodiscard]] std::span<const float> values() const noexcept { return data_; }
    [[nodiscard]] std::span<float> values() noexcept { return data_; }

private:
    int width_ = 0;
    int height_ = 0;
    std::vector<float> data_;
};

/// Binary mask stored one byte per pixel (0 or 1).
class BinaryImage {
public:
    BinaryImage() = default;
    BinaryImage(int width, int height, bool fill = false);

    /// Resizes without initializing contents (see GrayImage::reset).
    void reset(int width, int height);

    [[nodiscard]] int width() const noexcept { return width_; }
    [[nodiscard]] int height() const noexcept { return height_; }

    [[nodiscard]] bool at(int x, int y) const noexcept {
        return data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                     static_cast<std::size_t>(x)] != 0;
    }
    void set(int x, int y, bool v) noexcept {
        data_[static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
              static_cast<std::size_t>(x)] = v ? 1 : 0;
    }

    [[nodiscard]] std::size_t count() const noexcept;

private:
    int width_ = 0;
    int height_ = 0;
    std::vector<std::uint8_t> data_;
};

/// Rec. 601 luma of the sRGB-encoded bytes, scaled to [0, 1].
[[nodiscard]] GrayImage to_gray(const Image& rgb);

/// to_gray into a reusable plane (no allocation once warm).
void to_gray(const Image& rgb, GrayImage& out);

/// Converts only `roi` (clipped to the frame) into `out`, whose size
/// becomes roi.width x roi.height; out(x, y) holds the luma of frame
/// pixel (roi.x0 + x, roi.y0 + y) — bitwise the same values a full
/// conversion would produce there. The ROI read path converts just the
/// marker and plate neighborhoods instead of the whole frame.
void to_gray_roi(const Image& rgb, Rect roi, GrayImage& out);

/// Bilinear sample of a gray image at a subpixel position (clamped).
[[nodiscard]] float sample_bilinear(const GrayImage& img, double x, double y) noexcept;

/// Mean RGB inside a disk of radius `r` centered at (cx, cy), clipped to
/// the image; the readout used for well colors.
[[nodiscard]] color::Rgb8 mean_color_in_disk(const Image& img, double cx, double cy,
                                             double r) noexcept;

}  // namespace sdl::imaging
