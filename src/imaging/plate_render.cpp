#include "imaging/plate_render.hpp"

#include <cmath>

#include "imaging/draw.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

namespace {

/// Per-pixel illumination factor: linear gradient plus radial vignette.
double illumination(const PlateScene& scene, int x, int y) noexcept {
    const double nx = static_cast<double>(x) / scene.width - 0.5;
    const double ny = static_cast<double>(y) / scene.height - 0.5;
    const double gradient = 1.0 + scene.illum_gradient.x * nx + scene.illum_gradient.y * ny;
    const double r2 = (nx * nx + ny * ny) / 0.5;  // 1.0 at frame corners
    const double vignette = 1.0 - scene.vignette * r2;
    return gradient * vignette;
}

std::uint8_t shade(std::uint8_t value, double factor, double noise) noexcept {
    const double v = value * factor + noise;
    const long q = std::lround(v);
    return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
}

}  // namespace

std::vector<Vec2> true_well_centers(const PlateScene& scene) {
    const SceneGeometry& g = scene.geometry;
    const double s = scene.marker_side_px;
    const Vec2 ux = Vec2{1, 0}.rotated(scene.angle_rad);
    const Vec2 uy = Vec2{0, 1}.rotated(scene.angle_rad);
    const Vec2 origin = scene.marker_center + ux * (g.plate_offset.x * s) +
                        uy * (g.plate_offset.y * s);
    std::vector<Vec2> centers;
    centers.reserve(static_cast<std::size_t>(g.well_count()));
    for (int r = 0; r < g.rows; ++r) {
        for (int c = 0; c < g.cols; ++c) {
            centers.push_back(origin + uy * (r * g.spacing * s) + ux * (c * g.spacing * s));
        }
    }
    return centers;
}

Image render_plate(const PlateScene& scene, std::span<const color::Rgb8> well_colors,
                   support::Rng& rng, const std::vector<bool>* filled) {
    const SceneGeometry& g = scene.geometry;
    support::check(well_colors.size() == static_cast<std::size_t>(g.well_count()),
                   "well color count must equal rows*cols");
    support::check(filled == nullptr ||
                       filled->size() == static_cast<std::size_t>(g.well_count()),
                   "fill mask size must equal rows*cols");

    Image img(scene.width, scene.height, scene.background);
    const double s = scene.marker_side_px;
    const double radius = g.well_radius * s;
    const double pitch = g.spacing * s;
    const std::vector<Vec2> centers = true_well_centers(scene);

    // Plate body: a quadrilateral covering the well block plus a margin.
    {
        const Vec2 ux = Vec2{1, 0}.rotated(scene.angle_rad);
        const Vec2 uy = Vec2{0, 1}.rotated(scene.angle_rad);
        const double margin = pitch * 0.9;
        const Vec2 tl = centers[0] - ux * margin - uy * margin;
        const Vec2 br = centers[static_cast<std::size_t>(g.well_count() - 1)] + ux * margin +
                        uy * margin;
        const Vec2 tr = tl + ux * ((br - tl).dot(ux));
        const Vec2 bl = tl + uy * ((br - tl).dot(uy));
        const Vec2 corners[4] = {tl, tr, br, bl};
        fill_quad(img, corners, scene.plate_body);
    }

    // Wells: rim ring plus interior (sample color or empty plastic).
    for (int i = 0; i < g.well_count(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool has_sample = filled == nullptr || (*filled)[idx];
        const Vec2 c = centers[idx];
        fill_ring(img, c, radius, radius * (1.0 - scene.wall_thickness),
                  has_sample ? scene.well_wall : scene.empty_rim);
        const color::Rgb8 interior = has_sample ? well_colors[idx] : scene.empty_well;
        fill_circle(img, c, radius * (1.0 - scene.wall_thickness), interior);
    }

    // Fiducial marker on its white card.
    render_marker(img, MarkerDictionary::standard(), scene.marker_id, scene.marker_center,
                  scene.marker_side_px, scene.angle_rad);

    // Sensor model: illumination shading and Gaussian noise.
    for (int y = 0; y < scene.height; ++y) {
        for (int x = 0; x < scene.width; ++x) {
            const double factor = illumination(scene, x, y);
            const color::Rgb8 p = img.pixel(x, y);
            img.set_pixel(x, y, {shade(p.r, factor, rng.normal(0.0, scene.noise_sigma)),
                                 shade(p.g, factor, rng.normal(0.0, scene.noise_sigma)),
                                 shade(p.b, factor, rng.normal(0.0, scene.noise_sigma))});
        }
    }
    return img;
}

}  // namespace sdl::imaging
