#include "imaging/plate_render.hpp"

#include <algorithm>
#include <cmath>

#include "imaging/draw.hpp"
#include "linalg/fastmath.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

namespace {

std::uint8_t shade(std::uint8_t value, double factor, double noise) noexcept {
    const double v = value * factor + noise;
    // Three roundings per pixel: the libm lround call cost used to
    // dominate the whole sensor pass. See fastmath.hpp for
    // round_half_away's (documented, tolerated) boundary behavior.
    const long q = linalg::round_half_away(v);
    return static_cast<std::uint8_t>(q < 0 ? 0 : (q > 255 ? 255 : q));
}

void validate_inputs(const PlateScene& scene, std::span<const color::Rgb8> well_colors,
                     const std::vector<bool>* filled) {
    const SceneGeometry& g = scene.geometry;
    support::check(well_colors.size() == static_cast<std::size_t>(g.well_count()),
                   "well color count must equal rows*cols");
    support::check(filled == nullptr ||
                       filled->size() == static_cast<std::size_t>(g.well_count()),
                   "fill mask size must equal rows*cols");
}

/// The scene-only raster: deck background plus plate body. Everything
/// here is deterministic in the scene, which is what makes it cacheable
/// across frames.
Image render_base(const PlateScene& scene, const std::vector<Vec2>& centers) {
    const SceneGeometry& g = scene.geometry;
    Image img(scene.width, scene.height, scene.background);
    const double pitch = g.spacing * scene.marker_side_px;

    // Plate body: a quadrilateral covering the well block plus a margin.
    const Vec2 ux = Vec2{1, 0}.rotated(scene.angle_rad);
    const Vec2 uy = Vec2{0, 1}.rotated(scene.angle_rad);
    const double margin = pitch * 0.9;
    const Vec2 tl = centers[0] - ux * margin - uy * margin;
    const Vec2 br = centers[static_cast<std::size_t>(g.well_count() - 1)] + ux * margin +
                    uy * margin;
    const Vec2 tr = tl + ux * ((br - tl).dot(ux));
    const Vec2 bl = tl + uy * ((br - tl).dot(uy));
    const Vec2 corners[4] = {tl, tr, br, bl};
    fill_quad(img, corners, scene.plate_body);
    return img;
}

/// Wells: rim ring plus interior (sample color or empty plastic).
void draw_wells(Image& img, const PlateScene& scene, const std::vector<Vec2>& centers,
                std::span<const color::Rgb8> well_colors, const std::vector<bool>* filled) {
    const SceneGeometry& g = scene.geometry;
    const double radius = g.well_radius * scene.marker_side_px;
    for (int i = 0; i < g.well_count(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool has_sample = filled == nullptr || (*filled)[idx];
        const Vec2 c = centers[idx];
        fill_ring(img, c, radius, radius * (1.0 - scene.wall_thickness),
                  has_sample ? scene.well_wall : scene.empty_rim);
        const color::Rgb8 interior = has_sample ? well_colors[idx] : scene.empty_well;
        fill_circle(img, c, radius * (1.0 - scene.wall_thickness), interior);
    }
}

/// Sensor model: illumination shading and Gaussian noise. The per-column
/// gradient/vignette terms are precomputed once per frame; per pixel the
/// factor combines them with the exact expression the scalar
/// illumination() helper used, so the shading bits are unchanged.
void apply_sensor_model(Image& img, const PlateScene& scene, support::Rng& rng,
                        std::vector<double>& nx, std::vector<double>& nx2) {
    const auto width = static_cast<std::size_t>(scene.width);
    nx.resize(width);
    nx2.resize(width);
    for (std::size_t x = 0; x < width; ++x) {
        nx[x] = static_cast<double>(x) / scene.width - 0.5;
        nx2[x] = nx[x] * nx[x];
    }
    const double gx = scene.illum_gradient.x;
    const double gy = scene.illum_gradient.y;
    std::uint8_t* bytes = img.bytes().data();
    for (int y = 0; y < scene.height; ++y) {
        const double ny = static_cast<double>(y) / scene.height - 0.5;
        const double gy_ny = gy * ny;
        const double ny2 = ny * ny;
        std::uint8_t* row = bytes + 3 * static_cast<std::size_t>(y) * width;
        for (std::size_t x = 0; x < width; ++x) {
            const double gradient = 1.0 + gx * nx[x] + gy_ny;
            const double r2 = (nx2[x] + ny2) / 0.5;  // 1.0 at frame corners
            const double factor = gradient * (1.0 - scene.vignette * r2);
            std::uint8_t* px = row + 3 * x;
            px[0] = shade(px[0], factor, rng.normal(0.0, scene.noise_sigma));
            px[1] = shade(px[1], factor, rng.normal(0.0, scene.noise_sigma));
            px[2] = shade(px[2], factor, rng.normal(0.0, scene.noise_sigma));
        }
    }
}

}  // namespace

std::vector<Vec2> true_well_centers(const PlateScene& scene) {
    const SceneGeometry& g = scene.geometry;
    const double s = scene.marker_side_px;
    const Vec2 ux = Vec2{1, 0}.rotated(scene.angle_rad);
    const Vec2 uy = Vec2{0, 1}.rotated(scene.angle_rad);
    const Vec2 origin = scene.marker_center + ux * (g.plate_offset.x * s) +
                        uy * (g.plate_offset.y * s);
    std::vector<Vec2> centers;
    centers.reserve(static_cast<std::size_t>(g.well_count()));
    for (int r = 0; r < g.rows; ++r) {
        for (int c = 0; c < g.cols; ++c) {
            centers.push_back(origin + uy * (r * g.spacing * s) + ux * (c * g.spacing * s));
        }
    }
    return centers;
}

bool same_scene(const PlateScene& a, const PlateScene& b) noexcept {
    return a == b;  // defaulted memberwise equality — cannot drift
}

PlateScene scene_for_plate(PlateScene scene, int rows, int cols) {
    scene.geometry.rows = rows;
    scene.geometry.cols = cols;
    // The calibrated scene fits an 8x12 grid; denser plates upscale the
    // raster by ceil(1/f) (f is 1/2 for 384, 1/4 for 1536, so the
    // upscale is exact) and leave the marker-relative geometry alone:
    // with marker_side_px unchanged, well pixel pitch and radius stay at
    // the 96-well values the vision pipeline is calibrated for, and the
    // marker itself stays inside the detector's scale envelope (a 4x
    // marker would outgrow the adaptive-threshold window and vanish).
    const double f = std::min(12.0 / std::max(cols, 1), 8.0 / std::max(rows, 1));
    if (f >= 1.0) {
        return scene;
    }
    const double up = std::ceil(1.0 / f);
    scene.width = static_cast<int>(scene.width * up);
    scene.height = static_cast<int>(scene.height * up);
    scene.marker_center = scene.marker_center * up;
    return scene;
}

Image render_plate(const PlateScene& scene, std::span<const color::Rgb8> well_colors,
                   support::Rng& rng, const std::vector<bool>* filled) {
    validate_inputs(scene, well_colors, filled);
    const std::vector<Vec2> centers = true_well_centers(scene);
    Image img = render_base(scene, centers);
    draw_wells(img, scene, centers, well_colors, filled);
    render_marker(img, MarkerDictionary::standard(), scene.marker_id, scene.marker_center,
                  scene.marker_side_px, scene.angle_rad);
    std::vector<double> nx;
    std::vector<double> nx2;
    apply_sensor_model(img, scene, rng, nx, nx2);
    return img;
}

Image PlateRenderer::render(const PlateScene& scene,
                            std::span<const color::Rgb8> well_colors, support::Rng& rng,
                            const std::vector<bool>* filled) {
    validate_inputs(scene, well_colors, filled);
    if (!base_valid_ || !same_scene(scene, base_scene_)) {
        centers_ = true_well_centers(scene);
        base_ = render_base(scene, centers_);
        base_scene_ = scene;
        base_valid_ = true;
        ++base_rebuilds_;
    } else {
        ++base_hits_;
    }
    Image img = base_;
    draw_wells(img, scene, centers_, well_colors, filled);
    render_marker(img, MarkerDictionary::standard(), scene.marker_id, scene.marker_center,
                  scene.marker_side_px, scene.angle_rad);
    apply_sensor_model(img, scene, rng, illum_nx_, illum_nx2_);
    return img;
}

}  // namespace sdl::imaging
