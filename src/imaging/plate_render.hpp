// Synthetic camera: renders the microplate scene the webcam would see.
//
// This is the substitute for the physical Logitech camera + ring light:
// a 96-well microplate next to a fiducial marker, with realistic
// nuisances — sensor noise, vignetting, an illumination gradient, well
// wall rings, and empty wells that produce the low-contrast circles that
// HoughCircles tends to miss (the false negatives §2.4's grid alignment
// rescues).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "imaging/fiducial.hpp"
#include "imaging/geometry.hpp"
#include "imaging/image.hpp"
#include "support/random.hpp"

namespace sdl::imaging {

/// Geometry shared between renderer and reader, expressed in units of the
/// fiducial marker's side length so the reader can recover everything
/// from the detected marker alone (as the paper's pipeline does).
struct SceneGeometry {
    int rows = 8;
    int cols = 12;
    /// Well pitch in marker-side units.
    double spacing = 0.62;
    /// Well radius in marker-side units.
    double well_radius = 0.24;
    /// Marker center -> well(0,0) center, in the marker's canonical frame.
    Vec2 plate_offset{1.45, -2.17};

    [[nodiscard]] int well_count() const noexcept { return rows * cols; }

    friend bool operator==(const SceneGeometry&, const SceneGeometry&) = default;
};

struct PlateScene {
    int width = 800;
    int height = 600;
    SceneGeometry geometry;

    Vec2 marker_center{110.0, 300.0};
    double marker_side_px = 56.0;
    double angle_rad = 0.0;  ///< scene rotation (plate + marker together)
    std::size_t marker_id = 7;

    color::Rgb8 background{68, 70, 74};    ///< workcell deck
    color::Rgb8 plate_body{206, 204, 198};  ///< plate plastic
    color::Rgb8 well_wall{38, 38, 40};      ///< rim ring of filled wells
    /// Unfilled wells: translucent plastic shows nearly the plate color,
    /// which is what makes HoughCircles "prone to false negatives" on
    /// partially used plates (§2.4). The defaults sit right at the
    /// edge-detection margin so empty wells are found only sporadically —
    /// the grid alignment predicts the rest.
    color::Rgb8 empty_well{201, 199, 194};  ///< unfilled well interior
    color::Rgb8 empty_rim{196, 194, 189};

    double wall_thickness = 0.25;  ///< ring thickness as fraction of radius
    double noise_sigma = 2.0;      ///< Gaussian sensor noise, 8-bit units
    double vignette = 0.10;        ///< corner darkening strength
    Vec2 illum_gradient{0.04, -0.03};  ///< linear shading across the frame

    /// Memberwise exact equality — the PlateRenderer base-raster cache
    /// key. Defaulted so a new field can never silently fall out of the
    /// comparison and leave the cache serving stale rasters.
    friend bool operator==(const PlateScene&, const PlateScene&) = default;
};

/// Renders the scene. `well_colors` has rows*cols entries in row-major
/// order; `filled` marks which wells contain liquid (nullopt = all). The
/// RNG drives sensor noise only.
[[nodiscard]] Image render_plate(const PlateScene& scene,
                                 std::span<const color::Rgb8> well_colors,
                                 support::Rng& rng,
                                 const std::vector<bool>* filled = nullptr);

/// Ground-truth well-center positions for a scene (for tests/metrics).
[[nodiscard]] std::vector<Vec2> true_well_centers(const PlateScene& scene);

/// Adapts a scene to a plate format. Up to the calibrated 8x12 the scene
/// passes through with only rows/cols set (96-well frames stay bitwise
/// identical to the pre-adaptation renderer). Denser formats (384-, 1536-
/// well) shrink the well pitch so the grid spans the same deck area, and
/// upscale the frame + fiducial by the matching integer factor so each
/// well keeps its 96-well *pixel* size — the Hough radius band and the
/// §2.4 marker-relative geometry both keep working unchanged.
[[nodiscard]] PlateScene scene_for_plate(PlateScene scene, int rows, int cols);

/// Field-by-field scene equality (geometry, colors, nuisances) — the
/// base-raster cache key.
[[nodiscard]] bool same_scene(const PlateScene& a, const PlateScene& b) noexcept;

/// Session renderer for a fixed camera. The rasterization up to (and
/// excluding) the wells — deck background plus plate body — depends only
/// on the scene, not on well contents, so consecutive frames of an
/// unchanged scene start from a cached copy of that base raster instead
/// of re-rasterizing it. Wells, marker, illumination, and sensor noise
/// are applied per frame in the exact order render_plate uses, so every
/// frame is bitwise identical to a from-scratch render with the same rng
/// stream. Owns the per-column illumination precompute as well. One per
/// camera; never shared across threads.
class PlateRenderer {
public:
    [[nodiscard]] Image render(const PlateScene& scene,
                               std::span<const color::Rgb8> well_colors,
                               support::Rng& rng,
                               const std::vector<bool>* filled = nullptr);

    /// Frames that reused the cached base raster.
    [[nodiscard]] std::size_t base_hits() const noexcept { return base_hits_; }
    [[nodiscard]] std::size_t base_rebuilds() const noexcept { return base_rebuilds_; }

private:
    bool base_valid_ = false;
    PlateScene base_scene_;
    Image base_;
    std::vector<Vec2> centers_;
    std::vector<double> illum_nx_;   ///< per-column gradient coordinate
    std::vector<double> illum_nx2_;  ///< per-column vignette term
    std::size_t base_hits_ = 0;
    std::size_t base_rebuilds_ = 0;
};

}  // namespace sdl::imaging
