#include "imaging/ppm.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/atomic_io.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

namespace {

void skip_ppm_whitespace(std::istream& in) {
    for (;;) {
        const int c = in.peek();
        if (c == '#') {
            std::string comment;
            std::getline(in, comment);
        } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
            in.get();
        } else {
            return;
        }
    }
}

Image parse_ppm(std::istream& in, const std::string& what) {
    std::string magic;
    in >> magic;
    if (magic != "P6") throw support::Error("io", what + ": not a binary PPM (P6)");
    skip_ppm_whitespace(in);
    int width = 0, height = 0, maxval = 0;
    in >> width;
    skip_ppm_whitespace(in);
    in >> height;
    skip_ppm_whitespace(in);
    in >> maxval;
    if (!in || width <= 0 || height <= 0) {
        throw support::Error("io", what + ": malformed PPM header");
    }
    if (maxval != 255) throw support::Error("io", what + ": only maxval 255 supported");
    in.get();  // single whitespace after header

    Image img(width, height);
    auto bytes = img.bytes();
    in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(bytes.size()));
    if (in.gcount() != static_cast<std::streamsize>(bytes.size())) {
        throw support::Error("io", what + ": truncated PPM pixel data");
    }
    return img;
}

}  // namespace

void save_ppm(const Image& img, const std::string& path) {
    support::atomic_write(path, encode_ppm(img));
}

Image load_ppm(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) throw support::Error("io", "cannot open '" + path + "'");
    return parse_ppm(file, path);
}

void save_pgm(const GrayImage& img, const std::string& path) {
    std::string out;
    char header[64];
    std::snprintf(header, sizeof(header), "P5\n%d %d\n255\n", img.width(), img.height());
    out += header;
    out.reserve(out.size() +
                static_cast<std::size_t>(img.width()) * static_cast<std::size_t>(img.height()));
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            const float v = img.at(x, y);
            const long q = std::lround(support::clamp(v, 0.0F, 1.0F) * 255.0F);
            out.push_back(static_cast<char>(q));
        }
    }
    support::atomic_write(path, out);
}

std::string encode_ppm(const Image& img) {
    std::string out;
    char header[64];
    std::snprintf(header, sizeof(header), "P6\n%d %d\n255\n", img.width(), img.height());
    out += header;
    const auto bytes = img.bytes();
    out.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    return out;
}

Image decode_ppm(const std::string& bytes) {
    std::istringstream in(bytes, std::ios::binary);
    return parse_ppm(in, "<memory>");
}

}  // namespace sdl::imaging
