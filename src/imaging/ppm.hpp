// Netpbm image I/O: binary P6 (RGB) and P5 (grayscale).
//
// Camera frames are archived as PPM for quality control, mirroring the
// paper's raw plate images published to the data portal.
#pragma once

#include <string>

#include "imaging/image.hpp"

namespace sdl::imaging {

/// Writes `img` as binary PPM (P6). Throws Error("io") on failure.
void save_ppm(const Image& img, const std::string& path);

/// Reads a binary PPM (P6) with maxval 255.
[[nodiscard]] Image load_ppm(const std::string& path);

/// Writes a gray plane as binary PGM (P5), clamping values to [0, 1].
void save_pgm(const GrayImage& img, const std::string& path);

/// Serializes to an in-memory PPM byte string (used by the simulated
/// publication flow, which stores images as blobs).
[[nodiscard]] std::string encode_ppm(const Image& img);

/// Parses an in-memory PPM byte string.
[[nodiscard]] Image decode_ppm(const std::string& bytes);

}  // namespace sdl::imaging
