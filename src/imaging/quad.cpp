#include "imaging/quad.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/lstsq.hpp"
#include "support/common.hpp"

namespace sdl::imaging {

namespace {

std::size_t farthest_from(std::span<const Vec2> points, Vec2 ref) {
    std::size_t best = 0;
    double best_d = -1.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double d = distance(points[i], ref);
        if (d > best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

}  // namespace

std::optional<Quad> extract_quad(std::span<const Vec2> boundary) {
    if (boundary.size() < 8) return std::nullopt;

    Vec2 centroid{0, 0};
    for (const Vec2& p : boundary) centroid = centroid + p;
    centroid = centroid * (1.0 / static_cast<double>(boundary.size()));

    // Farthest-point heuristic: c0 is the extreme point from the centroid,
    // c1 the extreme from c0 (a diagonal), c2/c3 the extremes on either
    // side of that diagonal.
    const Vec2 c0 = boundary[farthest_from(boundary, centroid)];
    const Vec2 c1 = boundary[farthest_from(boundary, c0)];

    const Vec2 diag = c1 - c0;
    const double diag_len = diag.norm();
    if (diag_len < 4.0) return std::nullopt;

    double best_pos = 0.0, best_neg = 0.0;
    Vec2 c2 = c0, c3 = c0;
    for (const Vec2& p : boundary) {
        const double side = diag.cross(p - c0) / diag_len;
        if (side > best_pos) {
            best_pos = side;
            c2 = p;
        } else if (side < best_neg) {
            best_neg = side;
            c3 = p;
        }
    }
    // Both sides of the diagonal must contribute a corner.
    if (best_pos < 2.0 || -best_neg < 2.0) return std::nullopt;

    // Order clockwise around the centroid (atan2 in y-down coordinates
    // increases clockwise on screen).
    Quad quad{c0, c2, c1, c3};
    Vec2 mid{0, 0};
    for (const Vec2& p : quad) mid = mid + p;
    mid = mid * 0.25;
    std::sort(quad.begin(), quad.end(), [mid](Vec2 a, Vec2 b) {
        return std::atan2(a.y - mid.y, a.x - mid.x) < std::atan2(b.y - mid.y, b.x - mid.x);
    });

    // Rotate so the corner nearest top-left (smallest x+y) comes first.
    std::size_t start = 0;
    double best_key = quad[0].x + quad[0].y;
    for (std::size_t i = 1; i < 4; ++i) {
        const double key = quad[i].x + quad[i].y;
        if (key < best_key) {
            best_key = key;
            start = i;
        }
    }
    std::rotate(quad.begin(), quad.begin() + static_cast<std::ptrdiff_t>(start), quad.end());
    return quad;
}

double squareness(const Quad& q) noexcept {
    double min_side = 1e300, max_side = 0.0;
    for (int i = 0; i < 4; ++i) {
        const double s = distance(q[static_cast<std::size_t>(i)],
                                  q[static_cast<std::size_t>((i + 1) % 4)]);
        min_side = std::min(min_side, s);
        max_side = std::max(max_side, s);
    }
    return max_side > 0.0 ? min_side / max_side : 0.0;
}

double mean_side(const Quad& q) noexcept {
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) {
        sum += distance(q[static_cast<std::size_t>(i)], q[static_cast<std::size_t>((i + 1) % 4)]);
    }
    return sum / 4.0;
}

Homography Homography::unit_square_to(const Quad& quad) {
    // DLT: for each correspondence (u,v) -> (x,y):
    //   x = (h0 u + h1 v + h2) / (h6 u + h7 v + 1)
    //   y = (h3 u + h4 v + h5) / (h6 u + h7 v + 1)
    // giving two linear equations in h0..h7.
    static constexpr Vec2 kUnit[4] = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
    linalg::Matrix a(8, 8);
    linalg::Vec b(8);
    for (std::size_t i = 0; i < 4; ++i) {
        const double u = kUnit[i].x;
        const double v = kUnit[i].y;
        const double x = quad[i].x;
        const double y = quad[i].y;
        const std::size_t r = 2 * i;
        a(r, 0) = u;
        a(r, 1) = v;
        a(r, 2) = 1;
        a(r, 6) = -u * x;
        a(r, 7) = -v * x;
        b[r] = x;
        a(r + 1, 3) = u;
        a(r + 1, 4) = v;
        a(r + 1, 5) = 1;
        a(r + 1, 6) = -u * y;
        a(r + 1, 7) = -v * y;
        b[r + 1] = y;
    }
    linalg::Vec h;
    try {
        h = linalg::lstsq(a, b, 1e-12);
    } catch (const support::Error&) {
        throw support::Error("vision", "degenerate quad for homography");
    }
    Homography out;
    for (std::size_t i = 0; i < 8; ++i) out.h_[i] = h[i];
    out.h_[8] = 1.0;
    return out;
}

Vec2 Homography::apply(Vec2 uv) const {
    const double w = h_[6] * uv.x + h_[7] * uv.y + h_[8];
    support::check(std::fabs(w) > 1e-12, "homography maps point to infinity");
    return {(h_[0] * uv.x + h_[1] * uv.y + h_[2]) / w,
            (h_[3] * uv.x + h_[4] * uv.y + h_[5]) / w};
}

}  // namespace sdl::imaging
