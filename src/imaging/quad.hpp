// Quadrilateral corner extraction and plane homographies — the geometry
// behind fiducial marker decoding.
#pragma once

#include <array>
#include <optional>
#include <span>

#include "imaging/geometry.hpp"

namespace sdl::imaging {

/// Corners of a convex quadrilateral, ordered clockwise in image
/// coordinates (y-down) starting from the corner nearest the top-left.
using Quad = std::array<Vec2, 4>;

/// Extracts the four corners of an approximately quadrilateral point set
/// (boundary pixels of a blob): the farthest-point heuristic picks
/// extreme vertices, then corners are ordered. Returns nullopt when the
/// set is degenerate (nearly collinear or too small).
[[nodiscard]] std::optional<Quad> extract_quad(std::span<const Vec2> boundary);

/// How square a quad is: min(side)/max(side) in [0,1]; 1 for a square.
[[nodiscard]] double squareness(const Quad& q) noexcept;

/// Mean side length.
[[nodiscard]] double mean_side(const Quad& q) noexcept;

/// Plane projective transform h: (u,v) -> (x,y), fit from 4 point
/// correspondences with the direct linear transform.
class Homography {
public:
    /// Maps the unit square corners (0,0),(1,0),(1,1),(0,1) to `quad`
    /// (in the same clockwise order). Throws Error("vision") if the quad
    /// is degenerate.
    [[nodiscard]] static Homography unit_square_to(const Quad& quad);

    /// Applies the transform to a point.
    [[nodiscard]] Vec2 apply(Vec2 uv) const;

private:
    // Row-major 3x3 matrix with h22 fixed to 1.
    std::array<double, 9> h_{1, 0, 0, 0, 1, 0, 0, 0, 1};
};

}  // namespace sdl::imaging
