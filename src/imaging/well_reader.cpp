#include "imaging/well_reader.hpp"

#include <algorithm>
#include <cmath>

#include "support/common.hpp"

namespace sdl::imaging {

namespace {

/// read_plate's marker choice: the largest detection with the requested
/// id (or the largest of any id when marker_id < 0).
const MarkerDetection* select_marker(const std::vector<MarkerDetection>& markers,
                                     int marker_id) {
    const MarkerDetection* marker = nullptr;
    for (const auto& m : markers) {
        if (marker_id < 0 || m.id == static_cast<std::size_t>(marker_id)) {
            if (marker == nullptr || m.side > marker->side) marker = &m;
        }
    }
    return marker;
}

/// Steps 2-5 of the pipeline, given the detected marker.
WellReadout read_with_marker(const Image& frame, const WellReadParams& params,
                             const MarkerDetection& marker, FrameScratch& scratch) {
    WellReadout out;
    const SceneGeometry& g = params.geometry;
    out.marker = marker;

    // 2. Approximate plate region from marker pose.
    const double s = marker.side;
    const Vec2 ux = Vec2{1, 0}.rotated(marker.angle);
    const Vec2 uy = Vec2{0, 1}.rotated(marker.angle);
    GridModel initial;
    initial.origin = marker.center + ux * (g.plate_offset.x * s) + uy * (g.plate_offset.y * s);
    initial.row_axis = uy * (g.spacing * s);
    initial.col_axis = ux * (g.spacing * s);

    const double pitch = g.spacing * s;
    double min_x = 1e300, min_y = 1e300, max_x = -1e300, max_y = -1e300;
    for (const int r : {0, g.rows - 1}) {
        for (const int c : {0, g.cols - 1}) {
            const Vec2 p = initial.center(r, c);
            min_x = std::min(min_x, p.x);
            max_x = std::max(max_x, p.x);
            min_y = std::min(min_y, p.y);
            max_y = std::max(max_y, p.y);
        }
    }
    const double margin = params.roi_margin * pitch;
    const Rect roi = Rect{static_cast<int>(std::floor(min_x - margin)),
                          static_cast<int>(std::floor(min_y - margin)),
                          static_cast<int>(std::ceil(max_x + margin)),
                          static_cast<int>(std::ceil(max_y + margin))}
                         .clipped(frame.width(), frame.height());

    // 3. Hough circles inside the plate region. Only that region is
    // converted to luma; the transform then sees its whole (pre-cropped)
    // input, and the integer ROI offset is added back to the detected
    // centers — exact, since Hough centers are integer-valued.
    const double expected_r = g.well_radius * s;
    HoughParams hough;
    hough.roi = {0, 0, roi.width(), roi.height()};
    hough.r_min = std::max(2.0, expected_r * (1.0 - params.radius_tolerance));
    hough.r_max = expected_r * (1.0 + params.radius_tolerance);
    hough.min_center_dist = 0.6 * pitch;
    hough.max_circles = static_cast<std::size_t>(g.well_count()) * 2;
    to_gray_roi(frame, roi, scratch.gray_roi);
    const auto circles = hough_circles(scratch.gray_roi, hough, scratch.hough);
    out.hough_circles_found = circles.size();

    // 4. Grid alignment: refine the marker-derived lattice with the
    // detected circle centers; false positives are rejected by the inlier
    // gate, false negatives are filled in by the fitted model.
    std::vector<Vec2>& centers_detected = scratch.circle_centers;
    centers_detected.clear();
    centers_detected.reserve(circles.size());
    for (const auto& c : circles) {
        centers_detected.push_back({c.center.x + roi.x0, c.center.y + roi.y0});
    }

    const GridFit fit = fit_grid(centers_detected, initial, g.rows, g.cols,
                                 params.inlier_radius * pitch);
    out.grid_residual_px = fit.mean_residual;

    // Count distinct lattice nodes with direct circle support.
    std::vector<bool> supported(static_cast<std::size_t>(g.well_count()), false);
    for (const Vec2& p : centers_detected) {
        Vec2 rc;
        try {
            rc = fit.model.to_grid(p);
        } catch (const support::Error&) {
            continue;
        }
        const int r = static_cast<int>(std::lround(rc.x));
        const int c = static_cast<int>(std::lround(rc.y));
        if (r < 0 || r >= g.rows || c < 0 || c >= g.cols) continue;
        if (distance(fit.model.center(r, c), p) <= params.inlier_radius * pitch) {
            supported[static_cast<std::size_t>(r * g.cols + c)] = true;
        }
    }
    out.wells_with_circle = static_cast<std::size_t>(
        std::count(supported.begin(), supported.end(), true));
    out.wells_rescued = static_cast<std::size_t>(g.well_count()) - out.wells_with_circle;

    // 5. Color readout at every predicted center.
    out.centers.reserve(static_cast<std::size_t>(g.well_count()));
    out.colors.reserve(static_cast<std::size_t>(g.well_count()));
    const double sample_r = params.sample_radius * expected_r;
    for (int r = 0; r < g.rows; ++r) {
        for (int c = 0; c < g.cols; ++c) {
            const Vec2 center = fit.model.center(r, c);
            out.centers.push_back(center);
            out.colors.push_back(mean_color_in_disk(frame, center.x, center.y, sample_r));
        }
    }
    out.ok = true;
    return out;
}

}  // namespace

WellReadout read_plate(const Image& frame, const WellReadParams& params) {
    FrameScratch scratch;
    return read_plate(frame, params, scratch);
}

WellReadout read_plate(const Image& frame, const WellReadParams& params,
                       FrameScratch& scratch) {
    // 1. Fiducial marker, full-frame scan.
    detect_markers(frame, MarkerDictionary::standard(), params.marker, scratch.marker,
                   scratch.detections);
    const MarkerDetection* marker = select_marker(scratch.detections, params.marker_id);
    if (marker == nullptr) {
        WellReadout out;
        out.error = "fiducial marker not found";
        return out;
    }
    return read_with_marker(frame, params, *marker, scratch);
}

WellReadout PlateReader::read(const Image& frame) {
    if (hint_.has_value()) {
        // Scan only a padded neighborhood of the last marker pose. The
        // padding keeps the (static) marker blob clear of the region's
        // contamination band, so a hit is bitwise identical to the
        // full-frame detection; anything suspicious falls through.
        const Quad& q = hint_->corners;
        double min_x = q[0].x, max_x = q[0].x, min_y = q[0].y, max_y = q[0].y;
        for (const Vec2& corner : q) {
            min_x = std::min(min_x, corner.x);
            max_x = std::max(max_x, corner.x);
            min_y = std::min(min_y, corner.y);
            max_y = std::max(max_y, corner.y);
        }
        const int pad = marker_region_margin(params_.marker) +
                        static_cast<int>(std::ceil(0.5 * hint_->side)) + 4;
        const Rect region{static_cast<int>(std::floor(min_x)) - pad,
                          static_cast<int>(std::floor(min_y)) - pad,
                          static_cast<int>(std::ceil(max_x)) + pad,
                          static_cast<int>(std::ceil(max_y)) + pad};
        // Detections from the region are exact (contaminated blobs are
        // skipped, not decoded differently); a tracked marker that moved
        // into the contaminated band simply goes undetected here and the
        // full-frame fallback below takes over. This is where the
        // single-tracked-marker assumption bites: a second, larger
        // matching marker outside the region would win a full scan.
        (void)detect_markers_in_region(frame, MarkerDictionary::standard(),
                                       params_.marker, region, scratch_.marker,
                                       scratch_.detections);
        const MarkerDetection* marker =
            select_marker(scratch_.detections, params_.marker_id);
        if (marker != nullptr) {
            ++roi_hits_;
            WellReadout out = read_with_marker(frame, params_, *marker, scratch_);
            out.roi_fast_path = true;
            hint_ = out.marker;
            return out;
        }
    }
    ++full_scans_;
    WellReadout out = read_plate(frame, params_, scratch_);
    if (out.ok) {
        hint_ = out.marker;
    } else {
        hint_.reset();
    }
    return out;
}

}  // namespace sdl::imaging
