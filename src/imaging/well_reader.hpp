// The complete §2.4 image-processing pipeline:
//   1. detect the fiducial marker;
//   2. derive the plate's approximate pixel boundaries from the marker's
//      size and position;
//   3. detect circular wells with the Hough transform inside that region;
//   4. align a lattice to the detected circles, predicting centers for
//      every well — including those HoughCircles missed;
//   5. report the color at each (predicted) well center.
#pragma once

#include <optional>
#include <vector>

#include "imaging/fiducial.hpp"
#include "imaging/gridfit.hpp"
#include "imaging/hough.hpp"
#include "imaging/image.hpp"
#include "imaging/plate_render.hpp"

namespace sdl::imaging {

struct WellReadParams {
    SceneGeometry geometry;          ///< marker-relative plate layout
    int marker_id = -1;              ///< -1 = accept any dictionary marker
    MarkerDetectParams marker;       ///< fiducial detection tuning
    double roi_margin = 1.2;         ///< ROI padding around the grid, in pitches
    double radius_tolerance = 0.45;  ///< Hough radius range around expected
    double inlier_radius = 0.42;     ///< grid assignment gate, in pitches
    double sample_radius = 0.55;     ///< color readout disk, in well radii
};

struct WellReadout {
    bool ok = false;
    std::string error;  ///< set when !ok (e.g. "marker not found")

    std::vector<color::Rgb8> colors;  ///< rows*cols, row-major
    std::vector<Vec2> centers;        ///< predicted well centers
    MarkerDetection marker;

    std::size_t hough_circles_found = 0;  ///< raw circle detections in ROI
    std::size_t wells_with_circle = 0;    ///< lattice nodes with support
    std::size_t wells_rescued = 0;        ///< nodes predicted by grid only
    double grid_residual_px = 0.0;        ///< mean inlier residual
};

/// Runs the full pipeline on one camera frame.
[[nodiscard]] WellReadout read_plate(const Image& frame, const WellReadParams& params);

}  // namespace sdl::imaging
