// The complete §2.4 image-processing pipeline:
//   1. detect the fiducial marker;
//   2. derive the plate's approximate pixel boundaries from the marker's
//      size and position;
//   3. detect circular wells with the Hough transform inside that region;
//   4. align a lattice to the detected circles, predicting centers for
//      every well — including those HoughCircles missed;
//   5. report the color at each (predicted) well center.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "imaging/fiducial.hpp"
#include "imaging/gridfit.hpp"
#include "imaging/hough.hpp"
#include "imaging/image.hpp"
#include "imaging/plate_render.hpp"

namespace sdl::imaging {

struct WellReadParams {
    SceneGeometry geometry;          ///< marker-relative plate layout
    int marker_id = -1;              ///< -1 = accept any dictionary marker
    MarkerDetectParams marker;       ///< fiducial detection tuning
    double roi_margin = 1.2;         ///< ROI padding around the grid, in pitches
    double radius_tolerance = 0.45;  ///< Hough radius range around expected
    double inlier_radius = 0.42;     ///< grid assignment gate, in pitches
    double sample_radius = 0.55;     ///< color readout disk, in well radii
};

struct WellReadout {
    bool ok = false;
    std::string error;  ///< set when !ok (e.g. "marker not found")

    std::vector<color::Rgb8> colors;  ///< rows*cols, row-major
    std::vector<Vec2> centers;        ///< predicted well centers
    MarkerDetection marker;

    std::size_t hough_circles_found = 0;  ///< raw circle detections in ROI
    std::size_t wells_with_circle = 0;    ///< lattice nodes with support
    std::size_t wells_rescued = 0;        ///< nodes predicted by grid only
    double grid_residual_px = 0.0;        ///< mean inlier residual
    /// True when PlateReader served this frame from the marker-ROI fast
    /// path (observability only; the payload is bitwise identical either
    /// way).
    bool roi_fast_path = false;
};

/// Reusable buffer pool for the whole §2.4 pipeline: marker-detection
/// planes, Hough workspace, and the plate-region luma plane persist
/// across frames, so a steady-state read allocates only its returned
/// WellReadout. Owned by whoever loops over frames (one per session —
/// CameraSim-facing readers, benchmarks); never shared across threads.
struct FrameScratch {
    MarkerScratch marker;
    HoughScratch hough;
    GrayImage gray_roi;  ///< plate-region luma (frame ROI, local coords)
    std::vector<MarkerDetection> detections;
    std::vector<Vec2> circle_centers;
};

/// Runs the full pipeline on one camera frame.
[[nodiscard]] WellReadout read_plate(const Image& frame, const WellReadParams& params);

/// read_plate with a persistent buffer pool — bitwise-identical results,
/// no steady-state allocations beyond the readout, and the luma plane is
/// converted only over the plate region the Hough stage actually reads.
[[nodiscard]] WellReadout read_plate(const Image& frame, const WellReadParams& params,
                                     FrameScratch& scratch);

/// Session reader for a fixed camera: between frames the fiducial stays
/// put, so after one successful full-frame read the detector only scans
/// a small neighborhood of the last marker pose (detect_markers_in_region)
/// and the luma conversion covers just the marker and plate ROIs. Any
/// doubt — contaminated region, marker missing or moved — falls back to
/// the full-frame pipeline, so every frame's readout is bitwise
/// identical to read_plate on the same frame (single tracked marker; a
/// scene with several markers of the same id needs full scans).
class PlateReader {
public:
    explicit PlateReader(WellReadParams params) : params_(std::move(params)) {}

    [[nodiscard]] WellReadout read(const Image& frame);

    [[nodiscard]] const WellReadParams& params() const noexcept { return params_; }
    /// Frames served by the marker-ROI fast path / by full-frame scans.
    [[nodiscard]] std::size_t roi_hits() const noexcept { return roi_hits_; }
    [[nodiscard]] std::size_t full_scans() const noexcept { return full_scans_; }

private:
    WellReadParams params_;
    FrameScratch scratch_;
    std::optional<MarkerDetection> hint_;
    std::size_t roi_hits_ = 0;
    std::size_t full_scans_ = 0;
};

}  // namespace sdl::imaging
