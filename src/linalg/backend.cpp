#include "linalg/backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "linalg/cholesky.hpp"
#include "linalg/fastmath.hpp"
#include "support/common.hpp"

namespace sdl::linalg {

namespace {

// ---------------------------------------------------------------- strict
//
// The bitwise reference: every method delegates to the portable kernel
// the repo has always run (free functions in matrix.cpp / fastmath.hpp /
// cholesky.cpp's detail namespace), so "strict" cannot drift from the
// historical output by construction.

class StrictBackend final : public LinalgBackend {
public:
    [[nodiscard]] std::string_view name() const noexcept override { return "strict"; }

    [[nodiscard]] Tolerance tolerance(Kernel /*kernel*/) const noexcept override {
        return {0.0, 0.0};  // bitwise, for every kernel
    }

    [[nodiscard]] Matrix cross_sq_dist(const Matrix& a, const Matrix& b) const override {
        return linalg::cross_sq_dist(a, b);
    }

    void vexp(std::span<const double> x, std::span<double> out) const noexcept override {
        linalg::vexp(x, out);
    }

    void rbf_from_sq_dist(Matrix& d2, double signal_var,
                          double lengthscale) const noexcept override {
        // Exactly the operations rbf_kernel runs per element — the same
        // -0.5*d2/(l*l) argument, the same fast_exp (via its array
        // form), and the signal-variance scale — so each entry carries
        // rbf_kernel's bits.
        const std::size_t rows = d2.rows();
        const std::size_t m = d2.cols();
        for (std::size_t i = 0; i < rows; ++i) {
            const std::span<double> row = d2.row(i);
            for (std::size_t j = 0; j < m; ++j) {
                row[j] = -0.5 * row[j] / (lengthscale * lengthscale);
            }
            linalg::vexp(row, row);
            for (std::size_t j = 0; j < m; ++j) row[j] = signal_var * row[j];
        }
    }

    [[nodiscard]] double rbf_kernel(std::span<const double> a, std::span<const double> b,
                                    double signal_var,
                                    double lengthscale) const noexcept override {
        double d2 = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double d = a[i] - b[i];
            d2 += d * d;
        }
        // linalg::fast_exp everywhere a kernel value is produced — scalar
        // and batched paths must agree bit for bit (fastmath.hpp).
        return signal_var * linalg::fast_exp(-0.5 * d2 / (lengthscale * lengthscale));
    }

    [[nodiscard]] Matrix cholesky_factor(const Matrix& a) const override {
        return detail::cholesky_factor_portable(a);
    }

    void cholesky_extend(Matrix& l, const Vec& b, double c) const override {
        detail::cholesky_extend_portable(l, b, c);
    }

    void solve_lower_multi(const Matrix& l, Matrix& b) const override {
        detail::solve_lower_multi_portable(l, b);
    }

    void solve_lower_multi_fused(const Matrix& l, Matrix& b,
                                 std::span<const double> weights,
                                 std::span<double> weighted_sums,
                                 std::span<double> sq_norms) const override {
        detail::solve_lower_multi_fused_portable(l, b, weights, weighted_sums, sq_norms);
    }
};

// ------------------------------------------------------------------ fast
//
// SIMD-shaped variants: the same O() algorithms with their reductions
// re-associated for vector lanes — multi-accumulator dot products,
// norm-expansion distances, reciprocal-multiply triangular sweeps, and
// -march-aware tile widths. Each re-association changes rounding, so
// fast declares per-kernel tolerance envelopes instead of bitwise
// identity; tests/test_backend_diff.cpp enforces them.

/// Tile width for the multi-RHS sweep: wider vectors want wider tiles
/// before the per-row sweep overhead amortizes.
#if defined(__AVX512F__)
constexpr std::size_t kFastTile = 128;
#elif defined(__AVX2__)
constexpr std::size_t kFastTile = 96;
#else
constexpr std::size_t kFastTile = 64;
#endif

/// Dot product with four independent accumulators combined pairwise —
/// breaks the serial add chain so the loop vectorizes and pipelines.
[[nodiscard]] double dot4(const double* x, const double* y, std::size_t len) noexcept {
    double s0 = 0.0;
    double s1 = 0.0;
    double s2 = 0.0;
    double s3 = 0.0;
    std::size_t k = 0;
    for (; k + 4 <= len; k += 4) {
        s0 += x[k] * y[k];
        s1 += x[k + 1] * y[k + 1];
        s2 += x[k + 2] * y[k + 2];
        s3 += x[k + 3] * y[k + 3];
    }
    double tail = 0.0;
    for (; k < len; ++k) tail += x[k] * y[k];
    return ((s0 + s1) + (s2 + s3)) + tail;
}

template <bool Fused>
void fast_lower_sweep(const Matrix& l, Matrix& b, std::span<const double> weights,
                      std::span<double> weighted_sums, std::span<double> sq_norms) {
    const std::size_t n = l.rows();
    const std::size_t m = b.cols();
    for (std::size_t j0 = 0; j0 < m; j0 += kFastTile) {
        const std::size_t tile = std::min(kFastTile, m - j0);
        for (std::size_t i = 0; i < n; ++i) {
            double* row_i = b.row(i).data() + j0;
            if constexpr (Fused) {
                const double wi = weights[i];
                double* wsum = weighted_sums.data() + j0;
                for (std::size_t j = 0; j < tile; ++j) wsum[j] += row_i[j] * wi;
            }
            // Two update rows per pass halves the traffic over row_i
            // (the bandwidth-bound half of the sweep).
            std::size_t k = 0;
            for (; k + 2 <= i; k += 2) {
                const double lik0 = l(i, k);
                const double lik1 = l(i, k + 1);
                const double* row_k0 = b.row(k).data() + j0;
                const double* row_k1 = b.row(k + 1).data() + j0;
                for (std::size_t j = 0; j < tile; ++j) {
                    row_i[j] -= lik0 * row_k0[j] + lik1 * row_k1[j];
                }
            }
            for (; k < i; ++k) {
                const double lik = l(i, k);
                const double* row_k = b.row(k).data() + j0;
                for (std::size_t j = 0; j < tile; ++j) row_i[j] -= lik * row_k[j];
            }
            const double inv = 1.0 / l(i, i);
            for (std::size_t j = 0; j < tile; ++j) row_i[j] *= inv;
            if constexpr (Fused) {
                double* sq = sq_norms.data() + j0;
                for (std::size_t j = 0; j < tile; ++j) sq[j] += row_i[j] * row_i[j];
            }
        }
    }
}

class FastBackend final : public LinalgBackend {
public:
    [[nodiscard]] std::string_view name() const noexcept override { return "fast"; }

    [[nodiscard]] Tolerance tolerance(Kernel kernel) const noexcept override {
        // Envelopes are |fast - strict| <= abs + rel * max(|strict|,
        // input max_abs); set from the harness's observed maxima with
        // two-plus orders of magnitude of headroom (see
        // docs/ARCHITECTURE.md "linalg backends").
        switch (kernel) {
            case Kernel::kCrossSqDist:
                // Norm expansion cancels catastrophically only near
                // d2 = 0, where the abs term covers it.
                return {1e-12, 1e-12};
            case Kernel::kVexp:
                return {0.0, 0.0};  // shares strict's fast_exp verbatim
            case Kernel::kRbfFromSqDist:
            case Kernel::kRbfKernel:
                // The exponent is formed as d2 * (-0.5/l^2): a couple of
                // ulp of argument error, amplified by |argument|.
                // Observed worst over the sweep: ~2e-16.
                return {1e-13, 1e-14};
            case Kernel::kCholeskyFactor:
            case Kernel::kCholeskyExtend:
                // Re-associated pivots lose accuracy with conditioning;
                // near the GP jitter floor the last pivots carry the
                // brunt of it. Observed worst (duplicate points, noise
                // 1e-9): ~4e-12.
                return {1e-9, 1e-10};
            case Kernel::kSolveLowerMulti:
            case Kernel::kSolveLowerMultiFused:
                // Reciprocal-multiply rows + 2-way unroll, amplified by
                // the factor's conditioning. Observed worst: ~5e-14.
                return {1e-10, 1e-11};
        }
        return {1e-6, 1e-6};  // unreachable; keeps -Wreturn-type honest
    }

    [[nodiscard]] Matrix cross_sq_dist(const Matrix& a, const Matrix& b) const override {
        support::check(a.cols() == b.cols(), "cross_sq_dist: dimension mismatch");
        const std::size_t n = a.rows();
        const std::size_t m = b.rows();
        const std::size_t d = a.cols();
        // Norm expansion: |a_i - b_j|^2 = |a_i|^2 + |b_j|^2 - 2 a_i·b_j.
        // The cross term is a rank-d update with the inner loop
        // contiguous over j (b pre-transposed), so the whole entry
        // stream vectorizes; the clamp soaks up the cancellation that
        // can push tiny distances slightly negative.
        const Matrix bt = b.transposed();
        Vec b_norms(m);
        for (std::size_t j = 0; j < m; ++j) {
            const double* bj = b.row(j).data();
            b_norms[j] = dot4(bj, bj, d);
        }
        Matrix out(n, m);
        for (std::size_t i = 0; i < n; ++i) {
            const double* ai = a.row(i).data();
            const double a_norm = dot4(ai, ai, d);
            double* orow = out.row(i).data();
            for (std::size_t j = 0; j < m; ++j) orow[j] = a_norm + b_norms[j];
            for (std::size_t k = 0; k < d; ++k) {
                const double aik2 = -2.0 * ai[k];
                const double* btk = bt.row(k).data();
                for (std::size_t j = 0; j < m; ++j) orow[j] += aik2 * btk[j];
            }
            for (std::size_t j = 0; j < m; ++j) orow[j] = orow[j] > 0.0 ? orow[j] : 0.0;
        }
        return out;
    }

    void vexp(std::span<const double> x, std::span<double> out) const noexcept override {
        linalg::vexp(x, out);  // already branch-light and vectorizable
    }

    void rbf_from_sq_dist(Matrix& d2, double signal_var,
                          double lengthscale) const noexcept override {
        // One fused pass with the exponent scale hoisted to a single
        // reciprocal multiply.
        const double c = -0.5 / (lengthscale * lengthscale);
        const std::size_t rows = d2.rows();
        const std::size_t m = d2.cols();
        for (std::size_t i = 0; i < rows; ++i) {
            const std::span<double> row = d2.row(i);
            for (std::size_t j = 0; j < m; ++j) {
                row[j] = signal_var * fast_exp(row[j] * c);
            }
        }
    }

    [[nodiscard]] double rbf_kernel(std::span<const double> a, std::span<const double> b,
                                    double signal_var,
                                    double lengthscale) const noexcept override {
        double d2 = 0.0;
        for (std::size_t i = 0; i < a.size(); ++i) {
            const double d = a[i] - b[i];
            d2 += d * d;
        }
        const double c = -0.5 / (lengthscale * lengthscale);
        return signal_var * fast_exp(d2 * c);
    }

    [[nodiscard]] Matrix cholesky_factor(const Matrix& a) const override {
        const std::size_t n = a.rows();
        Matrix l(n, n);
        for (std::size_t j = 0; j < n; ++j) {
            const double* lj = l.row(j).data();
            double diag = a(j, j) - dot4(lj, lj, j);
            if (!(diag > 0.0) || !std::isfinite(diag)) {
                throw support::Error("linalg", "matrix is not positive definite (pivot " +
                                                   std::to_string(j) + ")");
            }
            const double ljj = std::sqrt(diag);
            l(j, j) = ljj;
            const double inv = 1.0 / ljj;
            for (std::size_t i = j + 1; i < n; ++i) {
                const double s = a(i, j) - dot4(l.row(i).data(), lj, j);
                l(i, j) = s * inv;
            }
        }
        return l;
    }

    void cholesky_extend(Matrix& l_, const Vec& b, double c) const override {
        const std::size_t n = l_.rows();
        Vec y(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double s = b[i] - dot4(l_.row(i).data(), y.data(), i);
            y[i] = s / l_(i, i);
        }
        const double d2 = c - dot4(y.data(), y.data(), n);
        if (!(d2 > 0.0) || !std::isfinite(d2)) {
            throw support::Error("linalg",
                                 "extend: matrix is not positive definite (pivot " +
                                     std::to_string(n) + ")");
        }
        Matrix grown(n + 1, n + 1);
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
        }
        for (std::size_t k = 0; k < n; ++k) grown(n, k) = y[k];
        grown(n, n) = std::sqrt(d2);
        l_ = std::move(grown);
    }

    void solve_lower_multi(const Matrix& l, Matrix& b) const override {
        fast_lower_sweep<false>(l, b, {}, {}, {});
    }

    void solve_lower_multi_fused(const Matrix& l, Matrix& b,
                                 std::span<const double> weights,
                                 std::span<double> weighted_sums,
                                 std::span<double> sq_norms) const override {
        fast_lower_sweep<true>(l, b, weights, weighted_sums, sq_norms);
    }
};

}  // namespace

const LinalgBackend& strict_backend() noexcept {
    static const StrictBackend backend;
    return backend;
}

const LinalgBackend& fast_backend() noexcept {
    static const FastBackend backend;
    return backend;
}

const std::vector<std::string>& backend_names() {
    static const std::vector<std::string> names{"strict", "fast"};
    return names;
}

bool is_backend_name(std::string_view name) noexcept {
    return name == "strict" || name == "fast";
}

const LinalgBackend& backend_by_name(std::string_view name) {
    if (name == "strict") return strict_backend();
    if (name == "fast") return fast_backend();
    std::string valid;
    for (const std::string& known : backend_names()) {
        if (!valid.empty()) valid += ", ";
        valid += known;
    }
    throw support::ConfigError("unknown linalg backend '" + std::string(name) +
                               "' (valid backends: " + valid + ")");
}

const std::string& default_backend_name() {
    static const std::string name = [] {
        const char* env = std::getenv("SDLBENCH_LINALG_BACKEND");
        if (env == nullptr || *env == '\0') return std::string("strict");
        (void)backend_by_name(env);  // typos in the env var fail loudly
        return std::string(env);
    }();
    return name;
}

}  // namespace sdl::linalg
