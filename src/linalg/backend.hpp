// Pluggable linear-algebra backends for the GP batch-inference seam.
//
// Every hot kernel the Bayesian-optimization loop leans on — pairwise
// squared distances, the batched RBF map, blocked Cholesky factor /
// rank-1 extension, and the multi-RHS triangular solves — is routed
// through a LinalgBackend so implementations can be swapped per run
// without touching the solver. Two backends ship today:
//
//   strict  The portable reference kernels, verbatim. This is the
//           bitwise anchor of the repo's reproducibility contract:
//           same spec => byte-identical campaign.json, on every
//           machine, at every thread count. All defaults resolve here.
//
//   fast    Explicit SIMD-shaped variants (multi-accumulator dot
//           products, reciprocal-multiply triangular sweeps, -march
//           aware tile sizes). Not bitwise identical to strict; each
//           kernel instead declares a tolerance envelope that the
//           differential harness (tests/test_backend_diff.cpp)
//           enforces over randomized inputs.
//
// A backend is only trusted once the differential harness has compared
// it against strict across the randomized input space — new backends
// (BLAS, GPU) land by implementing this interface and extending that
// harness, not by editing the solver.
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "linalg/matrix.hpp"

namespace sdl::linalg {

class LinalgBackend {
public:
    /// The kernels a backend implements; used to key tolerance
    /// envelopes and the differential harness's per-kernel sweeps.
    enum class Kernel {
        kCrossSqDist,
        kVexp,
        kRbfFromSqDist,
        kRbfKernel,
        kCholeskyFactor,
        kCholeskyExtend,
        kSolveLowerMulti,
        kSolveLowerMultiFused,
    };

    /// Declared accuracy envelope versus the strict reference for one
    /// kernel: every output element must satisfy
    ///   |fast - strict| <= abs + rel * max(|strict|, scale)
    /// where `scale` is the kernel's natural magnitude (the harness
    /// passes the input's max_abs). {0, 0} means bitwise identical.
    struct Tolerance {
        double rel = 0.0;
        double abs = 0.0;
        [[nodiscard]] bool bitwise() const noexcept { return rel == 0.0 && abs == 0.0; }
    };

    virtual ~LinalgBackend() = default;

    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    /// The envelope this backend promises for `kernel`; enforced by
    /// tests/test_backend_diff.cpp over seeded randomized inputs.
    [[nodiscard]] virtual Tolerance tolerance(Kernel kernel) const noexcept = 0;

    /// Pairwise squared Euclidean distances (see linalg::cross_sq_dist).
    [[nodiscard]] virtual Matrix cross_sq_dist(const Matrix& a, const Matrix& b) const = 0;

    /// Elementwise exp; in-place (out == x) must be supported.
    virtual void vexp(std::span<const double> x, std::span<double> out) const noexcept = 0;

    /// In-place map of a squared-distance matrix to RBF kernel values:
    ///   d2(i, j) -> signal_var * exp(-0.5 * d2(i, j) / lengthscale^2)
    virtual void rbf_from_sq_dist(Matrix& d2, double signal_var,
                                  double lengthscale) const noexcept = 0;

    /// One RBF kernel value for a single pair of points.
    [[nodiscard]] virtual double rbf_kernel(std::span<const double> a,
                                            std::span<const double> b, double signal_var,
                                            double lengthscale) const noexcept = 0;

    /// Lower-triangular Cholesky factor L of the SPD matrix `a` (upper
    /// triangle of the result is zero). Throws Error("linalg") when `a`
    /// is not numerically positive definite.
    [[nodiscard]] virtual Matrix cholesky_factor(const Matrix& a) const = 0;

    /// Rank-1 extension of an n x n factor `l` to the factor of
    /// [[A, b], [b^T, c]] in O(n^2). Throws Error("linalg") (leaving
    /// `l` unchanged) when the extended matrix is not positive definite.
    virtual void cholesky_extend(Matrix& l, const Vec& b, double c) const = 0;

    /// Multi-RHS forward substitution, in place: solves L Y = B for all
    /// columns of `b` at once. Sizes are validated by the caller
    /// (linalg::Cholesky).
    virtual void solve_lower_multi(const Matrix& l, Matrix& b) const = 0;

    /// solve_lower_multi fused with the two GP reductions (posterior
    /// mean and |L^-1 k_*|^2 — see Cholesky::solve_lower_multi_fused).
    /// `weighted_sums` and `sq_norms` arrive zeroed; implementations
    /// accumulate into them.
    virtual void solve_lower_multi_fused(const Matrix& l, Matrix& b,
                                         std::span<const double> weights,
                                         std::span<double> weighted_sums,
                                         std::span<double> sq_norms) const = 0;
};

/// The portable reference backend (bitwise contract). Lives for the
/// whole program; safe to hold by pointer.
[[nodiscard]] const LinalgBackend& strict_backend() noexcept;

/// The SIMD-shaped backend (tolerance-envelope contract).
[[nodiscard]] const LinalgBackend& fast_backend() noexcept;

/// Registered backend names, in presentation order ("strict" first).
[[nodiscard]] const std::vector<std::string>& backend_names();

[[nodiscard]] bool is_backend_name(std::string_view name) noexcept;

/// Looks a backend up by name; throws ConfigError naming the valid set
/// when `name` is unknown — config parsing and the CLI route every
/// user-supplied backend name through here so typos fail loudly.
[[nodiscard]] const LinalgBackend& backend_by_name(std::string_view name);

/// The process-default backend name: "strict" unless the
/// SDLBENCH_LINALG_BACKEND environment variable names another
/// registered backend (how CI's backend-matrix leg reruns the tier-1
/// suites on `fast` without touching any spec file). Read once, at
/// first use; an unknown name in the env var throws ConfigError.
[[nodiscard]] const std::string& default_backend_name();

}  // namespace sdl::linalg
