#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/backend.hpp"
#include "support/common.hpp"

namespace sdl::linalg {

namespace detail {

Matrix cholesky_factor_portable(const Matrix& a) {
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag)) {
            throw support::Error("linalg", "matrix is not positive definite (pivot " +
                                               std::to_string(j) + ")");
        }
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
            l(i, j) = s / ljj;
        }
    }
    return l;
}

Vec solve_lower_portable(const Matrix& l, const Vec& b) {
    const std::size_t n = l.rows();
    Vec y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * y[k];
        y[i] = s / l(i, i);
    }
    return y;
}

void cholesky_extend_portable(Matrix& l_, const Vec& b, double c) {
    const std::size_t n = l_.rows();
    // New bottom row: l = L⁻¹ b — the same recurrence a full
    // factorization would run for row n, in the same accumulation order.
    const Vec l = solve_lower_portable(l_, b);
    double d2 = c;
    for (std::size_t k = 0; k < n; ++k) d2 -= l[k] * l[k];
    if (!(d2 > 0.0) || !std::isfinite(d2)) {
        throw support::Error("linalg",
                             "extend: matrix is not positive definite (pivot " +
                                 std::to_string(n) + ")");
    }
    Matrix grown(n + 1, n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
    }
    for (std::size_t k = 0; k < n; ++k) grown(n, k) = l[k];
    grown(n, n) = std::sqrt(d2);
    l_ = std::move(grown);
}

namespace {

/// Shared L1-tiled multi-RHS forward-substitution sweep. Tiling keeps
/// each tile's active slab L1-resident while the O(n^2) row sweep runs
/// over it — without it, every row pass streams the whole n x m matrix
/// and the solve goes memory-bound. Columns are independent, so tiling
/// leaves every element's operation sequence (and its bits) unchanged.
/// The Fused flag adds the two GP reductions to the same sweep; keeping
/// one body means the plain and fused variants cannot drift apart.
template <bool Fused>
void tiled_lower_sweep(const Matrix& l, Matrix& b, std::span<const double> weights,
                       std::span<double> weighted_sums, std::span<double> sq_norms) {
    const std::size_t n = l.rows();
    const std::size_t m = b.cols();
    constexpr std::size_t kTile = 48;
    for (std::size_t j0 = 0; j0 < m; j0 += kTile) {
        const std::size_t tile = std::min(kTile, m - j0);
        for (std::size_t i = 0; i < n; ++i) {
            double* row_i = b.row(i).data() + j0;
            if constexpr (Fused) {
                // Row i still holds the original right-hand sides here.
                const double wi = weights[i];
                double* wsum = weighted_sums.data() + j0;
                for (std::size_t j = 0; j < tile; ++j) wsum[j] += row_i[j] * wi;
            }
            for (std::size_t k = 0; k < i; ++k) {
                const double lik = l(i, k);
                const double* row_k = b.row(k).data() + j0;
                for (std::size_t j = 0; j < tile; ++j) row_i[j] -= lik * row_k[j];
            }
            const double lii = l(i, i);
            for (std::size_t j = 0; j < tile; ++j) row_i[j] /= lii;
            if constexpr (Fused) {
                double* sq = sq_norms.data() + j0;
                for (std::size_t j = 0; j < tile; ++j) sq[j] += row_i[j] * row_i[j];
            }
        }
    }
}

}  // namespace

void solve_lower_multi_portable(const Matrix& l, Matrix& b) {
    tiled_lower_sweep<false>(l, b, {}, {}, {});
}

void solve_lower_multi_fused_portable(const Matrix& l, Matrix& b,
                                      std::span<const double> weights,
                                      std::span<double> weighted_sums,
                                      std::span<double> sq_norms) {
    tiled_lower_sweep<true>(l, b, weights, weighted_sums, sq_norms);
}

}  // namespace detail

Cholesky::Cholesky(const Matrix& a) : Cholesky(a, strict_backend()) {}

Cholesky::Cholesky(const Matrix& a, const LinalgBackend& backend) : backend_(&backend) {
    support::check(a.rows() == a.cols(), "cholesky: matrix must be square");
    l_ = backend_->cholesky_factor(a);
}

Vec Cholesky::solve_lower(const Vec& b) const {
    support::check(b.size() == size(), "cholesky solve: size mismatch");
    return detail::solve_lower_portable(l_, b);
}

Vec Cholesky::solve(const Vec& b) const {
    const std::size_t n = size();
    Vec y = solve_lower(b);
    // Back substitution with Lᵀ.
    Vec x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
        x[ii] = s / l_(ii, ii);
    }
    return x;
}

void Cholesky::solve_lower_multi(Matrix& b) const {
    support::check(b.rows() == size(), "cholesky solve_lower_multi: size mismatch");
    backend_->solve_lower_multi(l_, b);
}

void Cholesky::solve_lower_multi_fused(Matrix& b, std::span<const double> weights,
                                       std::span<double> weighted_sums,
                                       std::span<double> sq_norms) const {
    const std::size_t n = size();
    support::check(b.rows() == n, "cholesky solve_lower_multi: size mismatch");
    const std::size_t m = b.cols();
    support::check(weights.size() == n && weighted_sums.size() == m &&
                       sq_norms.size() == m,
                   "cholesky solve_lower_multi_fused: reduction size mismatch");
    for (std::size_t j = 0; j < m; ++j) {
        weighted_sums[j] = 0.0;
        sq_norms[j] = 0.0;
    }
    backend_->solve_lower_multi_fused(l_, b, weights, weighted_sums, sq_norms);
}

void Cholesky::extend(const Vec& b, double c) {
    support::check(b.size() == size(), "cholesky extend: size mismatch");
    backend_->cholesky_extend(l_, b, c);
}

double Cholesky::log_det() const noexcept {
    double s = 0.0;
    for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
    return 2.0 * s;
}

Cholesky cholesky_with_jitter(Matrix a, double initial_jitter, int max_attempts) {
    return cholesky_with_jitter(std::move(a), strict_backend(), initial_jitter,
                                max_attempts);
}

Cholesky cholesky_with_jitter(Matrix a, const LinalgBackend& backend,
                              double initial_jitter, int max_attempts) {
    double jitter = initial_jitter;
    // Scale the first jitter to the matrix magnitude so tiny and huge
    // kernels both factor on early attempts.
    const double scale = a.max_abs();
    if (scale > 0.0) jitter *= scale;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        try {
            return Cholesky(a, backend);
        } catch (const support::Error&) {
            a.add_diagonal(jitter);
            jitter *= 10.0;
        }
    }
    return Cholesky(a, backend);  // Final attempt; propagate its error if it fails.
}

}  // namespace sdl::linalg
