#include "linalg/cholesky.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::linalg {

Cholesky::Cholesky(const Matrix& a) {
    support::check(a.rows() == a.cols(), "cholesky: matrix must be square");
    const std::size_t n = a.rows();
    l_ = Matrix(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag)) {
            throw support::Error("linalg", "matrix is not positive definite (pivot " +
                                               std::to_string(j) + ")");
        }
        const double ljj = std::sqrt(diag);
        l_(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = a(i, j);
            for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
            l_(i, j) = s / ljj;
        }
    }
}

Vec Cholesky::solve_lower(const Vec& b) const {
    const std::size_t n = size();
    support::check(b.size() == n, "cholesky solve: size mismatch");
    Vec y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
        y[i] = s / l_(i, i);
    }
    return y;
}

Vec Cholesky::solve(const Vec& b) const {
    const std::size_t n = size();
    Vec y = solve_lower(b);
    // Back substitution with Lᵀ.
    Vec x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
        x[ii] = s / l_(ii, ii);
    }
    return x;
}

void Cholesky::extend(const Vec& b, double c) {
    const std::size_t n = size();
    support::check(b.size() == n, "cholesky extend: size mismatch");
    // New bottom row: l = L⁻¹ b — the same recurrence a full
    // factorization would run for row n, in the same accumulation order.
    const Vec l = solve_lower(b);
    double d2 = c;
    for (std::size_t k = 0; k < n; ++k) d2 -= l[k] * l[k];
    if (!(d2 > 0.0) || !std::isfinite(d2)) {
        throw support::Error("linalg",
                             "extend: matrix is not positive definite (pivot " +
                                 std::to_string(n) + ")");
    }
    Matrix grown(n + 1, n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
    }
    for (std::size_t k = 0; k < n; ++k) grown(n, k) = l[k];
    grown(n, n) = std::sqrt(d2);
    l_ = std::move(grown);
}

double Cholesky::log_det() const noexcept {
    double s = 0.0;
    for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
    return 2.0 * s;
}

Cholesky cholesky_with_jitter(Matrix a, double initial_jitter, int max_attempts) {
    double jitter = initial_jitter;
    // Scale the first jitter to the matrix magnitude so tiny and huge
    // kernels both factor on early attempts.
    const double scale = a.max_abs();
    if (scale > 0.0) jitter *= scale;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        try {
            return Cholesky(a);
        } catch (const support::Error&) {
            a.add_diagonal(jitter);
            jitter *= 10.0;
        }
    }
    return Cholesky(a);  // Final attempt; propagate its error if it fails.
}

}  // namespace sdl::linalg
