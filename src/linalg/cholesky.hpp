// Cholesky factorization of symmetric positive-definite matrices.
//
// The Gaussian-process solver factors its kernel matrix once per fit and
// reuses the factor for solves and log-determinants (marginal likelihood).
#pragma once

#include "linalg/matrix.hpp"

namespace sdl::linalg {

class Cholesky {
public:
    /// Factors A = L Lᵀ. Throws Error("linalg") if A is not (numerically)
    /// positive definite; callers typically add jitter and retry.
    explicit Cholesky(const Matrix& a);

    /// Solves A x = b via forward + back substitution.
    [[nodiscard]] Vec solve(const Vec& b) const;

    /// Solves L y = b (forward substitution only).
    [[nodiscard]] Vec solve_lower(const Vec& b) const;

    /// log(det(A)) = 2 * sum(log(L_ii)); needed by GP marginal likelihood.
    [[nodiscard]] double log_det() const noexcept;

    /// Rank-1 extension: grows the factor of the n×n matrix A to the
    /// factor of [[A, b], [bᵀ, c]] in O(n²) — one forward substitution
    /// for the new row plus a copy — instead of the O(n³) refactorization.
    /// The arithmetic matches a from-scratch Cholesky of the extended
    /// matrix operation for operation, so the result is bitwise identical
    /// to refactoring. Throws Error("linalg") when the extended matrix is
    /// not positive definite (the factor is left unchanged).
    void extend(const Vec& b, double c);

    [[nodiscard]] const Matrix& lower() const noexcept { return l_; }
    [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }

private:
    Matrix l_;
};

/// Factors A + jitter·I, growing jitter geometrically until the
/// factorization succeeds (at most `max_attempts` tries).
[[nodiscard]] Cholesky cholesky_with_jitter(Matrix a, double initial_jitter = 1e-10,
                                            int max_attempts = 8);

}  // namespace sdl::linalg
