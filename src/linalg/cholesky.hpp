// Cholesky factorization of symmetric positive-definite matrices.
//
// The Gaussian-process solver factors its kernel matrix once per fit and
// reuses the factor for solves and log-determinants (marginal likelihood).
#pragma once

#include "linalg/matrix.hpp"

namespace sdl::linalg {

class Cholesky {
public:
    /// Factors A = L Lᵀ. Throws Error("linalg") if A is not (numerically)
    /// positive definite; callers typically add jitter and retry.
    explicit Cholesky(const Matrix& a);

    /// Solves A x = b via forward + back substitution.
    [[nodiscard]] Vec solve(const Vec& b) const;

    /// Solves L y = b (forward substitution only).
    [[nodiscard]] Vec solve_lower(const Vec& b) const;

    /// log(det(A)) = 2 * sum(log(L_ii)); needed by GP marginal likelihood.
    [[nodiscard]] double log_det() const noexcept;

    [[nodiscard]] const Matrix& lower() const noexcept { return l_; }
    [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }

private:
    Matrix l_;
};

/// Factors A + jitter·I, growing jitter geometrically until the
/// factorization succeeds (at most `max_attempts` tries).
[[nodiscard]] Cholesky cholesky_with_jitter(Matrix a, double initial_jitter = 1e-10,
                                            int max_attempts = 8);

}  // namespace sdl::linalg
