// Cholesky factorization of symmetric positive-definite matrices.
//
// The Gaussian-process solver factors its kernel matrix once per fit and
// reuses the factor for solves and log-determinants (marginal likelihood).
// The factorization, rank-1 extension, and multi-RHS sweeps are routed
// through a LinalgBackend (linalg/backend.hpp); the default is the
// strict portable reference, which keeps the repo's bitwise-identity
// contract intact.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace sdl::linalg {

class LinalgBackend;

namespace detail {

/// The portable reference kernels. These are the algorithms Cholesky has
/// always run, extracted as free functions so the strict LinalgBackend
/// delegates to the exact same code instead of a copy that could drift.
/// Their bits define the reproducibility contract; do not "optimize"
/// them — that is what other backends are for.
[[nodiscard]] Matrix cholesky_factor_portable(const Matrix& a);
[[nodiscard]] Vec solve_lower_portable(const Matrix& l, const Vec& b);
void cholesky_extend_portable(Matrix& l, const Vec& b, double c);
void solve_lower_multi_portable(const Matrix& l, Matrix& b);
/// `weighted_sums` / `sq_norms` must arrive zeroed; accumulates into them.
void solve_lower_multi_fused_portable(const Matrix& l, Matrix& b,
                                      std::span<const double> weights,
                                      std::span<double> weighted_sums,
                                      std::span<double> sq_norms);

}  // namespace detail

class Cholesky {
public:
    /// Factors A = L Lᵀ with the strict (bitwise reference) backend.
    /// Throws Error("linalg") if A is not (numerically) positive
    /// definite; callers typically add jitter and retry.
    explicit Cholesky(const Matrix& a);

    /// Factors with an explicit backend; subsequent extend() and
    /// multi-RHS solves run on the same backend.
    Cholesky(const Matrix& a, const LinalgBackend& backend);

    /// Solves A x = b via forward + back substitution.
    [[nodiscard]] Vec solve(const Vec& b) const;

    /// Solves L y = b (forward substitution only).
    [[nodiscard]] Vec solve_lower(const Vec& b) const;

    /// Multi-RHS forward substitution, in place: solves L Y = B for all
    /// columns of the n x m matrix `b` at once (column j of `b` is one
    /// right-hand side; on return it holds the corresponding solution).
    /// The update is blocked by rows — row i is finished with one axpy
    /// per prior row, each contiguous across all m systems — so the
    /// inner loops vectorize where the per-column dependency chain of
    /// solve_lower cannot. Under the strict backend every column's
    /// result is bitwise identical to solve_lower on that column: per
    /// element the same multiplies and subtractions run in the same
    /// order, only interleaved across columns.
    void solve_lower_multi(Matrix& b) const;

    /// solve_lower_multi fused with the two reductions GP batch
    /// prediction needs, all in one pass over `b`:
    ///   weighted_sums[j] = sum_i weights[i] * B_original(i, j)
    ///     (accumulated before row i is overwritten — for the GP this is
    ///      the posterior mean k_*^T alpha),
    ///   sq_norms[j]      = sum_i Y(i, j)^2
    ///     (accumulated as row i is finished — for the GP this is the
    ///      variance reduction |L^-1 k_*|^2).
    /// Under the strict backend both reductions accumulate in
    /// ascending-row order, matching dot(b, weights) and dot(y, y)
    /// bitwise. Spans must have size m.
    void solve_lower_multi_fused(Matrix& b, std::span<const double> weights,
                                 std::span<double> weighted_sums,
                                 std::span<double> sq_norms) const;

    /// log(det(A)) = 2 * sum(log(L_ii)); needed by GP marginal likelihood.
    [[nodiscard]] double log_det() const noexcept;

    /// Rank-1 extension: grows the factor of the n×n matrix A to the
    /// factor of [[A, b], [bᵀ, c]] in O(n²) — one forward substitution
    /// for the new row plus a copy — instead of the O(n³) refactorization.
    /// Under the strict backend the arithmetic matches a from-scratch
    /// Cholesky of the extended matrix operation for operation, so the
    /// result is bitwise identical to refactoring. Throws Error("linalg")
    /// when the extended matrix is not positive definite (the factor is
    /// left unchanged).
    void extend(const Vec& b, double c);

    [[nodiscard]] const Matrix& lower() const noexcept { return l_; }
    [[nodiscard]] std::size_t size() const noexcept { return l_.rows(); }
    [[nodiscard]] const LinalgBackend& backend() const noexcept { return *backend_; }

private:
    Matrix l_;
    const LinalgBackend* backend_;
};

/// Factors A + jitter·I, growing jitter geometrically until the
/// factorization succeeds (at most `max_attempts` tries). Strict backend.
[[nodiscard]] Cholesky cholesky_with_jitter(Matrix a, double initial_jitter = 1e-10,
                                            int max_attempts = 8);

/// Same, on an explicit backend.
[[nodiscard]] Cholesky cholesky_with_jitter(Matrix a, const LinalgBackend& backend,
                                            double initial_jitter = 1e-10,
                                            int max_attempts = 8);

}  // namespace sdl::linalg
