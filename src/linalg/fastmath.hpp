// Branch-light transcendental kernels for the blocked linear-algebra hot
// paths.
//
// The GP cross-kernel assembly evaluates exp() once per (training point,
// candidate) pair — O(n·C) calls per constant-liar pick — and libm's exp
// dominates that loop on machines without vector math libraries. This
// header provides a Cephes-style rational approximation whose scalar and
// array forms run the exact same operations per element, so callers can
// mix them freely without breaking bitwise-identity contracts, and whose
// straight-line body auto-vectorizes.
//
// Accuracy: ~1-2 ulp over the supported range, which is far below the
// noise floor of anything the GP posterior feeds (the solver's decisions
// are driven by differences many orders of magnitude larger). This is an
// approximation to exp(), not a drop-in for std::exp: inputs are clamped
// to [-708, 709] (below, the true result would be subnormal-or-zero;
// above, it would overflow), and NaN propagation is not guaranteed.
#pragma once

#include <bit>
#include <cstdint>
#include <span>

namespace sdl::linalg {

/// exp(x) for x in [-708, 709] (inputs outside are clamped), accurate to
/// a couple of ulp. Deterministic: equal inputs give equal bits on every
/// call path, scalar or vectorized.
[[nodiscard]] inline double fast_exp(double x) noexcept {
    // Clamp instead of branching to special values: keeps the body
    // straight-line so the array form vectorizes.
    x = x < -708.0 ? -708.0 : x;
    x = x > 709.0 ? 709.0 : x;

    // Range reduction: n = round(x / ln2) via the 1.5*2^52 shifter trick
    // (valid because |x/ln2| < 2^10 << 2^51), then r = x - n*ln2 in two
    // pieces so r keeps full precision.
    constexpr double kLog2E = 1.4426950408889634073599;
    constexpr double kShifter = 6755399441055744.0;  // 1.5 * 2^52
    constexpr double kLn2Hi = 6.93145751953125e-1;
    constexpr double kLn2Lo = 1.42860682030941723212e-6;
    const double shifted = x * kLog2E + kShifter;
    const double n = shifted - kShifter;  // round-to-nearest integer value
    const double r = (x - n * kLn2Hi) - n * kLn2Lo;

    // Cephes rational approximation: exp(r) = 1 + 2 r P(r^2) / (Q(r^2) -
    // r P(r^2)) for |r| <= ln2/2.
    const double rr = r * r;
    const double p = r * ((1.26177193074810590878e-4 * rr +
                           3.02994407707441961300e-2) *
                              rr +
                          9.99999999999999999910e-1);
    const double q = ((3.00198505138664455042e-6 * rr +
                       2.52448340349684104192e-3) *
                          rr +
                      2.27265548208155028766e-1) *
                         rr +
                     2.00000000000000000005e0;
    const double y = 1.0 + 2.0 * p / (q - p);

    // Scale by 2^n with exponent-field arithmetic; y is in [~0.7, ~1.42]
    // and n in [-1022, 1024), so the biased exponent never wraps. The
    // low mantissa bits of `shifted` hold n + 2^51 in two's complement,
    // and the 2^51 offset vanishes when shifted left by 52 — so the
    // exponent adjustment needs no double->int conversion, keeping the
    // whole body SIMD-friendly.
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(y) +
                                 (std::bit_cast<std::uint64_t>(shifted) << 52));
}

/// Elementwise out[i] = fast_exp(x[i]); in-place (out == x) is fine. The
/// loop body is fast_exp itself, so results are bitwise identical to the
/// scalar form whether or not the compiler vectorizes it.
inline void vexp(std::span<const double> x, std::span<double> out) noexcept {
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = fast_exp(x[i]);
}

/// lround-style rounding (half away from zero) without the libm call —
/// for loops that issue it per pixel or per vote. NOT bit-equivalent to
/// std::lround: v + 0.5 itself rounds, so inputs within half an ulp of a
/// .5 boundary can land one integer over (e.g. nextafterf(0.5f, 0) -> 1
/// where lround gives 0). Callers tolerate that by design; do not swap
/// std::lround back in expecting unchanged output.
[[nodiscard]] inline int round_half_away(float v) noexcept {
    return static_cast<int>(v >= 0.0F ? v + 0.5F : v - 0.5F);
}
[[nodiscard]] inline long round_half_away(double v) noexcept {
    return static_cast<long>(v >= 0.0 ? v + 0.5 : v - 0.5);
}

}  // namespace sdl::linalg
