#include "linalg/lstsq.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "support/common.hpp"

namespace sdl::linalg {

Vec lstsq(const Matrix& a, const Vec& b, double ridge) {
    support::check(a.rows() == b.size(), "lstsq: row count mismatch");
    support::check(a.rows() >= a.cols(), "lstsq: underdetermined system");
    const Matrix at = a.transposed();
    Matrix ata = at * a;
    if (ridge > 0.0) ata.add_diagonal(ridge);
    const Vec atb = at * b;
    return cholesky_with_jitter(std::move(ata)).solve(atb);
}

Vec robust_lstsq(const Matrix& a, const Vec& b, double delta, int iterations) {
    support::check(delta > 0.0, "robust_lstsq: delta must be positive");
    Vec x = lstsq(a, b);
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    for (int it = 0; it < iterations; ++it) {
        // Huber weights from current residuals.
        Matrix wa(m, n);
        Vec wb(m);
        for (std::size_t i = 0; i < m; ++i) {
            const double r = dot(a.row(i), x) - b[i];
            const double w = std::fabs(r) <= delta ? 1.0 : std::sqrt(delta / std::fabs(r));
            for (std::size_t j = 0; j < n; ++j) wa(i, j) = w * a(i, j);
            wb[i] = w * b[i];
        }
        x = lstsq(wa, wb);
    }
    return x;
}

}  // namespace sdl::linalg
