// Linear least squares, with an optional robust (IRLS) variant.
//
// The vision pipeline fits a 2-D lattice to detected well centers; the
// robust variant down-weights Hough false positives so a handful of bad
// circles cannot skew the grid (the paper's §2.4 rescue step).
#pragma once

#include "linalg/matrix.hpp"

namespace sdl::linalg {

/// Minimizes ||A x - b||² (+ ridge·||x||²) via the normal equations and a
/// jittered Cholesky solve. Requires A.rows() >= A.cols().
[[nodiscard]] Vec lstsq(const Matrix& a, const Vec& b, double ridge = 0.0);

/// Iteratively reweighted least squares with a Huber weight function.
/// `delta` is the residual scale beyond which points are down-weighted;
/// returns the final solution after `iterations` reweighting rounds.
[[nodiscard]] Vec robust_lstsq(const Matrix& a, const Vec& b, double delta,
                               int iterations = 5);

}  // namespace sdl::linalg
