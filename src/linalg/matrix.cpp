#include "linalg/matrix.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::linalg {

double dot(std::span<const double> a, std::span<const double> b) {
    support::check(a.size() == b.size(), "dot: size mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
    return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
    support::check(x.size() == y.size(), "axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Matrix cross_sq_dist(const Matrix& a, const Matrix& b) {
    support::check(a.cols() == b.cols(), "cross_sq_dist: dimension mismatch");
    const std::size_t n = a.rows();
    const std::size_t m = b.rows();
    const std::size_t d = a.cols();
    Matrix out(n, m);
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<const double> ai = a.row(i);
        const std::span<double> orow = out.row(i);
        for (std::size_t j = 0; j < m; ++j) {
            const std::span<const double> bj = b.row(j);
            double d2 = 0.0;
            for (std::size_t k = 0; k < d; ++k) {
                const double diff = ai[k] - bj[k];
                d2 += diff * diff;
            }
            orow[j] = d2;
        }
    }
    return out;
}

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
}

Matrix Matrix::transposed() const {
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
    support::check(cols_ == other.rows_, "matmul: dimension mismatch");
    Matrix out(rows_, other.cols_);
    // i-k-j loop order keeps the inner loop contiguous in both operands.
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double aik = (*this)(i, k);
            if (aik == 0.0) continue;
            const std::span<const double> brow = other.row(k);
            const std::span<double> orow = out.row(i);
            for (std::size_t j = 0; j < other.cols_; ++j) {
                orow[j] += aik * brow[j];
            }
        }
    }
    return out;
}

Vec Matrix::operator*(const Vec& v) const {
    support::check(cols_ == v.size(), "matvec: dimension mismatch");
    Vec out(rows_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        out[r] = dot(row(r), v);
    }
    return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
    support::check(rows_ == other.rows_ && cols_ == other.cols_, "add: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
    support::check(rows_ == other.rows_ && cols_ == other.cols_, "sub: shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double k) noexcept {
    for (double& x : data_) x *= k;
    return *this;
}

void Matrix::add_diagonal(double value) noexcept {
    const std::size_t n = rows_ < cols_ ? rows_ : cols_;
    for (std::size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

double Matrix::max_abs() const noexcept {
    double m = 0.0;
    for (const double x : data_) {
        const double a = std::fabs(x);
        if (a > m) m = a;
    }
    return m;
}

}  // namespace sdl::linalg
