// Small dense linear algebra.
//
// Sized for the needs of sdlbench: Gaussian-process regression over a few
// hundred samples (Cholesky factorization of the kernel matrix) and
// least-squares lattice fitting in the vision pipeline. Row-major storage,
// no expression templates — clarity over cleverness at these sizes.
#pragma once

#include <span>
#include <vector>

namespace sdl::linalg {

using Vec = std::vector<double>;

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm2(std::span<const double> a);
/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

class Matrix;

/// Pairwise squared Euclidean distances between the rows of `a` (n x d)
/// and the rows of `b` (m x d), returned as an n x m matrix. Each entry
/// accumulates coordinate differences in ascending-dimension order — the
/// same order as a scalar `|a_i - b_j|^2` loop — so downstream consumers
/// (the GP kernel) stay bitwise identical to their one-pair-at-a-time
/// equivalents. The row-major result keeps the inner (j) loop contiguous
/// in both `b` and the output.
[[nodiscard]] Matrix cross_sq_dist(const Matrix& a, const Matrix& b);

class Matrix {
public:
    Matrix() = default;
    /// rows x cols, zero-initialized (or filled with `fill`).
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    [[nodiscard]] static Matrix identity(std::size_t n);

    [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
    [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

    [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
        return data_[r * cols_ + c];
    }
    [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
        return data_[r * cols_ + c];
    }

    [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
        return {data_.data() + r * cols_, cols_};
    }
    [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
        return {data_.data() + r * cols_, cols_};
    }

    [[nodiscard]] Matrix transposed() const;

    /// this * other; dimension mismatch throws LogicError.
    [[nodiscard]] Matrix operator*(const Matrix& other) const;

    /// this * v
    [[nodiscard]] Vec operator*(const Vec& v) const;

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(double k) noexcept;

    /// Adds `value` to every diagonal entry (ridge / jitter).
    void add_diagonal(double value) noexcept;

    [[nodiscard]] double max_abs() const noexcept;

private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace sdl::linalg
