#include "metrics/metrics.hpp"

#include <algorithm>

#include "support/table.hpp"

namespace sdl::metrics {

using support::Duration;
using support::TimePoint;

SdlMetrics compute_metrics(const wei::EventLog& log, int total_colors,
                           std::span<const TimePoint> upload_times,
                           const MetricsConfig& config) {
    SdlMetrics m;
    m.total_colors = total_colors;
    m.commands_completed = log.successful_commands();
    m.interventions = static_cast<int>(log.interventions().size());

    const TimePoint start = log.first_start();
    const TimePoint end = log.last_end();
    m.total_time = end - start;

    // TWH: longest stretch between interventions (the whole run when the
    // experiment never needed a human).
    if (log.interventions().empty()) {
        m.time_without_humans = m.total_time;
    } else {
        std::vector<TimePoint> breaks;
        breaks.push_back(start);
        for (const wei::InterventionRecord& i : log.interventions()) breaks.push_back(i.time);
        breaks.push_back(end);
        std::sort(breaks.begin(), breaks.end());
        Duration longest = Duration::zero();
        for (std::size_t i = 1; i < breaks.size(); ++i) {
            longest = std::max(longest, breaks[i] - breaks[i - 1]);
        }
        m.time_without_humans = longest;
    }

    for (const std::string& module : config.synthesis_modules) {
        m.synthesis_time += log.module_busy_time(module);
    }
    for (const std::string& module : config.transfer_modules) {
        m.transfer_time += log.module_busy_time(module);
    }

    m.time_per_color = total_colors > 0 ? m.total_time / static_cast<double>(total_colors)
                                        : Duration::zero();

    if (upload_times.size() >= 2) {
        m.mean_upload_interval = (upload_times.back() - upload_times.front()) /
                                 static_cast<double>(upload_times.size() - 1);
    }
    return m;
}

SdlMetrics paper_table1_reference() {
    SdlMetrics paper;
    paper.time_without_humans = Duration::hours(8) + Duration::minutes(12);
    paper.commands_completed = 387;
    paper.synthesis_time = Duration::hours(5) + Duration::minutes(10);
    paper.transfer_time = Duration::hours(3) + Duration::minutes(2);
    paper.total_time = Duration::hours(8) + Duration::minutes(12);
    paper.total_colors = 128;
    paper.time_per_color = Duration::minutes(4);
    paper.mean_upload_interval = Duration::minutes(3) + Duration::seconds(48);
    return paper;
}

std::string render_metrics_table(const SdlMetrics& measured, const SdlMetrics* paper) {
    std::vector<std::string> header{"Metric", "Measured"};
    if (paper != nullptr) header.push_back("Paper (B=1)");
    support::TextTable table(std::move(header));

    auto row = [&](const std::string& name, const std::string& value,
                   const std::string& reference) {
        std::vector<std::string> cells{name, value};
        if (paper != nullptr) cells.push_back(reference);
        table.add_row(std::move(cells));
    };

    row("Time without humans", measured.time_without_humans.pretty(),
        paper ? paper->time_without_humans.pretty() : "");
    row("Completed commands without humans", std::to_string(measured.commands_completed),
        paper ? std::to_string(paper->commands_completed) : "");
    row("Synthesis time", measured.synthesis_time.pretty(),
        paper ? paper->synthesis_time.pretty() : "");
    row("Transfer time", measured.transfer_time.pretty(),
        paper ? paper->transfer_time.pretty() : "");
    row("Total colors mixed", std::to_string(measured.total_colors),
        paper ? std::to_string(paper->total_colors) : "");
    row("Time per color", measured.time_per_color.pretty(),
        paper ? paper->time_per_color.pretty() : "");
    row("Mean upload interval", measured.mean_upload_interval.pretty(),
        paper ? paper->mean_upload_interval.pretty() : "");
    return table.str();
}

}  // namespace sdl::metrics
