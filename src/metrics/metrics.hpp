// SDL benchmark metrics — the paper's §4 proposal, computed from the
// event log:
//
//  * TWH  (time without human input): the longest stretch an experiment
//    ran without human intervention.
//  * CCWH (commands completed without human input): commands sent and
//    successfully executed by the instruments; "a command is defined as
//    one or more actions carried out consecutively by a single instrument
//    without input from the control system".
//  * Time per color: total run time / samples produced, plus the
//    synthesis/transfer split locating the bottleneck.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/units.hpp"
#include "wei/event_log.hpp"

namespace sdl::metrics {

struct MetricsConfig {
    /// Modules whose busy time counts as synthesis (mixing).
    std::vector<std::string> synthesis_modules{"ot2"};
    /// Modules whose busy time counts as sample transfer.
    std::vector<std::string> transfer_modules{"pf400", "sciclops"};
};

struct SdlMetrics {
    support::Duration time_without_humans;
    std::uint64_t commands_completed = 0;
    support::Duration synthesis_time;
    support::Duration transfer_time;
    support::Duration total_time;
    int total_colors = 0;
    support::Duration time_per_color;
    support::Duration mean_upload_interval;
    int interventions = 0;
};

/// Derives all metrics from a finished experiment's log.
/// `total_colors` comes from the application (samples actually produced);
/// `upload_times` are the publication-completion timestamps (may be empty).
[[nodiscard]] SdlMetrics compute_metrics(const wei::EventLog& log, int total_colors,
                                         std::span<const support::TimePoint> upload_times,
                                         const MetricsConfig& config = {});

/// Renders the Table-1 layout. When `paper` is non-null its values fill a
/// "Paper (B=1)" comparison column next to the measured ones.
[[nodiscard]] std::string render_metrics_table(const SdlMetrics& measured,
                                               const SdlMetrics* paper = nullptr);

/// The paper's Table 1 values for B=1 (for comparison columns).
[[nodiscard]] SdlMetrics paper_table1_reference();

}  // namespace sdl::metrics
