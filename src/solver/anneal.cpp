#include "solver/anneal.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::solver {

AnnealSolver::AnnealSolver(AnnealConfig config)
    : config_(config),
      rng_(config.seed),
      temperature_(config.initial_temperature),
      step_(config.initial_step) {
    support::check(config_.dims >= 1, "anneal solver needs at least one dye");
    support::check(config_.cooling > 0.0 && config_.cooling < 1.0,
                   "cooling factor must be in (0, 1)");
}

std::vector<double> AnnealSolver::perturb(const std::vector<double>& base) {
    std::vector<double> out(config_.dims);
    for (int attempt = 0; attempt < 16; ++attempt) {
        for (std::size_t d = 0; d < config_.dims; ++d) {
            out[d] = support::clamp(base[d] + rng_.uniform(-step_, step_), 0.0, 1.0);
        }
        if (is_valid_proposal(out, config_.dims)) return out;
    }
    // Base sits in a degenerate corner: restart uniformly.
    do {
        for (double& v : out) v = rng_.uniform();
    } while (!is_valid_proposal(out, config_.dims));
    return out;
}

std::vector<std::vector<double>> AnnealSolver::ask(std::size_t n) {
    support::check(n >= 1, "ask() needs n >= 1");
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);
    if (!has_state_) {
        // Cold start: uniform random points.
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> p(config_.dims);
            do {
                for (double& v : p) v = rng_.uniform();
            } while (!is_valid_proposal(p, config_.dims));
            proposals.push_back(std::move(p));
        }
        return proposals;
    }
    for (std::size_t i = 0; i < n; ++i) proposals.push_back(perturb(state_));
    return proposals;
}

void AnnealSolver::tell(std::span<const Observation> observations) {
    SolverBase::tell(observations);
    for (const Observation& obs : observations) {
        if (!has_state_) {
            state_ = obs.ratios;
            state_score_ = obs.score;
            has_state_ = true;
            continue;
        }
        const double delta = obs.score - state_score_;
        if (delta <= 0.0 ||
            (temperature_ > 1e-9 && rng_.uniform() < std::exp(-delta / temperature_))) {
            state_ = obs.ratios;
            state_score_ = obs.score;
        }
    }
    temperature_ *= config_.cooling;
    step_ = std::max(config_.min_step, step_ * config_.cooling);
}

}  // namespace sdl::solver
