// Simulated-annealing solver.
//
// One of the "different search approaches" the paper's future work calls
// for (§4, integration with Baird & Sparks' closed-loop spectroscopy
// optimizers). A random-walk proposal around the current state with a
// geometric temperature schedule; worse samples are accepted with the
// Metropolis probability, which matches the lab's noisy objective well —
// a slightly worse *measurement* is often the same mixture.
#pragma once

#include "solver/solver.hpp"
#include "support/random.hpp"

namespace sdl::solver {

struct AnnealConfig {
    std::size_t dims = 4;
    double initial_temperature = 25.0;  ///< in objective units (RGB distance)
    double cooling = 0.95;              ///< temperature multiplier per generation
    double initial_step = 0.25;         ///< proposal half-width in ratio units
    double min_step = 0.02;
    std::uint64_t seed = 0xA22EA1;
};

class AnnealSolver final : public SolverBase {
public:
    explicit AnnealSolver(AnnealConfig config = {});

    [[nodiscard]] std::string name() const override { return "anneal"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;
    void tell(std::span<const Observation> observations) override;

    [[nodiscard]] double temperature() const noexcept { return temperature_; }

private:
    [[nodiscard]] std::vector<double> perturb(const std::vector<double>& base);

    AnnealConfig config_;
    support::Rng rng_;
    double temperature_;
    double step_;
    std::vector<double> state_;   ///< current accepted point
    double state_score_ = 1e300;
    bool has_state_ = false;
};

}  // namespace sdl::solver
