#include "solver/baselines.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::solver {

RandomSolver::RandomSolver(std::size_t dims, std::uint64_t seed)
    : dims_(dims), rng_(seed) {
    support::check(dims >= 1, "random solver needs at least one dye");
}

std::vector<std::vector<double>> RandomSolver::ask(std::size_t n) {
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<double> ratios(dims_);
        do {
            for (double& r : ratios) r = rng_.uniform();
        } while (!is_valid_proposal(ratios, dims_));
        proposals.push_back(std::move(ratios));
    }
    return proposals;
}

GridSolver::GridSolver(std::size_t dims, int levels) : dims_(dims), levels_(levels) {
    support::check(dims >= 1 && levels >= 2, "grid solver needs dims>=1, levels>=2");
}

std::vector<std::vector<double>> GridSolver::ask(std::size_t n) {
    const auto total = static_cast<std::size_t>(
        std::llround(std::pow(levels_, static_cast<double>(dims_))));
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);
    while (proposals.size() < n) {
        const std::size_t index = cursor_ % total;
        ++cursor_;
        std::size_t rest = index;
        std::vector<double> point(dims_);
        for (std::size_t d = 0; d < dims_; ++d) {
            point[d] = static_cast<double>(rest % static_cast<std::size_t>(levels_)) /
                       static_cast<double>(levels_ - 1);
            rest /= static_cast<std::size_t>(levels_);
        }
        if (is_valid_proposal(point, dims_)) proposals.push_back(std::move(point));
    }
    return proposals;
}

OracleSolver::OracleSolver(const color::BeerLambertMixer& mixer, color::Rgb8 target,
                           std::uint64_t seed)
    : rng_(seed) {
    const auto ratios = mixer.invert_target(target);
    if (!ratios.has_value()) {
        throw support::ConfigError("oracle solver: target " + target.str() +
                                   " is outside the dye gamut");
    }
    optimum_ = *ratios;
}

std::vector<std::vector<double>> OracleSolver::ask(std::size_t n) {
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        // The first proposal each batch is the exact optimum; the rest add
        // a whisper of jitter so a batch occupies distinct wells.
        std::vector<double> ratios = optimum_;
        if (i > 0) {
            for (double& r : ratios) {
                r = support::clamp(r + rng_.normal(0.0, 0.005), 0.0, 1.0);
            }
        }
        proposals.push_back(std::move(ratios));
    }
    return proposals;
}

}  // namespace sdl::solver
