// Baseline solvers: random search, systematic grid scan, and an analytic
// oracle. The oracle exploits the fact that the color-matching problem
// "admits to an analytic solution" (§2.5) — it always proposes the exact
// recipe for the target, so its residual score measures the workcell's
// noise floor (pipetting + camera), isolating measurement error from
// optimizer error in ablation studies.
#pragma once

#include "color/mixing.hpp"
#include "solver/solver.hpp"
#include "support/random.hpp"

namespace sdl::solver {

class RandomSolver final : public SolverBase {
public:
    explicit RandomSolver(std::size_t dims = 4, std::uint64_t seed = 0x7A4D03);

    [[nodiscard]] std::string name() const override { return "random"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;

private:
    std::size_t dims_;
    support::Rng rng_;
};

/// Scans a fixed lattice in index order; a deterministic exhaustive
/// baseline for small budgets.
class GridSolver final : public SolverBase {
public:
    explicit GridSolver(std::size_t dims = 4, int levels = 4);

    [[nodiscard]] std::string name() const override { return "grid"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;

private:
    std::size_t dims_;
    int levels_;
    std::size_t cursor_ = 0;
};

class OracleSolver final : public SolverBase {
public:
    /// Requires the target to be inside the mixer's gamut.
    OracleSolver(const color::BeerLambertMixer& mixer, color::Rgb8 target,
                 std::uint64_t seed = 0x0AC1E);

    [[nodiscard]] std::string name() const override { return "oracle"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;

private:
    std::vector<double> optimum_;
    support::Rng rng_;
};

}  // namespace sdl::solver
