#include "solver/bayes.hpp"

#include <cmath>
#include <numbers>

#include "linalg/matrix.hpp"
#include "support/common.hpp"

namespace sdl::solver {

namespace {
double normal_pdf(double z) noexcept {
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}
double normal_cdf(double z) noexcept { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }
}  // namespace

double GaussianProcess::kernel(std::span<const double> a, std::span<const double> b,
                               const Hyperparams& p) const noexcept {
    double d2 = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        d2 += d * d;
    }
    return p.signal_var * std::exp(-0.5 * d2 / (p.lengthscale * p.lengthscale));
}

void GaussianProcess::factorize(const Hyperparams& p) {
    const std::size_t n = xs_.size();
    linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double v = kernel(xs_[i], xs_[j], p);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += p.noise_var;
    }
    chol_ = std::make_unique<linalg::Cholesky>(linalg::cholesky_with_jitter(std::move(k)));
    alpha_ = chol_->solve(ys_std_);
    params_ = p;
}

double GaussianProcess::log_marginal_likelihood(const Hyperparams& p) const {
    const std::size_t n = xs_.size();
    linalg::Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            const double v = kernel(xs_[i], xs_[j], p);
            k(i, j) = v;
            k(j, i) = v;
        }
        k(i, i) += p.noise_var;
    }
    const linalg::Cholesky chol = linalg::cholesky_with_jitter(std::move(k));
    const linalg::Vec alpha = chol.solve(ys_std_);
    const double fit_term = linalg::dot(ys_std_, alpha);
    return -0.5 * fit_term - 0.5 * chol.log_det() -
           0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::fit(std::vector<std::vector<double>> xs, std::vector<double> ys,
                          bool optimize) {
    support::check(xs.size() == ys.size() && !xs.empty(), "GP fit: shape mismatch");
    xs_ = std::move(xs);
    ys_raw_ = std::move(ys);

    // Standardize targets so unit signal variance is a sensible prior.
    double mean = 0.0;
    for (const double y : ys_raw_) mean += y;
    mean /= static_cast<double>(ys_raw_.size());
    double var = 0.0;
    for (const double y : ys_raw_) var += (y - mean) * (y - mean);
    var /= static_cast<double>(ys_raw_.size());
    y_mean_ = mean;
    y_scale_ = var > 1e-12 ? std::sqrt(var) : 1.0;
    ys_std_.resize(ys_raw_.size());
    for (std::size_t i = 0; i < ys_raw_.size(); ++i) {
        ys_std_[i] = (ys_raw_[i] - y_mean_) / y_scale_;
    }

    Hyperparams best = params_;
    if (optimize) {
        double best_lml = -1e300;
        for (const double lengthscale : {0.15, 0.3, 0.6, 1.2}) {
            for (const double noise : {1e-3, 1e-2, 1e-1}) {
                const Hyperparams p{lengthscale, noise, 1.0};
                const double lml = log_marginal_likelihood(p);
                if (lml > best_lml) {
                    best_lml = lml;
                    best = p;
                }
            }
        }
    }
    factorize(best);
}

GaussianProcess::Prediction GaussianProcess::predict(std::span<const double> x) const {
    support::check(fitted(), "GP predict before fit");
    const std::size_t n = xs_.size();
    linalg::Vec kx(n);
    for (std::size_t i = 0; i < n; ++i) kx[i] = kernel(xs_[i], x, params_);

    const double mean_std = linalg::dot(kx, alpha_);
    const linalg::Vec v = chol_->solve_lower(kx);
    double var_std = params_.signal_var + params_.noise_var - linalg::dot(v, v);
    if (var_std < 1e-12) var_std = 1e-12;

    return {mean_std * y_scale_ + y_mean_, var_std * y_scale_ * y_scale_};
}

// ------------------------------------------------------------ BayesSolver

BayesSolver::BayesSolver(BayesConfig config) : config_(config), rng_(config.seed) {
    support::check(config_.dims >= 1, "bayes solver needs at least one dye");
    support::check(config_.candidates >= 8, "need a non-trivial candidate pool");
}

double BayesSolver::expected_improvement(double mean, double variance, double best_y,
                                         double xi) noexcept {
    const double sigma = std::sqrt(variance);
    if (sigma < 1e-12) return 0.0;
    const double improvement = best_y - mean - xi;
    const double z = improvement / sigma;
    const double ei = improvement * normal_cdf(z) + sigma * normal_pdf(z);
    return ei > 0.0 ? ei : 0.0;
}

std::vector<double> BayesSolver::random_point() {
    std::vector<double> x(config_.dims);
    do {
        for (double& v : x) v = rng_.uniform();
    } while (!is_valid_proposal(x, config_.dims));
    return x;
}

std::vector<std::vector<double>> BayesSolver::ask(std::size_t n) {
    support::check(n >= 1, "ask() needs n >= 1");
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);

    if (archive().size() < config_.warmup) {
        for (std::size_t i = 0; i < n; ++i) proposals.push_back(random_point());
        return proposals;
    }

    // Training set: most recent max_points observations.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    const std::size_t start =
        archive().size() > config_.max_points ? archive().size() - config_.max_points : 0;
    for (std::size_t i = start; i < archive().size(); ++i) {
        xs.push_back(archive()[i].ratios);
        ys.push_back(archive()[i].score);
    }

    // Constant liar: after each pick, pretend the pick returned the
    // incumbent best so the next pick explores elsewhere.
    for (std::size_t pick = 0; pick < n; ++pick) {
        GaussianProcess gp;
        gp.fit(xs, ys, /*optimize=*/pick == 0);  // re-optimize once per batch
        double best_y = ys.front();
        for (const double y : ys) best_y = std::min(best_y, y);

        std::vector<double> best_candidate = random_point();
        double best_ei = -1.0;
        for (std::size_t c = 0; c < config_.candidates; ++c) {
            // Half the pool is global-uniform, half perturbs the incumbent
            // (local refinement).
            std::vector<double> candidate;
            if (c % 2 == 0 || !best().has_value()) {
                candidate = random_point();
            } else {
                candidate = best()->ratios;
                for (double& v : candidate) {
                    v = support::clamp(v + rng_.normal(0.0, 0.1), 0.0, 1.0);
                }
                if (!is_valid_proposal(candidate, config_.dims)) candidate = random_point();
            }
            const auto pred = gp.predict(candidate);
            const double ei =
                expected_improvement(pred.mean, pred.variance, best_y,
                                     config_.exploration);
            if (ei > best_ei) {
                best_ei = ei;
                best_candidate = std::move(candidate);
            }
        }
        xs.push_back(best_candidate);
        ys.push_back(best_y);  // the lie
        proposals.push_back(std::move(best_candidate));
    }
    return proposals;
}

}  // namespace sdl::solver
