#include "solver/bayes.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "linalg/backend.hpp"
#include "linalg/matrix.hpp"
#include "support/common.hpp"
#include "support/thread_pool.hpp"

namespace sdl::solver {

namespace {
double normal_pdf(double z) noexcept {
    return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}
double normal_cdf(double z) noexcept { return 0.5 * std::erfc(-z / std::numbers::sqrt2); }
}  // namespace

const linalg::LinalgBackend& GaussianProcess::backend() const noexcept {
    return backend_ != nullptr ? *backend_ : linalg::strict_backend();
}

double GaussianProcess::kernel(std::span<const double> a, std::span<const double> b,
                               const Hyperparams& p) const noexcept {
    return backend().rbf_kernel(a, b, p.signal_var, p.lengthscale);
}

linalg::Matrix GaussianProcess::train_matrix() const {
    const std::size_t n = xs_.size();
    const std::size_t dims = xs_.front().size();
    linalg::Matrix train(n, dims);
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<double> row = train.row(i);
        for (std::size_t k = 0; k < dims; ++k) row[k] = xs_[i][k];
    }
    return train;
}

linalg::Matrix GaussianProcess::kernel_matrix(const Hyperparams& p) const {
    // Assembled with the batch kernels (one cross_sq_dist + one RBF
    // map) instead of n^2 scalar kernel() calls. On the strict backend
    // each entry carries kernel()'s exact bits: the squared distance
    // accumulates in the same ascending-dimension order, and the RBF
    // map runs the same expression sequence (matrix.hpp, backend.cpp).
    const std::size_t n = xs_.size();
    const linalg::Matrix train = train_matrix();
    linalg::Matrix k = backend().cross_sq_dist(train, train);
    backend().rbf_from_sq_dist(k, p.signal_var, p.lengthscale);
    for (std::size_t i = 0; i < n; ++i) k(i, i) += p.noise_var;
    return k;
}

double GaussianProcess::lml_terms(const linalg::Cholesky& chol,
                                  const linalg::Vec& alpha) const {
    const double fit_term = linalg::dot(ys_std_, alpha);
    return -0.5 * fit_term - 0.5 * chol.log_det() -
           0.5 * static_cast<double>(xs_.size()) * std::log(2.0 * std::numbers::pi);
}

void GaussianProcess::factorize(const Hyperparams& p) {
    chol_ = std::make_unique<linalg::Cholesky>(
        linalg::cholesky_with_jitter(kernel_matrix(p), backend()));
    alpha_ = chol_->solve(ys_std_);
    params_ = p;
}

namespace {
bool same_params(const GaussianProcess::Hyperparams& a,
                 const GaussianProcess::Hyperparams& b) noexcept {
    return a.lengthscale == b.lengthscale && a.noise_var == b.noise_var &&
           a.signal_var == b.signal_var;
}
}  // namespace

double GaussianProcess::log_marginal_likelihood(const Hyperparams& p) const {
    // At the fitted hyperparameters the factor and K⁻¹y are already in
    // hand; evaluating the LML there must not rebuild the kernel matrix.
    if (chol_ != nullptr && chol_->size() == xs_.size() && same_params(p, params_)) {
        return lml_terms(*chol_, alpha_);
    }
    const linalg::Cholesky chol =
        linalg::cholesky_with_jitter(kernel_matrix(p), backend());
    return lml_terms(chol, chol.solve(ys_std_));
}

void GaussianProcess::observe(std::vector<double> x, double y) {
    support::check(fitted() && chol_ != nullptr, "GP observe before fit");
    support::check(x.size() == xs_.front().size(), "GP observe: dimension mismatch");
    const std::size_t n = xs_.size();
    linalg::Vec b(n);
    for (std::size_t i = 0; i < n; ++i) b[i] = kernel(xs_[i], x, params_);
    const double c = kernel(x, x, params_) + params_.noise_var;
    xs_.push_back(std::move(x));
    ys_raw_.push_back(y);
    // Standardization is frozen at the last full fit (see header).
    ys_std_.push_back((y - y_mean_) / y_scale_);
    try {
        chol_->extend(b, c);
    } catch (const support::Error&) {
        // Pathological geometry (e.g. an exact duplicate with negligible
        // noise): fall back to the jittered full refit.
        factorize(params_);
        return;
    }
    alpha_ = chol_->solve(ys_std_);
}

void GaussianProcess::fit(std::vector<std::vector<double>> xs, std::vector<double> ys,
                          bool optimize) {
    support::check(xs.size() == ys.size() && !xs.empty(), "GP fit: shape mismatch");
    xs_ = std::move(xs);
    ys_raw_ = std::move(ys);

    // Standardize targets so unit signal variance is a sensible prior.
    double mean = 0.0;
    for (const double y : ys_raw_) mean += y;
    mean /= static_cast<double>(ys_raw_.size());
    double var = 0.0;
    for (const double y : ys_raw_) var += (y - mean) * (y - mean);
    var /= static_cast<double>(ys_raw_.size());
    y_mean_ = mean;
    y_scale_ = var > 1e-12 ? std::sqrt(var) : 1.0;
    ys_std_.resize(ys_raw_.size());
    for (std::size_t i = 0; i < ys_raw_.size(); ++i) {
        ys_std_[i] = (ys_raw_[i] - y_mean_) / y_scale_;
    }

    // The previous fit's factor describes other data; drop it so the LML
    // fast path cannot reuse it by accident during the grid search.
    chol_.reset();
    alpha_.clear();

    if (!optimize) {
        factorize(params_);
        return;
    }
    // Grid-search hyperparameters by LML, keeping the winning candidate's
    // factor and K⁻¹y so the chosen kernel matrix is factored exactly
    // once — the old flow re-factorized the winner from scratch.
    double best_lml = -1e300;
    Hyperparams best = params_;
    std::unique_ptr<linalg::Cholesky> best_chol;
    linalg::Vec best_alpha;
    for (const double lengthscale : {0.15, 0.3, 0.6, 1.2}) {
        for (const double noise : {1e-3, 1e-2, 1e-1}) {
            const Hyperparams p{lengthscale, noise, 1.0};
            auto chol = std::make_unique<linalg::Cholesky>(
                linalg::cholesky_with_jitter(kernel_matrix(p), backend()));
            linalg::Vec alpha = chol->solve(ys_std_);
            const double lml = lml_terms(*chol, alpha);
            if (lml > best_lml) {
                best_lml = lml;
                best = p;
                best_chol = std::move(chol);
                best_alpha = std::move(alpha);
            }
        }
    }
    if (best_chol == nullptr) {
        factorize(best);  // unreachable unless the grid is empty
        return;
    }
    chol_ = std::move(best_chol);
    alpha_ = std::move(best_alpha);
    params_ = best;
}

GaussianProcess::Prediction GaussianProcess::predict(std::span<const double> x) const {
    support::check(fitted(), "GP predict before fit");
    const std::size_t n = xs_.size();
    linalg::Vec kx(n);
    for (std::size_t i = 0; i < n; ++i) kx[i] = kernel(xs_[i], x, params_);

    const double mean_std = linalg::dot(kx, alpha_);
    const linalg::Vec v = chol_->solve_lower(kx);
    double var_std = params_.signal_var + params_.noise_var - linalg::dot(v, v);
    if (var_std < 1e-12) var_std = 1e-12;

    return {mean_std * y_scale_ + y_mean_, var_std * y_scale_ * y_scale_};
}

std::vector<GaussianProcess::Prediction> GaussianProcess::predict_batch(
    const linalg::Matrix& x) const {
    support::check(fitted(), "GP predict before fit");
    support::check(x.cols() == xs_.front().size(),
                   "GP predict_batch: dimension mismatch");
    const std::size_t m = x.rows();
    std::vector<Prediction> out(m);
    if (m == 0) return out;

    const linalg::Matrix train = train_matrix();

    // Cross-kernel matrix, column j = k(train, x_j): one backend
    // cross_sq_dist plus one backend RBF map. On the strict backend each
    // entry carries kernel()'s bits (same -0.5*d2/(l*l) argument, same
    // fast_exp via its array form, same signal-variance scale).
    linalg::Matrix kx = backend().cross_sq_dist(train, x);
    backend().rbf_from_sq_dist(kx, params_.signal_var, params_.lengthscale);

    // One fused sweep: multi-RHS forward substitution plus the mean and
    // |L^-1 k_*|^2 reductions.
    linalg::Vec mean_std(m);
    linalg::Vec sq_norm(m);
    chol_->solve_lower_multi_fused(kx, alpha_, mean_std, sq_norm);

    for (std::size_t j = 0; j < m; ++j) {
        double var_std = params_.signal_var + params_.noise_var - sq_norm[j];
        if (var_std < 1e-12) var_std = 1e-12;
        out[j] = {mean_std[j] * y_scale_ + y_mean_, var_std * y_scale_ * y_scale_};
    }
    return out;
}

std::vector<GaussianProcess::Prediction> score_candidate_pool(
    const GaussianProcess& gp, const linalg::Matrix& pool, std::size_t max_workers) {
    const std::size_t n = gp.size();
    const std::size_t candidates = pool.rows();
    const std::size_t dims = pool.cols();
    // Below this n^2 * C work estimate one blocked pass beats the
    // dispatch overhead; above it the pool splits into row chunks (each
    // still a blocked multi-RHS pass). 2^18 puts the paper-scale case
    // (n = 64, C = 256) on the parallel side.
    constexpr std::size_t kParallelWork = 262'144;
    constexpr std::size_t kChunk = 64;
    if (candidates <= kChunk || n * n * candidates < kParallelWork) {
        return gp.predict_batch(pool);
    }
    const std::size_t chunks = (candidates + kChunk - 1) / kChunk;
    auto chunked = support::global_pool().parallel_map(
        chunks,
        [&](std::size_t chunk_index) {
            const std::size_t begin = chunk_index * kChunk;
            const std::size_t end = std::min(candidates, begin + kChunk);
            linalg::Matrix block(end - begin, dims);
            for (std::size_t c = begin; c < end; ++c) {
                const std::span<const double> src = pool.row(c);
                const std::span<double> dst = block.row(c - begin);
                for (std::size_t k = 0; k < dims; ++k) dst[k] = src[k];
            }
            return gp.predict_batch(block);
        },
        support::ParallelOptions{.max_workers = max_workers});
    std::vector<GaussianProcess::Prediction> preds;
    preds.reserve(candidates);
    for (auto& block : chunked) preds.insert(preds.end(), block.begin(), block.end());
    return preds;
}

// ------------------------------------------------------------ BayesSolver

BayesSolver::BayesSolver(BayesConfig config) : config_(config), rng_(config.seed) {
    support::check(config_.dims >= 1, "bayes solver needs at least one dye");
    support::check(config_.candidates >= 8, "need a non-trivial candidate pool");
}

double BayesSolver::expected_improvement(double mean, double variance, double best_y,
                                         double xi) noexcept {
    const double sigma = std::sqrt(variance);
    if (sigma < 1e-12) return 0.0;
    const double improvement = best_y - mean - xi;
    const double z = improvement / sigma;
    const double ei = improvement * normal_cdf(z) + sigma * normal_pdf(z);
    return ei > 0.0 ? ei : 0.0;
}

std::vector<double> BayesSolver::random_point() {
    std::vector<double> x(config_.dims);
    random_point_into(x);
    return x;
}

void BayesSolver::random_point_into(std::span<double> out) {
    do {
        for (double& v : out) v = rng_.uniform();
    } while (!is_valid_proposal(out, config_.dims));
}

void BayesSolver::fill_candidate_pool(linalg::Matrix& pool) {
    const std::optional<Observation> best_obs = best();  // best() returns by value
    for (std::size_t c = 0; c < pool.rows(); ++c) {
        const std::span<double> candidate = pool.row(c);
        // Half the pool is global-uniform, half perturbs the incumbent
        // (local refinement).
        if (c % 2 == 0 || !best_obs.has_value()) {
            random_point_into(candidate);
        } else {
            const std::vector<double>& incumbent = best_obs->ratios;
            for (std::size_t k = 0; k < candidate.size(); ++k) {
                candidate[k] =
                    support::clamp(incumbent[k] + rng_.normal(0.0, 0.1), 0.0, 1.0);
            }
            // The fallback draw happens here, pool-generation time, so the
            // rng stream is identical to the pre-batching one-at-a-time
            // flow and stays deterministic for seed-paired runs.
            if (!is_valid_proposal(candidate, config_.dims)) random_point_into(candidate);
        }
    }
}

std::vector<std::vector<double>> BayesSolver::ask(std::size_t n) {
    support::check(n >= 1, "ask() needs n >= 1");
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);

    if (archive().size() < config_.warmup) {
        for (std::size_t i = 0; i < n; ++i) proposals.push_back(random_point());
        return proposals;
    }

    // Training set: most recent max_points observations.
    std::vector<std::vector<double>> xs;
    std::vector<double> ys;
    const std::size_t start =
        archive().size() > config_.max_points ? archive().size() - config_.max_points : 0;
    for (std::size_t i = start; i < archive().size(); ++i) {
        xs.push_back(archive()[i].ratios);
        ys.push_back(archive()[i].score);
    }

    // One full fit (with hyperparameter search) per batch; the
    // constant-liar points are then absorbed with O(n²) rank-1 updates at
    // the fitted hyperparameters and frozen standardization, instead of
    // re-fitting a fresh O(n³) GP (which also forgot the optimized
    // hyperparameters) for every pick.
    GaussianProcess gp;
    if (config_.backend != nullptr) gp.set_backend(*config_.backend);
    gp.fit(xs, ys, /*optimize=*/true);
    double best_y = ys.front();
    for (const double y : ys) best_y = std::min(best_y, y);

    // Constant liar: after each pick, pretend the pick returned the
    // incumbent best so the next pick explores elsewhere. The candidate
    // pool for each pick is generated up front into one contiguous
    // matrix and scored in blocked predict_batch passes; large pools are
    // split across the thread pool (per-candidate results are
    // independent, so chunking changes nothing).
    linalg::Matrix pool(config_.candidates, config_.dims);
    for (std::size_t pick = 0; pick < n; ++pick) {
        // Drawn before the pool, like the old per-pick flow; candidate 0
        // always beats best_ei = -1, so this point is only ever a stream
        // placeholder, never a proposal.
        std::vector<double> best_candidate = random_point();
        fill_candidate_pool(pool);

        const auto preds = score_candidate_pool(gp, pool);

        double best_ei = -1.0;
        for (std::size_t c = 0; c < config_.candidates; ++c) {
            const double ei = expected_improvement(preds[c].mean, preds[c].variance,
                                                   best_y, config_.exploration);
            if (ei > best_ei) {
                best_ei = ei;
                const std::span<const double> row = pool.row(c);
                best_candidate.assign(row.begin(), row.end());
            }
        }
        if (pick + 1 < n) gp.observe(best_candidate, best_y);  // the lie
        proposals.push_back(std::move(best_candidate));
    }
    return proposals;
}

}  // namespace sdl::solver
