// Bayesian optimization solver (§2.5): a Gaussian-process surrogate over
// mixing ratios with expected-improvement acquisition.
//
// The paper built theirs on scikit-learn; this is a from-scratch
// equivalent: RBF kernel with a noise nugget, hyperparameters selected by
// log-marginal-likelihood grid search, Cholesky-based posterior, and
// batch proposals via the constant-liar heuristic. The paper reports that
// Bayesian optimization "does not yield a systematic improvement over the
// genetic algorithm" — the solver-ablation bench reproduces that
// comparison.
#pragma once

#include "linalg/cholesky.hpp"
#include "solver/solver.hpp"
#include "support/random.hpp"

namespace sdl::solver {

/// Gaussian-process regression with an isotropic RBF kernel:
///   k(x, x') = signal_var * exp(-|x-x'|^2 / (2 l^2)) + noise_var * [x==x']
/// Targets are standardized internally.
class GaussianProcess {
public:
    struct Hyperparams {
        double lengthscale = 0.4;
        double noise_var = 1e-2;   ///< relative to unit signal variance
        double signal_var = 1.0;
    };

    /// Fits the GP to (xs, ys). When `optimize` is true, a small grid of
    /// lengthscales and noise levels is scored by log marginal likelihood
    /// and the best is kept — the winning candidate's Cholesky factor is
    /// reused directly, so the kernel matrix is never rebuilt for the
    /// chosen hyperparameters.
    void fit(std::vector<std::vector<double>> xs, std::vector<double> ys,
             bool optimize = true);

    /// Incrementally absorbs one observation at the current
    /// hyperparameters: extends the Cholesky factor by the new row
    /// (rank-1 update, O(n²)) instead of refitting the full O(n³)
    /// factorization. The target standardization (mean/scale) stays
    /// frozen at the last fit() so the existing kernel rows remain
    /// valid; refit when the data distribution shifts. The updated
    /// factor is bitwise identical to a from-scratch refactorization at
    /// the same hyperparameters and standardization.
    void observe(std::vector<double> x, double y);

    [[nodiscard]] bool fitted() const noexcept { return !xs_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
    [[nodiscard]] const Hyperparams& hyperparams() const noexcept { return params_; }

    struct Prediction {
        double mean = 0.0;
        double variance = 0.0;
    };
    /// Posterior at a point (in the original, unstandardized units).
    [[nodiscard]] Prediction predict(std::span<const double> x) const;

    /// Selects the linalg backend (linalg/backend.hpp) every subsequent
    /// kernel evaluation, factorization, and solve runs on. Call before
    /// fit(): the cached Cholesky factor is built on the active backend
    /// and reused by observe()/predict*. Defaults to strict, the
    /// bitwise reference.
    void set_backend(const linalg::LinalgBackend& backend) noexcept {
        backend_ = &backend;
    }
    [[nodiscard]] const linalg::LinalgBackend& backend() const noexcept;

    /// Posterior at every row of `x` (one query point per row) in one
    /// blocked pass: the cross-kernel matrix is assembled once
    /// (linalg::cross_sq_dist), all right-hand sides go through a single
    /// multi-RHS forward substitution against the cached Cholesky factor,
    /// and the mean/variance reductions are fused into that sweep
    /// (linalg::Cholesky::solve_lower_multi_fused). O(n^2 * C) like C
    /// separate predict() calls, but the inner loops are contiguous
    /// across candidates instead of chasing one dependency chain per
    /// point. Each entry is bitwise identical to predict(x.row(i)).
    [[nodiscard]] std::vector<Prediction> predict_batch(const linalg::Matrix& x) const;

    /// Log marginal likelihood of the standardized targets under `p`.
    /// When `p` equals the fitted hyperparameters, the existing factor
    /// and K⁻¹y are reused instead of rebuilding the kernel matrix.
    [[nodiscard]] double log_marginal_likelihood(const Hyperparams& p) const;

private:
    void factorize(const Hyperparams& p);
    [[nodiscard]] linalg::Matrix train_matrix() const;
    [[nodiscard]] linalg::Matrix kernel_matrix(const Hyperparams& p) const;
    [[nodiscard]] double lml_terms(const linalg::Cholesky& chol,
                                   const linalg::Vec& alpha) const;
    [[nodiscard]] double kernel(std::span<const double> a, std::span<const double> b,
                                const Hyperparams& p) const noexcept;

    std::vector<std::vector<double>> xs_;
    std::vector<double> ys_raw_;
    std::vector<double> ys_std_;  ///< standardized targets
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    Hyperparams params_;
    const linalg::LinalgBackend* backend_ = nullptr;  ///< null = strict
    std::unique_ptr<linalg::Cholesky> chol_;
    linalg::Vec alpha_;  ///< K^-1 y (standardized)
};

/// Scores a candidate pool against a fitted GP — the constant-liar hot
/// path. Small pools run one blocked predict_batch pass; pools with
/// enough work (n^2 * C) are chunked across support::global_pool() with
/// parallel_map (`max_workers` caps the tasks in flight; 0 = one per
/// pool worker). Per-candidate results are independent, so chunking and
/// thread count change nothing: entry i is always bitwise identical to
/// gp.predict(pool.row(i)) on the GP's backend.
[[nodiscard]] std::vector<GaussianProcess::Prediction> score_candidate_pool(
    const GaussianProcess& gp, const linalg::Matrix& pool,
    std::size_t max_workers = 0);

struct BayesConfig {
    std::size_t dims = 4;
    std::size_t candidates = 512;   ///< random EI candidates per proposal
    std::size_t warmup = 8;         ///< random samples before the GP kicks in
    double exploration = 0.01;      ///< EI xi (in standardized units)
    /// Cap on training points; the most recent ones are kept (the kernel
    /// solve is O(n^3)).
    std::size_t max_points = 256;
    std::uint64_t seed = 0xBA7E5;
    /// Linalg backend the GP surrogate runs on; null means strict (the
    /// bitwise reference). Points at a process-lifetime registry entry
    /// (linalg::backend_by_name), never an owned object.
    const linalg::LinalgBackend* backend = nullptr;
};

class BayesSolver final : public SolverBase {
public:
    explicit BayesSolver(BayesConfig config = {});

    [[nodiscard]] std::string name() const override { return "bayesian"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;

    /// Expected improvement (for minimization) at posterior (mean, var)
    /// against incumbent `best_y`; exposed for tests.
    [[nodiscard]] static double expected_improvement(double mean, double variance,
                                                     double best_y, double xi) noexcept;

private:
    [[nodiscard]] std::vector<double> random_point();
    /// Writes a fresh valid random point into `out` (no allocation) —
    /// the candidate-pool hot path.
    void random_point_into(std::span<double> out);
    /// Fills `pool` (candidates x dims) for one constant-liar pick. The
    /// rng draw order is identical to generating candidates one at a
    /// time inside the scoring loop, so seed-paired runs reproduce the
    /// pre-batching proposal stream exactly.
    void fill_candidate_pool(linalg::Matrix& pool);

    BayesConfig config_;
    support::Rng rng_;
};

}  // namespace sdl::solver
