// Bayesian optimization solver (§2.5): a Gaussian-process surrogate over
// mixing ratios with expected-improvement acquisition.
//
// The paper built theirs on scikit-learn; this is a from-scratch
// equivalent: RBF kernel with a noise nugget, hyperparameters selected by
// log-marginal-likelihood grid search, Cholesky-based posterior, and
// batch proposals via the constant-liar heuristic. The paper reports that
// Bayesian optimization "does not yield a systematic improvement over the
// genetic algorithm" — the solver-ablation bench reproduces that
// comparison.
#pragma once

#include "linalg/cholesky.hpp"
#include "solver/solver.hpp"
#include "support/random.hpp"

namespace sdl::solver {

/// Gaussian-process regression with an isotropic RBF kernel:
///   k(x, x') = signal_var * exp(-|x-x'|^2 / (2 l^2)) + noise_var * [x==x']
/// Targets are standardized internally.
class GaussianProcess {
public:
    struct Hyperparams {
        double lengthscale = 0.4;
        double noise_var = 1e-2;   ///< relative to unit signal variance
        double signal_var = 1.0;
    };

    /// Fits the GP to (xs, ys). When `optimize` is true, a small grid of
    /// lengthscales and noise levels is scored by log marginal likelihood
    /// and the best is kept — the winning candidate's Cholesky factor is
    /// reused directly, so the kernel matrix is never rebuilt for the
    /// chosen hyperparameters.
    void fit(std::vector<std::vector<double>> xs, std::vector<double> ys,
             bool optimize = true);

    /// Incrementally absorbs one observation at the current
    /// hyperparameters: extends the Cholesky factor by the new row
    /// (rank-1 update, O(n²)) instead of refitting the full O(n³)
    /// factorization. The target standardization (mean/scale) stays
    /// frozen at the last fit() so the existing kernel rows remain
    /// valid; refit when the data distribution shifts. The updated
    /// factor is bitwise identical to a from-scratch refactorization at
    /// the same hyperparameters and standardization.
    void observe(std::vector<double> x, double y);

    [[nodiscard]] bool fitted() const noexcept { return !xs_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return xs_.size(); }
    [[nodiscard]] const Hyperparams& hyperparams() const noexcept { return params_; }

    struct Prediction {
        double mean = 0.0;
        double variance = 0.0;
    };
    /// Posterior at a point (in the original, unstandardized units).
    [[nodiscard]] Prediction predict(std::span<const double> x) const;

    /// Log marginal likelihood of the standardized targets under `p`.
    /// When `p` equals the fitted hyperparameters, the existing factor
    /// and K⁻¹y are reused instead of rebuilding the kernel matrix.
    [[nodiscard]] double log_marginal_likelihood(const Hyperparams& p) const;

private:
    void factorize(const Hyperparams& p);
    [[nodiscard]] linalg::Matrix kernel_matrix(const Hyperparams& p) const;
    [[nodiscard]] double lml_terms(const linalg::Cholesky& chol,
                                   const linalg::Vec& alpha) const;
    [[nodiscard]] double kernel(std::span<const double> a, std::span<const double> b,
                                const Hyperparams& p) const noexcept;

    std::vector<std::vector<double>> xs_;
    std::vector<double> ys_raw_;
    std::vector<double> ys_std_;  ///< standardized targets
    double y_mean_ = 0.0;
    double y_scale_ = 1.0;
    Hyperparams params_;
    std::unique_ptr<linalg::Cholesky> chol_;
    linalg::Vec alpha_;  ///< K^-1 y (standardized)
};

struct BayesConfig {
    std::size_t dims = 4;
    std::size_t candidates = 512;   ///< random EI candidates per proposal
    std::size_t warmup = 8;         ///< random samples before the GP kicks in
    double exploration = 0.01;      ///< EI xi (in standardized units)
    /// Cap on training points; the most recent ones are kept (the kernel
    /// solve is O(n^3)).
    std::size_t max_points = 256;
    std::uint64_t seed = 0xBA7E5;
};

class BayesSolver final : public SolverBase {
public:
    explicit BayesSolver(BayesConfig config = {});

    [[nodiscard]] std::string name() const override { return "bayesian"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;

    /// Expected improvement (for minimization) at posterior (mean, var)
    /// against incumbent `best_y`; exposed for tests.
    [[nodiscard]] static double expected_improvement(double mean, double variance,
                                                     double best_y, double xi) noexcept;

private:
    [[nodiscard]] std::vector<double> random_point();

    BayesConfig config_;
    support::Rng rng_;
};

}  // namespace sdl::solver
