#include "solver/factory.hpp"

#include "linalg/backend.hpp"
#include "solver/anneal.hpp"
#include "solver/baselines.hpp"
#include "solver/bayes.hpp"
#include "solver/genetic.hpp"
#include "solver/pattern.hpp"
#include "support/common.hpp"

namespace sdl::solver {

std::unique_ptr<Solver> make_solver(const std::string& name, const SolverOptions& options) {
    if (name == "genetic") {
        GeneticConfig config;
        config.dims = options.dims;
        config.seed = options.seed;
        return std::make_unique<GeneticSolver>(config);
    }
    if (name == "bayesian") {
        BayesConfig config;
        config.dims = options.dims;
        config.seed = options.seed;
        config.backend = &linalg::backend_by_name(options.linalg_backend);
        return std::make_unique<BayesSolver>(config);
    }
    if (name == "anneal") {
        AnnealConfig config;
        config.dims = options.dims;
        config.seed = options.seed;
        return std::make_unique<AnnealSolver>(config);
    }
    if (name == "pattern") {
        PatternConfig config;
        config.dims = options.dims;
        config.seed = options.seed;
        return std::make_unique<PatternSearchSolver>(config);
    }
    if (name == "random") {
        return std::make_unique<RandomSolver>(options.dims, options.seed);
    }
    if (name == "grid") {
        return std::make_unique<GridSolver>(options.dims);
    }
    if (name == "oracle") {
        if (options.mixer == nullptr) {
            throw support::ConfigError("oracle solver needs a mixer in SolverOptions");
        }
        return std::make_unique<OracleSolver>(*options.mixer, options.target, options.seed);
    }
    throw support::ConfigError("unknown solver '" + name + "'");
}

std::vector<std::string> solver_names() {
    return {"genetic", "bayesian", "anneal", "pattern", "random", "grid", "oracle"};
}

}  // namespace sdl::solver
