// Solver factory: name-based construction, mirroring the paper's ability
// to "run multiple optimization algorithms without changes to other
// elements of the system".
#pragma once

#include <memory>
#include <string>

#include "color/mixing.hpp"
#include "solver/solver.hpp"

namespace sdl::solver {

struct SolverOptions {
    std::size_t dims = 4;
    std::uint64_t seed = 1;
    /// Needed only by the oracle baseline.
    const color::BeerLambertMixer* mixer = nullptr;
    color::Rgb8 target{120, 120, 120};
    /// Linalg backend name for GP-based solvers (linalg/backend.hpp);
    /// other solvers ignore it. Unknown names throw ConfigError.
    std::string linalg_backend = "strict";
};

/// Known names: "genetic", "bayesian", "anneal", "pattern", "random",
/// "grid", "oracle".
/// Throws ConfigError for unknown names or missing oracle prerequisites.
[[nodiscard]] std::unique_ptr<Solver> make_solver(const std::string& name,
                                                  const SolverOptions& options);

/// All registered solver names (for CLIs and benches).
[[nodiscard]] std::vector<std::string> solver_names();

}  // namespace sdl::solver
