#include "solver/genetic.hpp"

#include <cmath>

#include "support/common.hpp"

namespace sdl::solver {

GeneticSolver::GeneticSolver(GeneticConfig config) : config_(config), rng_(config.seed) {
    support::check(config_.dims >= 1, "genetic solver needs at least one dye");
    support::check(config_.mutation_scale > 0.0, "mutation scale must be positive");
}

const std::vector<Observation>& GeneticSolver::parents() const {
    return previous_generation().size() >= 2 ? previous_generation() : archive();
}

std::vector<double> GeneticSolver::random_ratios() {
    std::vector<double> ratios(config_.dims);
    do {
        for (double& r : ratios) r = rng_.uniform();
    } while (!is_valid_proposal(ratios, config_.dims));
    return ratios;
}

std::vector<double> GeneticSolver::crossover() {
    const auto& pool = parents();
    if (pool.size() < 2) return random_ratios();
    const std::size_t i = rng_.uniform_int(pool.size());
    std::size_t j = rng_.uniform_int(pool.size());
    if (j == i) j = (j + 1) % pool.size();
    const std::vector<double>& a = pool[i].ratios;
    const std::vector<double>& b = pool[j].ratios;
    std::vector<double> child(config_.dims);
    for (std::size_t d = 0; d < config_.dims; ++d) child[d] = 0.5 * (a[d] + b[d]);
    return child;
}

std::vector<double> GeneticSolver::mutate() {
    const auto& pool = parents();
    if (pool.empty()) return random_ratios();
    const std::vector<double>& base = pool[rng_.uniform_int(pool.size())].ratios;
    std::vector<double> child(config_.dims);
    for (std::size_t d = 0; d < config_.dims; ++d) {
        const double shifted =
            base[d] + rng_.uniform(-config_.mutation_scale, config_.mutation_scale);
        child[d] = support::clamp(shifted, 0.0, 1.0);
    }
    if (!is_valid_proposal(child, config_.dims)) return random_ratios();
    return child;
}

std::vector<std::vector<double>> GeneticSolver::ask(std::size_t n) {
    support::check(n >= 1, "ask() needs n >= 1");
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);

    if (archive().empty()) {
        // Initial population from a uniform grid: enumerate lattice points
        // of a g^dims grid in seeded-shuffled order, skipping degenerate
        // (all-zero) corners.
        int levels = config_.grid_levels;
        if (levels < 2) {
            levels = 2;
            while (std::pow(levels, static_cast<double>(config_.dims)) <
                   static_cast<double>(n) + 1.0) {
                ++levels;
            }
        }
        const auto total = static_cast<std::size_t>(
            std::llround(std::pow(levels, static_cast<double>(config_.dims))));
        const std::vector<std::size_t> order = rng_.permutation(total);
        for (const std::size_t index : order) {
            std::size_t rest = index;
            std::vector<double> point(config_.dims);
            for (std::size_t d = 0; d < config_.dims; ++d) {
                point[d] = static_cast<double>(rest % static_cast<std::size_t>(levels)) /
                           static_cast<double>(levels - 1);
                rest /= static_cast<std::size_t>(levels);
            }
            if (!is_valid_proposal(point, config_.dims)) continue;
            proposals.push_back(std::move(point));
            if (proposals.size() == n) break;
        }
        // Grid smaller than the batch: top up with uniform randoms.
        while (proposals.size() < n) proposals.push_back(random_ratios());
        ++generation_;
        return proposals;
    }

    // Elite propagation (only meaningful when the generation has room for
    // variation alongside it).
    if (n >= 2) {
        proposals.push_back(best()->ratios);
    }

    // Fill the remainder in thirds: crossover / ratio-shift / random.
    // Round-robin assignment approximates exact thirds for any batch size;
    // the starting operator rotates across generations so tiny populations
    // (B=1, B=2) still exercise all three operators over time instead of
    // collapsing onto repeated crossovers.
    std::size_t op_index = static_cast<std::size_t>(generation_ % 3);
    while (proposals.size() < n) {
        switch (op_index % 3) {
            case 0: proposals.push_back(crossover()); break;
            case 1: proposals.push_back(mutate()); break;
            default: proposals.push_back(random_ratios()); break;
        }
        ++op_index;
    }
    ++generation_;
    return proposals;
}

}  // namespace sdl::solver
