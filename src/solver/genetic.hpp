// The paper's "simple evolutionary solver" (§2.5), reproduced operator
// for operator:
//
//   "For the initial population, points are sampled from a uniform grid
//    of proper dimensions (corresponding to the number of mixing colors).
//    ... The most accurate element of the previous population is
//    propagated into the new generation. One third of the new population
//    is created by randomly selecting two elements of the previous
//    population and taking the average of them. One third of the
//    population is created by taking a random element of the previous
//    population and randomly shifting its ratios. The final third of the
//    population is created by randomly creating a new set of ratios."
//
// One documented adaptation: for batch size 1 a literal reading would
// re-propose the elite forever, so generations of size 1 rotate through
// the three variation operators instead (crossover, shift, random) —
// which produces exactly the gradual, plateau-prone improvement the
// paper's Figure 4 shows for B=1.
#pragma once

#include "solver/solver.hpp"
#include "support/random.hpp"

namespace sdl::solver {

struct GeneticConfig {
    std::size_t dims = 4;          ///< number of dyes
    double mutation_scale = 0.15;  ///< uniform ratio-shift half-width
    /// Grid levels per dimension for the initial uniform grid; 0 picks
    /// the smallest grid covering the first requested batch.
    int grid_levels = 5;
    std::uint64_t seed = 0x6E7E71C;
};

class GeneticSolver final : public SolverBase {
public:
    explicit GeneticSolver(GeneticConfig config = {});

    [[nodiscard]] std::string name() const override { return "genetic"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;

private:
    [[nodiscard]] std::vector<double> random_ratios();
    [[nodiscard]] std::vector<double> crossover();
    [[nodiscard]] std::vector<double> mutate();
    /// Parents pool: previous generation when it has >= 2 members,
    /// otherwise the full archive (keeps B=1 runs well-defined).
    [[nodiscard]] const std::vector<Observation>& parents() const;

    GeneticConfig config_;
    support::Rng rng_;
    std::uint64_t generation_ = 0;
};

}  // namespace sdl::solver
