#include "solver/pattern.hpp"

#include <algorithm>

#include "support/common.hpp"

namespace sdl::solver {

PatternSearchSolver::PatternSearchSolver(PatternConfig config)
    : config_(config), rng_(config.seed), step_(config.initial_step) {
    support::check(config_.dims >= 1, "pattern solver needs at least one dye");
    support::check(config_.shrink > 0.0 && config_.shrink < 1.0,
                   "shrink factor must be in (0, 1)");
}

std::vector<std::vector<double>> PatternSearchSolver::ask(std::size_t n) {
    support::check(n >= 1, "ask() needs n >= 1");
    std::vector<std::vector<double>> proposals;
    proposals.reserve(n);

    if (!has_center_) {
        // Cold start: random points; the best becomes the first center.
        for (std::size_t i = 0; i < n; ++i) {
            std::vector<double> p(config_.dims);
            do {
                for (double& v : p) v = rng_.uniform();
            } while (!is_valid_proposal(p, config_.dims));
            proposals.push_back(std::move(p));
        }
        return proposals;
    }

    // Compass probes around the center, in a seeded-random axis order so
    // truncated batches (n < 2*dims) still cover all axes over time.
    const auto order = rng_.permutation(2 * config_.dims);
    for (const std::size_t probe : order) {
        if (proposals.size() == n) break;
        const std::size_t axis = probe / 2;
        const double direction = (probe % 2 == 0) ? 1.0 : -1.0;
        std::vector<double> p = center_;
        p[axis] = support::clamp(p[axis] + direction * step_, 0.0, 1.0);
        if (!is_valid_proposal(p, config_.dims)) continue;
        proposals.push_back(std::move(p));
    }
    // Batch larger than the compass: pad with random restarts (global
    // exploration keeps the search from stalling in a local basin).
    while (proposals.size() < n) {
        std::vector<double> p(config_.dims);
        do {
            for (double& v : p) v = rng_.uniform();
        } while (!is_valid_proposal(p, config_.dims));
        proposals.push_back(std::move(p));
    }
    probes_outstanding_ = true;
    return proposals;
}

void PatternSearchSolver::tell(std::span<const Observation> observations) {
    SolverBase::tell(observations);
    bool improved = false;
    for (const Observation& obs : observations) {
        if (obs.score < center_score_) {
            center_ = obs.ratios;
            center_score_ = obs.score;
            improved = true;
        }
    }
    if (!has_center_) {
        has_center_ = !archive().empty();
        return;
    }
    if (probes_outstanding_ && !improved) {
        step_ = std::max(config_.min_step, step_ * config_.shrink);
    }
    probes_outstanding_ = false;
}

}  // namespace sdl::solver
