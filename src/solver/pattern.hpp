// Compass / pattern-search solver (derivative-free local search).
//
// Another classic "different search approach" (§4 future work): probe the
// 2·dims axis-aligned neighbours of the incumbent at the current step
// size; move to the best improving probe, otherwise halve the step. Its
// batch shape (a full compass of probes per generation) fits the
// workcell's batched mixing naturally — one generation is one plate
// batch.
#pragma once

#include "solver/solver.hpp"
#include "support/random.hpp"

namespace sdl::solver {

struct PatternConfig {
    std::size_t dims = 4;
    double initial_step = 0.25;
    double min_step = 0.01;
    double shrink = 0.5;
    std::uint64_t seed = 0x9A77E2;
};

class PatternSearchSolver final : public SolverBase {
public:
    explicit PatternSearchSolver(PatternConfig config = {});

    [[nodiscard]] std::string name() const override { return "pattern"; }
    [[nodiscard]] std::vector<std::vector<double>> ask(std::size_t n) override;
    void tell(std::span<const Observation> observations) override;

    [[nodiscard]] double step() const noexcept { return step_; }

private:
    PatternConfig config_;
    support::Rng rng_;
    double step_;
    std::vector<double> center_;
    double center_score_ = 1e300;
    bool has_center_ = false;
    bool probes_outstanding_ = false;
};

}  // namespace sdl::solver
