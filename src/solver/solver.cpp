#include "solver/solver.hpp"

namespace sdl::solver {

void SolverBase::tell(std::span<const Observation> observations) {
    previous_generation_.assign(observations.begin(), observations.end());
    for (const Observation& obs : observations) {
        archive_.push_back(obs);
        if (!best_.has_value() || obs.score < best_->score) best_ = obs;
    }
}

std::optional<Observation> SolverBase::best() const { return best_; }

bool is_valid_proposal(std::span<const double> ratios, std::size_t dims) {
    if (ratios.size() != dims) return false;
    double sum = 0.0;
    for (const double r : ratios) {
        if (r < 0.0 || r > 1.0) return false;
        sum += r;
    }
    return sum > 1e-6;
}

}  // namespace sdl::solver
