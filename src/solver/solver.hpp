// Color-picking solver interface (§2.5).
//
// Solvers are black-box optimizers over dye mixing ratios: ask() proposes
// ratio vectors, the workcell mixes and measures them, tell() feeds the
// scored observations back. "Treating the problem as a black box ...
// allows us to employ the problem as a surrogate for more complex
// problems and to experiment with different decision procedures" — the
// interface is deliberately minimal so decision procedures are swappable
// "without changes to other elements of the system".
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "color/rgb.hpp"

namespace sdl::solver {

/// One evaluated sample: the proposed ratios, what the camera measured,
/// and the objective value (lower is better).
struct Observation {
    std::vector<double> ratios;
    color::Rgb8 measured;
    double score = 0.0;
};

class Solver {
public:
    virtual ~Solver() = default;

    [[nodiscard]] virtual std::string name() const = 0;

    /// Proposes `n` ratio vectors, each with one entry per dye in [0, 1]
    /// and a non-degenerate sum (so the well is never empty).
    [[nodiscard]] virtual std::vector<std::vector<double>> ask(std::size_t n) = 0;

    /// Reports evaluated proposals back to the solver.
    virtual void tell(std::span<const Observation> observations) = 0;

    /// Best observation seen so far (nullopt before any tell()).
    [[nodiscard]] virtual std::optional<Observation> best() const = 0;
};

/// Shared bookkeeping: archive of all observations plus best tracking.
class SolverBase : public Solver {
public:
    void tell(std::span<const Observation> observations) override;
    [[nodiscard]] std::optional<Observation> best() const override;

protected:
    [[nodiscard]] const std::vector<Observation>& archive() const noexcept {
        return archive_;
    }
    /// Observations from the most recent tell() call — the paper's
    /// "previous population".
    [[nodiscard]] const std::vector<Observation>& previous_generation() const noexcept {
        return previous_generation_;
    }

private:
    std::vector<Observation> archive_;
    std::vector<Observation> previous_generation_;
    std::optional<Observation> best_;
};

/// Validates a proposal's shape: `dims` entries, all in [0,1], sum > 0.
[[nodiscard]] bool is_valid_proposal(std::span<const double> ratios, std::size_t dims);

}  // namespace sdl::solver
