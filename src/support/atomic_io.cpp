#include "support/atomic_io.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <utility>

#if defined(_WIN32)
#include <process.h>
#else
#include <fcntl.h>
#include <unistd.h>
#endif

#include "support/common.hpp"
#include "support/failpoint.hpp"

namespace sdl::support {

namespace {

long current_pid() {
#if defined(_WIN32)
    return static_cast<long>(_getpid());
#else
    return static_cast<long>(::getpid());
#endif
}

#if !defined(_WIN32)
// Makes a directory-entry change (create, rename) itself durable: data
// fsyncs alone don't persist the *name*, so after a power loss the file
// could vanish despite every write having been acknowledged.
void fsync_parent_dir(const std::string& path) noexcept {
    const std::string dir = std::filesystem::path(path).parent_path().string();
    const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
}
#endif

}  // namespace

void atomic_write(const std::string& path, std::string_view content) {
    // The temp name carries the pid (distinct concurrent processes) and a
    // process-wide sequence number (distinct concurrent threads), so no
    // two writers ever share a temp file; whoever renames last wins with
    // a complete document.
    static std::atomic<unsigned long> sequence{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(current_pid()) + "." +
        std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
    {
        // sdlbench-lint: allow(raw-artifact-write): this IS atomic_write — the raw stream targets the temp file the rename publishes
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file) throw Error("io", "cannot open '" + tmp + "' for writing");
        file.write(content.data(), static_cast<std::streamsize>(content.size()));
        file.flush();
        if (!file) {
            file.close();
            std::error_code ignored;
            std::filesystem::remove(tmp, ignored);
            throw Error("io", "failed writing '" + tmp + "'");
        }
    }
    // Injected faults discard the temp file like every real failure path:
    // the published name either keeps its old content or gains the new
    // complete document, never a partial one.
    const auto fail_and_discard_tmp = [&tmp](std::string_view site) {
        try {
            failpoint::maybe_fail(site, "io");
        } catch (...) {
            std::error_code ignored;
            std::filesystem::remove(tmp, ignored);
            throw;
        }
    };
    if (failpoint::armed()) fail_and_discard_tmp("atomic_io.fsync");
#if !defined(_WIN32)
    // Push the temp file's bytes to stable storage before the rename
    // publishes it, so a machine crash cannot surface the new name with
    // empty/partial content.
    const int fd = ::open(tmp.c_str(), O_RDONLY);
    if (fd >= 0) {
        ::fsync(fd);
        ::close(fd);
    }
#endif
    if (failpoint::armed()) fail_and_discard_tmp("atomic_io.rename");
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::error_code ignored;
        std::filesystem::remove(tmp, ignored);
        throw Error("io", "cannot rename '" + tmp + "' to '" + path +
                              "': " + ec.message());
    }
#if !defined(_WIN32)
    fsync_parent_dir(path);  // make the rename itself durable
#endif
}

AppendWriter::AppendWriter(std::string path) : path_(std::move(path)) {
#if defined(_WIN32)
    // Best-effort fallback: unbuffered append-mode stdio. Windows has no
    // true O_APPEND single-write guarantee here; the linux path below is
    // the one the journal's durability story is built on.
    // sdlbench-lint: allow(raw-artifact-write): AppendWriter's own Windows fallback, documented best-effort above
    file_ = std::fopen(path_.c_str(), "ab");
    if (file_ != nullptr) std::setvbuf(file_, nullptr, _IONBF, 0);
    const bool ok = file_ != nullptr;
#else
    // O_APPEND: every write(2) lands atomically at the current end of
    // file, so records from concurrent appenders never interleave
    // mid-line — provided each record goes out in ONE write, which
    // append_line guarantees (no stdio buffering to split it).
    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd_ >= 0) fsync_parent_dir(path_);  // persist the O_CREAT entry
    const bool ok = fd_ >= 0;
#endif
    if (!ok) {
        throw Error("io", "cannot open journal '" + path_ + "' for appending");
    }
}

AppendWriter::~AppendWriter() { close(); }

void AppendWriter::close() noexcept {
#if defined(_WIN32)
    if (file_ != nullptr) std::fclose(std::exchange(file_, nullptr));
#else
    if (fd_ >= 0) ::close(std::exchange(fd_, -1));
#endif
}

AppendWriter::AppendWriter(AppendWriter&& other) noexcept : path_(std::move(other.path_)) {
#if defined(_WIN32)
    file_ = std::exchange(other.file_, nullptr);
#else
    fd_ = std::exchange(other.fd_, -1);
#endif
}

AppendWriter& AppendWriter::operator=(AppendWriter&& other) noexcept {
    if (this != &other) {
        close();
        path_ = std::move(other.path_);
#if defined(_WIN32)
        file_ = std::exchange(other.file_, nullptr);
#else
        fd_ = std::exchange(other.fd_, -1);
#endif
    }
    return *this;
}

void AppendWriter::append_line(std::string_view line) {
    check(line.find('\n') == std::string_view::npos,
          "journal records must be single lines");
    std::string record;
    record.reserve(line.size() + 1);
    record.append(line);
    record.push_back('\n');
#if defined(_WIN32)
    check(file_ != nullptr, "append_line on a moved-from AppendWriter");
    const bool ok = std::fwrite(record.data(), 1, record.size(), file_) ==
                        record.size() &&
                    std::fflush(file_) == 0;
#else
    check(fd_ >= 0, "append_line on a moved-from AppendWriter");
    // One write(2) for the whole record; a short write (ENOSPC, a signal
    // mid-write) would tear the journal line, so treat it as a failure —
    // the reader's torn-tail recovery covers what got out. fdatasync
    // makes the record survive machine death, not just a process kill;
    // one sync per record is noise next to a cell's simulation time.
    //
    // journal.append_short_write=err(K) truly writes only the first K
    // bytes before failing, so the file really does hold a torn record —
    // the recovery property test exercises every K boundary this way.
    std::size_t to_write = record.size();
    bool injected_short = false;
    if (failpoint::armed()) {
        const failpoint::Fired fired = failpoint::evaluate(
            "journal.append_short_write", static_cast<long>(record.size()));
        if (fired.action != failpoint::Action::None) {
            injected_short = true;
            const long keep = fired.param;
            to_write = (keep >= 0 && static_cast<std::size_t>(keep) < to_write)
                           ? static_cast<std::size_t>(keep)
                           : 0;
        }
    }
    const ssize_t written = ::write(fd_, record.data(), to_write);
    bool ok = !injected_short && written == static_cast<ssize_t>(record.size());
    if (ok && failpoint::armed()) {
        // Fires after the full record hit the page cache but before it is
        // durable: the caller sees a failure for a record a later reader
        // may well observe intact. Recovery must tolerate both outcomes.
        failpoint::maybe_fail("journal.append_fsync", "io");
    }
    ok = ok && ::fdatasync(fd_) == 0;
#endif
    if (!ok) {
        throw Error("io", "failed appending to journal '" + path_ + "'");
    }
}

}  // namespace sdl::support
