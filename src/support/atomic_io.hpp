// Crash-safe file IO primitives for reports and journals.
//
// Two write disciplines cover every durable artifact sdlbench produces:
//   * atomic_write — whole documents (campaign.json, workcell.yaml, CSVs)
//     go to a temporary sibling first and are renamed into place, so a
//     reader (or a resumed run) never sees a torn file;
//   * AppendWriter — the campaign cell journal appends one record per
//     line through an O_APPEND stream, flushed per record, so a killed
//     process loses at most the final, partially written line.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace sdl::support {

/// Writes `content` to `path` atomically: the bytes land in a temporary
/// file in the same directory, which is fsynced and then renamed over
/// `path` only after a complete write. A crash mid-write leaves the old
/// file (or no file) intact — never a partial one. Throws Error("io")
/// on failure.
void atomic_write(const std::string& path, std::string_view content);

/// Append-only line journal on an O_APPEND descriptor. append_line()
/// issues exactly one unbuffered write(2) for the whole record + '\n'
/// followed by fdatasync, so records from concurrent appender
/// *processes* never interleave mid-line (O_APPEND writes to regular
/// files are atomic), every returned append has reached stable storage
/// (survives machine death, not just a process kill), and a kill leaves
/// at most one truncated final line — which journal readers detect and
/// drop. Not internally synchronized across *threads*:
/// callers serialize appends (CampaignRunner's completion hook already
/// does). On Windows a buffered-stdio fallback is used without the
/// cross-process interleaving guarantee.
class AppendWriter {
public:
    /// Opens `path` for appending, creating it if absent.
    /// Throws Error("io") when the file cannot be opened.
    explicit AppendWriter(std::string path);
    ~AppendWriter();

    AppendWriter(const AppendWriter&) = delete;
    AppendWriter& operator=(const AppendWriter&) = delete;
    AppendWriter(AppendWriter&& other) noexcept;
    AppendWriter& operator=(AppendWriter&& other) noexcept;

    /// Appends `line` + '\n' in a single unbuffered write. `line` must
    /// not itself contain '\n' (one record per line is the journal
    /// invariant). Throws Error("io") on failure — including a short
    /// write, which tears the final journal line (the reader's torn-tail
    /// recovery then drops it).
    void append_line(std::string_view line);

    [[nodiscard]] const std::string& path() const noexcept { return path_; }

private:
    void close() noexcept;

    std::string path_;
#if defined(_WIN32)
    std::FILE* file_ = nullptr;
#else
    int fd_ = -1;
#endif
};

}  // namespace sdl::support
