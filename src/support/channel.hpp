// Bounded multi-producer / multi-consumer channel.
//
// This is the message-passing primitive behind the threaded WEI transport:
// the workflow engine sends ActionRequests into a module's inbox channel
// and the module's device thread replies on a response channel — data
// moves between threads by cooperative send/receive operations rather
// than shared mutable state (the MPI model, applied in-process).
//
// Queue and closed flag are guarded by an annotated support::Mutex
// (mutex.hpp): clang -Wthread-safety proves every access is under the
// lock, and the `tsan` preset exercises the same paths dynamically.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sdl::support {

template <typename T>
class Channel {
public:
    /// capacity == 0 means unbounded.
    explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Blocking send. Returns false if the channel was closed.
    bool send(T value) {
        {
            MutexLock lock(mutex_);
            while (!closed_ && capacity_ != 0 && queue_.size() >= capacity_) {
                not_full_.wait(mutex_);
            }
            if (closed_) return false;
            queue_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking send; fails if full or closed.
    bool try_send(T value) {
        {
            MutexLock lock(mutex_);
            if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) {
                return false;
            }
            queue_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocking receive. Empty optional means closed-and-drained.
    std::optional<T> receive() {
        std::optional<T> value;
        {
            MutexLock lock(mutex_);
            while (!closed_ && queue_.empty()) not_empty_.wait(mutex_);
            if (queue_.empty()) return std::nullopt;
            value.emplace(std::move(queue_.front()));
            queue_.pop_front();
        }
        not_full_.notify_one();
        return value;
    }

    /// Non-blocking receive.
    std::optional<T> try_receive() {
        std::optional<T> value;
        {
            MutexLock lock(mutex_);
            if (queue_.empty()) return std::nullopt;
            value.emplace(std::move(queue_.front()));
            queue_.pop_front();
        }
        not_full_.notify_one();
        return value;
    }

    /// Closes the channel: senders fail, receivers drain then get nullopt.
    void close() {
        {
            MutexLock lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        MutexLock lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        MutexLock lock(mutex_);
        return queue_.size();
    }

private:
    mutable Mutex mutex_;
    CondVar not_empty_;
    CondVar not_full_;
    std::deque<T> queue_ SDL_GUARDED_BY(mutex_);
    std::size_t capacity_;
    bool closed_ SDL_GUARDED_BY(mutex_) = false;
};

}  // namespace sdl::support
