// Bounded multi-producer / multi-consumer channel.
//
// This is the message-passing primitive behind the threaded WEI transport:
// the workflow engine sends ActionRequests into a module's inbox channel
// and the module's device thread replies on a response channel — data
// moves between threads by cooperative send/receive operations rather
// than shared mutable state (the MPI model, applied in-process).
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace sdl::support {

template <typename T>
class Channel {
public:
    /// capacity == 0 means unbounded.
    explicit Channel(std::size_t capacity = 0) : capacity_(capacity) {}

    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    /// Blocking send. Returns false if the channel was closed.
    bool send(T value) {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [this] {
            return closed_ || capacity_ == 0 || queue_.size() < capacity_;
        });
        if (closed_) return false;
        queue_.push_back(std::move(value));
        lock.unlock();
        not_empty_.notify_one();
        return true;
    }

    /// Non-blocking send; fails if full or closed.
    bool try_send(T value) {
        {
            std::lock_guard lock(mutex_);
            if (closed_ || (capacity_ != 0 && queue_.size() >= capacity_)) {
                return false;
            }
            queue_.push_back(std::move(value));
        }
        not_empty_.notify_one();
        return true;
    }

    /// Blocking receive. Empty optional means closed-and-drained.
    std::optional<T> receive() {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) return std::nullopt;
        T value = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /// Non-blocking receive.
    std::optional<T> try_receive() {
        std::unique_lock lock(mutex_);
        if (queue_.empty()) return std::nullopt;
        T value = std::move(queue_.front());
        queue_.pop_front();
        lock.unlock();
        not_full_.notify_one();
        return value;
    }

    /// Closes the channel: senders fail, receivers drain then get nullopt.
    void close() {
        {
            std::lock_guard lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    [[nodiscard]] bool closed() const {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    [[nodiscard]] std::size_t size() const {
        std::lock_guard lock(mutex_);
        return queue_.size();
    }

private:
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> queue_;
    std::size_t capacity_;
    bool closed_ = false;
};

}  // namespace sdl::support
