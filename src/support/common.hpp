// Common small utilities shared by every sdlbench module.
//
// Error handling follows the C++ Core Guidelines: exceptions for errors
// that cannot be handled locally (E.2), assertions for programming bugs
// (I.6), and narrow_cast for checked narrowing conversions (ES.46).
#pragma once

#include <cstdint>
#include <source_location>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace sdl::support {

/// Base class for all sdlbench errors. Carries a category string so call
/// sites can report where in the stack the failure originated.
class Error : public std::runtime_error {
public:
    Error(std::string category, const std::string& message)
        : std::runtime_error("[" + category + "] " + message),
          category_(std::move(category)) {}

    /// Short machine-readable category, e.g. "yaml", "wei", "device".
    [[nodiscard]] const std::string& category() const noexcept { return category_; }

private:
    std::string category_;
};

/// Thrown when parsing structured text (JSON/YAML/CSV) fails.
class ParseError : public Error {
public:
    ParseError(const std::string& message, std::size_t line, std::size_t column)
        : Error("parse", message + " at line " + std::to_string(line) +
                             ", column " + std::to_string(column)),
          line_(line), column_(column) {}

    [[nodiscard]] std::size_t line() const noexcept { return line_; }
    [[nodiscard]] std::size_t column() const noexcept { return column_; }

private:
    std::size_t line_;
    std::size_t column_;
};

/// Thrown on misconfiguration (bad workcell file, inconsistent options).
class ConfigError : public Error {
public:
    explicit ConfigError(const std::string& message) : Error("config", message) {}
};

/// Internal invariant violation; always indicates a bug in sdlbench itself.
class LogicError : public std::logic_error {
public:
    explicit LogicError(const std::string& message) : std::logic_error(message) {}
};

/// Assert that `condition` holds; throws LogicError with location info.
/// Used instead of <cassert> so invariants stay checked in Release builds;
/// the hot paths that matter are never assertion-bound.
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
    if (!condition) {
        std::ostringstream os;
        os << loc.file_name() << ":" << loc.line() << " in " << loc.function_name()
           << ": invariant violated: " << message;
        throw LogicError(os.str());
    }
}

/// Checked narrowing conversion (Core Guidelines ES.46 / gsl::narrow).
template <typename To, typename From>
[[nodiscard]] constexpr To narrow(From value) {
    const To result = static_cast<To>(value);
    if (static_cast<From>(result) != value ||
        ((result < To{}) != (value < From{}))) {
        throw LogicError("narrowing conversion lost information");
    }
    return result;
}

/// Signed size of a container (avoids unsigned arithmetic bugs, ES.102).
template <typename Container>
[[nodiscard]] constexpr std::ptrdiff_t ssize_of(const Container& c) noexcept {
    return static_cast<std::ptrdiff_t>(c.size());
}

/// Clamp helper that works for any totally ordered type.
template <typename T>
[[nodiscard]] constexpr T clamp(T value, T lo, T hi) noexcept {
    return value < lo ? lo : (hi < value ? hi : value);
}

/// True if two doubles are within `tol` absolutely or relatively.
[[nodiscard]] inline bool approx_equal(double a, double b, double tol = 1e-9) noexcept {
    const double diff = a > b ? a - b : b - a;
    const double mag = (a < 0 ? -a : a) > (b < 0 ? -b : b) ? (a < 0 ? -a : a)
                                                           : (b < 0 ? -b : b);
    return diff <= tol || diff <= tol * mag;
}

}  // namespace sdl::support
