#include "support/csv.hpp"

#include <charconv>

#include "support/atomic_io.hpp"
#include "support/common.hpp"

namespace sdl::support {

std::string fmt_roundtrip(double x) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), x);
    check(ec == std::errc{}, "fmt_roundtrip: to_chars failed");
    return std::string(buf, ptr);
}

CsvWriter::CsvWriter(std::vector<std::string> header) : width_(header.size()) {
    check(!header.empty(), "CSV header must be non-empty");
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i > 0) out_ += ',';
        out_ += quote(header[i]);
    }
    out_ += '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    check(cells.size() == width_, "CSV row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out_ += ',';
        out_ += quote(cells[i]);
    }
    out_ += '\n';
    ++n_rows_;
}

void CsvWriter::add_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    // Shortest-round-trip instead of a fixed "%.6g": scores and seeds
    // must survive a CSV -> double -> CSV cycle and stay comparable to
    // the JSON reports, which serialize doubles identically.
    for (const double c : cells) text.push_back(fmt_roundtrip(c));
    add_row(text);
}

void CsvWriter::save(const std::string& path) const { atomic_write(path, out_); }

std::string CsvWriter::quote(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out += '"';
    return out;
}

}  // namespace sdl::support
