#include "support/csv.hpp"

#include <cstdio>
#include <fstream>

#include "support/common.hpp"

namespace sdl::support {

CsvWriter::CsvWriter(std::vector<std::string> header) : width_(header.size()) {
    check(!header.empty(), "CSV header must be non-empty");
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i > 0) out_ += ',';
        out_ += quote(header[i]);
    }
    out_ += '\n';
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
    check(cells.size() == width_, "CSV row width mismatch");
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0) out_ += ',';
        out_ += quote(cells[i]);
    }
    out_ += '\n';
    ++n_rows_;
}

void CsvWriter::add_row(const std::vector<double>& cells) {
    std::vector<std::string> text;
    text.reserve(cells.size());
    for (const double c : cells) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6g", c);
        text.emplace_back(buf);
    }
    add_row(text);
}

void CsvWriter::save(const std::string& path) const {
    std::ofstream file(path, std::ios::binary);
    if (!file) throw Error("io", "cannot open '" + path + "' for writing");
    file << out_;
    if (!file) throw Error("io", "failed writing '" + path + "'");
}

std::string CsvWriter::quote(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"') out += "\"\"";
        else out.push_back(c);
    }
    out += '"';
    return out;
}

}  // namespace sdl::support
