// Minimal CSV writer for benchmark series exports (Figure 4 data etc.).
#pragma once

#include <string>
#include <vector>

namespace sdl::support {

/// Shortest decimal string that parses back to exactly `x` (the
/// std::to_chars shortest-round-trip form, i.e. "%.17g" trimmed to the
/// fewest digits that still round-trip). Numeric CSV cells use this so a
/// CSV report can be diffed bit-for-bit against the JSON documents, which
/// serialize doubles the same way. Non-finite values render as "nan" /
/// "inf" / "-inf".
[[nodiscard]] std::string fmt_roundtrip(double x);

class CsvWriter {
public:
    /// Sets the header row; must be called before any data rows.
    explicit CsvWriter(std::vector<std::string> header);

    /// Appends one row; must match the header width.
    void add_row(const std::vector<std::string>& cells);

    /// Convenience for numeric rows.
    void add_row(const std::vector<double>& cells);

    [[nodiscard]] std::size_t rows() const noexcept { return n_rows_; }

    /// Full document text.
    [[nodiscard]] const std::string& str() const noexcept { return out_; }

    /// Writes the document to `path` atomically (temp file + rename, see
    /// support::atomic_write); throws Error("io") on failure.
    void save(const std::string& path) const;

    /// Quotes a cell if it contains separators/quotes/newlines.
    [[nodiscard]] static std::string quote(const std::string& cell);

private:
    std::string out_;
    std::size_t width_;
    std::size_t n_rows_ = 0;
};

}  // namespace sdl::support
