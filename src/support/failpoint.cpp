#include "support/failpoint.hpp"

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>

#include "support/common.hpp"
#include "support/mutex.hpp"
#include "support/random.hpp"

namespace sdl::support::failpoint {
namespace {

// FNV-1a 64 over the site name; mixed with the global seed so each
// entry's probability stream is decorrelated but fully reproducible.
std::uint64_t fnv1a(std::string_view text) noexcept {
    std::uint64_t h = 1469598103934665603ULL;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

/// Runtime state for one armed entry: the parsed schedule plus mutable
/// hit/fire counters and the per-entry probability stream.
struct ArmedEntry {
    Entry entry;
    std::size_t hits = 0;   ///< eligible hits seen (filter matched)
    std::size_t fires = 0;  ///< times this entry actually fired
    Rng rng{0};
};

struct Registry {
    Mutex mu;
    std::vector<ArmedEntry> entries SDL_GUARDED_BY(mu);
};

Registry& registry() {
    static Registry r;
    return r;
}

// The whole disabled-path cost: call sites check armed() — one relaxed
// load of this cold atomic — before anything else.
std::atomic<bool> g_armed{false};

[[noreturn]] void die_by_sigkill() {
    (void)std::raise(SIGKILL);
    // SIGKILL cannot be blocked; if raise somehow returned, abort loudly.
    std::abort();
}

bool is_site_char(char c) noexcept {
    return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' ||
           c == '_';
}

[[noreturn]] void bad_token(std::string_view what, std::string_view token) {
    throw ConfigError("failpoint spec: " + std::string(what) + " in '" +
                      std::string(token) + "'");
}

long parse_long(std::string_view text, std::string_view token,
                std::string_view what) {
    if (text.empty()) bad_token(what, token);
    long value = 0;
    for (const char c : text) {
        if (c < '0' || c > '9') bad_token(what, token);
        value = value * 10 + (c - '0');
    }
    return value;
}

Entry parse_entry(std::string_view token) {
    Entry entry;
    std::size_t pos = 0;
    while (pos < token.size() && is_site_char(token[pos])) ++pos;
    if (pos == 0) bad_token("missing site name", token);
    entry.site = std::string(token.substr(0, pos));

    if (pos < token.size() && token[pos] == '[') {
        const std::size_t close = token.find(']', pos);
        if (close == std::string_view::npos) bad_token("unclosed '['", token);
        entry.filter =
            parse_long(token.substr(pos + 1, close - pos - 1), token, "bad filter");
        pos = close + 1;
    }
    if (pos >= token.size() || token[pos] != '=') {
        bad_token("expected '=' after site", token);
    }
    ++pos;

    std::size_t end = pos;
    while (end < token.size() && token[end] >= 'a' && token[end] <= 'z') ++end;
    const std::string_view action = token.substr(pos, end - pos);
    if (action == "err") {
        entry.action = Action::Err;
    } else if (action == "kill") {
        entry.action = Action::Kill;
    } else if (action == "delay") {
        entry.action = Action::Delay;
    } else {
        bad_token("unknown action '" + std::string(action) + "'", token);
    }
    pos = end;

    if (pos < token.size() && token[pos] == '(') {
        const std::size_t close = token.find(')', pos);
        if (close == std::string_view::npos) bad_token("unclosed '('", token);
        entry.param =
            parse_long(token.substr(pos + 1, close - pos - 1), token, "bad param");
        pos = close + 1;
    }
    if (pos < token.size() && token[pos] == ':') {
        std::size_t stop = pos + 1;
        while (stop < token.size() && token[stop] != '@' && token[stop] != '#') {
            ++stop;
        }
        const std::string prob(token.substr(pos + 1, stop - pos - 1));
        char* tail = nullptr;
        entry.prob = std::strtod(prob.c_str(), &tail);
        if (prob.empty() || tail == nullptr || *tail != '\0' ||
            !(entry.prob > 0.0) || entry.prob > 1.0) {
            bad_token("bad probability '" + prob + "' (want (0,1])", token);
        }
        pos = stop;
    }
    if (pos < token.size() && token[pos] == '@') {
        std::size_t stop = pos + 1;
        while (stop < token.size() && token[stop] != '#') ++stop;
        const long nth =
            parse_long(token.substr(pos + 1, stop - pos - 1), token, "bad @nth");
        if (nth < 1) bad_token("@nth must be >= 1", token);
        entry.nth = static_cast<std::size_t>(nth);
        pos = stop;
    }
    if (pos < token.size() && token[pos] == '#') {
        const long count =
            parse_long(token.substr(pos + 1), token, "bad #count");
        if (count < 1) bad_token("#count must be >= 1", token);
        entry.count = static_cast<std::size_t>(count);
        pos = token.size();
    }
    if (pos != token.size()) {
        bad_token("trailing garbage", token);
    }
    return entry;
}

}  // namespace

Spec parse(std::string_view text) {
    Spec spec;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t stop = text.find(',', start);
        if (stop == std::string_view::npos) stop = text.size();
        const std::string_view token = text.substr(start, stop - start);
        start = stop + 1;
        if (token.empty()) {
            if (stop == text.size()) break;
            bad_token("empty entry", text);
        }
        if (token.rfind("seed=", 0) == 0) {
            spec.seed = static_cast<std::uint64_t>(
                parse_long(token.substr(5), token, "bad seed"));
            continue;
        }
        spec.entries.push_back(parse_entry(token));
        if (stop == text.size()) break;
    }
    return spec;
}

bool armed() noexcept { return g_armed.load(std::memory_order_relaxed); }

void arm(const Spec& spec) {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    reg.entries.clear();
    for (const Entry& entry : spec.entries) {
        ArmedEntry armed_entry;
        armed_entry.entry = entry;
        armed_entry.rng = Rng(spec.seed ^ fnv1a(entry.site));
        reg.entries.push_back(std::move(armed_entry));
    }
    g_armed.store(!reg.entries.empty(), std::memory_order_release);
}

void arm(std::string_view text) { arm(parse(text)); }

void arm_from_env() {
    const char* value = std::getenv("SDLBENCH_FAILPOINTS");
    if (value == nullptr || value[0] == '\0') {
        disarm();
        return;
    }
    arm(std::string_view(value));
}

void disarm() noexcept {
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    reg.entries.clear();
    g_armed.store(false, std::memory_order_release);
}

Fired evaluate(std::string_view site, long arg) {
    if (!armed()) return {};
    Registry& reg = registry();
    MutexLock lock(reg.mu);
    for (ArmedEntry& armed_entry : reg.entries) {
        const Entry& entry = armed_entry.entry;
        if (entry.site != site) continue;
        if (entry.filter.has_value() && *entry.filter != arg) continue;
        if (entry.count != 0 && armed_entry.fires >= entry.count) continue;
        ++armed_entry.hits;
        if (armed_entry.hits < entry.nth) continue;
        if (entry.prob < 1.0 && !armed_entry.rng.bernoulli(entry.prob)) continue;
        ++armed_entry.fires;
        return {entry.action, entry.param};
    }
    return {};
}

void maybe_fail(std::string_view site, const char* category, long arg) {
    if (!armed()) return;
    const Fired fired = evaluate(site, arg);
    switch (fired.action) {
        case Action::None:
            return;
        case Action::Err:
            throw Error(category, "injected failure at failpoint '" +
                                      std::string(site) + "'");
        case Action::Kill:
            die_by_sigkill();
        case Action::Delay: {
            const long ms = fired.param > 0 ? fired.param : 50;
            std::this_thread::sleep_for(std::chrono::milliseconds(ms));
            return;
        }
    }
}

}  // namespace sdl::support::failpoint
