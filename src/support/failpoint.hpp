// Deterministic failpoint injection: named fault sites, armed at runtime.
//
// A failpoint is a named site in production code ("atomic_io.rename",
// "worker.pre_ack_kill", ...) where a fault can be injected on demand:
// an error return/throw, a SIGKILL of the calling process, or a delay.
// Sites are compiled in permanently and cost a single branch on a cold
// atomic when nothing is armed (the relaxed load in armed() is the whole
// disabled-path cost), so the exact binary that runs in production is
// the one the chaos tests exercise — no special build.
//
// Arming happens through the SDLBENCH_FAILPOINTS environment variable or
// a tool's --failpoints flag, with a seeded, comma-separated schedule
// grammar (documented in docs/ROBUSTNESS.md § Failpoint grammar):
//
//   spec    := entry (',' entry)*
//   entry   := 'seed=' uint
//            | site ['[' filter ']'] '=' action ['(' param ')']
//                   [':' prob] ['@' nth] ['#' count]
//   action  := 'err' | 'kill' | 'delay'
//
//   site    dotted lower-case site name, e.g. atomic_io.rename
//   filter  only hits whose caller-supplied argument equals this fire
//           (e.g. worker.cell_start[5]=kill poisons grid cell 5)
//   param   action payload: err(N) = short-write N bytes where the site
//           honors it, delay(MS) = sleep MS milliseconds (default 50)
//   prob    fire probability per eligible hit, (0,1]; default 1
//   nth     first eligible hit, 1-based; default 1 (every hit eligible)
//   count   stop after this many fires; default unlimited
//
// Example: kill the process on the 2nd journal append, and fail every
// rename after the 3rd with 50% probability, reproducibly under seed 7:
//
//   SDLBENCH_FAILPOINTS='worker.pre_ack_kill=kill@2#1,atomic_io.rename=err:0.5@3,seed=7'
//
// Determinism: every probabilistic draw comes from a per-entry
// support::Rng seeded from the global seed and the site name, and hit
// counters advance in program order — the same spec against the same
// execution replays the same schedule.
#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sdl::support::failpoint {

enum class Action { None, Err, Kill, Delay };

/// What a site evaluation decided. `param` carries the entry's action
/// payload (err(N)/delay(MS)); -1 when absent.
struct Fired {
    Action action = Action::None;
    long param = -1;
};

/// One parsed schedule entry (exposed so tools can validate specs and
/// the fleet can split per-worker schedules before spawning).
struct Entry {
    std::string site;
    std::optional<long> filter;  ///< site[N]: fire only when hit arg == N
    Action action = Action::Err;
    long param = -1;             ///< err(N)/delay(MS) payload
    double prob = 1.0;           ///< per-eligible-hit fire probability
    std::size_t nth = 1;         ///< first eligible hit (1-based)
    std::size_t count = 0;       ///< max fires; 0 = unlimited
};

struct Spec {
    std::vector<Entry> entries;
    std::uint64_t seed = 0;
};

/// Parses the schedule grammar above. Throws ConfigError naming the
/// offending token on any malformed entry. An empty spec is valid (no
/// entries, arming it is a no-op).
[[nodiscard]] Spec parse(std::string_view text);

/// True when any failpoint schedule is armed. This is the only check on
/// the disabled hot path: one relaxed load of a cold atomic.
[[nodiscard]] bool armed() noexcept;

/// Arms `spec` (replacing any previous schedule and resetting all hit
/// counters). Arming an empty spec is equivalent to disarm().
void arm(const Spec& spec);
/// Parses and arms `text`. Throws ConfigError on bad grammar.
void arm(std::string_view text);
/// Reads SDLBENCH_FAILPOINTS and arms it (unset/empty disarms). Called
/// once at tool startup; throws ConfigError on bad grammar so a typo'd
/// schedule aborts the run instead of silently testing nothing.
void arm_from_env();
/// Clears the schedule; armed() returns false again.
void disarm() noexcept;

/// Full (slow-path) evaluation of one site hit. Advances the site's hit
/// counter, applies filter/nth/prob/count, and returns the fired action
/// (Action::None almost always). `arg` is the caller-supplied filter
/// argument (e.g. the cell index at worker.cell_start); -1 = no arg.
/// Call sites should gate on armed() first — evaluate() does too, but
/// going through it costs a call.
[[nodiscard]] Fired evaluate(std::string_view site, long arg = -1);

/// Convenience for the common sites: evaluates `site` and acts —
///   Err   -> throws Error(category, "injected failure at ...")
///   Kill  -> raise(SIGKILL) (uncatchable: the honest crash)
///   Delay -> sleeps the entry's param (default 50 ms)
/// Single cold-atomic branch when nothing is armed.
void maybe_fail(std::string_view site, const char* category, long arg = -1);

}  // namespace sdl::support::failpoint
