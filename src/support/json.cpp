#include "support/json.hpp"

#include <cmath>
#include <charconv>
#include <cstdio>

#include "support/common.hpp"

namespace sdl::support::json {

// ---------------------------------------------------------------- Object

bool Object::contains(std::string_view key) const noexcept {
    return find(key) != nullptr;
}

const Value* Object::find(std::string_view key) const noexcept {
    for (const auto& [k, v] : items_) {
        if (k == key) return &v;
    }
    return nullptr;
}

Value* Object::find(std::string_view key) noexcept {
    for (auto& [k, v] : items_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Value& Object::at(std::string_view key) const {
    const Value* v = find(key);
    if (v == nullptr) {
        throw Error("json", "missing key '" + std::string(key) + "'");
    }
    return *v;
}

void Object::set(std::string key, Value value) {
    if (Value* existing = find(key)) {
        *existing = std::move(value);
        return;
    }
    items_.emplace_back(std::move(key), std::move(value));
}

bool operator==(const Object& a, const Object& b) {
    if (a.size() != b.size()) return false;
    auto ita = a.begin();
    auto itb = b.begin();
    for (; ita != a.end(); ++ita, ++itb) {
        if (ita->first != itb->first || !(ita->second == itb->second)) return false;
    }
    return true;
}

// ----------------------------------------------------------------- Value

bool Value::as_bool() const {
    if (const auto* b = std::get_if<bool>(&data_)) return *b;
    throw Error("json", "value is not a bool");
}

std::int64_t Value::as_int() const {
    if (const auto* i = std::get_if<std::int64_t>(&data_)) return *i;
    throw Error("json", "value is not an integer");
}

double Value::as_double() const {
    if (const auto* d = std::get_if<double>(&data_)) return *d;
    if (const auto* i = std::get_if<std::int64_t>(&data_)) return static_cast<double>(*i);
    throw Error("json", "value is not a number");
}

const std::string& Value::as_string() const {
    if (const auto* s = std::get_if<std::string>(&data_)) return *s;
    throw Error("json", "value is not a string");
}

const Array& Value::as_array() const {
    if (const auto* a = std::get_if<Array>(&data_)) return *a;
    throw Error("json", "value is not an array");
}

Array& Value::as_array() {
    if (auto* a = std::get_if<Array>(&data_)) return *a;
    throw Error("json", "value is not an array");
}

const Object& Value::as_object() const {
    if (const auto* o = std::get_if<Object>(&data_)) return *o;
    throw Error("json", "value is not an object");
}

Object& Value::as_object() {
    if (auto* o = std::get_if<Object>(&data_)) return *o;
    throw Error("json", "value is not an object");
}

const Value& Value::at(std::string_view key) const { return as_object().at(key); }

const Value* Value::find(std::string_view key) const noexcept {
    const auto* o = std::get_if<Object>(&data_);
    return o != nullptr ? o->find(key) : nullptr;
}

bool Value::contains(std::string_view key) const noexcept { return find(key) != nullptr; }

std::string Value::get_or(std::string_view key, const std::string& fallback) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_string()) ? v->as_string() : fallback;
}

double Value::get_or(std::string_view key, double fallback) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_number()) ? v->as_double() : fallback;
}

std::int64_t Value::get_or(std::string_view key, std::int64_t fallback) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_int()) ? v->as_int() : fallback;
}

bool Value::get_or(std::string_view key, bool fallback) const {
    const Value* v = find(key);
    return (v != nullptr && v->is_bool()) ? v->as_bool() : fallback;
}

void Value::set(std::string key, Value value) {
    if (is_null()) data_ = Object{};
    as_object().set(std::move(key), std::move(value));
}

void Value::push_back(Value value) {
    if (is_null()) data_ = Array{};
    as_array().push_back(std::move(value));
}

std::size_t Value::size() const noexcept {
    if (const auto* a = std::get_if<Array>(&data_)) return a->size();
    if (const auto* o = std::get_if<Object>(&data_)) return o->size();
    return 0;
}

bool operator==(const Value& a, const Value& b) {
    // int/double cross-comparison: 3 == 3.0 for test convenience.
    if (a.is_number() && b.is_number() && (a.is_int() != b.is_int())) {
        return a.as_double() == b.as_double();
    }
    return a.data_ == b.data_;
}

// ---------------------------------------------------------------- writer

std::string escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            case '\b': out += "\\b"; break;
            case '\f': out += "\\f"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

void write_double(std::string& out, double d) {
    if (std::isnan(d) || std::isinf(d)) {
        // JSON has no NaN/Inf; null is the least-surprising encoding.
        out += "null";
        return;
    }
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    (void)ec;
    out.append(buf, ptr);
    // Ensure doubles keep a numeric marker distinguishing them from ints.
    std::string_view written(buf, static_cast<std::size_t>(ptr - buf));
    if (written.find('.') == std::string_view::npos &&
        written.find('e') == std::string_view::npos &&
        written.find("inf") == std::string_view::npos &&
        written.find("nan") == std::string_view::npos) {
        out += ".0";
    }
}

}  // namespace

void Value::write(std::string& out, int indent, int depth) const {
    const std::string pad = indent > 0 ? std::string(static_cast<std::size_t>(indent * (depth + 1)), ' ') : "";
    const std::string closing_pad = indent > 0 ? std::string(static_cast<std::size_t>(indent * depth), ' ') : "";
    const char* nl = indent > 0 ? "\n" : "";
    const char* kv_sep = indent > 0 ? ": " : ":";

    if (is_null()) {
        out += "null";
    } else if (const auto* b = std::get_if<bool>(&data_)) {
        out += *b ? "true" : "false";
    } else if (const auto* i = std::get_if<std::int64_t>(&data_)) {
        out += std::to_string(*i);
    } else if (const auto* d = std::get_if<double>(&data_)) {
        write_double(out, *d);
    } else if (const auto* s = std::get_if<std::string>(&data_)) {
        out += escape(*s);
    } else if (const auto* a = std::get_if<Array>(&data_)) {
        if (a->empty()) {
            out += "[]";
            return;
        }
        out += '[';
        bool first = true;
        for (const Value& item : *a) {
            if (!first) out += ',';
            first = false;
            out += nl;
            out += pad;
            item.write(out, indent, depth + 1);
        }
        out += nl;
        out += closing_pad;
        out += ']';
    } else if (const auto* o = std::get_if<Object>(&data_)) {
        if (o->empty()) {
            out += "{}";
            return;
        }
        out += '{';
        bool first = true;
        for (const auto& [key, value] : *o) {
            if (!first) out += ',';
            first = false;
            out += nl;
            out += pad;
            out += escape(key);
            out += kv_sep;
            value.write(out, indent, depth + 1);
        }
        out += nl;
        out += closing_pad;
        out += '}';
    }
}

std::string Value::dump() const {
    std::string out;
    write(out, 0, 0);
    return out;
}

std::string Value::pretty() const {
    std::string out;
    write(out, 2, 0);
    return out;
}

// ---------------------------------------------------------------- parser

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value parse_document() {
        skip_whitespace();
        Value v = parse_value(0);
        skip_whitespace();
        if (pos_ != text_.size()) {
            fail("trailing characters after JSON document");
        }
        return v;
    }

private:
    static constexpr int kMaxDepth = 128;

    [[noreturn]] void fail(const std::string& message) const {
        std::size_t line = 1;
        std::size_t col = 1;
        for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
            if (text_[i] == '\n') {
                ++line;
                col = 1;
            } else {
                ++col;
            }
        }
        throw ParseError("json: " + message, line, col);
    }

    [[nodiscard]] bool eof() const noexcept { return pos_ >= text_.size(); }
    [[nodiscard]] char peek() const { return text_[pos_]; }

    char advance() {
        if (eof()) fail("unexpected end of input");
        return text_[pos_++];
    }

    void expect(char c) {
        if (eof() || text_[pos_] != c) {
            fail(std::string("expected '") + c + "'");
        }
        ++pos_;
    }

    void skip_whitespace() {
        while (!eof()) {
            const char c = text_[pos_];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
                ++pos_;
            } else {
                break;
            }
        }
    }

    bool match_literal(std::string_view lit) {
        if (text_.substr(pos_, lit.size()) == lit) {
            pos_ += lit.size();
            return true;
        }
        return false;
    }

    Value parse_value(int depth) {
        if (depth > kMaxDepth) fail("nesting too deep");
        if (eof()) fail("unexpected end of input");
        const char c = peek();
        switch (c) {
            case '{': return parse_object(depth);
            case '[': return parse_array(depth);
            case '"': return Value(parse_string());
            case 't':
                if (match_literal("true")) return Value(true);
                fail("invalid literal");
            case 'f':
                if (match_literal("false")) return Value(false);
                fail("invalid literal");
            case 'n':
                if (match_literal("null")) return Value(nullptr);
                fail("invalid literal");
            default: return parse_number();
        }
    }

    Value parse_object(int depth) {
        expect('{');
        Object obj;
        skip_whitespace();
        if (!eof() && peek() == '}') {
            ++pos_;
            return Value(std::move(obj));
        }
        for (;;) {
            skip_whitespace();
            if (eof() || peek() != '"') fail("expected string key");
            std::string key = parse_string();
            skip_whitespace();
            expect(':');
            skip_whitespace();
            obj.set(std::move(key), parse_value(depth + 1));
            skip_whitespace();
            if (eof()) fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return Value(std::move(obj));
        }
    }

    Value parse_array(int depth) {
        expect('[');
        Array arr;
        skip_whitespace();
        if (!eof() && peek() == ']') {
            ++pos_;
            return Value(std::move(arr));
        }
        for (;;) {
            skip_whitespace();
            arr.push_back(parse_value(depth + 1));
            skip_whitespace();
            if (eof()) fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return Value(std::move(arr));
        }
    }

    void append_utf8(std::string& out, unsigned codepoint) {
        if (codepoint < 0x80) {
            out.push_back(static_cast<char>(codepoint));
        } else if (codepoint < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (codepoint >> 6)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        } else if (codepoint < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (codepoint >> 12)));
            out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (codepoint >> 18)));
            out.push_back(static_cast<char>(0x80 | ((codepoint >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((codepoint >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (codepoint & 0x3F)));
        }
    }

    unsigned parse_hex4() {
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = advance();
            value <<= 4;
            if (c >= '0' && c <= '9') {
                value |= static_cast<unsigned>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                value |= static_cast<unsigned>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                value |= static_cast<unsigned>(c - 'A' + 10);
            } else {
                fail("invalid \\u escape");
            }
        }
        return value;
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            const char c = advance();
            if (c == '"') return out;
            if (c == '\\') {
                const char esc = advance();
                switch (esc) {
                    case '"': out.push_back('"'); break;
                    case '\\': out.push_back('\\'); break;
                    case '/': out.push_back('/'); break;
                    case 'b': out.push_back('\b'); break;
                    case 'f': out.push_back('\f'); break;
                    case 'n': out.push_back('\n'); break;
                    case 'r': out.push_back('\r'); break;
                    case 't': out.push_back('\t'); break;
                    case 'u': {
                        unsigned cp = parse_hex4();
                        if (cp >= 0xD800 && cp <= 0xDBFF) {
                            // Surrogate pair.
                            if (advance() != '\\' || advance() != 'u') {
                                fail("missing low surrogate");
                            }
                            const unsigned lo = parse_hex4();
                            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
                            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                        }
                        append_utf8(out, cp);
                        break;
                    }
                    default: fail("invalid escape character");
                }
            } else if (static_cast<unsigned char>(c) < 0x20) {
                fail("unescaped control character in string");
            } else {
                out.push_back(c);
            }
        }
    }

    Value parse_number() {
        const std::size_t start = pos_;
        if (!eof() && peek() == '-') ++pos_;
        bool is_floating = false;
        while (!eof()) {
            const char c = peek();
            if (c >= '0' && c <= '9') {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                is_floating = true;
                ++pos_;
            } else {
                break;
            }
        }
        const std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-") fail("invalid number");
        if (!is_floating) {
            std::int64_t i = 0;
            const auto [ptr, ec] =
                std::from_chars(token.data(), token.data() + token.size(), i);
            if (ec == std::errc() && ptr == token.data() + token.size()) {
                return Value(i);
            }
            // Fall through: integer overflow -> parse as double.
        }
        double d = 0.0;
        const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), d);
        if (ec != std::errc() || ptr != token.data() + token.size()) {
            fail("invalid number");
        }
        return Value(d);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace sdl::support::json
