// JSON document model, parser and writer.
//
// A single Value type serves three roles in sdlbench: JSON persistence for
// the data portal and run artifacts, the parse target of the YAML-subset
// reader (workcell/workflow configs), and the generic payload type for
// module action parameters/results — exactly the role JSON/YAML play in
// the paper's WEI framework.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace sdl::support::json {

class Value;

/// Insertion-ordered string -> Value map. Workcell and workflow files are
/// written by humans; preserving their key order keeps round-trips and
/// error messages predictable. Lookup is linear — objects here are small.
class Object {
public:
    using Item = std::pair<std::string, Value>;

    Object() = default;

    [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
    [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }

    [[nodiscard]] bool contains(std::string_view key) const noexcept;
    /// Returns nullptr when absent.
    [[nodiscard]] const Value* find(std::string_view key) const noexcept;
    [[nodiscard]] Value* find(std::string_view key) noexcept;
    /// Throws Error("json") when absent.
    [[nodiscard]] const Value& at(std::string_view key) const;

    /// Inserts or overwrites.
    void set(std::string key, Value value);

    [[nodiscard]] auto begin() const noexcept { return items_.begin(); }
    [[nodiscard]] auto end() const noexcept { return items_.end(); }
    [[nodiscard]] auto begin() noexcept { return items_.begin(); }
    [[nodiscard]] auto end() noexcept { return items_.end(); }

private:
    std::vector<Item> items_;
};

using Array = std::vector<Value>;

/// A JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so counts and identifiers
/// survive round-trips exactly.
class Value {
public:
    Value() noexcept : data_(nullptr) {}
    Value(std::nullptr_t) noexcept : data_(nullptr) {}
    Value(bool b) noexcept : data_(b) {}
    Value(int i) noexcept : data_(static_cast<std::int64_t>(i)) {}
    Value(unsigned i) noexcept : data_(static_cast<std::int64_t>(i)) {}
    Value(long i) noexcept : data_(static_cast<std::int64_t>(i)) {}
    Value(long long i) noexcept : data_(static_cast<std::int64_t>(i)) {}
    Value(unsigned long i) : data_(static_cast<std::int64_t>(i)) {}
    Value(unsigned long long i) : data_(static_cast<std::int64_t>(i)) {}
    Value(double d) noexcept : data_(d) {}
    Value(const char* s) : data_(std::string(s)) {}
    Value(std::string s) noexcept : data_(std::move(s)) {}
    Value(std::string_view s) : data_(std::string(s)) {}
    Value(Array a) noexcept : data_(std::move(a)) {}
    Value(Object o) noexcept : data_(std::move(o)) {}

    [[nodiscard]] static Value array() { return Value(Array{}); }
    [[nodiscard]] static Value object() { return Value(Object{}); }

    [[nodiscard]] bool is_null() const noexcept { return std::holds_alternative<std::nullptr_t>(data_); }
    [[nodiscard]] bool is_bool() const noexcept { return std::holds_alternative<bool>(data_); }
    [[nodiscard]] bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(data_); }
    [[nodiscard]] bool is_double() const noexcept { return std::holds_alternative<double>(data_); }
    [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
    [[nodiscard]] bool is_string() const noexcept { return std::holds_alternative<std::string>(data_); }
    [[nodiscard]] bool is_array() const noexcept { return std::holds_alternative<Array>(data_); }
    [[nodiscard]] bool is_object() const noexcept { return std::holds_alternative<Object>(data_); }

    // Typed accessors; throw Error("json") on type mismatch.
    [[nodiscard]] bool as_bool() const;
    [[nodiscard]] std::int64_t as_int() const;
    [[nodiscard]] double as_double() const;  ///< accepts int too
    [[nodiscard]] const std::string& as_string() const;
    [[nodiscard]] const Array& as_array() const;
    [[nodiscard]] Array& as_array();
    [[nodiscard]] const Object& as_object() const;
    [[nodiscard]] Object& as_object();

    // Convenience lookups for object values.
    [[nodiscard]] const Value& at(std::string_view key) const;
    [[nodiscard]] const Value* find(std::string_view key) const noexcept;
    [[nodiscard]] bool contains(std::string_view key) const noexcept;

    [[nodiscard]] std::string get_or(std::string_view key, const std::string& fallback) const;
    [[nodiscard]] double get_or(std::string_view key, double fallback) const;
    [[nodiscard]] std::int64_t get_or(std::string_view key, std::int64_t fallback) const;
    [[nodiscard]] bool get_or(std::string_view key, bool fallback) const;

    /// Object mutation; converts a null value into an object first.
    void set(std::string key, Value value);
    /// Array append; converts a null value into an array first.
    void push_back(Value value);

    /// Number of elements (array/object) or 0.
    [[nodiscard]] std::size_t size() const noexcept;

    /// Compact single-line serialization.
    [[nodiscard]] std::string dump() const;
    /// Pretty-printed serialization with 2-space indentation.
    [[nodiscard]] std::string pretty() const;

    friend bool operator==(const Value& a, const Value& b);

private:
    void write(std::string& out, int indent, int depth) const;

    std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

bool operator==(const Object& a, const Object& b);

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Throws ParseError with line/column on malformed input.
[[nodiscard]] Value parse(std::string_view text);

/// Escapes and quotes `s` as a JSON string literal.
[[nodiscard]] std::string escape(std::string_view s);

}  // namespace sdl::support::json
