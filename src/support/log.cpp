#include "support/log.hpp"

#include <atomic>
#include <cstdio>

#include "support/mutex.hpp"

namespace sdl::support {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
Mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::Debug: return "DEBUG";
        case LogLevel::Info: return "INFO";
        case LogLevel::Warn: return "WARN";
        case LogLevel::Error: return "ERROR";
        case LogLevel::Off: return "OFF";
    }
    return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_message(LogLevel level, std::string_view component, std::string_view message) {
    if (level < log_level()) return;
    MutexLock lock(g_mutex);
    std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace sdl::support
