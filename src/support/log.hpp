// Leveled logger.
//
// Devices, the workflow engine and the publication pipeline all narrate
// what they are doing; tests and benches silence them via set_level.
// Thread-safe: concurrent module threads may log simultaneously.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace sdl::support {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global minimum level; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Emits one line: "[LEVEL] [component] message".
void log_message(LogLevel level, std::string_view component, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, std::string_view component, const Args&... args) {
    if (level < log_level()) return;
    std::ostringstream os;
    (os << ... << args);
    log_message(level, component, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(std::string_view component, const Args&... args) {
    detail::log_fmt(LogLevel::Debug, component, args...);
}
template <typename... Args>
void log_info(std::string_view component, const Args&... args) {
    detail::log_fmt(LogLevel::Info, component, args...);
}
template <typename... Args>
void log_warn(std::string_view component, const Args&... args) {
    detail::log_fmt(LogLevel::Warn, component, args...);
}
template <typename... Args>
void log_error(std::string_view component, const Args&... args) {
    detail::log_fmt(LogLevel::Error, component, args...);
}

}  // namespace sdl::support
