// Annotated synchronization primitives: Mutex, MutexLock, CondVar.
//
// Thin wrappers over std::mutex / std::condition_variable that carry the
// clang thread-safety capability annotations (thread_annotations.hpp).
// All mutex-guarded state in sdlbench uses these instead of the std
// types directly, so `clang -Wthread-safety` statically proves the
// lock/state relationships that the determinism contract depends on
// (serialized journal appends, ordered completion hooks, channel state).
//
// The wrappers add no overhead: Mutex is layout-identical to std::mutex,
// MutexLock is lock_guard-shaped, and CondVar keeps the futex-backed
// std::condition_variable by adopting/releasing the underlying
// std::mutex around each wait (the libc++/abseil technique — the
// capability stays "held" across the wait from the analysis' point of
// view, which matches the caller's view of a predicate wait).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "support/thread_annotations.hpp"

namespace sdl::support {

class CondVar;

/// Annotated exclusive mutex. Prefer MutexLock over manual lock/unlock.
class SDL_CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() SDL_ACQUIRE() { m_.lock(); }
    void unlock() SDL_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() SDL_TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    friend class CondVar;
    std::mutex m_;
};

/// RAII scope lock (lock_guard with a scoped-capability annotation).
class SDL_SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& mu) SDL_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() SDL_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

private:
    Mutex& mu_;
};

/// Condition variable for Mutex. Waits take the Mutex plus a predicate;
/// the caller must already hold the lock (enforced by SDL_REQUIRES).
class CondVar {
public:
    CondVar() = default;
    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    /// One blocking wait (subject to spurious wake-ups). Callers loop on
    /// their guarded condition: `while (!ready_) cv.wait(mutex_);` —
    /// preferred over predicate-lambda overloads because the loop body
    /// sits inside the caller's locked scope, where the thread-safety
    /// analysis can see the guarded reads.
    void wait(Mutex& mu) SDL_REQUIRES(mu) {
        std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();  // the caller still owns the mutex
    }

    /// Timed wait; std::cv_status::timeout when the duration elapsed.
    /// Same spurious-wake-up contract as wait().
    template <typename Rep, typename Period>
    std::cv_status wait_for(Mutex& mu,
                            const std::chrono::duration<Rep, Period>& timeout)
        SDL_REQUIRES(mu) {
        std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
        const std::cv_status status = cv_.wait_for(lock, timeout);
        lock.release();
        return status;
    }

    void notify_one() noexcept { cv_.notify_one(); }
    void notify_all() noexcept { cv_.notify_all(); }

private:
    std::condition_variable cv_;
};

}  // namespace sdl::support
