#include "support/random.hpp"

#include <cmath>

namespace sdl::support {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) {
        word = splitmix64(sm);
    }
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) {
        state_[0] = 0x8BADF00DDEADBEEFULL;
    }
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double Rng::uniform() noexcept {
    // 53 random mantissa bits -> uniform in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) noexcept {
    // Lemire's multiply-shift rejection method: unbiased and branch-light.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
        const std::uint64_t threshold = (0 - n) % n;
        while (lo < threshold) {
            x = next();
            m = static_cast<__uint128_t>(x) * n;
            lo = static_cast<std::uint64_t>(m);
        }
    }
    return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1ULL;
    return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double Rng::exponential(double mean) noexcept {
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -mean * std::log(u);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        const std::size_t j = uniform_int(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng Rng::split() noexcept {
    // Derive a child seed from two outputs; the golden-gamma constant
    // decorrelates parent and child streams (same trick as SplitMix).
    const std::uint64_t a = next();
    const std::uint64_t b = next();
    return Rng(a ^ rotl(b, 32) ^ 0x9E3779B97F4A7C15ULL);
}

}  // namespace sdl::support
