// Deterministic pseudo-random number generation.
//
// Every stochastic component in sdlbench (solvers, device noise, fault
// injection, synthetic camera) draws from an explicitly seeded Rng so that
// experiments are exactly reproducible. The generator is xoshiro256++,
// seeded through SplitMix64 — fast, high quality, and trivially
// splittable for parallel experiment sweeps.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace sdl::support {

/// xoshiro256++ PRNG with explicit seeding and stream splitting.
class Rng {
public:
    using result_type = std::uint64_t;

    /// Seeds the four 64-bit words of state via SplitMix64.
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

    /// Next raw 64-bit output.
    std::uint64_t next() noexcept;

    // UniformRandomBitGenerator interface, so Rng works with <algorithm>.
    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~0ULL; }
    result_type operator()() noexcept { return next(); }

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n) using Lemire's bounded method; n > 0.
    std::uint64_t uniform_int(std::uint64_t n) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

    /// Standard normal deviate (Marsaglia polar method, cached pair).
    double normal() noexcept;

    /// Normal deviate with the given mean and standard deviation.
    double normal(double mean, double stddev) noexcept;

    /// True with probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Exponential deviate with the given mean (> 0).
    double exponential(double mean) noexcept;

    /// Fisher–Yates shuffle of an index range [0, n).
    std::vector<std::size_t> permutation(std::size_t n) noexcept;

    /// A child generator with a decorrelated stream, for per-thread /
    /// per-experiment use in parallel sweeps.
    [[nodiscard]] Rng split() noexcept;

private:
    std::array<std::uint64_t, 4> state_{};
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

}  // namespace sdl::support
