// Small descriptive-statistics helpers for the benchmark harnesses.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace sdl::support {

/// Welford online mean/variance accumulator (numerically stable).
class OnlineStats {
public:
    void add(double x) noexcept {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = n_ == 1 ? x : std::min(min_, x);
        max_ = n_ == 1 ? x : std::max(max_, x);
    }

    [[nodiscard]] std::size_t count() const noexcept { return n_; }
    [[nodiscard]] double mean() const noexcept { return mean_; }
    [[nodiscard]] double variance() const noexcept {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }
    [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

[[nodiscard]] inline double mean(std::span<const double> xs) noexcept {
    if (xs.empty()) return 0.0;
    double s = 0.0;
    for (double x : xs) s += x;
    return s / static_cast<double>(xs.size());
}

[[nodiscard]] inline double stddev(std::span<const double> xs) noexcept {
    if (xs.size() < 2) return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs) s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

/// q in [0,1]; linear interpolation between order statistics.
[[nodiscard]] inline double percentile(std::vector<double> xs, double q) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    const double pos = q * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

[[nodiscard]] inline double median(std::vector<double> xs) {
    return percentile(std::move(xs), 0.5);
}

}  // namespace sdl::support
