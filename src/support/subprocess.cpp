#include "support/subprocess.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "support/common.hpp"
#include "support/failpoint.hpp"

#if !defined(_WIN32)
#include <csignal>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

extern char** environ;
#endif

namespace sdl::support {

ChildProcess& ChildProcess::operator=(ChildProcess&& other) noexcept {
    if (this != &other) {
        close_pipes();
        pid_ = std::exchange(other.pid_, -1);
        stdin_fd_ = std::exchange(other.stdin_fd_, -1);
        stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    }
    return *this;
}

#if defined(_WIN32)

void ChildProcess::close_stdin() noexcept {}
void ChildProcess::close_pipes() noexcept {}

ChildProcess spawn_child(const std::vector<std::string>&, const std::vector<std::string>&) {
    throw Error("subprocess", "fleet execution is POSIX-only on this build");
}
bool write_line_fd(int, std::string_view) noexcept { return false; }
void kill_hard(const ChildProcess&) noexcept {}
int wait_exit(const ChildProcess&) noexcept { return -1; }
std::vector<bool> poll_readable(const std::vector<int>& fds, int) {
    return std::vector<bool>(fds.size(), false);
}
long read_some(int, LineBuffer&) { return -1; }
void ignore_sigpipe() noexcept {}

#else

void ChildProcess::close_stdin() noexcept {
    if (stdin_fd_ >= 0) {
        ::close(stdin_fd_);
        stdin_fd_ = -1;
    }
}

void ChildProcess::close_pipes() noexcept {
    close_stdin();
    if (stdout_fd_ >= 0) {
        ::close(stdout_fd_);
        stdout_fd_ = -1;
    }
}

ChildProcess spawn_child(const std::vector<std::string>& argv,
                         const std::vector<std::string>& extra_env) {
    check(!argv.empty(), "spawn_child needs at least argv[0]");
    if (failpoint::armed()) {
        // Simulates fork/exec resource exhaustion (EAGAIN, pipe limits)
        // before any fd is created, so nothing needs cleanup.
        failpoint::maybe_fail("subprocess.spawn", "subprocess");
    }
    int to_child[2];    // parent writes -> child stdin
    int from_child[2];  // child stdout -> parent reads
    if (::pipe(to_child) != 0) {
        throw Error("subprocess", std::string("pipe failed: ") + std::strerror(errno));
    }
    if (::pipe(from_child) != 0) {
        const int saved = errno;
        ::close(to_child[0]);
        ::close(to_child[1]);
        throw Error("subprocess", std::string("pipe failed: ") + std::strerror(saved));
    }

    // The exec arrays must be built before fork(): the child may only
    // use async-signal-safe calls between fork and exec (no allocation).
    std::vector<char*> c_argv;
    c_argv.reserve(argv.size() + 1);
    for (const std::string& a : argv) c_argv.push_back(const_cast<char*>(a.c_str()));
    c_argv.push_back(nullptr);

    // Inherited environment minus entries extra_env overrides, plus the
    // overrides themselves.
    std::vector<std::string> env_storage;
    std::vector<char*> c_env;
    for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
        const std::string_view entry(*e);
        const std::size_t eq = entry.find('=');
        const std::string_view name = entry.substr(0, eq);
        bool overridden = false;
        for (const std::string& extra : extra_env) {
            if (extra.size() > name.size() && extra[name.size()] == '=' &&
                std::string_view(extra).substr(0, name.size()) == name) {
                overridden = true;
                break;
            }
        }
        if (!overridden) c_env.push_back(*e);
    }
    env_storage.assign(extra_env.begin(), extra_env.end());
    for (std::string& extra : env_storage) c_env.push_back(extra.data());
    c_env.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int saved = errno;
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        throw Error("subprocess", std::string("fork failed: ") + std::strerror(saved));
    }
    if (pid == 0) {
        // Child: wire the pipes to stdin/stdout, drop the parent ends.
        ::dup2(to_child[0], STDIN_FILENO);
        ::dup2(from_child[1], STDOUT_FILENO);
        ::close(to_child[0]);
        ::close(to_child[1]);
        ::close(from_child[0]);
        ::close(from_child[1]);
        ::execve(c_argv[0], c_argv.data(), c_env.data());
        _exit(127);  // exec failed; parent sees EOF + status 127
    }
    ::close(to_child[0]);
    ::close(from_child[1]);
    return ChildProcess(pid, to_child[1], from_child[0]);
}

bool write_line_fd(int fd, std::string_view line) noexcept {
    if (fd < 0) return false;
    std::string framed(line);
    framed += '\n';
    std::size_t written = 0;
    while (written < framed.size()) {
        const ssize_t n = ::write(fd, framed.data() + written, framed.size() - written);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;  // EPIPE: peer is gone
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

void kill_hard(const ChildProcess& child) noexcept {
    if (child.valid()) ::kill(static_cast<pid_t>(child.pid()), SIGKILL);
}

int wait_exit(const ChildProcess& child) noexcept {
    if (!child.valid()) return -1;
    int status = 0;
    for (;;) {
        const pid_t r = ::waitpid(static_cast<pid_t>(child.pid()), &status, 0);
        if (r >= 0) return status;
        if (errno != EINTR) return -1;
    }
}

std::vector<bool> poll_readable(const std::vector<int>& fds, int timeout_ms) {
    std::vector<struct pollfd> pfds;
    pfds.reserve(fds.size());
    for (const int fd : fds) {
        // Negative fds are legal in poll(2): ignored, revents = 0 —
        // exactly what we want for already-dead workers.
        pfds.push_back({fd, POLLIN, 0});
    }
    std::vector<bool> readable(fds.size(), false);
    // EINTR is not a timeout: a signal landing mid-poll must not eat the
    // heartbeat window (the coordinator would mis-declare workers dead),
    // so retry with whatever budget remains.
    // sdlbench-lint: allow(steady-clock): operational timeout bookkeeping for the EINTR retry, never part of a result artifact
    using Clock = std::chrono::steady_clock;
    const Clock::time_point deadline =
        timeout_ms >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms)
                        : Clock::time_point::max();
    int remaining_ms = timeout_ms;
    for (;;) {
        const int rc = ::poll(pfds.data(), pfds.size(), remaining_ms);
        if (rc > 0) break;
        if (rc == 0) return readable;  // genuine timeout: nothing ready
        if (errno != EINTR) return readable;
        if (timeout_ms >= 0) {
            const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                deadline - Clock::now());
            if (left.count() <= 0) return readable;
            remaining_ms = static_cast<int>(left.count());
        }
    }
    for (std::size_t i = 0; i < pfds.size(); ++i) {
        // HUP/ERR count as readable: read() returns 0/-1 without
        // blocking, which is how EOF on a dead worker is discovered.
        readable[i] = (pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
    }
    return readable;
}

long read_some(int fd, LineBuffer& buf) {
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR) continue;
        if (n > 0) buf.feed(chunk, static_cast<std::size_t>(n));
        return static_cast<long>(n);
    }
}

void ignore_sigpipe() noexcept { ::signal(SIGPIPE, SIG_IGN); }

#endif  // _WIN32

std::optional<std::string> LineBuffer::next_line() {
    const std::size_t nl = buffer_.find('\n', start_);
    if (nl == std::string::npos) {
        // Drop consumed bytes so the buffer doesn't grow unboundedly
        // across a long campaign.
        if (start_ > 0) {
            buffer_.erase(0, start_);
            start_ = 0;
        }
        return std::nullopt;
    }
    std::string line = buffer_.substr(start_, nl - start_);
    start_ = nl + 1;
    return line;
}

}  // namespace sdl::support
