// Child-process and pipe I/O helpers for multi-process orchestration.
//
// The fleet coordinator (campaign/fleet.hpp) runs one worker process per
// lease queue and speaks a line protocol over the worker's stdin/stdout
// pipes. These are the POSIX primitives underneath: spawn a child with
// both pipes attached, push whole lines down a descriptor in a single
// write(2), reassemble lines from partial reads, poll many descriptors
// with a deadline, and kill/reap children. On Windows every entry point
// throws Error("subprocess") — the fleet is POSIX-only for now; the
// single-process campaign path is unaffected.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sdl::support {

/// A spawned child with pipes to its stdin/stdout (stderr is inherited,
/// so worker diagnostics land on the parent's stderr). Owns the two
/// descriptors and closes them on destruction; the process itself is NOT
/// killed or reaped by the destructor — callers own the lifecycle via
/// kill_hard()/wait_exit() so a coordinator can decide between a
/// graceful stop and a SIGKILL.
class ChildProcess {
public:
    ChildProcess() = default;
    ChildProcess(long pid, int stdin_fd, int stdout_fd) noexcept
        : pid_(pid), stdin_fd_(stdin_fd), stdout_fd_(stdout_fd) {}
    ~ChildProcess() { close_pipes(); }

    ChildProcess(const ChildProcess&) = delete;
    ChildProcess& operator=(const ChildProcess&) = delete;
    ChildProcess(ChildProcess&& other) noexcept { *this = std::move(other); }
    ChildProcess& operator=(ChildProcess&& other) noexcept;

    [[nodiscard]] long pid() const noexcept { return pid_; }
    [[nodiscard]] int stdin_fd() const noexcept { return stdin_fd_; }
    [[nodiscard]] int stdout_fd() const noexcept { return stdout_fd_; }
    [[nodiscard]] bool valid() const noexcept { return pid_ > 0; }

    /// Closes the write side of the child's stdin — the child's next
    /// read sees EOF (the "no more leases" signal). Idempotent.
    void close_stdin() noexcept;
    /// Closes both pipe ends. Idempotent.
    void close_pipes() noexcept;

private:
    long pid_ = -1;
    int stdin_fd_ = -1;
    int stdout_fd_ = -1;
};

/// Forks and execs `argv` (argv[0] is the binary path, PATH not
/// searched) with fresh stdin/stdout pipes; `extra_env` entries
/// ("NAME=value") are appended to the inherited environment, overriding
/// any inherited definition of the same NAME. Throws Error("subprocess")
/// when the pipes or the fork fail; exec failure inside the child exits
/// 127 (the caller sees EOF + that exit status).
[[nodiscard]] ChildProcess spawn_child(const std::vector<std::string>& argv,
                                       const std::vector<std::string>& extra_env = {});

/// Writes `line` + '\n' to `fd` as one full write (looping on partial
/// writes/EINTR). Returns false when the peer is gone (EPIPE — callers
/// must have SIGPIPE ignored, see ignore_sigpipe) or the descriptor
/// errors; a protocol writer treats that as "worker died", not a crash.
bool write_line_fd(int fd, std::string_view line) noexcept;

/// SIGKILL — for dead-or-hung workers whose cells are being re-leased.
/// The kill must be unconditional: a merely-slow worker that later
/// completed a re-leased cell would journal it twice. No-op on an
/// invalid pid.
void kill_hard(const ChildProcess& child) noexcept;

/// Blocking waitpid. Returns the raw wait status (or -1 if the child
/// cannot be reaped). Call exactly once per spawned child to avoid
/// zombies.
int wait_exit(const ChildProcess& child) noexcept;

/// Reassembles '\n'-terminated lines from arbitrary read chunks. The
/// terminator is stripped; an unterminated tail is held until more bytes
/// arrive (the pipe analogue of the journal's torn-tail discipline).
class LineBuffer {
public:
    void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
    /// Next complete line, or nullopt when only a partial tail remains.
    [[nodiscard]] std::optional<std::string> next_line();

private:
    std::string buffer_;
    std::size_t start_ = 0;
};

/// poll(2) over `fds` for readability. Returns a parallel vector:
/// true when fds[i] is readable or at EOF/error (a read() will not
/// block). Times out after `timeout_ms` (all false); negative means
/// wait forever. Entries of -1 are skipped (never readable).
[[nodiscard]] std::vector<bool> poll_readable(const std::vector<int>& fds,
                                              int timeout_ms);

/// Reads whatever is available from `fd` (up to a few KiB) into `buf`.
/// Returns the byte count, 0 on EOF, -1 on error. Does not block if
/// called after poll_readable reported the descriptor ready.
long read_some(int fd, LineBuffer& buf);

/// Ignores SIGPIPE process-wide so a write to a dead worker's pipe
/// surfaces as EPIPE (write_line_fd -> false) instead of killing the
/// coordinator. Call once at tool startup before spawning children.
void ignore_sigpipe() noexcept;

}  // namespace sdl::support
