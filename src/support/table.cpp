#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/common.hpp"

namespace sdl::support {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
    check(!header_.empty(), "table header must be non-empty");
    alignment_.assign(header_.size(), Align::Left);
}

void TextTable::set_alignment(std::vector<Align> alignment) {
    check(alignment.size() == header_.size(), "alignment width mismatch");
    alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> cells) {
    check(cells.size() == header_.size(), "table row width mismatch");
    rows_.push_back(Row{std::move(cells), pending_rule_});
    pending_rule_ = false;
}

void TextTable::add_rule() { pending_rule_ = true; }

std::size_t TextTable::rows() const noexcept { return rows_.size(); }

std::string TextTable::str() const {
    const std::size_t n_cols = header_.size();
    std::vector<std::size_t> widths(n_cols);
    for (std::size_t c = 0; c < n_cols; ++c) widths[c] = header_[c].size();
    for (const Row& row : rows_) {
        for (std::size_t c = 0; c < n_cols; ++c) {
            widths[c] = std::max(widths[c], row.cells[c].size());
        }
    }

    auto render_cells = [&](const std::vector<std::string>& cells, std::string& out) {
        for (std::size_t c = 0; c < n_cols; ++c) {
            if (c > 0) out += " | ";
            const std::size_t padding = widths[c] - cells[c].size();
            if (alignment_[c] == Align::Right) out.append(padding, ' ');
            out += cells[c];
            if (alignment_[c] == Align::Left && c + 1 < n_cols) out.append(padding, ' ');
        }
        out += '\n';
    };
    auto render_rule = [&](std::string& out) {
        for (std::size_t c = 0; c < n_cols; ++c) {
            if (c > 0) out += "-+-";
            out.append(widths[c], '-');
        }
        out += '\n';
    };

    std::string out;
    render_cells(header_, out);
    render_rule(out);
    for (const Row& row : rows_) {
        if (row.rule_before) render_rule(out);
        render_cells(row.cells, out);
    }
    return out;
}

std::string fmt_double(double value, int decimals) {
    char buf[64];
    // sdlbench-lint: allow(printf-float): fixed-decimals table cell for humans; artifacts use fmt_roundtrip
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

}  // namespace sdl::support
