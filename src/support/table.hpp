// Aligned text-table rendering for benchmark reports.
//
// The Table-1 and Figure-3/4 harnesses print their results as aligned
// monospace tables matching the rows the paper reports.
#pragma once

#include <string>
#include <vector>

namespace sdl::support {

class TextTable {
public:
    enum class Align { Left, Right };

    /// Column headers; every row must have the same width.
    explicit TextTable(std::vector<std::string> header);

    /// Per-column alignment (default all Left).
    void set_alignment(std::vector<Align> alignment);

    void add_row(std::vector<std::string> cells);

    /// Inserts a horizontal rule before the next added row.
    void add_rule();

    [[nodiscard]] std::size_t rows() const noexcept;

    /// Renders with column separators and a header rule, e.g.
    ///   Metric                     | Paper       | Measured
    ///   ---------------------------+-------------+---------
    ///   Time without humans        | 8 h 12 m    | 8 h 12 m
    [[nodiscard]] std::string str() const;

private:
    struct Row {
        std::vector<std::string> cells;
        bool rule_before = false;
    };

    std::vector<std::string> header_;
    std::vector<Align> alignment_;
    std::vector<Row> rows_;
    bool pending_rule_ = false;
};

/// Formats a double with `decimals` fraction digits.
[[nodiscard]] std::string fmt_double(double value, int decimals = 2);

}  // namespace sdl::support
