// Clang thread-safety analysis attributes behind portability macros.
//
// The concurrency invariants of this codebase (which mutex guards which
// state) are written into the types themselves via these annotations, so
// `clang -Wthread-safety` turns "forgot the lock" into a compile error.
// On compilers without the attribute (GCC, MSVC) every macro expands to
// nothing — the annotations are documentation there, and ThreadSanitizer
// (the `tsan` CMake preset) provides the dynamic check instead.
//
// The macro set mirrors the standard capability vocabulary
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed
// SDL_ to stay out of other libraries' namespaces. They only attach to
// the annotated wrappers in support/mutex.hpp: libstdc++'s std::mutex
// is not a capability, so annotating it directly would be inert.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define SDL_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SDL_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability (mutexes).
#define SDL_CAPABILITY(x) SDL_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability for its lifetime.
#define SDL_SCOPED_CAPABILITY SDL_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SDL_GUARDED_BY(x) SDL_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is guarded by `x`.
#define SDL_PT_GUARDED_BY(x) SDL_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function that must be called with the capabilities held.
#define SDL_REQUIRES(...) SDL_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function that acquires the capabilities and returns holding them.
#define SDL_ACQUIRE(...) SDL_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function that releases the capabilities.
#define SDL_RELEASE(...) SDL_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function that acquires the capability when it returns `ret`.
#define SDL_TRY_ACQUIRE(ret, ...) \
    SDL_THREAD_ANNOTATION(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must NOT be called while holding the capabilities.
#define SDL_EXCLUDES(...) SDL_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Escape hatch for code the analysis cannot model; use sparingly and
/// say why at the call site.
#define SDL_NO_THREAD_SAFETY_ANALYSIS \
    SDL_THREAD_ANNOTATION(no_thread_safety_analysis)
