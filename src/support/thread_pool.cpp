#include "support/thread_pool.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "support/log.hpp"

namespace sdl::support {

ThreadPool::ThreadPool(std::size_t n_threads) {
    if (n_threads == 0) {
        n_threads = std::thread::hardware_concurrency();
        if (n_threads == 0) n_threads = 1;
    }
    workers_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        MutexLock lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        if (w.joinable()) w.join();
    }
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mutex_);
            while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
            if (queue_.empty()) return;  // only reachable when stopping
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    const std::size_t n_workers = std::min(n, size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    auto drain = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n || failed.load(std::memory_order_relaxed)) return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::future<void>> futures;
    futures.reserve(n_workers > 0 ? n_workers - 1 : 0);
    for (std::size_t w = 1; w < n_workers; ++w) {
        futures.push_back(submit(drain));
    }
    drain();  // The calling thread participates, so the pool never deadlocks
              // on nested parallel_for.
    for (auto& f : futures) f.get();
    if (first_error) std::rethrow_exception(first_error);
}

std::size_t pool_size_from_env(const char* value) noexcept {
    if (value == nullptr || *value == '\0') return 0;
    std::size_t parsed = 0;
    for (const char* p = value; *p != '\0'; ++p) {
        if (*p < '0' || *p > '9' || parsed > 4096) {
            log_warn("support", "ignoring SDLBENCH_WORKERS='", value,
                     "' (expected a positive integer)");
            return 0;
        }
        parsed = parsed * 10 + static_cast<std::size_t>(*p - '0');
    }
    return parsed;  // 0 stays "default"
}

ThreadPool& global_pool() {
    // SDLBENCH_WORKERS is read exactly once, at first use; later env
    // changes don't resize a pool that threads already share.
    static ThreadPool pool(pool_size_from_env(std::getenv("SDLBENCH_WORKERS")));
    return pool;
}

}  // namespace sdl::support
