// Fixed-size thread pool with futures and a parallel_for helper.
//
// Used for the embarrassingly parallel parts of the benchmark harness:
// running the seven Figure-4 experiments concurrently, sweeping solver
// seeds, and batch-rendering synthetic camera frames. Work distribution
// for parallel_for is block-cyclic to keep load balanced when item costs
// vary (the OpenMP "schedule(static, chunk)" idiom).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdl::support {

class ThreadPool {
public:
    /// Creates `n_threads` workers; 0 means hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t n_threads = 0);

    /// Joins all workers; pending tasks are completed first.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the returned future carries its result/exception.
    template <typename F>
    [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard lock(mutex_);
            if (stopping_) {
                throw std::runtime_error("ThreadPool: submit after shutdown");
            }
            queue_.emplace_back([task]() mutable { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /// Runs fn(i) for i in [0, n), partitioned across the pool, and blocks
    /// until all iterations finish. Exceptions from any iteration are
    /// rethrown (first one wins).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Maps fn(i) over [0, n) and collects results in order.
    template <typename F>
    auto parallel_map(std::size_t n, F&& fn)
        -> std::vector<std::invoke_result_t<F, std::size_t>> {
        using R = std::invoke_result_t<F, std::size_t>;
        std::vector<std::future<R>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(submit([&fn, i] { return fn(i); }));
        }
        std::vector<R> out;
        out.reserve(n);
        for (auto& f : futures) out.push_back(f.get());
        return out;
    }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

/// Process-wide pool for benchmark harnesses (lazily constructed).
ThreadPool& global_pool();

}  // namespace sdl::support
