// Fixed-size thread pool with futures and a parallel_for helper.
//
// Used for the embarrassingly parallel parts of the benchmark harness:
// running the seven Figure-4 experiments concurrently, sweeping solver
// seeds, and batch-rendering synthetic camera frames. Work distribution
// for parallel_for is block-cyclic to keep load balanced when item costs
// vary (the OpenMP "schedule(static, chunk)" idiom).
//
// All shared state is guarded by an annotated support::Mutex
// (mutex.hpp), so the lock/state relationships below are checked by
// clang -Wthread-safety and exercised under the `tsan` preset.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"

namespace sdl::support {

/// Tuning knobs for the hinted parallel_map overload.
struct ParallelOptions {
    /// Upper bound on tasks in flight (capped at the pool size);
    /// 0 = one per pool worker. Lets a caller leave headroom for other
    /// work sharing the pool.
    std::size_t max_workers = 0;
    /// Indices each worker claims per grab. 1 (the default) balances
    /// best when item costs vary; larger chunks amortize dispatch for
    /// many cheap items.
    std::size_t chunk = 1;
};

class ThreadPool {
public:
    /// Creates `n_threads` workers; 0 means hardware_concurrency (min 1).
    explicit ThreadPool(std::size_t n_threads = 0);

    /// Joins all workers; pending tasks are completed first.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

    /// Enqueue a task; the returned future carries its result/exception.
    template <typename F>
    [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
        std::future<R> result = task->get_future();
        {
            MutexLock lock(mutex_);
            if (stopping_) {
                throw std::runtime_error("ThreadPool: submit after shutdown");
            }
            queue_.emplace_back([task]() mutable { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /// Runs fn(i) for i in [0, n), partitioned across the pool, and blocks
    /// until all iterations finish. Exceptions from any iteration are
    /// rethrown (first one wins).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

    /// Maps fn(i) over [0, n) and collects results in order.
    template <typename F>
    auto parallel_map(std::size_t n, F&& fn)
        -> std::vector<std::invoke_result_t<F, std::size_t>> {
        using R = std::invoke_result_t<F, std::size_t>;
        std::vector<std::future<R>> futures;
        futures.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            futures.push_back(submit([&fn, i] { return fn(i); }));
        }
        std::vector<R> out;
        out.reserve(n);
        for (auto& f : futures) out.push_back(f.get());
        return out;
    }

    /// parallel_map with an explicit concurrency cap and chunk hint.
    /// Unlike the overload above (one queued task per item), this one
    /// enqueues at most `max_workers` drain tasks that claim `chunk`
    /// indices at a time. Results keep index order; the first exception
    /// from any item is rethrown after all active workers stop.
    ///
    /// Safe under nesting: the calling thread drains work itself, and it
    /// never blocks on queued helper tasks — only on drains that actually
    /// started. Helpers that the pool gets to late find no work left and
    /// return against heap-owned state, so they cannot touch a dead
    /// frame even if they run after this call returned.
    template <typename F>
    auto parallel_map(std::size_t n, F&& fn, const ParallelOptions& options)
        -> std::vector<std::invoke_result_t<F, std::size_t>> {
        using R = std::invoke_result_t<F, std::size_t>;
        if (n == 0) return {};

        const std::size_t chunk = options.chunk == 0 ? 1 : options.chunk;
        std::size_t workers =
            options.max_workers == 0 ? size() : std::min(options.max_workers, size());
        workers = std::min(workers, (n + chunk - 1) / chunk);
        if (workers == 0) workers = 1;

        struct State {
            explicit State(std::size_t count) : slots(count), n(count) {}
            // Result slots are disjoint per index and are only read after
            // every drain has exited (the mutex release/acquire pair
            // below publishes them), so they carry no guard of their own.
            std::vector<std::optional<R>> slots;
            std::size_t n;
            std::atomic<std::size_t> next{0};
            std::atomic<bool> failed{false};
            Mutex mutex;
            CondVar done_cv;
            std::size_t items_done SDL_GUARDED_BY(mutex) = 0;
            int active_drains SDL_GUARDED_BY(mutex) = 0;
            std::exception_ptr first_error SDL_GUARDED_BY(mutex);
        };
        auto state = std::make_shared<State>(n);

        // `fn` is captured by reference: a drain only reaches it while
        // unclaimed work remains, and the caller cannot leave before all
        // work is claimed (or failed) and every active drain has exited.
        auto drain_loop = [state, &fn, chunk] {
            {
                MutexLock lock(state->mutex);
                ++state->active_drains;
            }
            std::size_t completed_here = 0;
            for (;;) {
                if (state->failed.load(std::memory_order_relaxed)) break;
                const std::size_t begin =
                    state->next.fetch_add(chunk, std::memory_order_relaxed);
                if (begin >= state->n) break;
                const std::size_t end = std::min(state->n, begin + chunk);
                bool threw = false;
                for (std::size_t i = begin; i < end; ++i) {
                    try {
                        state->slots[i].emplace(fn(i));
                        ++completed_here;
                    } catch (...) {
                        MutexLock lock(state->mutex);
                        if (!state->first_error) {
                            state->first_error = std::current_exception();
                        }
                        state->failed.store(true, std::memory_order_relaxed);
                        threw = true;
                        break;
                    }
                }
                if (threw) break;
            }
            MutexLock lock(state->mutex);
            state->items_done += completed_here;
            --state->active_drains;
            state->done_cv.notify_all();
        };

        // The helpers' futures are deliberately discarded — completion is
        // tracked by the latch above, never by blocking on a queued task
        // that a saturated pool might not schedule.
        for (std::size_t w = 1; w < workers; ++w) (void)submit(drain_loop);
        drain_loop();  // The calling thread participates.

        MutexLock lock(state->mutex);
        while (state->active_drains != 0 ||
               (state->items_done != state->n &&
                !state->failed.load(std::memory_order_relaxed))) {
            state->done_cv.wait(state->mutex);
        }
        if (state->first_error) std::rethrow_exception(state->first_error);

        std::vector<R> out;
        out.reserve(n);
        for (auto& slot : state->slots) out.push_back(std::move(*slot));
        return out;
    }

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    Mutex mutex_;
    CondVar cv_;
    std::deque<std::function<void()>> queue_ SDL_GUARDED_BY(mutex_);
    bool stopping_ SDL_GUARDED_BY(mutex_) = false;
};

/// Parses an SDLBENCH_WORKERS-style value: a positive integer is a pool
/// size, null/empty/0/garbage mean "default" (returns 0, i.e. hardware
/// concurrency) — garbage is logged as a warning rather than thrown,
/// because this runs inside global_pool()'s lazy static initializer.
[[nodiscard]] std::size_t pool_size_from_env(const char* value) noexcept;

/// Process-wide pool for benchmark harnesses (lazily constructed). The
/// size honors the SDLBENCH_WORKERS environment variable, read once at
/// first use — fleet workers (tools/sdlbench_fleet) are pinned to
/// disjoint core budgets this way, and a bench run can be forced
/// single-threaded without code changes.
ThreadPool& global_pool();

}  // namespace sdl::support
