#include "support/units.hpp"

#include <cmath>
#include <cstdio>

namespace sdl::support {

std::string Duration::pretty() const {
    char buf[64];
    const double s = seconds_;
    const double abs_s = std::fabs(s);
    if (abs_s >= 3600.0) {
        const int h = static_cast<int>(s / 3600.0);
        const int m = static_cast<int>(std::lround((s - h * 3600.0) / 60.0));
        std::snprintf(buf, sizeof(buf), "%d h %d m", h, m);
    } else if (abs_s >= 60.0) {
        const int m = static_cast<int>(s / 60.0);
        const int sec = static_cast<int>(std::lround(s - m * 60.0));
        std::snprintf(buf, sizeof(buf), "%d m %d s", m, sec);
    } else {
        // sdlbench-lint: allow(printf-float): pretty() renders durations for humans, never for artifact bytes
        std::snprintf(buf, sizeof(buf), "%.1f s", s);
    }
    return buf;
}

std::string Volume::pretty() const {
    char buf[64];
    if (std::fabs(ul_) >= 1000.0) {
        // sdlbench-lint: allow(printf-float): pretty() renders volumes for humans, never for artifact bytes
        std::snprintf(buf, sizeof(buf), "%.2f mL", ul_ / 1000.0);
    } else {
        // sdlbench-lint: allow(printf-float): pretty() renders volumes for humans, never for artifact bytes
        std::snprintf(buf, sizeof(buf), "%.1f uL", ul_);
    }
    return buf;
}

}  // namespace sdl::support
