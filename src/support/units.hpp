// Strong unit types used throughout the simulator.
//
// Durations and liquid volumes are the two quantities the paper's
// evaluation is built on (Table 1 is entirely durations; solver proposals
// are volumes), so both get dedicated types rather than raw doubles
// (Core Guidelines I.4: make interfaces precisely and strongly typed).
#pragma once

#include <compare>
#include <string>

namespace sdl::support {

/// A span of simulated (or wall-clock) time, stored in seconds.
class Duration {
public:
    constexpr Duration() noexcept = default;

    [[nodiscard]] static constexpr Duration seconds(double s) noexcept { return Duration{s}; }
    [[nodiscard]] static constexpr Duration minutes(double m) noexcept { return Duration{m * 60.0}; }
    [[nodiscard]] static constexpr Duration hours(double h) noexcept { return Duration{h * 3600.0}; }
    [[nodiscard]] static constexpr Duration zero() noexcept { return Duration{0.0}; }

    [[nodiscard]] constexpr double to_seconds() const noexcept { return seconds_; }
    [[nodiscard]] constexpr double to_minutes() const noexcept { return seconds_ / 60.0; }
    [[nodiscard]] constexpr double to_hours() const noexcept { return seconds_ / 3600.0; }

    constexpr Duration& operator+=(Duration other) noexcept {
        seconds_ += other.seconds_;
        return *this;
    }
    constexpr Duration& operator-=(Duration other) noexcept {
        seconds_ -= other.seconds_;
        return *this;
    }
    constexpr Duration& operator*=(double k) noexcept {
        seconds_ *= k;
        return *this;
    }

    friend constexpr Duration operator+(Duration a, Duration b) noexcept {
        return Duration{a.seconds_ + b.seconds_};
    }
    friend constexpr Duration operator-(Duration a, Duration b) noexcept {
        return Duration{a.seconds_ - b.seconds_};
    }
    friend constexpr Duration operator*(Duration a, double k) noexcept {
        return Duration{a.seconds_ * k};
    }
    friend constexpr Duration operator*(double k, Duration a) noexcept { return a * k; }
    friend constexpr double operator/(Duration a, Duration b) noexcept {
        return a.seconds_ / b.seconds_;
    }
    friend constexpr Duration operator/(Duration a, double k) noexcept {
        return Duration{a.seconds_ / k};
    }
    friend constexpr auto operator<=>(Duration a, Duration b) noexcept = default;

    /// Human-readable rendering in the paper's style, e.g. "8 h 12 m",
    /// "3 m 48 s", "42.6 s".
    [[nodiscard]] std::string pretty() const;

private:
    constexpr explicit Duration(double s) noexcept : seconds_(s) {}
    double seconds_ = 0.0;
};

/// A point on a timeline (seconds since experiment start).
class TimePoint {
public:
    constexpr TimePoint() noexcept = default;
    [[nodiscard]] static constexpr TimePoint from_seconds(double s) noexcept {
        return TimePoint{s};
    }

    [[nodiscard]] constexpr double to_seconds() const noexcept { return seconds_; }
    [[nodiscard]] constexpr double to_minutes() const noexcept { return seconds_ / 60.0; }

    friend constexpr TimePoint operator+(TimePoint t, Duration d) noexcept {
        return TimePoint{t.seconds_ + d.to_seconds()};
    }
    friend constexpr Duration operator-(TimePoint a, TimePoint b) noexcept {
        return Duration::seconds(a.seconds_ - b.seconds_);
    }
    friend constexpr auto operator<=>(TimePoint a, TimePoint b) noexcept = default;

private:
    constexpr explicit TimePoint(double s) noexcept : seconds_(s) {}
    double seconds_ = 0.0;
};

/// Liquid volume in microliters (the ot2 pipettes in µL).
class Volume {
public:
    constexpr Volume() noexcept = default;

    [[nodiscard]] static constexpr Volume microliters(double ul) noexcept { return Volume{ul}; }
    [[nodiscard]] static constexpr Volume milliliters(double ml) noexcept {
        return Volume{ml * 1000.0};
    }
    [[nodiscard]] static constexpr Volume zero() noexcept { return Volume{0.0}; }

    [[nodiscard]] constexpr double to_microliters() const noexcept { return ul_; }
    [[nodiscard]] constexpr double to_milliliters() const noexcept { return ul_ / 1000.0; }

    constexpr Volume& operator+=(Volume other) noexcept {
        ul_ += other.ul_;
        return *this;
    }
    constexpr Volume& operator-=(Volume other) noexcept {
        ul_ -= other.ul_;
        return *this;
    }

    friend constexpr Volume operator+(Volume a, Volume b) noexcept {
        return Volume{a.ul_ + b.ul_};
    }
    friend constexpr Volume operator-(Volume a, Volume b) noexcept {
        return Volume{a.ul_ - b.ul_};
    }
    friend constexpr Volume operator*(Volume a, double k) noexcept { return Volume{a.ul_ * k}; }
    friend constexpr Volume operator*(double k, Volume a) noexcept { return a * k; }
    friend constexpr double operator/(Volume a, Volume b) noexcept { return a.ul_ / b.ul_; }
    friend constexpr auto operator<=>(Volume a, Volume b) noexcept = default;

    [[nodiscard]] std::string pretty() const;

private:
    constexpr explicit Volume(double ul) noexcept : ul_(ul) {}
    double ul_ = 0.0;
};

}  // namespace sdl::support
