#include "support/yaml.hpp"

#include <charconv>
#include <vector>

#include "support/common.hpp"

namespace sdl::support::yaml {

namespace {

using json::Array;
using json::Object;
using json::Value;

struct Line {
    std::size_t indent = 0;
    std::string text;  // content after indentation, comments stripped
    std::size_t number = 0;
};

[[noreturn]] void fail(const std::string& message, std::size_t line) {
    throw ParseError("yaml: " + message, line, 1);
}

/// Strips a trailing comment that is not inside quotes.
std::string strip_comment(std::string_view s) {
    char quote = '\0';
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (quote != '\0') {
            if (c == quote) quote = '\0';
        } else if (c == '\'' || c == '"') {
            quote = c;
        } else if (c == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
            s = s.substr(0, i);
            break;
        }
    }
    // Trim trailing whitespace.
    std::size_t end = s.size();
    while (end > 0 && (s[end - 1] == ' ' || s[end - 1] == '\t' || s[end - 1] == '\r')) {
        --end;
    }
    return std::string(s.substr(0, end));
}

std::vector<Line> split_lines(std::string_view text) {
    std::vector<Line> lines;
    std::size_t lineno = 0;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t nl = text.find('\n', start);
        if (nl == std::string_view::npos) nl = text.size();
        ++lineno;
        std::string_view raw = text.substr(start, nl - start);
        start = nl + 1;

        std::size_t indent = 0;
        while (indent < raw.size() && raw[indent] == ' ') ++indent;
        if (indent < raw.size() && raw[indent] == '\t') {
            fail("tab indentation is not supported", lineno);
        }
        std::string content = strip_comment(raw.substr(indent));
        if (content.empty()) continue;
        if (content == "---") continue;  // document start marker
        lines.push_back(Line{indent, std::move(content), lineno});
        if (nl == text.size()) break;
    }
    return lines;
}

// ------------------------------------------------------------ scalars

bool looks_like_number(std::string_view s) {
    if (s.empty()) return false;
    std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
    if (i >= s.size()) return false;
    bool digit = false;
    for (; i < s.size(); ++i) {
        const char c = s[i];
        if (c >= '0' && c <= '9') {
            digit = true;
        } else if (c != '.' && c != 'e' && c != 'E' && c != '+' && c != '-') {
            return false;
        }
    }
    return digit;
}

Value parse_plain_scalar(std::string_view s, std::size_t lineno) {
    if (s.empty() || s == "~" || s == "null" || s == "Null" || s == "NULL") {
        return Value(nullptr);
    }
    if (s == "true" || s == "True" || s == "TRUE") return Value(true);
    if (s == "false" || s == "False" || s == "FALSE") return Value(false);
    if (looks_like_number(s)) {
        // std::from_chars rejects a leading '+', which YAML allows.
        const std::string_view num = s.front() == '+' ? s.substr(1) : s;
        const bool floating = num.find_first_of(".eE") != std::string_view::npos;
        if (!floating) {
            std::int64_t i = 0;
            const auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), i);
            if (ec == std::errc() && ptr == num.data() + num.size()) return Value(i);
        }
        double d = 0.0;
        const auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
        if (ec == std::errc() && ptr == num.data() + num.size()) return Value(d);
    }
    if (s.front() == '&' || s.front() == '*' || s.front() == '!') {
        fail("anchors, aliases and tags are not supported", lineno);
    }
    if (s.front() == '|' || s.front() == '>') {
        fail("block scalars are not supported", lineno);
    }
    return Value(std::string(s));
}

/// Parses a possibly-quoted scalar or flow collection. `pos` advances past
/// the parsed construct.
Value parse_flow_value(std::string_view s, std::size_t& pos, std::size_t lineno);

void skip_spaces(std::string_view s, std::size_t& pos) {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t')) ++pos;
}

std::string parse_quoted(std::string_view s, std::size_t& pos, std::size_t lineno) {
    const char quote = s[pos++];
    std::string out;
    while (pos < s.size()) {
        const char c = s[pos++];
        if (c == quote) {
            if (quote == '\'' && pos < s.size() && s[pos] == '\'') {
                out.push_back('\'');  // '' escape inside single quotes
                ++pos;
                continue;
            }
            return out;
        }
        if (quote == '"' && c == '\\' && pos < s.size()) {
            const char esc = s[pos++];
            switch (esc) {
                case 'n': out.push_back('\n'); break;
                case 't': out.push_back('\t'); break;
                case 'r': out.push_back('\r'); break;
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                default:
                    out.push_back('\\');
                    out.push_back(esc);
            }
            continue;
        }
        out.push_back(c);
    }
    fail("unterminated quoted string", lineno);
}

Value parse_flow_sequence(std::string_view s, std::size_t& pos, std::size_t lineno) {
    ++pos;  // consume '['
    Array arr;
    skip_spaces(s, pos);
    if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return Value(std::move(arr));
    }
    for (;;) {
        skip_spaces(s, pos);
        arr.push_back(parse_flow_value(s, pos, lineno));
        skip_spaces(s, pos);
        if (pos >= s.size()) fail("unterminated flow sequence", lineno);
        if (s[pos] == ',') {
            ++pos;
            continue;
        }
        if (s[pos] == ']') {
            ++pos;
            return Value(std::move(arr));
        }
        fail("expected ',' or ']' in flow sequence", lineno);
    }
}

Value parse_flow_mapping(std::string_view s, std::size_t& pos, std::size_t lineno) {
    ++pos;  // consume '{'
    Object obj;
    skip_spaces(s, pos);
    if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return Value(std::move(obj));
    }
    for (;;) {
        skip_spaces(s, pos);
        std::string key;
        if (pos < s.size() && (s[pos] == '"' || s[pos] == '\'')) {
            key = parse_quoted(s, pos, lineno);
        } else {
            const std::size_t start = pos;
            while (pos < s.size() && s[pos] != ':' && s[pos] != ',' && s[pos] != '}') ++pos;
            std::size_t end = pos;
            while (end > start && s[end - 1] == ' ') --end;
            key = std::string(s.substr(start, end - start));
        }
        skip_spaces(s, pos);
        if (pos >= s.size() || s[pos] != ':') fail("expected ':' in flow mapping", lineno);
        ++pos;
        skip_spaces(s, pos);
        obj.set(std::move(key), parse_flow_value(s, pos, lineno));
        skip_spaces(s, pos);
        if (pos >= s.size()) fail("unterminated flow mapping", lineno);
        if (s[pos] == ',') {
            ++pos;
            continue;
        }
        if (s[pos] == '}') {
            ++pos;
            return Value(std::move(obj));
        }
        fail("expected ',' or '}' in flow mapping", lineno);
    }
}

Value parse_flow_value(std::string_view s, std::size_t& pos, std::size_t lineno) {
    skip_spaces(s, pos);
    if (pos >= s.size()) return Value(nullptr);
    const char c = s[pos];
    if (c == '[') return parse_flow_sequence(s, pos, lineno);
    if (c == '{') return parse_flow_mapping(s, pos, lineno);
    if (c == '"' || c == '\'') return Value(parse_quoted(s, pos, lineno));
    const std::size_t start = pos;
    while (pos < s.size() && s[pos] != ',' && s[pos] != ']' && s[pos] != '}') ++pos;
    std::size_t end = pos;
    while (end > start && (s[end - 1] == ' ' || s[end - 1] == '\t')) --end;
    return parse_plain_scalar(s.substr(start, end - start), lineno);
}

/// Parses a complete scalar-or-flow value occupying the rest of a line.
Value parse_inline_value(std::string_view s, std::size_t lineno) {
    std::size_t pos = 0;
    skip_spaces(s, pos);
    if (pos >= s.size()) return Value(nullptr);
    const char c = s[pos];
    if (c == '[' || c == '{' || c == '"' || c == '\'') {
        Value v = parse_flow_value(s, pos, lineno);
        skip_spaces(s, pos);
        if (pos != s.size()) fail("trailing characters after value", lineno);
        return v;
    }
    return parse_plain_scalar(s.substr(pos), lineno);
}

// ------------------------------------------------------------ block parse

/// Finds the position of the key/value separating colon at the top level
/// of `s` (outside quotes and flow brackets). npos when absent.
std::size_t find_mapping_colon(std::string_view s) {
    char quote = '\0';
    int bracket_depth = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (quote != '\0') {
            if (c == quote) quote = '\0';
        } else if (c == '\'' || c == '"') {
            quote = c;
        } else if (c == '[' || c == '{') {
            ++bracket_depth;
        } else if (c == ']' || c == '}') {
            --bracket_depth;
        } else if (c == ':' && bracket_depth == 0) {
            if (i + 1 == s.size() || s[i + 1] == ' ') return i;
        }
    }
    return std::string_view::npos;
}

class BlockParser {
public:
    explicit BlockParser(std::vector<Line> lines) : lines_(std::move(lines)) {}

    Value parse_document() {
        if (lines_.empty()) return Value(nullptr);
        Value v = parse_node(lines_[0].indent);
        if (pos_ != lines_.size()) {
            fail("bad indentation (content outside of document structure)",
                 lines_[pos_].number);
        }
        return v;
    }

private:
    [[nodiscard]] bool at_end() const noexcept { return pos_ >= lines_.size(); }
    [[nodiscard]] const Line& current() const { return lines_[pos_]; }

    static bool starts_sequence_item(const Line& line) noexcept {
        return line.text == "-" || line.text.rfind("- ", 0) == 0;
    }

    Value parse_node(std::size_t indent) {
        if (at_end()) return Value(nullptr);
        if (current().indent != indent) {
            fail("bad indentation", current().number);
        }
        if (starts_sequence_item(current())) return parse_sequence(indent);
        return parse_mapping(indent);
    }

    Value parse_sequence(std::size_t indent) {
        Array arr;
        while (!at_end() && current().indent == indent && starts_sequence_item(current())) {
            Line& line = lines_[pos_];
            if (line.text == "-") {
                // Item entirely on following deeper-indented lines.
                ++pos_;
                if (!at_end() && current().indent > indent) {
                    arr.push_back(parse_node(current().indent));
                } else {
                    arr.emplace_back(nullptr);
                }
                continue;
            }
            // "- <rest>": rewrite this line as <rest> at a deeper virtual
            // indent, then parse it (covers "- scalar" and "- key: value"
            // inline mapping starts uniformly).
            const std::size_t dash_offset = 2;
            line.indent = indent + dash_offset;
            line.text = line.text.substr(dash_offset);
            if (find_mapping_colon(line.text) != std::string_view::npos ||
                starts_sequence_item(line)) {
                arr.push_back(parse_node(line.indent));
            } else {
                arr.push_back(parse_inline_value(line.text, line.number));
                ++pos_;
            }
        }
        return Value(std::move(arr));
    }

    Value parse_mapping(std::size_t indent) {
        Object obj;
        while (!at_end() && current().indent == indent && !starts_sequence_item(current())) {
            const Line& line = current();
            const std::size_t colon = find_mapping_colon(line.text);
            if (colon == std::string_view::npos) {
                fail("expected 'key: value' mapping entry", line.number);
            }
            std::string key;
            {
                std::string_view key_part = std::string_view(line.text).substr(0, colon);
                std::size_t kpos = 0;
                skip_spaces(key_part, kpos);
                if (kpos < key_part.size() &&
                    (key_part[kpos] == '"' || key_part[kpos] == '\'')) {
                    key = parse_quoted(key_part, kpos, line.number);
                } else {
                    std::size_t end = key_part.size();
                    while (end > kpos && key_part[end - 1] == ' ') --end;
                    key = std::string(key_part.substr(kpos, end - kpos));
                }
            }
            if (key.empty()) fail("empty mapping key", line.number);
            if (obj.contains(key)) fail("duplicate mapping key '" + key + "'", line.number);

            std::string_view rest = std::string_view(line.text).substr(colon + 1);
            std::size_t rpos = 0;
            skip_spaces(rest, rpos);
            if (rpos < rest.size()) {
                obj.set(std::move(key), parse_inline_value(rest.substr(rpos), line.number));
                ++pos_;
            } else {
                // Value is a nested block (or null).
                ++pos_;
                if (!at_end() && current().indent > indent) {
                    obj.set(std::move(key), parse_node(current().indent));
                } else if (!at_end() && current().indent == indent &&
                           starts_sequence_item(current())) {
                    // Sequences are commonly written at the same indent as
                    // their key; accept that widespread style.
                    obj.set(std::move(key), parse_sequence(indent));
                } else {
                    obj.set(std::move(key), Value(nullptr));
                }
            }
        }
        return Value(std::move(obj));
    }

    std::vector<Line> lines_;
    std::size_t pos_ = 0;
};

// ------------------------------------------------------------ dumper

bool scalar_needs_quotes(const std::string& s) {
    if (s.empty()) return true;
    if (s == "true" || s == "false" || s == "null" || s == "~") return true;
    if (looks_like_number(s)) return true;
    if (s.front() == ' ' || s.back() == ' ') return true;
    return s.find_first_of(":#{}[],&*!|>'\"\n") != std::string::npos;
}

void dump_scalar(std::string& out, const Value& v) {
    if (v.is_null()) {
        out += "null";
    } else if (v.is_bool()) {
        out += v.as_bool() ? "true" : "false";
    } else if (v.is_int()) {
        out += std::to_string(v.as_int());
    } else if (v.is_double()) {
        // Reuse JSON's number formatting by serializing a bare value.
        out += Value(v.as_double()).dump();
    } else {
        const std::string& s = v.as_string();
        out += scalar_needs_quotes(s) ? json::escape(s) : s;
    }
}

void dump_node(std::string& out, const Value& v, std::size_t indent) {
    const std::string pad(indent, ' ');
    if (v.is_object()) {
        for (const auto& [key, value] : v.as_object()) {
            out += pad;
            out += scalar_needs_quotes(key) ? json::escape(key) : key;
            out += ':';
            if (value.is_object() || value.is_array()) {
                if (value.size() == 0) {
                    out += value.is_object() ? " {}\n" : " []\n";
                } else {
                    out += '\n';
                    dump_node(out, value, indent + 2);
                }
            } else {
                out += ' ';
                dump_scalar(out, value);
                out += '\n';
            }
        }
    } else if (v.is_array()) {
        for (const Value& item : v.as_array()) {
            out += pad;
            out += "- ";
            if (item.is_object() || item.is_array()) {
                if (item.size() == 0) {
                    out += item.is_object() ? "{}\n" : "[]\n";
                } else if (item.is_object()) {
                    // First key on the dash line, rest indented below.
                    bool first = true;
                    for (const auto& [key, value] : item.as_object()) {
                        if (!first) {
                            out += pad;
                            out += "  ";
                        }
                        first = false;
                        out += scalar_needs_quotes(key) ? json::escape(key) : key;
                        out += ':';
                        if (value.is_object() || value.is_array()) {
                            if (value.size() == 0) {
                                out += value.is_object() ? " {}\n" : " []\n";
                            } else {
                                out += '\n';
                                dump_node(out, value, indent + 4);
                            }
                        } else {
                            out += ' ';
                            dump_scalar(out, value);
                            out += '\n';
                        }
                    }
                } else {
                    out += '\n';
                    dump_node(out, item, indent + 2);
                }
            } else {
                dump_scalar(out, item);
                out += '\n';
            }
        }
    } else {
        out += pad;
        dump_scalar(out, v);
        out += '\n';
    }
}

}  // namespace

json::Value parse(std::string_view text) {
    return BlockParser(split_lines(text)).parse_document();
}

std::string dump(const json::Value& value) {
    std::string out;
    dump_node(out, value, 0);
    return out;
}

}  // namespace sdl::support::yaml
