// YAML-subset parser.
//
// The paper's WEI framework specifies workcells and workflows in a
// declarative YAML notation. sdlbench ships no external dependencies, so
// this module implements the subset those files need, parsing into the
// same json::Value document model used everywhere else:
//
//   * block mappings and block sequences nested by indentation
//   * "- " sequence items, including inline "- key: value" mapping starts
//   * flow-style [a, b] sequences and {k: v} mappings
//   * plain / single-quoted / double-quoted scalars
//   * ints, floats, booleans (true/false), null (~ / null / empty)
//   * '#' comments (outside quotes) and blank lines
//
// Anchors, aliases, multi-line block scalars, tags and multi-document
// streams are intentionally unsupported and raise ParseError.
#pragma once

#include <string_view>

#include "support/json.hpp"

namespace sdl::support::yaml {

/// Parses one YAML document into a json::Value.
/// Throws ParseError with line/column information on malformed input.
[[nodiscard]] json::Value parse(std::string_view text);

/// Serializes a json::Value as block-style YAML (inverse of parse for the
/// supported subset). Used to write workcell/workflow files in examples.
[[nodiscard]] std::string dump(const json::Value& value);

}  // namespace sdl::support::yaml
