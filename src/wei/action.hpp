// Action protocol: the messages exchanged between the workflow engine and
// instrument modules.
//
// In the paper's WEI framework, "workflow steps are translated into
// commands sent to computers connected to devices, which then call driver
// functions specific to their attached device". ActionRequest is that
// command; ActionResult is the device's report back to the control system.
#pragma once

#include <cstdint>
#include <string>

#include "support/json.hpp"
#include "support/units.hpp"

namespace sdl::wei {

/// One command addressed to a module. `args` carries action-specific
/// parameters as a JSON object (mirroring WEI's YAML/JSON payloads).
struct ActionRequest {
    std::string module;
    std::string action;
    support::json::Value args = support::json::Value::object();
    /// Monotone id assigned by the engine; lets logs correlate retries.
    std::uint64_t command_id = 0;
};

enum class ActionStatus {
    Succeeded,
    Failed,     ///< device executed but reported an error
    Rejected,   ///< command lost/garbled before execution (the paper's
                ///< dominant failure mode: "reception and processing")
};

[[nodiscard]] constexpr const char* to_string(ActionStatus s) noexcept {
    switch (s) {
        case ActionStatus::Succeeded: return "succeeded";
        case ActionStatus::Failed: return "failed";
        case ActionStatus::Rejected: return "rejected";
    }
    return "?";
}

/// A module's report for one command.
struct ActionResult {
    ActionStatus status = ActionStatus::Succeeded;
    std::string error;  ///< empty on success
    support::json::Value data = support::json::Value::object();
    /// Modeled execution time (virtual time in the DES transport).
    support::Duration duration = support::Duration::zero();

    [[nodiscard]] bool ok() const noexcept { return status == ActionStatus::Succeeded; }

    [[nodiscard]] static ActionResult success(support::json::Value data =
                                                  support::json::Value::object()) {
        ActionResult r;
        r.data = std::move(data);
        return r;
    }
    [[nodiscard]] static ActionResult failure(std::string message) {
        ActionResult r;
        r.status = ActionStatus::Failed;
        r.error = std::move(message);
        return r;
    }
};

}  // namespace sdl::wei
