#include "wei/engine.hpp"

#include "support/log.hpp"

namespace sdl::wei {

WorkflowEngine::WorkflowEngine(Transport& transport, const ModuleRegistry& modules,
                               EventLog& log, RetryPolicy policy)
    : transport_(transport), modules_(modules), log_(log), policy_(policy) {}

WorkflowRunStats WorkflowEngine::run(const Workflow& workflow) {
    WorkflowRunStats stats;
    const support::TimePoint wf_start = transport_.now();
    support::log_info("engine", "workflow '", workflow.name(), "' started");

    for (const WorkflowStep& step : workflow.steps()) {
        const bool robotic = modules_.get(step.module).info().robotic;
        int attempt = 0;
        for (;;) {
            ++attempt;
            ActionRequest request;
            request.module = step.module;
            request.action = step.action;
            request.args = step.args;
            request.command_id = ++next_command_id_;

            const support::TimePoint start = transport_.now();
            const ActionResult result = transport_.execute(request);

            StepRecord record;
            record.workflow = workflow.name();
            record.step = step.name;
            record.module = step.module;
            record.action = step.action;
            record.start = start;
            record.end = start + result.duration;
            record.status = result.status;
            record.attempt = attempt;
            record.robotic = robotic;
            record.command_id = request.command_id;
            log_.record_step(record);

            if (result.ok()) {
                ++stats.steps_completed;
                stats.results.push_back(result);
                break;
            }
            if (result.status == ActionStatus::Failed) {
                // The device executed and reported a hard error: no retry
                // can fix an empty reservoir or a missing plate.
                log_.record_workflow({workflow.name(), wf_start, transport_.now(), false});
                throw WorkflowError("step '" + step.name + "' (" + step.module + "." +
                                    step.action + ") failed: " + result.error);
            }

            // Rejected: communication-layer loss, retry per policy.
            ++stats.rejections;
            support::log_warn("engine", "step '", step.name, "' rejected (attempt ",
                              attempt, "): ", result.error);
            if (policy_.backoff > support::Duration::zero()) {
                transport_.wait(policy_.backoff);
            }
            if (attempt >= policy_.max_attempts) {
                if (!policy_.human_rescue) {
                    log_.record_workflow({workflow.name(), wf_start, transport_.now(), false});
                    throw WorkflowError("step '" + step.name + "' rejected " +
                                        std::to_string(attempt) + " times");
                }
                // A human walks over, re-seats the connection, and the
                // step is re-attempted with a fresh retry budget.
                log_.record_intervention(
                    {transport_.now(), "retries exhausted on step '" + step.name + "'"});
                ++stats.interventions;
                attempt = 0;
            }
        }
    }

    const support::TimePoint wf_end = transport_.now();
    log_.record_workflow({workflow.name(), wf_start, wf_end, true});
    stats.duration = wf_end - wf_start;
    support::log_info("engine", "workflow '", workflow.name(), "' completed in ",
                      stats.duration.pretty());
    return stats;
}

}  // namespace sdl::wei
