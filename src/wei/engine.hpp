// Workflow engine: runs declarative workflows against a transport, with
// retry-on-rejection resilience and full event logging.
#pragma once

#include <cstdint>

#include "support/common.hpp"
#include "wei/event_log.hpp"
#include "wei/module.hpp"
#include "wei/transport.hpp"
#include "wei/workflow.hpp"

namespace sdl::wei {

struct RetryPolicy {
    /// Attempts per step before escalating (1 = no retries).
    int max_attempts = 5;
    /// Extra wait inserted before each retry (operator-configured backoff).
    support::Duration backoff = support::Duration::seconds(2.0);
    /// When retries are exhausted: if true, record a human intervention
    /// (breaking the TWH streak) and keep going; if false, abort the
    /// workflow with a WorkflowError.
    bool human_rescue = true;
};

/// Thrown when a workflow cannot be completed (retries exhausted and
/// human_rescue disabled, or a device reported a hard failure).
class WorkflowError : public support::Error {
public:
    explicit WorkflowError(const std::string& message) : Error("workflow", message) {}
};

struct WorkflowRunStats {
    int steps_completed = 0;
    int rejections = 0;
    int interventions = 0;
    support::Duration duration = support::Duration::zero();
    /// Final (successful) result of each step, in step order — applications
    /// read device payloads (e.g. the camera's frame id) from here.
    std::vector<ActionResult> results;
};

class WorkflowEngine {
public:
    /// Borrows all references; they must outlive the engine.
    WorkflowEngine(Transport& transport, const ModuleRegistry& modules, EventLog& log,
                   RetryPolicy policy = {});

    /// Runs every step in order. Device *failures* (the driver ran and
    /// reported an error, e.g. empty reservoir) abort immediately with
    /// WorkflowError — they need application-level handling. Command
    /// *rejections* (communication layer) are retried per policy.
    WorkflowRunStats run(const Workflow& workflow);

    [[nodiscard]] const RetryPolicy& policy() const noexcept { return policy_; }
    void set_policy(RetryPolicy policy) noexcept { policy_ = policy; }

    /// Total commands issued (attempts, including rejected ones).
    [[nodiscard]] std::uint64_t commands_issued() const noexcept { return next_command_id_; }

private:
    Transport& transport_;
    const ModuleRegistry& modules_;
    EventLog& log_;
    RetryPolicy policy_;
    std::uint64_t next_command_id_ = 0;
};

}  // namespace sdl::wei
