#include "wei/event_log.hpp"

namespace sdl::wei {

namespace json = support::json;

void EventLog::record_step(StepRecord record) { steps_.push_back(std::move(record)); }

void EventLog::record_workflow(WorkflowRecord record) {
    workflows_.push_back(std::move(record));
}

void EventLog::record_intervention(InterventionRecord record) {
    interventions_.push_back(std::move(record));
}

std::uint64_t EventLog::successful_commands() const noexcept {
    std::uint64_t n = 0;
    for (const StepRecord& s : steps_) {
        if (s.robotic && s.status == ActionStatus::Succeeded) ++n;
    }
    return n;
}

support::Duration EventLog::module_busy_time(std::string_view module) const noexcept {
    support::Duration total = support::Duration::zero();
    for (const StepRecord& s : steps_) {
        if (s.module == module && s.status == ActionStatus::Succeeded) {
            total += s.duration();
        }
    }
    return total;
}

support::TimePoint EventLog::first_start() const noexcept {
    if (steps_.empty()) return {};
    support::TimePoint t = steps_.front().start;
    for (const StepRecord& s : steps_) {
        if (s.start < t) t = s.start;
    }
    return t;
}

support::TimePoint EventLog::last_end() const noexcept {
    if (steps_.empty()) return {};
    support::TimePoint t = steps_.front().end;
    for (const StepRecord& s : steps_) {
        if (t < s.end) t = s.end;
    }
    return t;
}

json::Value EventLog::to_json() const {
    json::Value doc = json::Value::object();
    json::Value workflows = json::Value::array();
    for (const WorkflowRecord& wf : workflows_) {
        json::Value node = json::Value::object();
        node.set("name", wf.name);
        node.set("start_s", wf.start.to_seconds());
        node.set("end_s", wf.end.to_seconds());
        node.set("duration_s", (wf.end - wf.start).to_seconds());
        node.set("completed", wf.completed);

        json::Value steps = json::Value::array();
        for (const StepRecord& s : steps_) {
            if (s.workflow != wf.name || s.start < wf.start || wf.end < s.end) continue;
            json::Value step = json::Value::object();
            step.set("step", s.step);
            step.set("module", s.module);
            step.set("action", s.action);
            step.set("start_s", s.start.to_seconds());
            step.set("end_s", s.end.to_seconds());
            step.set("duration_s", s.duration().to_seconds());
            step.set("status", to_string(s.status));
            step.set("attempt", s.attempt);
            steps.push_back(std::move(step));
        }
        node.set("steps", std::move(steps));
        workflows.push_back(std::move(node));
    }
    doc.set("workflow_runs", std::move(workflows));

    json::Value interventions = json::Value::array();
    for (const InterventionRecord& i : interventions_) {
        json::Value node = json::Value::object();
        node.set("time_s", i.time.to_seconds());
        node.set("reason", i.reason);
        interventions.push_back(std::move(node));
    }
    doc.set("interventions", std::move(interventions));
    return doc;
}

}  // namespace sdl::wei
