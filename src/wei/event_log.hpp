// Event log: the timing record behind the paper's evaluation.
//
// "For each workflow that is run, a file is created that details the step
// names run, their start time, end time and total duration" (§2.3). The
// log captures every command attempt (including rejected ones), workflow
// boundaries, and human interventions; the metrics module derives TWH,
// CCWH and the synthesis/transfer split from it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"
#include "support/units.hpp"
#include "wei/action.hpp"

namespace sdl::wei {

struct StepRecord {
    std::string workflow;
    std::string step;
    std::string module;
    std::string action;
    support::TimePoint start;
    support::TimePoint end;
    ActionStatus status = ActionStatus::Succeeded;
    int attempt = 1;            ///< 1-based attempt number for this step
    bool robotic = true;        ///< from ModuleInfo (CCWH counts these)
    std::uint64_t command_id = 0;

    [[nodiscard]] support::Duration duration() const noexcept { return end - start; }
};

struct WorkflowRecord {
    std::string name;
    support::TimePoint start;
    support::TimePoint end;
    bool completed = true;
};

/// A human had to step in (retry budget exhausted). TWH segments break at
/// these points.
struct InterventionRecord {
    support::TimePoint time;
    std::string reason;
};

class EventLog {
public:
    void record_step(StepRecord record);
    void record_workflow(WorkflowRecord record);
    void record_intervention(InterventionRecord record);

    [[nodiscard]] const std::vector<StepRecord>& steps() const noexcept { return steps_; }
    [[nodiscard]] const std::vector<WorkflowRecord>& workflows() const noexcept {
        return workflows_;
    }
    [[nodiscard]] const std::vector<InterventionRecord>& interventions() const noexcept {
        return interventions_;
    }

    /// Successful robotic commands (the CCWH count when no intervention
    /// splits the run).
    [[nodiscard]] std::uint64_t successful_commands() const noexcept;

    /// Sum of successful-step durations for one module.
    [[nodiscard]] support::Duration module_busy_time(std::string_view module) const noexcept;

    /// Start of the first and end of the last recorded step.
    [[nodiscard]] support::TimePoint first_start() const noexcept;
    [[nodiscard]] support::TimePoint last_end() const noexcept;

    /// JSON export in the shape of the paper's per-workflow timing files:
    /// one entry per workflow run with its steps, start/end and duration.
    [[nodiscard]] support::json::Value to_json() const;

private:
    std::vector<StepRecord> steps_;
    std::vector<WorkflowRecord> workflows_;
    std::vector<InterventionRecord> interventions_;
};

}  // namespace sdl::wei
