#include "wei/faults.hpp"

namespace sdl::wei {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

bool FaultInjector::should_reject(const ActionRequest& request) {
    ++rolls_;
    double p = config_.command_rejection_prob;
    const auto it = config_.per_module.find(request.module);
    if (it != config_.per_module.end()) p = it->second;
    const bool reject = rng_.bernoulli(p);
    if (reject) ++rejections_;
    return reject;
}

}  // namespace sdl::wei
