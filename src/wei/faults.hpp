// Command-level fault injection.
//
// The paper observes that "most failures occur during reception and
// processing of commands", motivating CCWH as a resiliency metric. The
// injector models exactly that failure mode: with a configurable
// probability, a command is rejected by the device computer before the
// driver runs, costing a communication-timeout delay. Per-module rates
// allow modeling one flaky instrument among reliable ones.
#pragma once

#include <map>
#include <string>

#include "support/random.hpp"
#include "support/units.hpp"
#include "wei/action.hpp"

namespace sdl::wei {

struct FaultConfig {
    /// Probability that any command is rejected at reception.
    double command_rejection_prob = 0.0;
    /// Per-module overrides (module name -> probability).
    std::map<std::string, double> per_module;
    /// Time lost before the rejection is reported (timeout + recovery).
    support::Duration rejection_latency = support::Duration::seconds(5.0);
    std::uint64_t seed = 0xFA117;
};

class FaultInjector {
public:
    explicit FaultInjector(FaultConfig config = {});

    /// Rolls the dice for one command.
    [[nodiscard]] bool should_reject(const ActionRequest& request);

    [[nodiscard]] support::Duration rejection_latency() const noexcept {
        return config_.rejection_latency;
    }

    [[nodiscard]] std::uint64_t rejections() const noexcept { return rejections_; }
    [[nodiscard]] std::uint64_t rolls() const noexcept { return rolls_; }

private:
    FaultConfig config_;
    support::Rng rng_;
    std::uint64_t rejections_ = 0;
    std::uint64_t rolls_ = 0;
};

}  // namespace sdl::wei
