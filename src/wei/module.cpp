#include "wei/module.hpp"

#include "support/common.hpp"

namespace sdl::wei {

void ModuleRegistry::add(std::shared_ptr<Module> module) {
    support::check(module != nullptr, "cannot register a null module");
    const std::string name = module->info().name;
    if (modules_.count(name) > 0) {
        throw support::ConfigError("duplicate module name '" + name + "'");
    }
    modules_.emplace(name, std::move(module));
}

Module& ModuleRegistry::get(const std::string& name) const {
    const auto it = modules_.find(name);
    if (it == modules_.end()) {
        throw support::ConfigError("unknown module '" + name + "'");
    }
    return *it->second;
}

std::vector<std::string> ModuleRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(modules_.size());
    for (const auto& [name, module] : modules_) out.push_back(name);
    return out;
}

}  // namespace sdl::wei
