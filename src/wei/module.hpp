// Module abstraction: "each module is represented by a software
// abstraction that exposes a single device and, via interface methods,
// the actions that the device can perform" (§2.2).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wei/action.hpp"

namespace sdl::wei {

struct ModuleInfo {
    std::string name;         ///< workcell-unique instance name, e.g. "pf400"
    std::string model;        ///< hardware model, e.g. "Precise PF400"
    std::string description;
    std::vector<std::string> actions;  ///< action names the module accepts
    /// True for instruments whose commands count toward CCWH ("robotic
    /// actions"); sensors like the camera observe rather than act.
    bool robotic = true;
};

/// A device behind its software abstraction. Implementations mutate their
/// simulated hardware state in execute() and advertise per-command
/// durations via estimate() — the transport decides how time passes
/// (virtual clock or scaled wall clock).
class Module {
public:
    virtual ~Module() = default;

    [[nodiscard]] virtual const ModuleInfo& info() const noexcept = 0;

    /// Modeled duration of `request` (the timing model).
    [[nodiscard]] virtual support::Duration estimate(const ActionRequest& request) const = 0;

    /// Performs the action's state change and returns the device report.
    /// Called by the transport when the action's modeled time has elapsed.
    [[nodiscard]] virtual ActionResult execute(const ActionRequest& request) = 0;
};

/// Name -> module lookup for a workcell.
class ModuleRegistry {
public:
    /// Registers a module under its info().name; duplicate names throw.
    void add(std::shared_ptr<Module> module);

    [[nodiscard]] Module& get(const std::string& name) const;
    [[nodiscard]] bool contains(const std::string& name) const noexcept {
        return modules_.count(name) > 0;
    }
    [[nodiscard]] std::size_t size() const noexcept { return modules_.size(); }

    [[nodiscard]] std::vector<std::string> names() const;

private:
    std::map<std::string, std::shared_ptr<Module>> modules_;
};

}  // namespace sdl::wei
