#include "wei/plate.hpp"

#include "support/common.hpp"

namespace sdl::wei {

Plate::Plate(PlateId id, int rows, int cols) : id_(id), rows_(rows), cols_(cols) {
    support::check(rows > 0 && cols > 0, "plate dimensions must be positive");
    wells_.resize(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols));
}

bool Plate::is_filled(int well) const {
    support::check(well >= 0 && well < capacity(), "well index out of range");
    return wells_[static_cast<std::size_t>(well)].has_value();
}

const WellContent& Plate::content(int well) const {
    support::check(is_filled(well), "reading an empty well");
    return *wells_[static_cast<std::size_t>(well)];
}

void Plate::fill(int well, WellContent content) {
    support::check(well >= 0 && well < capacity(), "well index out of range");
    support::check(!wells_[static_cast<std::size_t>(well)].has_value(),
                   "well already contains a sample");
    wells_[static_cast<std::size_t>(well)] = std::move(content);
}

std::optional<int> Plate::next_free_well() const noexcept {
    for (std::size_t i = 0; i < wells_.size(); ++i) {
        if (!wells_[i].has_value()) return static_cast<int>(i);
    }
    return std::nullopt;
}

int Plate::filled_count() const noexcept {
    int n = 0;
    for (const auto& w : wells_) n += w.has_value() ? 1 : 0;
    return n;
}

PlateId PlateRegistry::create(int rows, int cols) {
    const PlateId id = next_id_++;
    plates_.emplace(id, Plate(id, rows, cols));
    return id;
}

Plate& PlateRegistry::get(PlateId id) {
    const auto it = plates_.find(id);
    if (it == plates_.end()) {
        throw support::Error("workcell", "unknown plate id " + std::to_string(id));
    }
    return it->second;
}

const Plate& PlateRegistry::get(PlateId id) const {
    const auto it = plates_.find(id);
    if (it == plates_.end()) {
        throw support::Error("workcell", "unknown plate id " + std::to_string(id));
    }
    return it->second;
}

void LocationMap::add_location(const std::string& name) {
    if (slots_.count(name) > 0) {
        throw support::ConfigError("duplicate location '" + name + "'");
    }
    slots_.emplace(name, std::nullopt);
}

bool LocationMap::has_location(const std::string& name) const noexcept {
    return slots_.count(name) > 0;
}

std::optional<PlateId> LocationMap::peek(const std::string& name) const {
    const auto it = slots_.find(name);
    if (it == slots_.end()) {
        throw support::Error("workcell", "unknown location '" + name + "'");
    }
    return it->second;
}

void LocationMap::place(const std::string& name, PlateId plate) {
    const auto it = slots_.find(name);
    if (it == slots_.end()) {
        throw support::Error("workcell", "unknown location '" + name + "'");
    }
    if (name == locations::kTrash) return;  // the trash swallows plates
    if (it->second.has_value()) {
        throw support::Error("workcell", "location '" + name + "' is occupied");
    }
    it->second = plate;
}

PlateId LocationMap::take(const std::string& name) {
    const auto it = slots_.find(name);
    if (it == slots_.end()) {
        throw support::Error("workcell", "unknown location '" + name + "'");
    }
    if (!it->second.has_value()) {
        throw support::Error("workcell", "no plate at location '" + name + "'");
    }
    const PlateId id = *it->second;
    it->second = std::nullopt;
    return id;
}

std::vector<std::string> LocationMap::names() const {
    std::vector<std::string> out;
    out.reserve(slots_.size());
    for (const auto& [name, plate] : slots_) out.push_back(name);
    return out;
}

}  // namespace sdl::wei
