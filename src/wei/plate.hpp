// Microplates, wells and plate locations — the physical objects the
// workcell shuttles around.
//
// PlateRegistry owns every plate the sciclops has dispensed; LocationMap
// tracks which nest each plate currently occupies. Devices mutate both:
// the pf400 moves plates between locations, the ot2 fills wells, the
// camera photographs whatever sits at its nest.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "color/rgb.hpp"
#include "support/units.hpp"

namespace sdl::wei {

using PlateId = std::int64_t;

/// What the ot2 actually dispensed into one well (volumes include pipette
/// noise) and the resulting ground-truth liquid color.
struct WellContent {
    std::array<support::Volume, 4> volumes{};
    color::Rgb8 true_color;
};

class Plate {
public:
    Plate(PlateId id, int rows, int cols);

    [[nodiscard]] PlateId id() const noexcept { return id_; }
    [[nodiscard]] int rows() const noexcept { return rows_; }
    [[nodiscard]] int cols() const noexcept { return cols_; }
    [[nodiscard]] int capacity() const noexcept { return rows_ * cols_; }

    [[nodiscard]] bool is_filled(int well) const;
    [[nodiscard]] const WellContent& content(int well) const;
    void fill(int well, WellContent content);

    /// Lowest-index empty well, or nullopt when the plate is full.
    [[nodiscard]] std::optional<int> next_free_well() const noexcept;
    [[nodiscard]] int filled_count() const noexcept;
    [[nodiscard]] bool full() const noexcept { return filled_count() == capacity(); }

private:
    PlateId id_;
    int rows_;
    int cols_;
    std::vector<std::optional<WellContent>> wells_;
};

class PlateRegistry {
public:
    /// Creates a fresh plate and returns its id.
    PlateId create(int rows, int cols);

    [[nodiscard]] Plate& get(PlateId id);
    [[nodiscard]] const Plate& get(PlateId id) const;
    [[nodiscard]] std::size_t count() const noexcept { return plates_.size(); }

private:
    std::map<PlateId, Plate> plates_;
    PlateId next_id_ = 1;
};

/// Named plate nests ("sciclops.exchange", "camera", "ot2.deck", "trash").
/// Each holds at most one plate; "trash" discards anything placed on it.
class LocationMap {
public:
    void add_location(const std::string& name);

    [[nodiscard]] bool has_location(const std::string& name) const noexcept;
    [[nodiscard]] std::optional<PlateId> peek(const std::string& name) const;

    /// Places a plate; throws Error("workcell") if occupied or unknown.
    void place(const std::string& name, PlateId plate);

    /// Removes and returns the plate; throws if empty or unknown.
    PlateId take(const std::string& name);

    [[nodiscard]] std::vector<std::string> names() const;

private:
    std::map<std::string, std::optional<PlateId>> slots_;
};

/// Location names used by the color-picker workcell.
namespace locations {
inline constexpr const char* kExchange = "sciclops.exchange";
inline constexpr const char* kCamera = "camera.nest";
inline constexpr const char* kOt2Deck = "ot2.deck";
inline constexpr const char* kTrash = "trash";
}  // namespace locations

}  // namespace sdl::wei
