#include "wei/sim_transport.hpp"

#include "support/common.hpp"

namespace sdl::wei {

SimTransport::SimTransport(des::Simulation& sim, ModuleRegistry& modules,
                           FaultInjector* faults)
    : sim_(sim), modules_(modules), faults_(faults) {}

ActionResult SimTransport::execute(const ActionRequest& request) {
    Module& module = modules_.get(request.module);

    // Rejection at command reception (before the driver runs).
    if (faults_ != nullptr && faults_->should_reject(request)) {
        const support::Duration latency = faults_->rejection_latency();
        bool done = false;
        sim_.schedule_in(latency, [&done] { done = true; });
        const bool completed = sim_.run_until([&done] { return done; });
        support::check(completed, "simulation drained before rejection timeout");
        ActionResult result;
        result.status = ActionStatus::Rejected;
        result.error = "command rejected during reception/processing";
        result.duration = latency;
        return result;
    }

    const support::Duration duration = module.estimate(request);
    bool done = false;
    sim_.schedule_in(duration, [&done] { done = true; });
    const bool completed = sim_.run_until([&done] { return done; });
    support::check(completed, "simulation drained before command completion");

    ActionResult result = module.execute(request);
    result.duration = duration;
    return result;
}

void SimTransport::wait(support::Duration duration) {
    sim_.run_until_time(sim_.now() + duration);
}

}  // namespace sdl::wei
