// DES-backed transport: commands become events on a shared simulation.
#pragma once

#include "des/simulation.hpp"
#include "wei/faults.hpp"
#include "wei/module.hpp"
#include "wei/transport.hpp"

namespace sdl::wei {

class SimTransport final : public Transport {
public:
    /// `faults` may be nullptr for a fault-free workcell. The transport
    /// borrows all three references; they must outlive it.
    SimTransport(des::Simulation& sim, ModuleRegistry& modules,
                 FaultInjector* faults = nullptr);

    /// Schedules the command's completion at now + estimate and runs the
    /// simulation forward until it fires — any concurrently scheduled
    /// processes (publication flows, reservoir monitors) execute while
    /// the command is "in flight", exactly as in the lab.
    [[nodiscard]] ActionResult execute(const ActionRequest& request) override;

    [[nodiscard]] support::TimePoint now() const override { return sim_.now(); }

    void wait(support::Duration duration) override;

    [[nodiscard]] des::Simulation& simulation() noexcept { return sim_; }

private:
    des::Simulation& sim_;
    ModuleRegistry& modules_;
    FaultInjector* faults_;
};

}  // namespace sdl::wei
