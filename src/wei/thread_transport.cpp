#include "wei/thread_transport.hpp"

#include <chrono>

#include "support/common.hpp"

namespace sdl::wei {

ThreadTransport::ThreadTransport(ModuleRegistry& modules, double time_scale,
                                 FaultInjector* faults)
    : modules_(modules), time_scale_(time_scale), faults_(faults) {
    support::check(time_scale > 0.0, "time scale must be positive");
    for (const std::string& name : modules_.names()) {
        DeviceServer server;
        server.inbox = std::make_unique<support::Channel<Envelope>>();
        Module& module = modules_.get(name);
        support::Channel<Envelope>& inbox = *server.inbox;
        server.thread = std::thread([this, &module, &inbox] { serve(module, inbox); });
        servers_.emplace(name, std::move(server));
    }
}

ThreadTransport::~ThreadTransport() {
    for (auto& [name, server] : servers_) server.inbox->close();
    for (auto& [name, server] : servers_) {
        if (server.thread.joinable()) server.thread.join();
    }
}

void ThreadTransport::serve(Module& module, support::Channel<Envelope>& inbox) {
    while (auto envelope = inbox.receive()) {
        ActionResult result;
        if (faults_ != nullptr && faults_->should_reject(envelope->request)) {
            const support::Duration latency = faults_->rejection_latency();
            std::this_thread::sleep_for(
                std::chrono::duration<double>(latency.to_seconds() * time_scale_));
            result.status = ActionStatus::Rejected;
            result.error = "command rejected during reception/processing";
            result.duration = latency;
        } else {
            const support::Duration duration = module.estimate(envelope->request);
            std::this_thread::sleep_for(
                std::chrono::duration<double>(duration.to_seconds() * time_scale_));
            result = module.execute(envelope->request);
            result.duration = duration;
        }
        {
            support::MutexLock lock(clock_mutex_);
            modeled_elapsed_s_ += result.duration.to_seconds();
        }
        envelope->reply.set_value(std::move(result));
    }
}

ActionResult ThreadTransport::execute(const ActionRequest& request) {
    const auto it = servers_.find(request.module);
    if (it == servers_.end()) {
        throw support::ConfigError("unknown module '" + request.module + "'");
    }
    Envelope envelope;
    envelope.request = request;
    std::future<ActionResult> reply = envelope.reply.get_future();
    if (!it->second.inbox->send(std::move(envelope))) {
        throw support::Error("wei", "device server for '" + request.module +
                                        "' is shut down");
    }
    return reply.get();
}

support::TimePoint ThreadTransport::now() const {
    support::MutexLock lock(clock_mutex_);
    return support::TimePoint::from_seconds(modeled_elapsed_s_);
}

void ThreadTransport::wait(support::Duration duration) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(duration.to_seconds() * time_scale_));
    support::MutexLock lock(clock_mutex_);
    modeled_elapsed_s_ += duration.to_seconds();
}

}  // namespace sdl::wei
