// Threaded transport: one device-server thread per module, communicating
// through message channels — the in-process analogue of WEI's networked
// device computers, and the deployment shape a workcell with real
// hardware drivers would use.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "support/channel.hpp"
#include "support/mutex.hpp"
#include "support/thread_annotations.hpp"
#include "wei/faults.hpp"
#include "wei/module.hpp"
#include "wei/transport.hpp"

namespace sdl::wei {

class ThreadTransport final : public Transport {
public:
    /// `time_scale` compresses modeled durations into wall-clock sleeps:
    /// 1.0 runs in real time, 1e-4 turns 42 s robot moves into ~4 ms.
    /// Reported timestamps and durations stay in modeled (unscaled) time.
    explicit ThreadTransport(ModuleRegistry& modules, double time_scale = 1e-4,
                             FaultInjector* faults = nullptr);

    /// Joins all device threads.
    ~ThreadTransport() override;

    ThreadTransport(const ThreadTransport&) = delete;
    ThreadTransport& operator=(const ThreadTransport&) = delete;

    [[nodiscard]] ActionResult execute(const ActionRequest& request) override;

    /// Modeled time elapsed since construction: accumulated command time
    /// (devices are the only time consumers in this control loop).
    [[nodiscard]] support::TimePoint now() const override;

    void wait(support::Duration duration) override;

private:
    struct Envelope {
        ActionRequest request;
        std::promise<ActionResult> reply;
    };
    struct DeviceServer {
        std::unique_ptr<support::Channel<Envelope>> inbox;
        std::thread thread;
    };

    void serve(Module& module, support::Channel<Envelope>& inbox);

    ModuleRegistry& modules_;
    double time_scale_;
    FaultInjector* faults_;
    std::map<std::string, DeviceServer> servers_;
    // mutable so const readers (now()) can lock without const_cast —
    // the lock is how a read becomes safe, not a logical mutation.
    mutable support::Mutex clock_mutex_;
    double modeled_elapsed_s_ SDL_GUARDED_BY(clock_mutex_) = 0.0;
};

}  // namespace sdl::wei
