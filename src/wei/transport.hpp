// Transport abstraction: how commands reach device computers and how time
// passes while they execute.
//
// Two implementations ship with sdlbench:
//  * SimTransport    — discrete-event simulation; device actions advance a
//                      virtual clock, so an 8-hour experiment runs in
//                      milliseconds while reporting lab-scale durations.
//  * ThreadTransport — each module runs on its own thread behind a message
//                      channel (the architecture a real deployment would
//                      use, with wall-clock time optionally scaled down).
// The engine and application code are transport-agnostic.
#pragma once

#include "support/units.hpp"
#include "wei/action.hpp"

namespace sdl::wei {

class Transport {
public:
    virtual ~Transport() = default;

    /// Sends one command and blocks (in the caller's frame of reference)
    /// until the device reports back. The result's `duration` is the
    /// modeled execution time.
    [[nodiscard]] virtual ActionResult execute(const ActionRequest& request) = 0;

    /// Current experiment time (virtual or scaled wall clock).
    [[nodiscard]] virtual support::TimePoint now() const = 0;

    /// Lets modeled time pass without issuing a command (retry backoff,
    /// operator-configured dwell times).
    virtual void wait(support::Duration duration) = 0;
};

}  // namespace sdl::wei
