#include "wei/workcell.hpp"

#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/table.hpp"
#include "support/yaml.hpp"

namespace sdl::wei {

namespace json = support::json;

WorkcellConfig WorkcellConfig::from_yaml(std::string_view text) {
    const json::Value doc = support::yaml::parse(text);
    if (!doc.is_object()) {
        throw support::ConfigError("workcell file must be a YAML mapping");
    }
    WorkcellConfig wc;
    wc.name_ = doc.get_or("name", std::string("workcell"));

    const json::Value* modules = doc.find("modules");
    if (modules == nullptr || !modules->is_array()) {
        throw support::ConfigError("workcell file must list 'modules'");
    }
    for (const json::Value& m : modules->as_array()) {
        if (!m.is_object() || !m.contains("name")) {
            throw support::ConfigError("each module needs at least a 'name'");
        }
        ModuleConfig mc;
        mc.name = m.at("name").as_string();
        mc.model = m.get_or("model", std::string(""));
        mc.interface = m.get_or("interface", std::string("simulation"));
        if (const json::Value* cfg = m.find("config")) mc.config = *cfg;
        for (const ModuleConfig& existing : wc.modules_) {
            if (existing.name == mc.name) {
                throw support::ConfigError("duplicate module '" + mc.name + "'");
            }
        }
        wc.modules_.push_back(std::move(mc));
    }

    if (const json::Value* locs = doc.find("locations")) {
        if (!locs->is_object()) {
            throw support::ConfigError("'locations' must be a mapping");
        }
        for (const auto& [name, pos] : locs->as_object()) {
            LocationConfig lc;
            lc.name = name;
            if (pos.is_array()) {
                for (const json::Value& coord : pos.as_array()) {
                    lc.position.push_back(coord.as_double());
                }
            }
            wc.locations_.push_back(std::move(lc));
        }
    }
    return wc;
}

WorkcellConfig WorkcellConfig::from_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw support::Error("io", "cannot open workcell file '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return from_yaml(buffer.str());
}

bool WorkcellConfig::has_module(std::string_view name) const noexcept {
    for (const ModuleConfig& m : modules_) {
        if (m.name == name) return true;
    }
    return false;
}

const ModuleConfig& WorkcellConfig::module(std::string_view name) const {
    for (const ModuleConfig& m : modules_) {
        if (m.name == name) return m;
    }
    throw support::ConfigError("workcell has no module '" + std::string(name) + "'");
}

std::string WorkcellConfig::to_yaml() const {
    json::Value doc = json::Value::object();
    doc.set("name", name_);
    json::Value modules = json::Value::array();
    for (const ModuleConfig& m : modules_) {
        json::Value node = json::Value::object();
        node.set("name", m.name);
        if (!m.model.empty()) node.set("model", m.model);
        node.set("interface", m.interface);
        if (m.config.size() > 0) node.set("config", m.config);
        modules.push_back(std::move(node));
    }
    doc.set("modules", std::move(modules));
    if (!locations_.empty()) {
        json::Value locs = json::Value::object();
        for (const LocationConfig& l : locations_) {
            json::Value pos = json::Value::array();
            for (const double c : l.position) pos.push_back(c);
            locs.set(l.name, std::move(pos));
        }
        doc.set("locations", std::move(locs));
    }
    return support::yaml::dump(doc);
}

std::string WorkcellConfig::describe() const {
    support::TextTable table({"Module", "Model", "Interface", "Config"});
    for (const ModuleConfig& m : modules_) {
        table.add_row({m.name, m.model.empty() ? "-" : m.model, m.interface,
                       m.config.size() > 0 ? m.config.dump() : "-"});
    }
    std::string out = "Workcell: " + name_ + "\n" + table.str();
    if (!locations_.empty()) {
        out += "Locations:";
        for (const LocationConfig& l : locations_) {
            out += " " + l.name;
        }
        out += "\n";
    }
    return out;
}

}  // namespace sdl::wei
