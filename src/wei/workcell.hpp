// Workcell configuration: "a declarative YAML notation is used to specify
// how a workcell is configured from a set of modules" (§2.2).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace sdl::wei {

struct ModuleConfig {
    std::string name;
    std::string model;
    std::string interface = "simulation";  ///< driver binding
    support::json::Value config = support::json::Value::object();
};

struct LocationConfig {
    std::string name;
    std::vector<double> position;  ///< joint/cartesian coordinates (free-form)
};

/// Parsed workcell file. This is configuration only — module *instances*
/// are built by the application (see devices/ and core/) and registered
/// against these names.
class WorkcellConfig {
public:
    /// Parses the YAML notation:
    ///   name: rpl_workcell
    ///   modules:
    ///     - name: sciclops
    ///       model: Hudson SciClops
    ///       interface: simulation
    ///       config: {towers: 4}
    ///   locations:
    ///     camera.nest: [310.5, 20.0]
    /// Throws ParseError / ConfigError on malformed documents.
    [[nodiscard]] static WorkcellConfig from_yaml(std::string_view text);

    /// Loads from a file path.
    [[nodiscard]] static WorkcellConfig from_file(const std::string& path);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<ModuleConfig>& modules() const noexcept {
        return modules_;
    }
    [[nodiscard]] const std::vector<LocationConfig>& locations() const noexcept {
        return locations_;
    }

    [[nodiscard]] bool has_module(std::string_view name) const noexcept;
    [[nodiscard]] const ModuleConfig& module(std::string_view name) const;

    /// Serializes back to YAML (round-trip support for tooling).
    [[nodiscard]] std::string to_yaml() const;

    /// Human-readable inventory table (the Figure-1 "workcell map").
    [[nodiscard]] std::string describe() const;

private:
    std::string name_;
    std::vector<ModuleConfig> modules_;
    std::vector<LocationConfig> locations_;
};

}  // namespace sdl::wei
