#include "wei/workflow.hpp"

#include <fstream>
#include <sstream>

#include "support/common.hpp"
#include "support/yaml.hpp"

namespace sdl::wei {

namespace json = support::json;

Workflow::Workflow(std::string name, std::vector<WorkflowStep> steps)
    : name_(std::move(name)), steps_(std::move(steps)) {
    support::check(!name_.empty(), "workflow needs a name");
}

Workflow Workflow::from_yaml(std::string_view text) {
    const json::Value doc = support::yaml::parse(text);
    if (!doc.is_object() || !doc.contains("name")) {
        throw support::ConfigError("workflow file must be a mapping with a 'name'");
    }
    std::vector<WorkflowStep> steps;
    const json::Value* steps_node = doc.find("steps");
    if (steps_node == nullptr || !steps_node->is_array()) {
        throw support::ConfigError("workflow '" + doc.at("name").as_string() +
                                   "' must list 'steps'");
    }
    for (const json::Value& s : steps_node->as_array()) {
        if (!s.is_object() || !s.contains("module") || !s.contains("action")) {
            throw support::ConfigError("each step needs 'module' and 'action'");
        }
        WorkflowStep step;
        step.module = s.at("module").as_string();
        step.action = s.at("action").as_string();
        step.name = s.get_or("name", step.module + "." + step.action);
        if (const json::Value* args = s.find("args")) {
            if (!args->is_object()) {
                throw support::ConfigError("step 'args' must be a mapping");
            }
            step.args = *args;
        }
        steps.push_back(std::move(step));
    }
    return Workflow(doc.at("name").as_string(), std::move(steps));
}

Workflow Workflow::from_file(const std::string& path) {
    std::ifstream file(path);
    if (!file) throw support::Error("io", "cannot open workflow file '" + path + "'");
    std::ostringstream buffer;
    buffer << file.rdbuf();
    return from_yaml(buffer.str());
}

Workflow Workflow::with_step_args(std::string_view step_name,
                                  const json::Value& extra) const {
    support::check(extra.is_object(), "step-arg overrides must be an object");
    Workflow copy = *this;
    bool found = false;
    for (WorkflowStep& step : copy.steps_) {
        if (step.name == step_name) {
            for (const auto& [key, value] : extra.as_object()) {
                step.args.set(key, value);
            }
            found = true;
        }
    }
    if (!found) {
        throw support::ConfigError("workflow '" + name_ + "' has no step named '" +
                                   std::string(step_name) + "'");
    }
    return copy;
}

std::string Workflow::to_yaml() const {
    json::Value doc = json::Value::object();
    doc.set("name", name_);
    json::Value steps = json::Value::array();
    for (const WorkflowStep& s : steps_) {
        json::Value node = json::Value::object();
        node.set("name", s.name);
        node.set("module", s.module);
        node.set("action", s.action);
        if (s.args.size() > 0) node.set("args", s.args);
        steps.push_back(std::move(node));
    }
    doc.set("steps", std::move(steps));
    return support::yaml::dump(doc);
}

std::string Workflow::to_dot() const {
    std::string out = "digraph \"" + name_ + "\" {\n  rankdir=TB;\n  node [shape=box];\n";
    for (std::size_t i = 0; i < steps_.size(); ++i) {
        out += "  s" + std::to_string(i) + " [label=\"" + steps_[i].module + "." +
               steps_[i].action + "\"];\n";
        if (i > 0) {
            out += "  s" + std::to_string(i - 1) + " -> s" + std::to_string(i) + ";\n";
        }
    }
    out += "}\n";
    return out;
}

}  // namespace sdl::wei
