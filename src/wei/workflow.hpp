// Declarative workflows: named sequences of module actions (§2.2: "Users
// can specify, again using a declarative notation, workflows that perform
// sets of actions on modules").
#pragma once

#include <string>
#include <vector>

#include "support/json.hpp"

namespace sdl::wei {

struct WorkflowStep {
    std::string name;    ///< human-readable step label
    std::string module;  ///< target module
    std::string action;  ///< action to run
    support::json::Value args = support::json::Value::object();
};

class Workflow {
public:
    Workflow() = default;
    Workflow(std::string name, std::vector<WorkflowStep> steps);

    /// Parses the YAML notation:
    ///   name: cp_wf_mixcolor
    ///   steps:
    ///     - name: move to ot2
    ///       module: pf400
    ///       action: transfer
    ///       args: {source: camera.nest, target: ot2.deck}
    [[nodiscard]] static Workflow from_yaml(std::string_view text);
    [[nodiscard]] static Workflow from_file(const std::string& path);

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::vector<WorkflowStep>& steps() const noexcept { return steps_; }
    [[nodiscard]] bool empty() const noexcept { return steps_.empty(); }

    /// Returns a copy with `extra` merged into the args of the step named
    /// `step_name` (how applications parameterize protocol steps, e.g.
    /// the ot2 well/volume payload).
    [[nodiscard]] Workflow with_step_args(std::string_view step_name,
                                          const support::json::Value& extra) const;

    [[nodiscard]] std::string to_yaml() const;

    /// Graphviz DOT rendering of the step chain (Figure-2 tooling).
    [[nodiscard]] std::string to_dot() const;

private:
    std::string name_;
    std::vector<WorkflowStep> steps_;
};

}  // namespace sdl::wei
