# ctest -P helper: the failpoint chaos matrix (docs/ROBUSTNESS.md).
#
# Runs CAMPAIGN once single-process (the golden reference, digest-pinned
# by GOLDEN_MD5), then drives sdlbench_fleet through the injected-failure
# legs the self-healing machinery exists for:
#
#   kill+respawn     a worker SIGKILLs itself after a durable journal
#                    append (before its ack); the coordinator salvages,
#                    respawns the slot, and finishes byte-identical
#   merge faults     the live merge's atomic_write fails (injected
#                    rename, then fsync error); the merge retries and
#                    the final report is untouched
#   coordinator kill the coordinator SIGKILLs itself mid-campaign;
#                    a restart without --resume refuses, --resume
#                    replays the ledger + worker journals and finishes
#                    byte-identical
#   quarantine       one poisoned cell kills every worker that leases
#                    it; after 3 distinct incarnations it is quarantined
#                    (exit 6), every other cell completes, and the crash
#                    history lands in campaign.json
#
# Byte-identity against the single-process reference is asserted with
# the same GOLDEN_MD5 on every completing leg, so a chaos path that
# perturbs even one output byte fails the matrix.
#
# Vars: RUNNER (sdlbench_run), FLEET (sdlbench_fleet), CAMPAIGN,
# WORK_DIR, GOLDEN_MD5.
foreach(var RUNNER FLEET CAMPAIGN WORK_DIR GOLDEN_MD5)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "chaos_matrix.cmake: ${var} not set")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RUNNER}" --campaign "${CAMPAIGN}" "${WORK_DIR}/ref"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "reference run failed (${rc})\n${out}\n${err}")
endif()
file(MD5 "${WORK_DIR}/ref/campaign.json" ref_md5)
if(NOT ref_md5 STREQUAL GOLDEN_MD5)
  message(FATAL_ERROR
    "reference campaign.json digest drifted: got ${ref_md5}, golden "
    "${GOLDEN_MD5}")
endif()

function(assert_golden dir label)
  file(MD5 "${dir}/campaign.json" got)
  if(NOT got STREQUAL GOLDEN_MD5)
    message(FATAL_ERROR
      "${label}: campaign.json digest ${got} != golden ${GOLDEN_MD5} — "
      "an injected failure leaked into the output bytes")
  endif()
  execute_process(
    COMMAND "${CMAKE_COMMAND}" -E compare_files
            "${WORK_DIR}/ref/campaign.csv" "${dir}/campaign.csv"
    RESULT_VARIABLE diff)
  if(NOT diff EQUAL 0)
    message(FATAL_ERROR "${label}: campaign.csv differs from the reference")
  endif()
  if(EXISTS "${dir}/coordinator.jsonl")
    message(FATAL_ERROR
      "${label}: coordinator.jsonl survived a completed run — the ledger "
      "must be removed on success")
  endif()
endfunction()

function(assert_stderr needle label)
  string(FIND "${err}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "${label}: expected '${needle}' on stderr\n${out}\n${err}")
  endif()
endfunction()

# ---- Leg 1: worker SIGKILL after a durable append; slot respawns.
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/kill"
          --workers 3 --respawn-backoff 0.05
          --worker-failpoints "1:worker.pre_ack_kill=kill@1#1"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "kill+respawn leg failed (${rc})\n${out}\n${err}")
endif()
assert_stderr("worker w1 lost" "kill+respawn leg")
assert_stderr("salvaged 1 journaled cell" "kill+respawn leg")
assert_stderr("worker w1 respawned (generation 1" "kill+respawn leg")
assert_golden("${WORK_DIR}/kill" "kill+respawn leg")

# ---- Leg 2: live-merge atomic_write faults (rename, then fsync). The
# first coordinator atomic_write is the ledger header, so @2 lands on
# the first live-merge campaign.json write.
foreach(site rename fsync)
  execute_process(
    COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/merge_${site}"
            --workers 3 --failpoints "atomic_io.${site}=err@2#1"
    OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "merge-fault leg (${site}) failed (${rc})\n${out}\n${err}")
  endif()
  assert_stderr("live merge failed" "merge-fault leg (${site})")
  assert_golden("${WORK_DIR}/merge_${site}" "merge-fault leg (${site})")
endforeach()

# ---- Leg 3: coordinator SIGKILL after the 2nd ack, then --resume.
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/coord"
          --workers 3 --failpoints "coordinator.post_ack_kill=kill@2#1"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "coordinator-kill leg: the coordinator survived its own kill "
    "failpoint\n${out}\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/coord/coordinator.jsonl")
  message(FATAL_ERROR
    "coordinator-kill leg: no coordinator.jsonl ledger after the kill")
endif()
# Orphaned workers notice the dead pipe within a beat; give them a
# moment so the resume's pid sweep is a no-op rather than load-bearing.
execute_process(COMMAND "${CMAKE_COMMAND}" -E sleep 1)
# A restart without --resume must refuse (real progress, live ledger).
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/coord" --workers 3
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(rc EQUAL 0)
  message(FATAL_ERROR
    "coordinator-kill leg: restart without --resume did not refuse\n${out}\n${err}")
endif()
assert_stderr("--resume" "coordinator-kill refusal")
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/coord"
          --workers 3 --resume
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "coordinator resume failed (${rc})\n${out}\n${err}")
endif()
string(FIND "${out}" "Fleet resume:" resumed)
if(resumed EQUAL -1)
  message(FATAL_ERROR
    "coordinator resume never reported replayed progress\n${out}\n${err}")
endif()
assert_golden("${WORK_DIR}/coord" "coordinator resume leg")

# ---- Leg 4: a poisoned cell kills every worker that leases it; after 3
# distinct incarnations it is quarantined (exit 6) and every other cell
# completes with its crash history reported.
execute_process(
  COMMAND "${FLEET}" --campaign "${CAMPAIGN}" "${WORK_DIR}/poison"
          --workers 3 --quarantine-after 3 --respawn-backoff 0.05
          --worker-failpoints "*:worker.cell_start[2]=kill"
  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
if(NOT rc EQUAL 6)
  message(FATAL_ERROR
    "quarantine leg: expected exit 6, got ${rc}\n${out}\n${err}")
endif()
assert_stderr("cell 2 quarantined after crashing 3 distinct" "quarantine leg")
file(READ "${WORK_DIR}/poison/campaign.json" poison_doc)
string(FIND "${poison_doc}" "\"quarantined\"" quarantined)
if(quarantined EQUAL -1)
  message(FATAL_ERROR
    "quarantine leg: campaign.json carries no quarantined list")
endif()
string(FIND "${poison_doc}" "\"cells\": 4" completed)
if(completed EQUAL -1)
  message(FATAL_ERROR
    "quarantine leg: the 4 healthy cells did not all complete")
endif()
if(EXISTS "${WORK_DIR}/poison/coordinator.jsonl")
  message(FATAL_ERROR
    "quarantine leg: ledger survived a completed (if degraded) run")
endif()

message(STATUS "chaos matrix OK: kill+respawn, merge faults, coordinator "
               "kill+resume, and quarantine legs all behaved")
